"""Fig. 17: step latency vs particle count on the three benchmarks.

Reproduced shape: execution time increases linearly with the number of
particles; PF has lower latency than BDS, which is lower than SDS.
The per-step latency of a single warmed engine is also measured
precisely with pytest-benchmark (one benchmark per method).
"""

import itertools

import numpy as np
import pytest

from repro.bench import (
    CoinModel,
    KalmanModel,
    OutlierModel,
    format_sweep,
    latency_sweep,
    coin_data,
    kalman_data,
    outlier_data,
)
from repro.inference import infer

from conftest import emit

BENCHMARKS = {
    "kalman": (KalmanModel, kalman_data),
    "coin": (CoinModel, coin_data),
    "outlier": (OutlierModel, outlier_data),
}


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_fig17_latency_sweep(benchmark, name, bench_config):
    model_cls, datagen = BENCHMARKS[name]
    data = datagen(30, seed=42)
    counts = [1, 10, 50, 100]

    def sweep():
        return latency_sweep(
            model_cls, data, particle_counts=counts,
            methods=["pf", "bds", "sds"], runs=2,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, f"Fig. 17 — {name} step latency (ms) vs particles"))

    for method in ("pf", "bds", "sds"):
        assert result.get(method, 100).median > result.get(method, 1).median
    assert result.get("pf", 100).median <= result.get("sds", 100).median


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_fig17_vectorized_backend_sweep(benchmark, name, bench_config):
    """Scalar vs vectorized particle filter on the same sweep.

    The vectorized backend advances all particles per array operation,
    so its latency advantage widens with the particle count.
    """
    model_cls, datagen = BENCHMARKS[name]
    data = datagen(30, seed=42)
    counts = [10, 100, 1000]

    def sweep():
        return latency_sweep(
            model_cls, data, particle_counts=counts,
            methods=["pf", "pf@vectorized"], runs=2,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, f"Fig. 17+ — {name} scalar vs vectorized PF (ms)"))

    speedup = result.get("pf", 1000).median / result.get("pf@vectorized", 1000).median
    emit(f"vectorized speedup at 1000 particles: {speedup:.1f}x")
    assert result.get("pf@vectorized", 1000).median < result.get("pf", 1000).median


@pytest.mark.parametrize(
    "name,method",
    list(
        itertools.product(
            sorted(BENCHMARKS), ["pf", "bds", "sds", "pf@vectorized"]
        )
    ),
)
def test_fig17_single_step_latency(benchmark, name, method, bench_config):
    """Precise per-step latency at 100 particles via pytest-benchmark."""
    from repro.bench import parse_method_spec

    model_cls, datagen = BENCHMARKS[name]
    data = datagen(200, seed=42)
    method_name, backend, executor = parse_method_spec(method)
    engine = infer(
        model_cls(), n_particles=100, method=method_name, seed=0, backend=backend,
        executor=executor,
    )
    state = engine.init()
    observations = iter(itertools.cycle(data.observations))
    # warm up one step (the paper discards a warm-up run)
    holder = {"state": state}
    _, holder["state"] = engine.step(holder["state"], next(observations))

    def one_step():
        _, holder["state"] = engine.step(holder["state"], next(observations))

    benchmark(one_step)
