"""Registration/routing latency: analysis-first vs probe-only.

``infer(..., backend="auto")`` now consults the static analysis before
the vectorized registries, with the empirical probe demoted to
confirmation. This benchmark measures what that costs and what it
saves:

* **cold verdict** — one uncached static analysis per model vs one
  ``probe_ds_structure`` run (the runtime probe executes the model's
  scalar delayed-sampling semantics over the probe inputs *and* a
  3-particle batched smoke run; the analysis only walks the step
  function's AST).
* **warm routing** — the per-``infer()`` cost of ``backend="auto"``
  once the analysis cache is hot, vs ``backend="vectorized"`` (registry
  lookup only). Auto adds one cache hit + one metric increment per
  call; the bound asserts it stays within tens of microseconds.

The measured numbers go to the "Static analysis" table in
``EXPERIMENTS.md``.
"""

import time

from repro.analysis import analyze_model
from repro.analysis.routing import analysis_for, clear_analysis_cache
from repro.bench import KalmanModel, RobotModel
from repro.bench.models import CoinModel, MixedFragmentModel, OutlierModel
from repro.delayed.detect import probe_ds_structure
from repro.inference import infer

from conftest import emit

#: (name, model factory, probe inputs) — the probe needs representative
#: inputs; the analysis does not (that asymmetry is the point).
MODELS = [
    ("kalman", KalmanModel, [0.5, -0.2, 1.1]),
    ("coin", CoinModel, [True, False]),
    ("outlier", OutlierModel, [0.5, 0.7]),
    ("mixed_one", lambda: MixedFragmentModel(realize="one"), [(1, 2, 0, 3)] * 2),
    ("robot", RobotModel, [(0.0, 0.0, 0.0), (0.1, None, 0.0)]),
]

#: ceiling on the warm `backend="auto"` routing premium per infer()
#: call, in milliseconds. Measured ~0.01-0.05 ms (a dict lookup plus a
#: counter bump); the bar leaves room for noisy shared runners.
MAX_WARM_AUTO_PREMIUM_MS = 2.0


def _time_ms(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - t0) * 1000.0)
    return best


def test_cold_verdict_analysis_vs_probe():
    """One uncached static verdict vs one empirical probe, per model."""
    rows = []
    for name, factory, inputs in MODELS:
        analysis_ms = _time_ms(lambda: analyze_model(factory()), repeats=5)
        probe_ms = _time_ms(lambda: probe_ds_structure(factory(), inputs), repeats=5)
        rows.append((name, analysis_ms, probe_ms))
        # same question, same answer, no execution
        assert analyze_model(factory()).conclusive
    emit("cold verdict latency (ms, best of 5):")
    emit(f"{'model':>12} {'analysis':>10} {'probe':>10}")
    for name, a_ms, p_ms in rows:
        emit(f"{name:>12} {a_ms:>10.2f} {p_ms:>10.2f}")


def test_warm_auto_routing_premium():
    """backend="auto" vs backend="vectorized" with a hot analysis cache."""
    model_factory = KalmanModel
    analysis_for(model_factory())  # warm the cache

    def build(backend):
        infer(model_factory(), n_particles=100, method="sds", backend=backend, seed=0)

    vect_ms = _time_ms(lambda: build("vectorized"), repeats=20)
    auto_ms = _time_ms(lambda: build("auto"), repeats=20)
    premium = auto_ms - vect_ms
    emit(
        f"warm engine construction: vectorized {vect_ms:.3f} ms, "
        f"auto {auto_ms:.3f} ms -> premium {premium:+.3f} ms"
    )
    assert premium < MAX_WARM_AUTO_PREMIUM_MS


def test_cold_auto_registration_latency():
    """First-ever `backend="auto"` call per model configuration: the one
    call that pays for the analysis (probe-only routing paid an
    empirical probe at module import instead)."""
    rows = []
    for name, factory, inputs in MODELS:
        clear_analysis_cache()
        cold_ms = _time_ms(
            lambda: infer(
                factory(), n_particles=100, method="sds", backend="auto", seed=0
            ),
            repeats=3,
        )
        warm_ms = _time_ms(
            lambda: infer(
                factory(), n_particles=100, method="sds", backend="auto", seed=0
            ),
            repeats=3,
        )
        rows.append((name, cold_ms, warm_ms))
    emit("auto-backend engine construction (ms, best of 3):")
    emit(f"{'model':>12} {'cold':>10} {'warm':>10}")
    for name, cold_ms, warm_ms in rows:
        emit(f"{name:>12} {cold_ms:>10.2f} {warm_ms:>10.2f}")
