"""Persistent executors: per-step latency on the Fig. 2 HMM at 10k particles.

ISSUE 3 acceptance: `ProcessShardExecutor` only breaks even near 10k
particles because every step pickles the whole shard payload both ways
(see EXPERIMENTS.md). `PersistentProcessExecutor` keeps the shards
resident in its workers — per-step traffic is the step input out and
per-shard weight/output vectors back, plus the few particles that
migrate at the resample barrier — so at 10,000 particles and 4 workers
`pf@scalar@processes-persistent:4` must beat `pf@scalar@processes:4`
per step. The bar is asserted whenever the machine has multiple cores;
a single-core run is still recorded (it isolates the shipping overhead
the persistent mode removes).

Correctness is asserted unconditionally: the persistent executor must
produce the bit-identical posterior to `serial` at a fixed seed — the
shard partition, not the residency, owns the randomness.
"""

import os

import pytest

from repro.bench import (
    HmmModel,
    format_sweep,
    kalman_data,
    latency_sweep,
    sweep_records,
    write_bench_json,
)
from repro.exec.executor import PersistentProcessExecutor
from repro.inference import infer
from repro.obs.registry import MetricsRegistry, set_default_registry
from repro.obs.spans import disable_telemetry, enable_telemetry

from conftest import emit

PARTICLES = 10_000
WORKERS = 4
MULTICORE = (os.cpu_count() or 1) >= 2

#: perf-trajectory records accumulated by the tests in this module and
#: persisted by :func:`test_write_bench_json` (BENCH_PR7.json lineage).
_RECORDS = []


@pytest.fixture(scope="module")
def hmm_data(bench_config):
    return kalman_data(
        max(6, bench_config["sweep_steps"] // 5), seed=42,
        prior_var=1.0, motion_var=1.0, obs_var=1.0,
    )


def test_persistent_bit_identical(hmm_data):
    """Resident shards reproduce the serial posterior exactly."""
    def run(executor, method):
        engine = infer(
            HmmModel(), n_particles=64, method=method, seed=5, executor=executor
        )
        state = engine.init()
        means = []
        for y in hmm_data.observations:
            dist, state = engine.step(state, y)
            means.append(dist.mean())
        return means

    for method in ("pf", "bds"):
        serial = run("serial", method)
        assert run(f"processes-persistent:{WORKERS}", method) == serial
        assert run("processes-persistent:2", method) == serial


def test_persistent_speedup(benchmark, hmm_data, bench_config):
    def sweep():
        return latency_sweep(
            HmmModel, hmm_data, particle_counts=[PARTICLES],
            methods=[
                "pf",
                f"pf@scalar@processes:{WORKERS}",
                f"pf@scalar@processes-persistent:{WORKERS}",
            ],
            runs=1,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _RECORDS.extend(
        sweep_records(result, "hmm", extra={"benchmark": "persistent_speedup"})
    )
    emit(format_sweep(
        result,
        f"Fig. 2 HMM step latency (ms) at {PARTICLES} particles: "
        f"pooled vs persistent {WORKERS}-worker process executors "
        f"({os.cpu_count()} core(s) visible)",
    ))
    pooled = result.get(f"pf@scalar@processes:{WORKERS}", PARTICLES).median
    persistent = result.get(
        f"pf@scalar@processes-persistent:{WORKERS}", PARTICLES
    ).median
    serial = result.get("pf", PARTICLES).median
    emit(f"pf serial                     : {serial:.2f} ms/step")
    emit(f"pf processes:{WORKERS}            : {pooled:.2f} ms/step")
    emit(f"pf processes-persistent:{WORKERS} : {persistent:.2f} ms/step")
    emit(f"persistent vs pooled: {pooled / persistent:.2f}x less per-step time")

    if MULTICORE:
        # acceptance: resident shards beat per-step payload pickling at
        # the pf-at-10k crossover. One re-measure absorbs transient
        # load on shared runners; a real regression fails both.
        if persistent >= pooled:
            retry = latency_sweep(
                HmmModel, hmm_data, particle_counts=[PARTICLES],
                methods=[
                    f"pf@scalar@processes:{WORKERS}",
                    f"pf@scalar@processes-persistent:{WORKERS}",
                ],
                runs=1,
            )
            pooled = retry.get(f"pf@scalar@processes:{WORKERS}", PARTICLES).median
            persistent = retry.get(
                f"pf@scalar@processes-persistent:{WORKERS}", PARTICLES
            ).median
            emit(f"after re-measure: {pooled / persistent:.2f}x")
        assert persistent < pooled
    else:
        emit(
            "single-core machine: the persistent-vs-pooled acceptance bar "
            "is asserted on multi-core runners (CI)."
        )


def _bytes_per_step(hmm_data, shm_bytes):
    """Pickled/shm payload bytes per steady step for one ring size.

    Runs a fresh persistent pool with its own metrics registry, skips
    the shard-loading warm-up step (loading legitimately ships the
    payloads once), and averages the transport byte counters over the
    remaining stream.
    """
    registry = MetricsRegistry()
    previous = set_default_registry(registry)
    # the pickle path only accounts payload bytes when telemetry is on;
    # enable it for both variants so the comparison is symmetric.
    enable_telemetry(registry)
    executor = PersistentProcessExecutor(workers=WORKERS, shm_bytes=shm_bytes)
    try:
        engine = infer(
            HmmModel(), n_particles=PARTICLES, method="pf",
            backend="vectorized", seed=7, executor=executor,
        )
        state = engine.init()
        _, state = engine.step(state, hmm_data.observations[0])  # warm-up
        registry.reset()
        steps = hmm_data.observations[1:]
        for y in steps:
            _, state = engine.step(state, y)
        counters = registry.snapshot()["counters"]

        def total(name):
            return sum(
                value for key, value in counters.items()
                if key.startswith(name)
            )

        pickled = total("repro_transport_pickled_bytes_total") / len(steps)
        shm = total("repro_transport_shm_bytes_total") / len(steps)
        state.release()
        return pickled, shm
    finally:
        disable_telemetry()
        set_default_registry(previous)
        executor.close()


def test_transport_pickled_bytes_per_step(hmm_data):
    """The zero-copy acceptance, measured: with the command and reply
    rings up, per-step pickled payload bytes collapse versus the
    pickle-only transport (``shm_bytes=0``). Both figures land in the
    perf-trajectory JSON so the regression gate can watch payload bytes
    creep back onto the pickle path."""
    variants = [
        ("ring", PersistentProcessExecutor.DEFAULT_SHM_BYTES),
        ("pickle-only", 0),
    ]
    measured = {}
    for label, shm_bytes in variants:
        pickled, shm = _bytes_per_step(hmm_data, shm_bytes)
        measured[label] = (pickled, shm)
        spec = f"pf@vectorized@processes-persistent:{WORKERS}"
        if shm_bytes == 0:
            spec += "@shm=0"
        _RECORDS.append({
            "benchmark": "persistent_transport",
            "model": "hmm",
            "spec": spec,
            "particles": PARTICLES,
            "metric": "pickled_bytes_per_step",
            "median": pickled,
        })

    emit(
        f"transport payload bytes/step, pf@vectorized at {PARTICLES} "
        f"particles, {WORKERS} workers:"
    )
    emit(f"{'variant':12}  {'pickled B/step':>14}  {'shm B/step':>12}")
    for label, (pickled, shm) in measured.items():
        emit(f"{label:12}  {pickled:14.0f}  {shm:12.0f}")

    ring_pickled, ring_shm = measured["ring"]
    pickle_pickled, _ = measured["pickle-only"]
    assert pickle_pickled > 0, "pickle-only variant must account its payloads"
    assert ring_shm > 0, "ring variant must move payloads over shared memory"
    # the bar: the rings carry the payload traffic; at most a trickle
    # (tiny sub-threshold arrays) may remain inline.
    assert ring_pickled < 0.05 * pickle_pickled, (
        f"ring transport still pickles {ring_pickled:.0f} B/step "
        f"vs {pickle_pickled:.0f} B/step pickle-only"
    )


def test_write_bench_json(bench_config):
    """Persist the perf trajectory collected by the tests above."""
    if not _RECORDS:
        pytest.skip("no sweep ran in this session (tests were deselected)")
    path = os.environ.get(
        "REPRO_PERSISTENT_BENCH_JSON", "bench-persistent-transport.json"
    )
    write_bench_json(
        path,
        _RECORDS,
        meta={
            "benchmark": "persistent_speedup",
            "sweep_steps": bench_config["sweep_steps"],
            "particles": PARTICLES,
            "workers": WORKERS,
        },
    )
    emit(f"wrote {len(_RECORDS)} perf-trajectory records to {path}")
