"""Persistent executors: per-step latency on the Fig. 2 HMM at 10k particles.

ISSUE 3 acceptance: `ProcessShardExecutor` only breaks even near 10k
particles because every step pickles the whole shard payload both ways
(see EXPERIMENTS.md). `PersistentProcessExecutor` keeps the shards
resident in its workers — per-step traffic is the step input out and
per-shard weight/output vectors back, plus the few particles that
migrate at the resample barrier — so at 10,000 particles and 4 workers
`pf@scalar@processes-persistent:4` must beat `pf@scalar@processes:4`
per step. The bar is asserted whenever the machine has multiple cores;
a single-core run is still recorded (it isolates the shipping overhead
the persistent mode removes).

Correctness is asserted unconditionally: the persistent executor must
produce the bit-identical posterior to `serial` at a fixed seed — the
shard partition, not the residency, owns the randomness.
"""

import os

import pytest

from repro.bench import HmmModel, format_sweep, kalman_data, latency_sweep
from repro.inference import infer

from conftest import emit

PARTICLES = 10_000
WORKERS = 4
MULTICORE = (os.cpu_count() or 1) >= 2


@pytest.fixture(scope="module")
def hmm_data(bench_config):
    return kalman_data(
        max(6, bench_config["sweep_steps"] // 5), seed=42,
        prior_var=1.0, motion_var=1.0, obs_var=1.0,
    )


def test_persistent_bit_identical(hmm_data):
    """Resident shards reproduce the serial posterior exactly."""
    def run(executor, method):
        engine = infer(
            HmmModel(), n_particles=64, method=method, seed=5, executor=executor
        )
        state = engine.init()
        means = []
        for y in hmm_data.observations:
            dist, state = engine.step(state, y)
            means.append(dist.mean())
        return means

    for method in ("pf", "bds"):
        serial = run("serial", method)
        assert run(f"processes-persistent:{WORKERS}", method) == serial
        assert run("processes-persistent:2", method) == serial


def test_persistent_speedup(benchmark, hmm_data, bench_config):
    def sweep():
        return latency_sweep(
            HmmModel, hmm_data, particle_counts=[PARTICLES],
            methods=[
                "pf",
                f"pf@scalar@processes:{WORKERS}",
                f"pf@scalar@processes-persistent:{WORKERS}",
            ],
            runs=1,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(
        result,
        f"Fig. 2 HMM step latency (ms) at {PARTICLES} particles: "
        f"pooled vs persistent {WORKERS}-worker process executors "
        f"({os.cpu_count()} core(s) visible)",
    ))
    pooled = result.get(f"pf@scalar@processes:{WORKERS}", PARTICLES).median
    persistent = result.get(
        f"pf@scalar@processes-persistent:{WORKERS}", PARTICLES
    ).median
    serial = result.get("pf", PARTICLES).median
    emit(f"pf serial                     : {serial:.2f} ms/step")
    emit(f"pf processes:{WORKERS}            : {pooled:.2f} ms/step")
    emit(f"pf processes-persistent:{WORKERS} : {persistent:.2f} ms/step")
    emit(f"persistent vs pooled: {pooled / persistent:.2f}x less per-step time")

    if MULTICORE:
        # acceptance: resident shards beat per-step payload pickling at
        # the pf-at-10k crossover. One re-measure absorbs transient
        # load on shared runners; a real regression fails both.
        if persistent >= pooled:
            retry = latency_sweep(
                HmmModel, hmm_data, particle_counts=[PARTICLES],
                methods=[
                    f"pf@scalar@processes:{WORKERS}",
                    f"pf@scalar@processes-persistent:{WORKERS}",
                ],
                runs=1,
            )
            pooled = retry.get(f"pf@scalar@processes:{WORKERS}", PARTICLES).median
            persistent = retry.get(
                f"pf@scalar@processes-persistent:{WORKERS}", PARTICLES
            ).median
            emit(f"after re-measure: {pooled / persistent:.2f}x")
        assert persistent < pooled
    else:
        emit(
            "single-core machine: the persistent-vs-pooled acceptance bar "
            "is asserted on multi-core runners (CI)."
        )
