"""Sharded executors: per-step latency on the Fig. 2 HMM at 10k particles.

The acceptance bar for the exec layer: at 10,000 particles and 4 worker
processes, the sharded scalar engine must beat the serial executor by
>1.5x per step — asserted whenever the machine actually has multiple
cores (on a single-core container the same work cannot run faster in
parallel; the run is still recorded, with the overhead decomposition,
in EXPERIMENTS.md).

Two scalar engines are swept:

* ``bds`` — bounded delayed sampling, the paper's Section-5.2 engine:
  heavy per-particle compute (a fresh conjugate graph per particle per
  step) with concrete end-of-step state, so shard shipping is cheap
  relative to work — the configuration where process sharding shines.
* ``pf`` — the bootstrap particle filter: light per-particle compute,
  so at 10k particles serialization eats most of the parallel gain;
  included to show where the overhead crossover sits.

Correctness is asserted unconditionally: every executor must produce
the bit-identical posterior at a fixed seed (the shard partition, not
the schedule, owns the randomness).
"""

import os

import pytest

from repro.bench import HmmModel, format_sweep, kalman_data, latency_sweep
from repro.inference import infer

from conftest import emit

PARTICLES = 10_000
WORKERS = 4
MULTICORE = (os.cpu_count() or 1) >= 2


@pytest.fixture(scope="module")
def hmm_data(bench_config):
    return kalman_data(
        max(6, bench_config["sweep_steps"] // 5), seed=42,
        prior_var=1.0, motion_var=1.0, obs_var=1.0,
    )


def test_executors_bit_identical(hmm_data):
    """Any worker count reproduces the serial posterior exactly."""
    def run(executor, method):
        engine = infer(
            HmmModel(), n_particles=64, method=method, seed=5, executor=executor
        )
        state = engine.init()
        means = []
        for y in hmm_data.observations:
            dist, state = engine.step(state, y)
            means.append(dist.mean())
        return means

    for method in ("pf", "bds"):
        serial = run("serial", method)
        assert run(f"threads:{WORKERS}", method) == serial
        assert run(f"processes:{WORKERS}", method) == serial


def test_sharded_speedup(benchmark, hmm_data, bench_config):
    def sweep():
        return latency_sweep(
            HmmModel, hmm_data, particle_counts=[PARTICLES],
            methods=[
                "bds",
                f"bds@scalar@processes:{WORKERS}",
                "pf",
                f"pf@scalar@threads:{WORKERS}",
                f"pf@scalar@processes:{WORKERS}",
            ],
            runs=1,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(
        result,
        f"Fig. 2 HMM step latency (ms) at {PARTICLES} particles: "
        f"serial vs {WORKERS}-worker executors "
        f"({os.cpu_count()} core(s) visible)",
    ))
    bds_speedup = (
        result.get("bds", PARTICLES).median
        / result.get(f"bds@scalar@processes:{WORKERS}", PARTICLES).median
    )
    pf_speedup = (
        result.get("pf", PARTICLES).median
        / result.get(f"pf@scalar@processes:{WORKERS}", PARTICLES).median
    )
    emit(f"bds speedup at {WORKERS} process workers: {bds_speedup:.2f}x")
    emit(f"pf  speedup at {WORKERS} process workers: {pf_speedup:.2f}x")

    if MULTICORE:
        # acceptance: >1.5x per step at 4 workers / 10k particles. One
        # re-measure absorbs transient load on shared runners; a real
        # regression fails both attempts.
        if bds_speedup <= 1.5:
            retry = latency_sweep(
                HmmModel, hmm_data, particle_counts=[PARTICLES],
                methods=["bds", f"bds@scalar@processes:{WORKERS}"], runs=1,
            )
            bds_speedup = max(
                bds_speedup,
                retry.get("bds", PARTICLES).median
                / retry.get(f"bds@scalar@processes:{WORKERS}", PARTICLES).median,
            )
            emit(f"bds speedup after re-measure: {bds_speedup:.2f}x")
        assert bds_speedup > 1.5
    else:
        emit(
            "single-core machine: parallel speedup is not observable here; "
            "the >1.5x acceptance bar is asserted on multi-core runners (CI)."
        )
