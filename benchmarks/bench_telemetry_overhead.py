"""Telemetry overhead: disabled tracing must cost (close to) nothing.

The observability contract of :mod:`repro.obs` is that *disabled*
step-phase tracing is a single attribute check per instrumentation
site — no allocation, no clock reads. This benchmark makes that
contract mechanical:

* the **disabled** sweep re-measures a subset of the committed
  ``BENCH_PR5.json`` cells (kalman / robot x ``sds@vectorized`` /
  ``bds@vectorized`` x 100 / 1000 particles) with telemetry off and
  writes ``bench-telemetry-off.json`` in the same perf-trajectory
  format; CI then runs ``check_perf_regression.py`` against the
  committed baseline with ``--threshold 0.02`` — the disabled-telemetry
  step latency may not regress more than 2% (drift-corrected) against
  the pre-telemetry build.
* the **enabled** run measures the same cells at 1000 particles with
  tracing on and reports the overhead factor (the numbers recorded in
  ``EXPERIMENTS.md``), with a loose in-test bound so a pathological
  instrumentation cost fails here and not only in production.
* the **snapshot** test drives an enabled ``processes-persistent:2``
  run and writes ``metrics-snapshot.json`` — the CI artifact proving
  worker-resident shards ship their spans back (``worker_step`` phase
  timings from the worker processes appear in the coordinator's
  registry).

Override output paths with ``REPRO_TELEMETRY_BENCH_JSON`` and
``REPRO_METRICS_JSON``.
"""

import os

import pytest

from repro.bench import (
    KalmanModel,
    RobotModel,
    format_sweep,
    kalman_data,
    latency_sweep,
    robot_data,
    sweep_records,
    write_bench_json,
)
from repro.inference.infer import infer
from repro.obs import (
    MetricsRegistry,
    enable_telemetry,
    disable_telemetry,
    telemetry,
)
from repro.obs.exporters import write_metrics_json
from repro.obs.spans import PHASE_HISTOGRAM, TELEMETRY

from conftest import emit

COUNTS = [100, 1000]
SPECS = ["sds@vectorized", "bds@vectorized"]
#: ceiling on the *enabled*-tracing overhead at 1000 particles. The
#: measured factor is a few percent (EXPERIMENTS.md); the bar leaves
#: room for noisy shared runners while still catching a pathological
#: per-span cost.
MAX_ENABLED_OVERHEAD = 0.50

_RECORDS = []


@pytest.fixture(scope="module")
def chain_data(bench_config):
    return kalman_data(
        bench_config["sweep_steps"], seed=42,
        prior_var=1.0, motion_var=1.0, obs_var=1.0,
    )


@pytest.fixture(scope="module")
def tracker_data(bench_config):
    return robot_data(bench_config["sweep_steps"], seed=42)


def _sweep(model_factory, data, model_name, runs=3):
    result = latency_sweep(
        model_factory, data, particle_counts=COUNTS, methods=SPECS, runs=runs
    )
    _RECORDS.extend(
        sweep_records(result, model_name, extra={"benchmark": "telemetry_overhead"})
    )
    return result


def test_disabled_sweep_kalman(benchmark, chain_data):
    assert not TELEMETRY.enabled
    result = benchmark.pedantic(
        lambda: _sweep(KalmanModel, chain_data, "kalman"), rounds=1, iterations=1
    )
    emit(format_sweep(result, "Kalman step latency (ms), telemetry disabled"))


def test_disabled_sweep_robot(benchmark, tracker_data):
    assert not TELEMETRY.enabled
    result = benchmark.pedantic(
        lambda: _sweep(RobotModel, tracker_data, "robot"), rounds=1, iterations=1
    )
    emit(format_sweep(result, "Robot step latency (ms), telemetry disabled"))


def test_write_disabled_bench_json(bench_config):
    """Persist the disabled-telemetry cells for the 2% CI overhead gate."""
    if not _RECORDS:
        pytest.skip("no sweep ran in this session (tests were deselected)")
    path = os.environ.get("REPRO_TELEMETRY_BENCH_JSON", "bench-telemetry-off.json")
    write_bench_json(
        path,
        _RECORDS,
        meta={
            "benchmark": "telemetry_overhead",
            "telemetry": "disabled",
            "sweep_steps": bench_config["sweep_steps"],
            "particle_counts": COUNTS,
        },
    )
    emit(f"wrote {len(_RECORDS)} disabled-telemetry records to {path}")


def test_enabled_overhead(benchmark, chain_data):
    """Enabled tracing stays cheap: measured factor goes to EXPERIMENTS.md."""

    def measure(enabled: bool):
        if enabled:
            enable_telemetry(MetricsRegistry())
        else:
            disable_telemetry()
        try:
            return latency_sweep(
                KalmanModel, chain_data, particle_counts=[1000],
                methods=SPECS, runs=3,
            )
        finally:
            disable_telemetry()

    def both():
        return measure(False), measure(True)

    off, on = benchmark.pedantic(both, rounds=1, iterations=1)
    for spec in SPECS:
        factor = on.get(spec, 1000).median / off.get(spec, 1000).median
        emit(
            f"{spec} @1000 particles: {off.get(spec, 1000).median:.3f} ms off, "
            f"{on.get(spec, 1000).median:.3f} ms on -> {(factor - 1) * 100:+.1f}%"
        )
        assert factor < 1.0 + MAX_ENABLED_OVERHEAD


def test_metrics_snapshot_artifact(chain_data):
    """An enabled worker-resident run yields a snapshot with per-phase
    spans shipped back from the persistent workers."""
    path = os.environ.get("REPRO_METRICS_JSON", "metrics-snapshot.json")
    registry = MetricsRegistry()
    with telemetry(registry):
        engine = infer(
            KalmanModel(), n_particles=1000, method="sds",
            backend="vectorized", seed=0, executor="processes-persistent:2",
        )
        state = engine.init()
        for obs in chain_data.observations:
            _, state = engine.step(state, obs)
        if hasattr(state, "release"):
            state.release()
    phases = {
        metric.labels[0][1]
        for metric in registry.metrics()
        if metric.name == PHASE_HISTOGRAM
    }
    assert "worker_step" in phases, phases
    assert "step" in phases
    write_metrics_json(
        path, registry,
        meta={"benchmark": "telemetry_overhead", "particles": 1000,
              "executor": "processes-persistent:2"},
    )
    emit(f"phases in snapshot: {sorted(phases)} -> {path}")
