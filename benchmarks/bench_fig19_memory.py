"""Fig. 19 (and Fig. 4): ideal memory per step, PF / BDS / SDS / DS.

Reproduced shape: PF, BDS, and SDS use constant memory over time; DS
memory grows linearly on Kalman and Outlier and stays constant on Coin.
Memory is the live abstract words reachable from the particle states
(the paper forces a GC and counts live heap words; see DESIGN.md for
the substitution).
"""

import numpy as np
import pytest

from repro.bench import (
    CoinModel,
    KalmanModel,
    OutlierModel,
    coin_data,
    format_profile,
    kalman_data,
    memory_profile,
    outlier_data,
    summarize_profile,
)

from conftest import emit


def test_fig4_and_fig19_kalman_memory(benchmark, bench_config):
    data = kalman_data(bench_config["profile_steps"], seed=42)

    def profile():
        return memory_profile(
            KalmanModel, data, n_particles=bench_config["profile_particles"],
            methods=["pf", "bds", "sds", "ds"],
        )

    result = benchmark.pedantic(profile, rounds=1, iterations=1)
    emit(format_profile(result, "Fig. 4 / Fig. 19 — Kalman ideal memory (words)"))
    summary = summarize_profile(result)

    # Fig. 4's headline: DS grows linearly, SDS constant
    steps = bench_config["profile_steps"]
    assert summary["ds"]["last"] > 0.5 * steps  # linear growth
    for method in ("pf", "bds", "sds"):
        assert summary[method]["growth"] < 1.05
    # SDS ends far below DS
    assert summary["ds"]["last"] > 5 * summary["sds"]["last"]


def test_fig19_coin_memory(benchmark, bench_config):
    data = coin_data(bench_config["profile_steps"], seed=42)

    def profile():
        return memory_profile(
            CoinModel, data, n_particles=bench_config["profile_particles"],
            methods=["pf", "bds", "sds", "ds"],
        )

    result = benchmark.pedantic(profile, rounds=1, iterations=1)
    emit(format_profile(result, "Fig. 19 — Coin ideal memory (words)"))
    summary = summarize_profile(result)
    # constant for every method, including DS (graph of constant size)
    for method in ("pf", "bds", "sds", "ds"):
        assert summary[method]["growth"] < 1.05


def test_fig19_outlier_memory(benchmark, bench_config):
    data = outlier_data(bench_config["profile_steps"], seed=42)

    def profile():
        return memory_profile(
            OutlierModel, data, n_particles=bench_config["profile_particles"],
            methods=["pf", "bds", "sds", "ds"],
        )

    result = benchmark.pedantic(profile, rounds=1, iterations=1)
    emit(format_profile(result, "Fig. 19 — Outlier ideal memory (words)"))
    summary = summarize_profile(result)
    assert summary["ds"]["growth"] > 2.0
    for method in ("pf", "bds", "sds"):
        assert summary[method]["growth"] < 1.6  # fluctuates, no trend
