#!/usr/bin/env python
"""Fail when a fresh benchmark JSON regressed against a committed baseline.

Usage::

    PYTHONPATH=../src python check_perf_regression.py FRESH BASELINE \
        [--threshold 0.30]

Compares the median step latency of every ``(model, spec, particles)``
cell present in both documents (see :mod:`repro.bench.regression`) and
exits non-zero when any cell is more than ``threshold`` slower — the
mechanical perf-regression gate CI runs after the benchmark sweeps.
New specs (no baseline entry yet) pass; they start being gated once
their document is committed as the next baseline.

By default the comparison is corrected for machine drift (the median
latency ratio across all shared cells): the fresh run and the committed
baseline usually come from different hosts or differently-loaded
runners, and a uniformly slower machine is not a code regression. Pass
``--no-normalize`` for a raw absolute comparison between same-host runs.
"""

import argparse
import sys

from repro.bench.regression import (
    compare_cells,
    format_regressions,
    load_bench_cells,
    machine_drift,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="benchmark JSON produced by this run")
    parser.add_argument("baseline", help="committed baseline benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="fractional slowdown tolerated per cell (default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--no-normalize",
        action="store_true",
        help="compare raw medians without machine-drift correction",
    )
    parser.add_argument(
        "--metric",
        default="latency",
        help=(
            "metric prefix selecting which records are gated "
            "(default 'latency'; 'pickled_bytes' gates the transport "
            "byte counters — pair it with --no-normalize, bytes are "
            "machine-independent)"
        ),
    )
    args = parser.parse_args(argv)
    fresh = load_bench_cells(args.fresh, metric=args.metric)
    baseline = load_bench_cells(args.baseline, metric=args.metric)
    shared = set(fresh) & set(baseline)
    normalize = not args.no_normalize
    drift = machine_drift(
        {k: c.median for k, c in fresh.items()},
        {k: c.median for k, c in baseline.items()},
    ) if normalize else 1.0
    print(
        f"comparing {len(shared)} shared {args.metric} cell(s) "
        f"({len(fresh)} fresh, {len(baseline)} baseline); "
        f"machine drift {drift:.2f}x"
    )
    regressions = compare_cells(
        fresh, baseline, threshold=args.threshold, normalize=normalize
    )
    print(format_regressions(regressions, args.threshold))
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
