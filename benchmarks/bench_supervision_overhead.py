"""Supervision overhead: disabled fault hooks must cost (close to) nothing.

ISSUE 9's robustness machinery — per-command deadlines, restart
budgets, fault-injection hooks in the worker loop and the transport —
lives on the persistent executor's hot path. The contract mirrors the
telemetry switch: with no fault plan installed and no deadline
configured, the supervised build must step at the pre-supervision
build's latency.

* the **disabled** sweep re-measures the committed ``BENCH_PR7.json``
  latency cells (``pf``, ``pf@scalar@processes:4``,
  ``pf@scalar@processes-persistent:4`` on the Fig. 2 HMM at 10k
  particles) with faults off and deadlines unset, and writes
  ``bench-supervision.json``; CI gates it against the committed
  baseline with ``check_perf_regression.py --threshold 0.02`` — the
  supervised build may not regress more than 2% (drift-corrected)
  against the pre-supervision build.
* the **armed** run measures the same persistent cell with a 30 s step
  deadline configured (supervision active, never firing) and reports
  the overhead factor for EXPERIMENTS.md, with a loose in-test bound so
  a pathological deadline-bookkeeping cost fails here, not in
  production.

Override the output path with ``REPRO_SUPERVISION_BENCH_JSON``.
"""

import os

import pytest

from repro.bench import (
    HmmModel,
    format_sweep,
    kalman_data,
    latency_sweep,
    sweep_records,
    write_bench_json,
)
from repro.exec.executor import shutdown_executors
from repro.faults.plan import FAULTS

from conftest import emit

PARTICLES = 10_000
WORKERS = 4
MULTICORE = (os.cpu_count() or 1) >= 2
SPECS = [
    "pf",
    f"pf@scalar@processes:{WORKERS}",
    f"pf@scalar@processes-persistent:{WORKERS}",
]
#: ceiling on the armed-deadline overhead factor for the persistent
#: cell. The measured factor is ~1.0 (the deadline adds one monotonic()
#: read and a dict insert per command); the bar leaves room for noisy
#: shared runners while catching a pathological cost.
MAX_ARMED_OVERHEAD = 0.50

_RECORDS = []


@pytest.fixture(scope="module")
def hmm_data(bench_config):
    return kalman_data(
        max(6, bench_config["sweep_steps"] // 5), seed=42,
        prior_var=1.0, motion_var=1.0, obs_var=1.0,
    )


def test_disabled_supervision_sweep(benchmark, hmm_data):
    """The gated cells: supervision compiled in, switched off."""
    assert not FAULTS.enabled, (
        "the overhead gate measures the disabled state; unset "
        "REPRO_FAULT_PLAN for this benchmark"
    )
    assert not os.environ.get("REPRO_STEP_TIMEOUT_S", "").strip(), (
        "the overhead gate measures the no-deadline state; unset "
        "REPRO_STEP_TIMEOUT_S for this benchmark"
    )

    def sweep():
        return latency_sweep(
            HmmModel, hmm_data, particle_counts=[PARTICLES],
            methods=SPECS, runs=1,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _RECORDS.extend(
        sweep_records(result, "hmm", extra={"benchmark": "persistent_speedup"})
    )
    emit(format_sweep(
        result,
        f"Fig. 2 HMM step latency (ms) at {PARTICLES} particles, "
        "supervision disabled (the 2% overhead gate cells)",
    ))


def test_armed_deadline_overhead(hmm_data):
    """A configured-but-never-firing deadline stays in the noise."""
    spec = f"pf@scalar@processes-persistent:{WORKERS}"

    def measure(timeout):
        # Spec-cached executors are built once: recycle the cache so
        # the env knob is re-read by a fresh pool.
        shutdown_executors()
        if timeout is None:
            os.environ.pop("REPRO_STEP_TIMEOUT_S", None)
        else:
            os.environ["REPRO_STEP_TIMEOUT_S"] = str(timeout)
        try:
            result = latency_sweep(
                HmmModel, hmm_data, particle_counts=[PARTICLES],
                methods=[spec], runs=1,
            )
            return result.get(spec, PARTICLES).median
        finally:
            os.environ.pop("REPRO_STEP_TIMEOUT_S", None)
            shutdown_executors()

    off = measure(None)
    armed = measure(30.0)
    factor = armed / off
    _RECORDS.append({
        "benchmark": "supervision_overhead",
        "model": "hmm",
        "spec": f"{spec}@deadline=30",
        "particles": PARTICLES,
        "metric": "latency_ms",
        "median_ms": armed,
    })
    emit(
        f"persistent step latency at {PARTICLES} particles: "
        f"{off:.2f} ms/step deadline off, {armed:.2f} ms/step armed "
        f"({factor:.3f}x)"
    )
    if MULTICORE:
        if factor > 1 + MAX_ARMED_OVERHEAD:
            # one re-measure absorbs transient load on shared runners
            armed = measure(30.0)
            factor = armed / off
            emit(f"after re-measure: {factor:.3f}x")
        assert factor <= 1 + MAX_ARMED_OVERHEAD, (
            f"armed step deadline costs {factor:.2f}x; the supervision "
            "wait loop should be within noise of the blocking wait"
        )
    else:
        emit("single-core machine: the armed-overhead bar is asserted in CI.")


def test_write_bench_json(bench_config):
    """Persist the supervision cells for the 2% CI overhead gate."""
    if not _RECORDS:
        pytest.skip("no sweep ran in this session (tests were deselected)")
    path = os.environ.get(
        "REPRO_SUPERVISION_BENCH_JSON", "bench-supervision.json"
    )
    write_bench_json(
        path,
        _RECORDS,
        meta={
            "benchmark": "supervision_overhead",
            "supervision": "disabled",
            "sweep_steps": bench_config["sweep_steps"],
            "particles": PARTICLES,
            "workers": WORKERS,
        },
    )
    emit(f"wrote {len(_RECORDS)} supervision-overhead records to {path}")
