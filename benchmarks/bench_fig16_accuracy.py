"""Fig. 16: accuracy vs particle count on Kalman, Coin, and Outlier.

Reproduced shapes (Section 6.2):

* Kalman — SDS exact and flat; BDS reaches SDS accuracy with ~10
  particles; PF needs ~12 (median) / ~35 (90th percentile);
* Coin — SDS exact; BDS degenerates to PF after the first step, both
  improve with particles but stay above SDS;
* Outlier — unreliable at low particle counts (wide quantile spread),
  methods comparable at ~100 particles with PF's tails the worst.
"""

import numpy as np
import pytest

from repro.bench import (
    CoinModel,
    KalmanModel,
    OutlierModel,
    accuracy_sweep,
    coin_data,
    format_sweep,
    kalman_data,
    outlier_data,
    particles_to_match,
)

from conftest import emit

METHODS = ["pf", "bds", "sds"]


@pytest.fixture(scope="module")
def kalman_sweep(bench_config):
    data = kalman_data(bench_config["sweep_steps"], seed=42)
    return accuracy_sweep(
        KalmanModel, data, particle_counts=bench_config["particle_counts"],
        methods=METHODS, runs=bench_config["sweep_runs"],
    )


def test_fig16_kalman_accuracy(benchmark, kalman_sweep):
    result = benchmark.pedantic(lambda: kalman_sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "Fig. 16 — Kalman accuracy (MSE) vs particles"))
    # SDS flat and best
    assert result.get("sds", 1).median == pytest.approx(
        result.get("sds", 100).median, rel=1e-9
    )
    # ordering at low particle counts: sds <= bds <= pf
    assert result.get("sds", 2).median <= result.get("bds", 2).median * 1.05
    assert result.get("bds", 2).median <= result.get("pf", 2).median * 1.05


def test_fig16_kalman_particles_to_match(benchmark, kalman_sweep):
    """Section 6.2: PF needs ~12 particles (median) to match SDS, ~35 at
    the 90% quantile; BDS needs ~10 at the 90% quantile."""

    def compute():
        return {
            "pf_median": particles_to_match(kalman_sweep, "sds", "pf", "median"),
            "pf_q90": particles_to_match(kalman_sweep, "sds", "pf", "q90"),
            "bds_q90": particles_to_match(kalman_sweep, "sds", "bds", "q90"),
        }

    needed = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "Particles needed to match SDS accuracy (slack 1.5x):\n"
        f"  PF  (median): {needed['pf_median']}  (paper: ~12)\n"
        f"  PF  (q90):    {needed['pf_q90']}  (paper: ~35)\n"
        f"  BDS (q90):    {needed['bds_q90']}  (paper: ~10)"
    )
    assert 2 <= needed["pf_median"] <= 50
    assert needed["bds_q90"] <= needed["pf_q90"]


def test_fig16_coin_accuracy(benchmark, bench_config):
    data = coin_data(bench_config["sweep_steps"], seed=42)

    def sweep():
        return accuracy_sweep(
            CoinModel, data, particle_counts=[1, 5, 20, 100],
            methods=METHODS, runs=bench_config["sweep_runs"],
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "Fig. 16 — Coin accuracy (MSE) vs particles"))
    # SDS exact and flat
    assert result.get("sds", 1).median == pytest.approx(
        result.get("sds", 100).median, rel=1e-9
    )
    # PF and BDS improve with particles but do not beat SDS
    assert result.get("pf", 100).median < result.get("pf", 1).median
    assert result.get("sds", 1).median <= result.get("pf", 100).median * 1.05
    assert result.get("sds", 1).median <= result.get("bds", 100).median * 1.05


def test_fig16_outlier_accuracy(benchmark, bench_config):
    data = outlier_data(bench_config["sweep_steps"], seed=42)

    def sweep():
        return accuracy_sweep(
            OutlierModel, data, particle_counts=[5, 20, 100],
            methods=METHODS, runs=bench_config["sweep_runs"],
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "Fig. 16 — Outlier accuracy (MSE) vs particles"))
    # unreliable at low counts: quantile spread shrinks with particles
    for method in METHODS:
        low = result.get(method, 5)
        high = result.get(method, 100)
        assert high.median <= low.median * 1.5 + 1.0
    # at 100 particles the three methods are comparable (within 3x)
    medians = [result.get(m, 100).median for m in METHODS]
    assert max(medians) < 3.0 * min(medians) + 1.0
