"""Fig. 18: per-step latency along a long run, PF / BDS / SDS / DS.

Reproduced shape: PF, BDS, and SDS have (nearly) constant step latency
over time; the original DS gets linearly slower on Kalman and Outlier
(its live graph grows, so cloning particles at each resampling costs
more every step) and stays flat on Coin (the DS graph is constant
there — one sample at the first step, then only observations).
"""

import numpy as np
import pytest

from repro.bench import (
    CoinModel,
    KalmanModel,
    OutlierModel,
    coin_data,
    format_profile,
    kalman_data,
    outlier_data,
    step_latency_profile,
    summarize_profile,
)

from conftest import emit

GROWING = {"kalman": (KalmanModel, kalman_data), "outlier": (OutlierModel, outlier_data)}


@pytest.mark.parametrize("name", sorted(GROWING))
def test_fig18_ds_latency_grows(benchmark, name, bench_config):
    model_cls, datagen = GROWING[name]
    data = datagen(bench_config["profile_steps"], seed=42)

    def profile():
        return step_latency_profile(
            model_cls, data, n_particles=bench_config["profile_particles"],
            methods=["pf", "bds", "sds", "ds"],
        )

    result = benchmark.pedantic(profile, rounds=1, iterations=1)
    emit(format_profile(result, f"Fig. 18 — {name} step latency (ms) over time"))
    summary = summarize_profile(result)
    emit(
        "latency growth (tail/head): "
        + "  ".join(f"{m}={summary[m]['growth']:.2f}" for m in result.methods)
    )
    # DS degrades over time; the streaming engines stay within noise
    assert summary["ds"]["growth"] > 2.0
    for method in ("pf", "bds", "sds"):
        assert summary[method]["growth"] < 2.0


@pytest.mark.parametrize("name", sorted(GROWING))
def test_fig18_vectorized_latency_flat(benchmark, name, bench_config):
    """The vectorized engines inherit the streaming engines' flat profile.

    Batch state is re-gathered (not accumulated) at every resampling, so
    per-step latency stays constant over arbitrarily long runs — the
    SoA analogue of the bounded-memory property of PF/BDS/SDS.
    """
    model_cls, datagen = GROWING[name]
    data = datagen(bench_config["profile_steps"], seed=42)
    methods = ["pf@vectorized"]
    if name == "kalman":
        methods.append("sds@vectorized")

    def profile():
        return step_latency_profile(
            model_cls, data, n_particles=bench_config["profile_particles"],
            methods=methods,
        )

    result = benchmark.pedantic(profile, rounds=1, iterations=1)
    emit(format_profile(result, f"Fig. 18+ — {name} vectorized step latency (ms)"))
    summary = summarize_profile(result)
    for method in methods:
        assert summary[method]["growth"] < 2.0


def test_fig18_coin_ds_latency_flat(benchmark, bench_config):
    data = coin_data(bench_config["profile_steps"], seed=42)

    def profile():
        return step_latency_profile(
            CoinModel, data, n_particles=bench_config["profile_particles"],
            methods=["pf", "bds", "sds", "ds"],
        )

    result = benchmark.pedantic(profile, rounds=1, iterations=1)
    emit(format_profile(result, "Fig. 18 — coin step latency (ms) over time"))
    summary = summarize_profile(result)
    # the DS graph does not grow on the Coin benchmark
    assert summary["ds"]["growth"] < 2.0
