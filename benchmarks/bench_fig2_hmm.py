"""Fig. 2: PF / BDS / SDS on the Section-2 HMM.

(a) inference accuracy (MSE, log scale) as a function of particles;
(b) runtime performance (step latency) as a function of particles.

Reproduced shape: SDS accuracy is flat (exact posterior per particle);
BDS needs ~an order of magnitude fewer particles than PF; latency grows
linearly in particles with PF < BDS < SDS.
"""

import numpy as np
import pytest

from repro.bench import (
    HmmModel,
    accuracy_sweep,
    format_sweep,
    kalman_data,
    latency_sweep,
)

from conftest import emit


@pytest.fixture(scope="module")
def hmm_data(bench_config):
    # the Section-2 HMM has unit speed/noise; data generated accordingly
    return kalman_data(
        bench_config["sweep_steps"], seed=42,
        prior_var=1.0, motion_var=1.0, obs_var=1.0,
    )


def test_fig2a_hmm_accuracy(benchmark, hmm_data, bench_config):
    counts = [1, 5, 10, 35, 100]

    def sweep():
        return accuracy_sweep(
            HmmModel, hmm_data, particle_counts=counts,
            methods=["pf", "bds", "sds"], runs=bench_config["sweep_runs"],
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "Fig. 2a — HMM accuracy (MSE) vs particles"))

    # SDS is exact: flat in particle count
    assert result.get("sds", 1).median == pytest.approx(
        result.get("sds", 100).median, rel=1e-9
    )
    # PF at 1 particle is far worse than SDS; PF at 100 approaches it
    assert result.get("pf", 1).median > 2 * result.get("sds", 1).median
    assert result.get("pf", 100).median < 1.5 * result.get("sds", 1).median


def test_fig2b_hmm_latency(benchmark, hmm_data, bench_config):
    counts = [1, 10, 50, 100]

    def sweep():
        return latency_sweep(
            HmmModel, hmm_data, particle_counts=counts,
            methods=["pf", "bds", "sds"], runs=2,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "Fig. 2b — HMM step latency (ms) vs particles"))

    # latency increases with particle count for every method
    for method in ("pf", "bds", "sds"):
        assert result.get(method, 100).median > result.get(method, 1).median
    # PF is the cheapest per step
    assert result.get("pf", 100).median < result.get("sds", 100).median
