"""Ablation: resampling schemes and resampling thresholds.

Not a paper figure — an ablation over the design choices DESIGN.md
calls out: (a) systematic vs stratified vs multinomial resampling,
(b) resample-every-step (the paper's choice) vs ESS-triggered
resampling, and (c) no resampling at all (the importance sampler whose
weight collapse motivates Section 5.1's particle filter).
"""

import numpy as np
import pytest

from repro.bench import KalmanModel, kalman_data
from repro.inference import infer
from repro.inference.diagnostics import DiagnosticsLog
from repro.inference.metrics import mse_of_run

from conftest import emit


def run_config(data, seed, **kwargs):
    engine = infer(KalmanModel(), seed=seed, **kwargs)
    state = engine.init()
    means = []
    log = DiagnosticsLog()
    for obs in data.observations:
        dist, state = engine.step(state, obs)
        means.append(dist.mean())
        log.record(engine.last_stats)
    return mse_of_run(means, data.truths), log


def test_ablation_resampling_schemes(benchmark, bench_config):
    data = kalman_data(bench_config["sweep_steps"], seed=7)
    schemes = ["systematic", "stratified", "multinomial"]

    def sweep():
        results = {}
        for scheme in schemes:
            mses = [
                run_config(
                    data, seed, n_particles=30, method="pf", resampler=scheme
                )[0]
                for seed in range(bench_config["sweep_runs"])
            ]
            results[scheme] = float(np.median(mses))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation — resampling scheme (PF, 30 particles, median MSE):\n"
        + "\n".join(f"  {s}: {m:.4f}" for s, m in results.items())
    )
    # all schemes are consistent estimators: same ballpark
    values = list(results.values())
    assert max(values) < 2.0 * min(values)


def test_ablation_resample_threshold(benchmark, bench_config):
    data = kalman_data(bench_config["sweep_steps"], seed=7)

    def sweep():
        results = {}
        for label, threshold in [("every-step", None), ("ess<0.5N", 0.5)]:
            mses = [
                run_config(
                    data, seed, n_particles=30, method="pf",
                    resample_threshold=threshold,
                )[0]
                for seed in range(bench_config["sweep_runs"])
            ]
            results[label] = float(np.median(mses))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation — resampling trigger (PF, 30 particles, median MSE):\n"
        + "\n".join(f"  {s}: {m:.4f}" for s, m in results.items())
    )
    assert max(results.values()) < 2.0 * min(results.values())


def test_ablation_no_resampling_degenerates(benchmark, bench_config):
    """Importance sampling's ESS collapses — the Section 5.1 motivation."""
    data = kalman_data(bench_config["sweep_steps"], seed=7)

    def measure():
        _, is_log = run_config(data, 0, n_particles=50, method="importance")
        _, pf_log = run_config(data, 0, n_particles=50, method="pf")
        return is_log.min_ess_fraction, pf_log.min_ess_fraction

    is_ess, pf_ess = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        f"Ablation — weight degeneracy (min ESS fraction over the run):\n"
        f"  importance sampling: {is_ess:.4f}\n"
        f"  particle filter:     {pf_ess:.4f}"
    )
    assert is_ess < 0.1        # collapses without resampling
    assert pf_ess > is_ess     # resampling keeps the population alive
