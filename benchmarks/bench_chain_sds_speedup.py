"""Array-native delayed sampling: scalar vs batched DS graphs.

The acceptance bar of the batched delayed-sampling subsystem: at 1000
particles the ``bds@vectorized`` / ``sds@vectorized`` specs — one
structure-of-arrays delayed-sampling graph for the whole population —
must beat the scalar per-particle graphs by a wide margin on the
Kalman / Fig. 2 HMM chains, on the robot tracker's multivariate chain,
and (since the generic family-dispatched graph of PR 5) on the
tree-shaped Outlier model, whose Beta→Bernoulli branch runs as batched
conjugate slots beside the Gaussian position chain (the committed run
in EXPERIMENTS.md shows the measured factors).

Besides the text tables, the run writes a machine-readable
``BENCH_PR5.json`` (method spec -> particle count -> step-latency
quantiles, via :func:`repro.bench.reporting.write_bench_json`) — the
perf-trajectory artifact CI archives and gates: after the sweep,
``check_perf_regression.py`` compares the fresh document against the
committed previous-PR baseline and fails on >30% median step-latency
regression for any recorded spec. Override the output path with
``REPRO_BENCH_JSON``.
"""

import functools
import os

import pytest

from repro.bench import (
    DirichletCategoricalModel,
    HmmModel,
    KalmanModel,
    MixedFragmentModel,
    OutlierModel,
    PoissonCountModel,
    RobotModel,
    categorical_data,
    count_data,
    format_sweep,
    kalman_data,
    latency_sweep,
    mixed_count_data,
    outlier_data,
    robot_data,
    sweep_records,
    write_bench_json,
)

from conftest import emit

COUNTS = [100, 1000]
#: minimum accepted speedup at 1000 particles (the committed run shows
#: far more; the bar leaves margin for CI noise on shared runners).
MIN_SPEEDUP = 4.0

_RECORDS = []


def _sweep_and_record(model_factory, data, model_name, methods, runs=3):
    result = latency_sweep(
        model_factory, data, particle_counts=COUNTS, methods=methods, runs=runs
    )
    _RECORDS.extend(
        sweep_records(result, model_name, extra={"benchmark": "chain_sds_speedup"})
    )
    return result


@pytest.fixture(scope="module")
def hmm_data(bench_config):
    return kalman_data(
        bench_config["sweep_steps"], seed=42,
        prior_var=1.0, motion_var=1.0, obs_var=1.0,
    )


@pytest.fixture(scope="module")
def tracker_data(bench_config):
    return robot_data(bench_config["sweep_steps"], seed=42)


def _assert_speedup(result, scalar_spec, vector_spec, label):
    speedup = (
        result.get(scalar_spec, 1000).median / result.get(vector_spec, 1000).median
    )
    emit(f"{label} speedup at 1000 particles: {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP
    return speedup


def test_chain_bds_speedup_hmm(benchmark, hmm_data, bench_config):
    def sweep():
        return _sweep_and_record(
            HmmModel, hmm_data, "hmm", ["bds", "bds@vectorized"]
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "HMM step latency (ms): scalar vs batched-graph BDS"))
    _assert_speedup(result, "bds", "bds@vectorized", "HMM bds")


def test_chain_sds_speedup_kalman(benchmark, hmm_data, bench_config):
    """sds@vectorized on the Kalman chain (closed-form engine) stays fast."""

    def sweep():
        return _sweep_and_record(
            KalmanModel, hmm_data, "kalman",
            ["sds", "sds@vectorized", "bds", "bds@vectorized"],
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "Kalman step latency (ms): scalar vs vectorized"))
    _assert_speedup(result, "sds", "sds@vectorized", "Kalman sds")
    _assert_speedup(result, "bds", "bds@vectorized", "Kalman bds")


def test_chain_sds_speedup_robot(benchmark, tracker_data, bench_config):
    """The multivariate chain: per-particle matrix Kalman graphs vs arrays."""

    def sweep():
        return _sweep_and_record(
            RobotModel, tracker_data, "robot",
            ["sds", "sds@vectorized", "bds", "bds@vectorized"],
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "Robot step latency (ms): scalar vs batched-graph"))
    _assert_speedup(result, "sds", "sds@vectorized", "robot sds")
    _assert_speedup(result, "bds", "bds@vectorized", "robot bds")


@pytest.fixture(scope="module")
def faulty_sensor_data(bench_config):
    return outlier_data(bench_config["sweep_steps"], seed=42)


def test_generic_graph_speedup_outlier(benchmark, faulty_sensor_data, bench_config):
    """The tree-shaped Outlier model on the generic batched DS graph.

    Beta→Bernoulli slots + per-particle masked affine edges vs the
    scalar per-particle graphs (PR 5 acceptance bar).
    """

    def sweep():
        return _sweep_and_record(
            OutlierModel, faulty_sensor_data, "outlier",
            ["sds", "sds@vectorized", "bds", "bds@vectorized"],
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(
        result, "Outlier step latency (ms): scalar vs generic batched graph"
    ))
    _assert_speedup(result, "sds", "sds@vectorized", "outlier sds")
    _assert_speedup(result, "bds", "bds@vectorized", "outlier bds")


def test_write_bench_json(bench_config):
    """Persist the perf trajectory collected by the sweeps above."""
    if not _RECORDS:
        pytest.skip("no sweep ran in this session (tests were deselected)")
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_PR5.json")
    write_bench_json(
        path,
        _RECORDS,
        meta={
            "benchmark": "chain_sds_speedup",
            "sweep_steps": bench_config["sweep_steps"],
            "particle_counts": COUNTS,
        },
    )
    emit(f"wrote {len(_RECORDS)} perf-trajectory records to {path}")


# ----------------------------------------------------------------------
# PR 8: the new conjugacy families + the mixed-fragment realization cost
# ----------------------------------------------------------------------
#: minimum sds speedup at 1000 particles for the new families — the
#: Gamma-Poisson acceptance bar of PR 8 (the committed run shows more).
MIN_FAMILY_SPEEDUP = 20.0

_RECORDS_PR8 = []


def _sweep_and_record_pr8(model_factory, data, model_name, methods, runs=3):
    result = latency_sweep(
        model_factory, data, particle_counts=COUNTS, methods=methods, runs=runs
    )
    _RECORDS_PR8.extend(
        sweep_records(result, model_name, extra={"benchmark": "new_families"})
    )
    return result


@pytest.fixture(scope="module")
def counts_data(bench_config):
    return count_data(bench_config["sweep_steps"], seed=42)


@pytest.fixture(scope="module")
def categories_data(bench_config):
    return categorical_data(bench_config["sweep_steps"], seed=42, alpha=(2.0, 1.0, 3.0))


@pytest.fixture(scope="module")
def mixed_data(bench_config):
    return mixed_count_data(bench_config["sweep_steps"], seed=42, n_slots=4)


def test_count_stream_speedup(benchmark, counts_data, bench_config):
    """Gamma-Poisson count stream: batched conjugate slots vs the scalar
    per-particle graphs (the PR-8 acceptance bar: >= 20x for sds)."""

    def sweep():
        return _sweep_and_record_pr8(
            PoissonCountModel, counts_data, "count",
            ["sds", "sds@vectorized", "bds", "bds@vectorized"],
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "Count step latency (ms): scalar vs batched graph"))
    speedup = (
        result.get("sds", 1000).median / result.get("sds@vectorized", 1000).median
    )
    emit(f"count sds speedup at 1000 particles: {speedup:.1f}x")
    assert speedup >= MIN_FAMILY_SPEEDUP
    _assert_speedup(result, "bds", "bds@vectorized", "count bds")


def test_categorical_stream_speedup(benchmark, categories_data, bench_config):
    """Dirichlet-Categorical switching proportions on the batched graph."""

    def sweep():
        return _sweep_and_record_pr8(
            functools.partial(DirichletCategoricalModel, alpha=(2.0, 1.0, 3.0)),
            categories_data, "categorical",
            ["sds", "sds@vectorized", "bds", "bds@vectorized"],
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(
        result, "Categorical step latency (ms): scalar vs batched graph"
    ))
    _assert_speedup(result, "sds", "sds@vectorized", "categorical sds")
    _assert_speedup(result, "bds", "bds@vectorized", "categorical bds")


def test_mixed_fragment_realization_cost(benchmark, mixed_data, bench_config):
    """Step latency with 0%, one-slot, and all-slot per-step realization.

    Four fresh Gamma-Poisson slots per step; the ``realize`` knob turns
    0 / 1 / 4 of them non-conjugate, so each realized slot pays one
    batched posterior draw + fold. The cells put the cost of partial
    (realize-and-continue) degradation on the perf trajectory: the graph
    never migrates to scalar in any of the three configurations.
    """

    def sweep():
        results = {}
        for realize in ("none", "one", "all"):
            results[realize] = _sweep_and_record_pr8(
                functools.partial(MixedFragmentModel, realize=realize),
                mixed_data, f"mixed-{realize}", ["sds@vectorized"],
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for realize, result in results.items():
        emit(format_sweep(
            result, f"Mixed-fragment ({realize} realized) step latency (ms)"
        ))
    base = results["none"].get("sds@vectorized", 1000).median
    one = results["one"].get("sds@vectorized", 1000).median
    emit(f"one-slot realization overhead at 1000 particles: {one / base:.2f}x")
    # realizing one of four slots must not forfeit the batched speedup
    assert one < 20.0 * base


def test_write_bench_pr8_json(bench_config):
    """Persist the new-family cells as the PR-8 baseline document."""
    if not _RECORDS_PR8:
        pytest.skip("no PR-8 sweep ran in this session (tests were deselected)")
    path = os.environ.get("REPRO_BENCH_JSON_PR8", "BENCH_PR8.json")
    write_bench_json(
        path,
        _RECORDS_PR8,
        meta={
            "benchmark": "new_families",
            "sweep_steps": bench_config["sweep_steps"],
            "particle_counts": COUNTS,
        },
    )
    emit(f"wrote {len(_RECORDS_PR8)} perf-trajectory records to {path}")
