"""Array-native delayed sampling: scalar vs batched DS graphs.

The acceptance bar of the batched delayed-sampling subsystem: at 1000
particles the ``bds@vectorized`` / ``sds@vectorized`` specs — one
structure-of-arrays delayed-sampling graph for the whole population —
must beat the scalar per-particle graphs by a wide margin on the
Kalman / Fig. 2 HMM chains, on the robot tracker's multivariate chain,
and (since the generic family-dispatched graph of PR 5) on the
tree-shaped Outlier model, whose Beta→Bernoulli branch runs as batched
conjugate slots beside the Gaussian position chain (the committed run
in EXPERIMENTS.md shows the measured factors).

Besides the text tables, the run writes a machine-readable
``BENCH_PR5.json`` (method spec -> particle count -> step-latency
quantiles, via :func:`repro.bench.reporting.write_bench_json`) — the
perf-trajectory artifact CI archives and gates: after the sweep,
``check_perf_regression.py`` compares the fresh document against the
committed previous-PR baseline and fails on >30% median step-latency
regression for any recorded spec. Override the output path with
``REPRO_BENCH_JSON``.
"""

import os

import pytest

from repro.bench import (
    HmmModel,
    KalmanModel,
    OutlierModel,
    RobotModel,
    format_sweep,
    kalman_data,
    latency_sweep,
    outlier_data,
    robot_data,
    sweep_records,
    write_bench_json,
)

from conftest import emit

COUNTS = [100, 1000]
#: minimum accepted speedup at 1000 particles (the committed run shows
#: far more; the bar leaves margin for CI noise on shared runners).
MIN_SPEEDUP = 4.0

_RECORDS = []


def _sweep_and_record(model_factory, data, model_name, methods, runs=3):
    result = latency_sweep(
        model_factory, data, particle_counts=COUNTS, methods=methods, runs=runs
    )
    _RECORDS.extend(
        sweep_records(result, model_name, extra={"benchmark": "chain_sds_speedup"})
    )
    return result


@pytest.fixture(scope="module")
def hmm_data(bench_config):
    return kalman_data(
        bench_config["sweep_steps"], seed=42,
        prior_var=1.0, motion_var=1.0, obs_var=1.0,
    )


@pytest.fixture(scope="module")
def tracker_data(bench_config):
    return robot_data(bench_config["sweep_steps"], seed=42)


def _assert_speedup(result, scalar_spec, vector_spec, label):
    speedup = (
        result.get(scalar_spec, 1000).median / result.get(vector_spec, 1000).median
    )
    emit(f"{label} speedup at 1000 particles: {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP
    return speedup


def test_chain_bds_speedup_hmm(benchmark, hmm_data, bench_config):
    def sweep():
        return _sweep_and_record(
            HmmModel, hmm_data, "hmm", ["bds", "bds@vectorized"]
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "HMM step latency (ms): scalar vs batched-graph BDS"))
    _assert_speedup(result, "bds", "bds@vectorized", "HMM bds")


def test_chain_sds_speedup_kalman(benchmark, hmm_data, bench_config):
    """sds@vectorized on the Kalman chain (closed-form engine) stays fast."""

    def sweep():
        return _sweep_and_record(
            KalmanModel, hmm_data, "kalman",
            ["sds", "sds@vectorized", "bds", "bds@vectorized"],
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "Kalman step latency (ms): scalar vs vectorized"))
    _assert_speedup(result, "sds", "sds@vectorized", "Kalman sds")
    _assert_speedup(result, "bds", "bds@vectorized", "Kalman bds")


def test_chain_sds_speedup_robot(benchmark, tracker_data, bench_config):
    """The multivariate chain: per-particle matrix Kalman graphs vs arrays."""

    def sweep():
        return _sweep_and_record(
            RobotModel, tracker_data, "robot",
            ["sds", "sds@vectorized", "bds", "bds@vectorized"],
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "Robot step latency (ms): scalar vs batched-graph"))
    _assert_speedup(result, "sds", "sds@vectorized", "robot sds")
    _assert_speedup(result, "bds", "bds@vectorized", "robot bds")


@pytest.fixture(scope="module")
def faulty_sensor_data(bench_config):
    return outlier_data(bench_config["sweep_steps"], seed=42)


def test_generic_graph_speedup_outlier(benchmark, faulty_sensor_data, bench_config):
    """The tree-shaped Outlier model on the generic batched DS graph.

    Beta→Bernoulli slots + per-particle masked affine edges vs the
    scalar per-particle graphs (PR 5 acceptance bar).
    """

    def sweep():
        return _sweep_and_record(
            OutlierModel, faulty_sensor_data, "outlier",
            ["sds", "sds@vectorized", "bds", "bds@vectorized"],
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(
        result, "Outlier step latency (ms): scalar vs generic batched graph"
    ))
    _assert_speedup(result, "sds", "sds@vectorized", "outlier sds")
    _assert_speedup(result, "bds", "bds@vectorized", "outlier bds")


def test_write_bench_json(bench_config):
    """Persist the perf trajectory collected by the sweeps above."""
    if not _RECORDS:
        pytest.skip("no sweep ran in this session (tests were deselected)")
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_PR5.json")
    write_bench_json(
        path,
        _RECORDS,
        meta={
            "benchmark": "chain_sds_speedup",
            "sweep_steps": bench_config["sweep_steps"],
            "particle_counts": COUNTS,
        },
    )
    emit(f"wrote {len(_RECORDS)} perf-trajectory records to {path}")
