"""Ablation: particle-cloning policy at resampling.

DESIGN.md documents the substitution for the paper's latency experiment:
the OCaml runtime's per-step cost is proportional to the live heap
(GC + state copies), which we model by cloning every selected particle
at resampling (``clone_on_resample="all"``). The sharing optimization
(``"duplicates"``) changes no inference result — this ablation verifies
both claims: identical posteriors, different DS latency profile.
"""

import numpy as np
import pytest

from repro.bench import KalmanModel, kalman_data
from repro.inference import infer

from conftest import emit


def run_means(data, method, clone_policy, seed=0, particles=10):
    engine = infer(
        KalmanModel(), n_particles=particles, method=method, seed=seed,
        clone_on_resample=clone_policy,
    )
    state = engine.init()
    means = []
    for obs in data.observations:
        dist, state = engine.step(state, obs)
        means.append(dist.mean())
    return means


def test_clone_policy_does_not_change_inference(benchmark, bench_config):
    """Same rng, same posteriors under both cloning policies (SDS)."""
    data = kalman_data(30, seed=11)

    def compute():
        exact = run_means(data, "sds", "all", particles=1)
        shared = run_means(data, "sds", "duplicates", particles=1)
        return exact, shared

    exact, shared = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert np.allclose(exact, shared)


def test_clone_policy_changes_ds_latency_profile(benchmark, bench_config):
    """Under `duplicates`, DS latency growth flattens (fewer clones of
    the growing graph); under `all` it shows the paper's degradation."""
    import time

    data = kalman_data(bench_config["profile_steps"], seed=11)

    def profile(policy):
        engine = infer(
            KalmanModel(), n_particles=10, method="ds", seed=0,
            clone_on_resample=policy,
        )
        state = engine.init()
        latencies = []
        for obs in data.observations:
            start = time.perf_counter()
            _, state = engine.step(state, obs)
            latencies.append(time.perf_counter() - start)
        quarter = len(latencies) // 4
        return float(np.mean(latencies[-quarter:]) / np.mean(latencies[:quarter]))

    def compute():
        return profile("all"), profile("duplicates")

    growth_all, growth_dup = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(
        "Ablation — DS latency growth by cloning policy:\n"
        f"  clone all selected: {growth_all:.2f}x\n"
        f"  clone duplicates:   {growth_dup:.2f}x"
    )
    assert growth_all > growth_dup
    assert growth_all > 2.0
