"""Shared configuration for the benchmark suite.

The paper's experiments use 1000 runs x 1600 steps on a dedicated cloud
instance; the defaults here are scaled down so the whole suite runs in a
few minutes, while preserving every qualitative shape the paper reports.
Override through environment variables for a full-scale run:

    REPRO_BENCH_STEPS=1600 REPRO_BENCH_RUNS=100 pytest benchmarks/ --benchmark-only
"""

import os

import pytest

from repro.exec.executor import shutdown_executors


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session", autouse=True)
def _release_executor_pools():
    """Release the spec-cached executor pools the sweeps warm up."""
    yield
    shutdown_executors()


@pytest.fixture(scope="session")
def bench_config():
    return {
        # sweep experiments (Fig. 2 / 16 / 17)
        "sweep_steps": _env_int("REPRO_BENCH_SWEEP_STEPS", 50),
        "sweep_runs": _env_int("REPRO_BENCH_RUNS", 10),
        "particle_counts": [1, 2, 5, 10, 20, 35, 50, 100],
        # long-run profiles (Fig. 4 / 18 / 19); the paper uses 1600 steps
        "profile_steps": _env_int("REPRO_BENCH_STEPS", 200),
        "profile_particles": _env_int("REPRO_BENCH_PROFILE_PARTICLES", 20),
    }


def emit(text: str) -> None:
    """Print a results table so it lands in the pytest output."""
    print()
    print(text)
