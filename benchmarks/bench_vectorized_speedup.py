"""Scalar vs vectorized backend: per-step latency on the Fig. 2 HMM.

The acceptance bar for the vectorized subsystem: at 1000 particles on
the Section-2 HMM, the structure-of-arrays particle filter must beat
the scalar reference engine by a wide margin (the committed run in
EXPERIMENTS.md shows the measured factor). The scalar engine spends its
step in interpreter overhead proportional to the particle count; the
vectorized engine executes a constant number of NumPy operations.
"""

import numpy as np
import pytest

from repro.bench import HmmModel, format_sweep, kalman_data, latency_sweep

from conftest import emit

COUNTS = [10, 100, 1000]


@pytest.fixture(scope="module")
def hmm_data(bench_config):
    return kalman_data(
        bench_config["sweep_steps"], seed=42,
        prior_var=1.0, motion_var=1.0, obs_var=1.0,
    )


def test_vectorized_pf_speedup(benchmark, hmm_data, bench_config):
    def sweep():
        return latency_sweep(
            HmmModel, hmm_data, particle_counts=COUNTS,
            methods=["pf", "pf@vectorized"], runs=3,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "HMM step latency (ms): scalar vs vectorized PF"))
    for count in COUNTS:
        ratio = result.get("pf", count).median / result.get("pf@vectorized", count).median
        emit(f"speedup at {count:>5} particles: {ratio:.1f}x")

    # acceptance: >= 5x at 1000 particles (asserted with margin for CI noise)
    speedup = result.get("pf", 1000).median / result.get("pf@vectorized", 1000).median
    assert speedup >= 3.0


def test_vectorized_sds_speedup(benchmark, hmm_data, bench_config):
    """The Rao-Blackwellized chain: graph clones vs batched Kalman updates."""

    def sweep():
        return latency_sweep(
            HmmModel, hmm_data, particle_counts=COUNTS,
            methods=["sds", "sds@vectorized"], runs=3,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "HMM step latency (ms): scalar vs vectorized SDS"))
    speedup = result.get("sds", 1000).median / result.get("sds@vectorized", 1000).median
    emit(f"SDS speedup at 1000 particles: {speedup:.1f}x")
    assert speedup >= 3.0


def test_vectorized_accuracy_not_worse(benchmark, hmm_data, bench_config):
    """Same laws, same accuracy: the backend changes throughput only."""
    from repro.bench import accuracy_sweep

    def sweep():
        return accuracy_sweep(
            HmmModel, hmm_data, particle_counts=[10, 100],
            methods=["pf", "pf@vectorized"], runs=bench_config["sweep_runs"],
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_sweep(result, "HMM accuracy (MSE): scalar vs vectorized PF"))
    for count in (10, 100):
        scalar = result.get("pf", count).median
        vectorized = result.get("pf@vectorized", count).median
        assert vectorized < 3.0 * scalar
