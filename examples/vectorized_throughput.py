#!/usr/bin/env python
"""Execution backends: the same inference, two substrates.

Runs the Section-2 HMM particle filter at increasing particle counts on
both backends of ``infer`` — the scalar reference engines (one Python
object per particle) and the vectorized structure-of-arrays engines
(``repro.vectorized``, whole population per array operation) — and
prints per-step latency side by side. The posterior means agree to
numerical noise; only the throughput differs.
"""

import time

import numpy as np

from repro import infer
from repro.bench.data import kalman_data
from repro.bench.models import HmmModel

STEPS = 60
COUNTS = [10, 100, 1000]


def run(backend, particles, data):
    """(posterior means, mean per-step latency in ms) for one engine."""
    engine = infer(HmmModel(), n_particles=particles, method="pf",
                   seed=0, backend=backend)
    state = engine.init()
    means = []
    start = time.perf_counter()
    for y in data.observations:
        dist, state = engine.step(state, y)
        means.append(dist.mean())
    elapsed_ms = (time.perf_counter() - start) * 1e3
    return np.array(means), elapsed_ms / len(data.observations)


def main():
    data = kalman_data(STEPS, seed=7, prior_var=1.0, motion_var=1.0, obs_var=1.0)

    print(f"{'particles':>9}  {'scalar ms/step':>14}  {'vectorized ms/step':>18}  "
          f"{'speedup':>7}  {'mean diff':>9}")
    for particles in COUNTS:
        scalar_means, scalar_ms = run("scalar", particles, data)
        vector_means, vector_ms = run("vectorized", particles, data)
        diff = float(np.max(np.abs(scalar_means - vector_means)))
        print(f"{particles:>9}  {scalar_ms:>14.4f}  {vector_ms:>18.4f}  "
              f"{scalar_ms / vector_ms:>6.1f}x  {diff:>9.2e}")

    print()
    print("Same seed, same posterior; the backend changes throughput only.")


if __name__ == "__main__":
    main()
