#!/usr/bin/env python
"""2D object tracking with a multivariate state-space model.

The paper's introduction motivates ProbZélus with "controllers that
operate under the assumption of a probabilistic model of their
environment (e.g., object tracking)". This example tracks an object
moving in the plane with a constant-velocity model: the latent state is
``[px, py, vx, vy]``, observations are noisy 2D positions.

Under streaming delayed sampling every particle runs an exact 4D matrix
Kalman filter (the MvAffineGaussian conjugacy), so one particle gives
the exact posterior, forever, in constant memory — compare with a
particle filter on the same data.
"""

import numpy as np

from repro.lang import mv_gaussian
from repro.inference import infer
from repro.runtime import FunProbNode
from repro.symbolic import app as sym_app

DT = 0.5
F = np.array([
    [1.0, 0.0, DT, 0.0],
    [0.0, 1.0, 0.0, DT],
    [0.0, 0.0, 1.0, 0.0],
    [0.0, 0.0, 0.0, 1.0],
])
Q = np.diag([1e-4, 1e-4, 0.05, 0.05])      # process noise (on velocity)
H = np.array([
    [1.0, 0.0, 0.0, 0.0],
    [0.0, 1.0, 0.0, 0.0],
])
R = np.diag([0.5, 0.5])                     # sensor noise
PRIOR_MEAN = np.zeros(4)
PRIOR_COV = np.diag([25.0, 25.0, 4.0, 4.0])
STEPS = 60


def tracker_step(state, y_obs, ctx):
    """One step: predict with the constant-velocity model, observe 2D."""
    if state is None:
        z = ctx.sample(mv_gaussian(PRIOR_MEAN, PRIOR_COV))
    else:
        z = ctx.sample(mv_gaussian(sym_app("matvec", F, state), Q))
    ctx.observe(mv_gaussian(sym_app("matvec", H, z), R), y_obs)
    return z, z


def simulate(steps, seed=0):
    """Ground-truth trajectory and noisy position observations."""
    rng = np.random.default_rng(seed)
    z = np.array([0.0, 0.0, 1.0, 0.5])
    truths, observations = [], []
    for _ in range(steps):
        z = F @ z + rng.multivariate_normal(np.zeros(4), Q)
        truths.append(z[:2].copy())
        observations.append(H @ z + rng.multivariate_normal(np.zeros(2), R))
    return truths, observations


def run(method, particles, observations):
    engine = infer(FunProbNode(None, tracker_step), n_particles=particles,
                   method=method, seed=1)
    state = engine.init()
    means = []
    for obs in observations:
        dist, state = engine.step(state, obs)
        means.append(np.asarray(dist.mean())[:2])
    return means


def main():
    truths, observations = simulate(STEPS, seed=9)
    sds = run("sds", 1, observations)
    pf = run("pf", 50, observations)

    print(f"{'step':>4}  {'truth':>16}  {'sds(1p)':>16}  {'pf(50p)':>16}")
    for t in range(0, STEPS, 6):
        def fmt(point):
            return f"({point[0]:6.2f},{point[1]:6.2f})"
        print(f"{t:>4}  {fmt(truths[t]):>16}  {fmt(sds[t]):>16}  {fmt(pf[t]):>16}")

    def mse(estimates):
        return float(np.mean([
            np.sum((np.asarray(e) - np.asarray(t)) ** 2)
            for e, t in zip(estimates, truths)
        ]))

    print(f"\nMSE  sds with 1 particle:   {mse(sds):.4f}")
    print(f"MSE  pf  with 50 particles: {mse(pf):.4f}")
    print("\nOne SDS particle is an exact 4D Kalman filter: the symbolic")
    print("state stays a single MvGaussian node, updated in closed form.")


if __name__ == "__main__":
    main()
