#!/usr/bin/env python
"""Writing ProbZélus in its concrete syntax, end to end.

Parses a program written in the paper's surface syntax — including the
HMM model, a deterministic driver with the running-MSE equations of the
Appendix-B `main` node, and a two-mode `automaton` — compiles it through
the full pipeline, and runs it on synthetic data.
"""

from repro.bench.data import kalman_data
from repro.core import check_program, load, prepare_program
from repro.frontend import parse_program
from repro.runtime import run

SOURCE = """
(* the Section-2 HMM: a position tracker *)
let node hmm y = x where
  rec mu = 0. -> pre x
  and sigma2 = 100. -> 1.
  and x = sample (gaussian (mu, sigma2))
  and () = observe (gaussian (x, 1.), y)

(* the Appendix-B driver: estimate + running mean squared error *)
let node main (tr, observed) = (est_mean, mse) where
  rec t = 1. -> pre t + 1.
  and x_d = infer 50 hmm observed
  and est_mean = mean_float (x_d)
  and error = (est_mean - tr) * (est_mean - tr)
  and total_error = error -> pre total_error + error
  and mse = total_error / t

(* a mode machine: track until the error settles, then report *)
let node monitor mse =
  automaton
  | Watch  -> do 0. until (mse < 1.) then Locked
  | Locked -> do 1. done
"""


def main():
    program = parse_program(SOURCE)
    kinds = check_program(prepare_program(program))
    print("node kinds:", kinds)

    module = load(program)
    tracker = module.det_node("main")
    monitor = module.det_node("monitor")

    data = kalman_data(40, seed=12)
    t_state, m_state = tracker.init(), monitor.init()
    locked_at = None
    for t, (truth, obs) in enumerate(zip(data.truths, data.observations)):
        (est, mse), t_state = tracker.step(t_state, (truth, obs))
        locked, m_state = monitor.step(m_state, mse)
        if locked_at is None and locked == 1.0:
            locked_at = t
        if t % 8 == 0:
            print(f"t={t:>3}  truth={truth:>8.3f}  est={est:>8.3f}  "
                  f"running-mse={mse:>7.3f}  mode={'Locked' if locked else 'Watch'}")

    print(f"\nmonitor locked at step {locked_at}; final running MSE {mse:.4f}")


if __name__ == "__main__":
    main()
