#!/usr/bin/env python
"""Robust tracking with a faulty sensor (Appendix B.3).

The Outlier model extends the Kalman tracker with a sensor that
occasionally emits garbage: with a Beta(100, 1000)-distributed
probability, a reading comes from N(0, 100) instead of N(x, 1). Under
the delayed samplers this is a Rao-Blackwellized particle filter: the
boolean outlier indicator is sampled per particle, while the position
chain and the outlier rate stay in closed form.

The script plants artificial outliers and shows how PF estimates get
dragged around by them while SDS stays locked on.
"""

import numpy as np

from repro import infer
from repro.bench.data import outlier_data
from repro.bench.models import OutlierModel
from repro.inference.metrics import mse_of_run

STEPS = 120


def run(method, particles, data):
    engine = infer(OutlierModel(), n_particles=particles, method=method, seed=1)
    state = engine.init()
    means = []
    for y in data.observations:
        dist, state = engine.step(state, y)
        means.append(dist.mean())
    return means


def main():
    data = outlier_data(STEPS, seed=21)
    # flag the readings that are far from the truth, for display
    flags = [
        "  <-- outlier?" if abs(o - t) > 4.0 else ""
        for o, t in zip(data.observations, data.truths)
    ]

    sds = run("sds", 50, data)
    pf = run("pf", 50, data)

    print(f"{'step':>4} {'truth':>9} {'obs':>9} {'sds':>9} {'pf':>9}")
    shown = 0
    for t in range(STEPS):
        interesting = flags[t] or t % 20 == 0
        if interesting and shown < 25:
            print(f"{t:>4} {data.truths[t]:>9.3f} {data.observations[t]:>9.3f} "
                  f"{sds[t]:>9.3f} {pf[t]:>9.3f}{flags[t]}")
            shown += 1

    print()
    print(f"MSE  sds(50p): {mse_of_run(sds, data.truths):.4f}")
    print(f"MSE   pf(50p): {mse_of_run(pf, data.truths):.4f}")


if __name__ == "__main__":
    main()
