#!/usr/bin/env python
"""Observability: step-phase tracing and StreamServer SLO metrics.

Runs the same robot-tracking model twice — a standalone engine with
tracing enabled, then a multi-session :class:`repro.exec.StreamServer`
— and prints what the telemetry layer saw: per-phase step timings
(including ``worker_step`` spans shipped back from worker-resident
processes), per-session p99 tick latency interpolated from histogram
buckets, and a Prometheus text-format export of the whole registry.

Tracing is off by default and costs a single attribute check per
instrumentation site; the degradation counters (NaN-weight zeroing,
scalar-fragment fallback, session eviction) are always on.
"""

import numpy as np

from repro import (
    MetricsRegistry,
    StreamServer,
    infer,
    metrics_snapshot,
    shutdown_executors,
    telemetry,
    to_prometheus,
)
from repro.bench import HmmModel, RobotModel, robot_data
from repro.obs.spans import PHASE_HISTOGRAM

STEPS = 30
PARTICLES = 512
USERS = 4


def trace_standalone(registry):
    """One worker-resident engine stream with tracing on."""
    data = robot_data(STEPS, seed=42)
    with telemetry(registry):
        engine = infer(RobotModel(), n_particles=PARTICLES, method="sds",
                       backend="vectorized", seed=0,
                       executor="processes-persistent:2")
        state = engine.init()
        for y in data.observations:
            _, state = engine.step(state, y)
        if hasattr(state, "release"):
            state.release()

    print(f"step phases over {STEPS} steps "
          f"(sds@vectorized@processes-persistent:2, {PARTICLES} particles):")
    print(f"  {'phase':>14}  {'count':>5}  {'mean ms':>8}  {'p95 ms':>8}")
    for metric in sorted(registry.metrics(), key=lambda m: -m.sum):
        if metric.name != PHASE_HISTOGRAM:
            continue
        phase = dict(metric.labels)["phase"]
        print(f"  {phase:>14}  {metric.count:>5}  {metric.mean:>8.3f}  "
              f"{metric.quantile(0.95):>8.3f}")


def serve_with_slos():
    """A server fleet; SLO histograms are on regardless of tracing."""
    server = StreamServer(executor="threads:2", policy="round_robin")
    rng = np.random.default_rng(7)
    for user in range(USERS):
        server.open(HmmModel(), session_id=f"user{user}",
                    n_particles=PARTICLES, method="pf",
                    backend="vectorized", seed=user)
        server.submit_many(f"user{user}", rng.normal(size=STEPS))
    server.drain()

    snap = server.metrics_snapshot()
    print(f"\nserved {snap['processed']} steps across "
          f"{snap['sessions']['active']} sessions "
          f"(tick p99 {snap['tick_ms']['p99_ms']:.2f} ms, "
          f"queue depth p95 {snap['queue_depth']['p95']:.0f}):")
    print(f"  {'session':>8}  {'steps':>5}  {'p50 ms':>7}  {'p99 ms':>7}")
    for sid, per in sorted(snap["per_session"].items()):
        print(f"  {sid:>8}  {per['count']:>5}  {per['p50_ms']:>7.3f}  "
              f"{per['p99_ms']:>7.3f}")
    server.shutdown()


def main():
    registry = MetricsRegistry()
    trace_standalone(registry)
    serve_with_slos()

    exposition = to_prometheus(registry)
    lines = exposition.strip().splitlines()
    print(f"\nPrometheus export: {len(lines)} lines, e.g.")
    for line in lines[:4]:
        print(f"  {line}")

    # the process-global default registry holds the always-on counters
    print(f"\ndefault-registry snapshot keys: "
          f"{sorted(metrics_snapshot())}")
    shutdown_executors()


if __name__ == "__main__":
    main()
