#!/usr/bin/env python
"""Learning a coin's bias from a stream of flips (Appendix B.2).

The Coin model draws an unknown bias from Beta(1, 1) and observes flips.
Under streaming delayed sampling the Beta node is conditioned
analytically at every flip, so a *single particle* maintains the exact
Beta(1 + heads, 1 + tails) posterior forever — this script checks that
identity explicitly and contrasts it with a particle filter, which
pins each particle to its first-step guess and relies on resampling.
"""

import numpy as np

from repro import infer
from repro.bench.data import coin_data
from repro.bench.models import CoinModel

STEPS = 200


def main():
    data = coin_data(STEPS, seed=11)
    true_bias = data.truths[0]
    print(f"true bias: {true_bias:.4f}\n")

    sds = infer(CoinModel(), n_particles=1, method="sds", seed=0)
    pf = infer(CoinModel(), n_particles=100, method="pf", seed=0)
    sds_state, pf_state = sds.init(), pf.init()

    heads = 0
    print(f"{'flips':>6} {'heads':>6} {'exact':>8} {'sds(1p)':>8} {'pf(100p)':>9}")
    for t, flip in enumerate(data.observations):
        heads += bool(flip)
        sds_dist, sds_state = sds.step(sds_state, flip)
        pf_dist, pf_state = pf.step(pf_state, flip)
        if (t + 1) in (1, 5, 10, 25, 50, 100, 200):
            exact = (1.0 + heads) / (2.0 + t + 1)
            print(f"{t + 1:>6} {heads:>6} {exact:>8.4f} "
                  f"{sds_dist.mean():>8.4f} {pf_dist.mean():>9.4f}")

    exact = (1.0 + heads) / (2.0 + STEPS)
    assert abs(sds_dist.mean() - exact) < 1e-9, "SDS must be exact on the coin"
    print("\nSDS posterior mean equals the closed-form Beta posterior. ✓")
    print(f"final |pf - exact| = {abs(pf_dist.mean() - exact):.4f}")


if __name__ == "__main__":
    main()
