#!/usr/bin/env python
"""The compilation pipeline of Sections 3-4, end to end.

Builds the Section-2 HMM as a kernel AST, then walks it through every
stage the paper describes:

1. kind checking (Fig. 7) — the model is P, the driver is D,
2. source-to-source rewriting of ``->`` / ``pre`` (Section 3.1),
3. scheduling of the recursive equations,
4. compilation to muF (Fig. 11 / Fig. 20 / Fig. 21), pretty-printed,
5. execution of the compiled term, checked against the co-iterative
   reference interpreter (Theorem 4.2 in action).
"""

from repro.core import (
    Interpreter,
    check_program,
    check_types,
    compile_program,
    load,
    prepare_program,
)
from repro.core.muf import pretty
from repro.dsl import (
    app,
    arrow,
    const,
    eq,
    gaussian,
    infer_,
    node,
    observe,
    pre,
    program,
    sample,
    var,
    where_,
)


def build_program():
    hmm = node("hmm", "y", where_(
        var("x"),
        eq("x", sample(gaussian(arrow(const(0.0), pre(var("x"))), const(1.0)))),
        eq("_u", observe(gaussian(var("x"), const(1.0)), var("y"))),
    ))
    main = node("main", "y",
                infer_(app("hmm", var("y")), particles=1, method="sds", seed=0))
    return program(hmm, main)


def main():
    source = build_program()

    print("== kinds (Fig. 7) ==")
    prepared = prepare_program(source)
    for name, kind in check_program(prepared).items():
        print(f"  node {name}: kind {kind}")

    print("\n== inferred types (Section 3.2) ==")
    for name, (param_t, result_t) in check_types(prepared).items():
        print(f"  node {name}: {param_t!r} -> {result_t!r}")

    print("\n== desugared + scheduled hmm body ==")
    print(" ", prepared.decl("hmm").body)

    print("\n== compiled muF (excerpt) ==")
    muf = compile_program(prepared, prepared=True)
    for definition in muf.defs:
        text = pretty(definition.term)
        first_lines = "\n    ".join(text.splitlines()[:6])
        print(f"  let {definition.name} =\n    {first_lines}\n    ...")

    print("\n== compiled vs co-iterative execution (Theorem 4.2) ==")
    compiled = load(source).det_node("main")
    interpreted = Interpreter(source).det_node("main")
    cs, is_ = compiled.init(), interpreted.init()
    for y in (0.8, 1.2, 1.9, 2.4):
        cd, cs = compiled.step(cs, y)
        id_, is_ = interpreted.step(is_, y)
        print(f"  y={y:>4}: compiled mean={cd.mean():.6f}  "
              f"interpreted mean={id_.mean():.6f}")
        assert abs(cd.mean() - id_.mean()) < 1e-12


if __name__ == "__main__":
    main()
