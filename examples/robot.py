#!/usr/bin/env python
"""The Fig. 5 robot: inference in the loop, with a mode automaton.

A robot equipped with an accelerometer (every step) and a GPS (every few
steps) estimates its position with streaming delayed sampling — each
particle is an exact matrix Kalman filter over the latent
[position, velocity, acceleration] state. A PID controller consumes the
*posterior position distribution* to drive toward the target, and a
two-state automaton (Go -> Task) switches mode once

    probability(p_dist, target, epsilon) > 0.9

exactly as in the paper's ``task_bot``. In Task mode the robot holds
position with a trivial task controller. Each mode's node maps the
posterior to a ``(command, posterior)`` pair so the transition guard can
inspect the posterior, mirroring ``until (probability(...) > 0.9)``.
"""

from repro import Automaton, AutoState, FunNode, Pid, infer
from repro.bench.robot import RobotConfig, RobotEnv, RobotModel, reached_target
from repro.dists.stats import probability

STEPS = 400


def make_go_controller(config):
    """PID position controller acting on the posterior mean."""
    pid = Pid(kp=2.0, kd=4.0, h=config.dt)

    def step(state, p_dist):
        error = config.target - p_dist.mean()
        cmd, state = pid.step(state, error)
        return (max(-5.0, min(5.0, cmd)), p_dist), state

    return FunNode(pid.init(), step)


def make_task_controller():
    """Task mode: hold position (a stand-in for the paper's task)."""
    return FunNode(None, lambda state, p_dist: ((0.0, p_dist), state))


def main():
    config = RobotConfig()
    env = RobotEnv(config, seed=3)
    engine = infer(RobotModel(config), n_particles=1, method="sds", seed=0)
    engine_state = engine.init()

    task_bot = Automaton([
        AutoState(
            "Go",
            make_go_controller(config),
            transitions=[
                (lambda out: reached_target(out[1], config), "Task"),
            ],
        ),
        AutoState("Task", make_task_controller()),
    ])

    ctrl_state = task_bot.init()
    cmd = 0.0
    switched_at = None
    true_p = 0.0
    for t in range(STEPS):
        a_obs, gps, true_p = env.step(cmd)
        p_dist, engine_state = engine.step(engine_state, (a_obs, gps, cmd))
        mode = task_bot.mode_of(ctrl_state)
        (cmd, _), ctrl_state = task_bot.step(ctrl_state, p_dist)
        now_task = task_bot.mode_of(ctrl_state) == "Task"
        if switched_at is None and now_task:
            switched_at = t
        if t % 40 == 0 or switched_at == t:
            confidence = probability(p_dist, config.target, config.epsilon)
            print(f"t={t:>3}  mode={mode:<4}  true={true_p:>7.3f}  "
                  f"est={p_dist.mean():>7.3f}  P(|p-target|<eps)={confidence:.3f}")
        if switched_at is not None and t > switched_at + 20:
            break

    if switched_at is None:
        print("\nnever switched to Task mode (unexpected)")
    else:
        print(f"\nswitched Go -> Task at step {switched_at}; "
              f"final true position {true_p:.3f} (target {config.target})")


if __name__ == "__main__":
    main()
