#!/usr/bin/env python
"""Delayed-sampling graph evolution on the HMM (Fig. 3 vs Fig. 15).

Runs four steps of the Section-2 HMM under (a) the original delayed
sampling graph and (b) the pointer-minimal streaming graph, printing
after each step the set of nodes *reachable from the program state*
through the pointers each implementation retains.

The original graph keeps the whole marginalized chain alive (Fig. 3);
the streaming graph retains only the current node plus, transiently, a
pending observation (Fig. 15).
"""

from repro.delayed import DelayedGraph, StreamingGraph, reachable_nodes
from repro.inference.contexts import DelayedCtx
from repro.lang import gaussian


def hmm_step(state, y, ctx):
    mean = 0.0 if state is None else state
    x = ctx.sample(gaussian(mean, 1.0))
    ctx.observe(gaussian(x, 1.0), y)
    return x, x


def describe(node):
    return f"{node.name or node.uid}:{node.state.value[:4]}"


def run(graph_cls, label, observations):
    print(f"--- {label} ---")
    graph = graph_cls()
    ctx = DelayedCtx(graph)
    state = None
    for step, y in enumerate(observations, start=1):
        _, state = hmm_step(state, y, ctx)
        live = reachable_nodes([state.node])
        names = sorted(describe(n) for n in live)
        print(f"step {step}: {len(live):>2} live nodes  {names}")
    print()


def main():
    observations = [0.5, 1.0, 1.5, 2.0]
    run(DelayedGraph, "original delayed sampling (DS, Fig. 3)", observations)
    run(StreamingGraph, "streaming delayed sampling (SDS, Fig. 15)", observations)
    print("DS keeps every past time step reachable through backward pointers;")
    print("SDS's marginalization flips them forward, so the prefix of the")
    print("chain becomes garbage the moment the program drops its reference.")


if __name__ == "__main__":
    main()
