#!/usr/bin/env python
"""Quickstart: position tracking with the Section-2 HMM.

Builds the paper's running example —

    let node hmm y = x where
      rec x = sample (gaussian (0 -> pre x, speed_x))
      and () = observe (gaussian (x, noise_x), y)

— as a probabilistic stream node, runs three inference engines on the
same synthetic observation stream, and prints the posterior means
alongside the ground truth. SDS computes the exact Kalman posterior with
a single particle; the particle filter needs many particles to come
close (the Fig. 2 story).
"""

from repro import FunProbNode, gaussian, infer
from repro.bench.data import kalman_data
from repro.inference.metrics import mse_of_run

SPEED_X = 1.0
NOISE_X = 1.0
STEPS = 50


def hmm_step(state, y, ctx):
    """One synchronous step of the HMM."""
    mean = 0.0 if state is None else state  # 0 -> pre x
    x = ctx.sample(gaussian(mean, SPEED_X))
    ctx.observe(gaussian(x, NOISE_X), y)
    return x, x


def run_engine(method, particles, data):
    """Posterior means for one engine over the whole stream."""
    engine = infer(FunProbNode(None, hmm_step), n_particles=particles,
                   method=method, seed=0)
    state = engine.init()
    means = []
    for y in data.observations:
        dist, state = engine.step(state, y)
        means.append(dist.mean())
    return means


def main():
    data = kalman_data(STEPS, seed=7, prior_var=SPEED_X,
                       motion_var=SPEED_X, obs_var=NOISE_X)
    configs = [("pf", 10), ("bds", 10), ("sds", 1)]
    estimates = {m: run_engine(m, p, data) for m, p in configs}

    print(f"{'step':>4}  {'truth':>8}  {'obs':>8}  "
          + "  ".join(f"{m}({p}p)".rjust(9) for m, p in configs))
    for t in range(0, STEPS, 5):
        row = [f"{t:>4}", f"{data.truths[t]:>8.3f}", f"{data.observations[t]:>8.3f}"]
        row += [f"{estimates[m][t]:>9.3f}" for m, _ in configs]
        print("  ".join(row))

    print()
    for method, particles in configs:
        mse = mse_of_run(estimates[method], data.truths)
        print(f"{method:>4} with {particles:>3} particles: MSE = {mse:.4f}")


if __name__ == "__main__":
    main()
