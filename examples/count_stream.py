#!/usr/bin/env python
"""Estimating a Poisson arrival rate from a stream of counts.

The count model draws an unknown arrival rate from Gamma(shape, rate)
and observes one Poisson count per instant. Under streaming delayed
sampling the Gamma node is conditioned analytically at every count —
after t observations totalling s the posterior is exactly
Gamma(shape + s, rate + t) — and on the vectorized backend the whole
particle population shares one structure-of-arrays graph whose Poisson
slot scores counts against the negative-binomial predictive in a single
batched kernel call. This script checks the closed form explicitly and
compares the scalar and batched engines on the same stream.
"""

import numpy as np

from repro import infer
from repro.bench.data import count_data
from repro.bench.models import PoissonCountModel

STEPS = 200
SHAPE, RATE = 2.0, 1.0


def main():
    data = count_data(STEPS, seed=11, shape=SHAPE, rate=RATE)
    true_rate = data.truths[0]
    print(f"true arrival rate: {true_rate:.4f}\n")

    model = PoissonCountModel(shape=SHAPE, rate=RATE)
    scalar = infer(model, n_particles=1, method="sds", seed=0)
    batched = infer(
        model, n_particles=256, method="sds", backend="vectorized", seed=0
    )
    s_state, b_state = scalar.init(), batched.init()

    total = 0
    print(f"{'counts':>6} {'sum':>5} {'exact':>8} {'sds(1p)':>8} {'sds@vec(256p)':>14}")
    for t, count in enumerate(data.observations):
        total += count
        s_dist, s_state = scalar.step(s_state, count)
        b_dist, b_state = batched.step(b_state, count)
        if (t + 1) in (1, 5, 10, 25, 50, 100, 200):
            exact = (SHAPE + total) / (RATE + t + 1)
            print(f"{t + 1:>6} {total:>5} {exact:>8.4f} "
                  f"{s_dist.mean():>8.4f} {b_dist.mean():>14.4f}")

    exact = (SHAPE + total) / (RATE + STEPS)
    assert abs(s_dist.mean() - exact) < 1e-9, "scalar SDS must be exact"
    assert abs(b_dist.mean() - exact) < 1e-9, "batched SDS must be exact"
    print("\nBoth engines equal the closed-form Gamma posterior. ✓")
    print(f"|posterior mean - true rate| = {abs(exact - true_rate):.4f} "
          f"(posterior sd {np.sqrt((SHAPE + total)) / (RATE + STEPS):.4f})")


if __name__ == "__main__":
    main()
