#!/usr/bin/env python
"""Stream serving: many users, one shared execution layer.

Opens a :class:`repro.exec.StreamServer` with a shared thread executor
and serves a fleet of concurrent position-tracking sessions — each one
the Section-2 HMM particle filter over its own observation stream.
Observations arrive interleaved (as real traffic would); the server
schedules pending work in rounds and every session's posterior is
exactly what a standalone engine with the same seed would produce.
"""

import time

import numpy as np

from repro.bench.data import kalman_data
from repro.bench.models import HmmModel
from repro.exec import StreamServer

USERS = 8
STEPS = 40
PARTICLES = 256


def main():
    server = StreamServer(executor="threads:4", policy="round_robin")

    # one session + one synthetic trajectory per user
    streams = {}
    for user in range(USERS):
        sid = server.open(
            HmmModel(), session_id=f"user{user}", n_particles=PARTICLES,
            method="pf", backend="vectorized", seed=user,
        )
        streams[sid] = kalman_data(
            STEPS, seed=100 + user, prior_var=1.0, motion_var=1.0, obs_var=1.0
        )

    # interleaved arrival: step t of every stream before step t+1 of any
    for t in range(STEPS):
        for sid, data in streams.items():
            server.submit(sid, data.observations[t])

    start = time.perf_counter()
    processed = server.drain()
    elapsed = time.perf_counter() - start

    print(f"{'session':>8}  {'steps':>5}  {'final mean':>10}  {'final truth':>11}")
    for sid, data in streams.items():
        posterior = server.latest(sid)
        print(f"{sid:>8}  {server.stats()['per_session'][sid]['steps']:>5}  "
              f"{posterior.mean():>10.3f}  {data.truths[-1]:>11.3f}")

    print()
    print(f"served {processed} steps across {USERS} sessions in "
          f"{elapsed * 1e3:.1f} ms ({processed / elapsed:.0f} steps/s) "
          f"on {server.executor!r}")

    # determinism: the server's scheduling never changes a session's result
    from repro import infer
    engine = infer(HmmModel(), n_particles=PARTICLES, method="pf",
                   backend="vectorized", seed=3, executor="threads:4")
    state = engine.init()
    for y in streams["user3"].observations:
        dist, state = engine.step(state, y)
    diff = abs(dist.mean() - server.latest("user3").mean())
    print(f"standalone engine reproduces user3's posterior (diff {diff:.2e})")


if __name__ == "__main__":
    main()
