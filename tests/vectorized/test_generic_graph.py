"""The generic batched delayed-sampling graph (PR 5).

Four layers of checks:

* graph-level unit tests of the new family dispatch — Beta-Bernoulli
  slots, per-particle affine coefficients / variances, tree-shaped
  graphs (a Beta branch beside a Gaussian chain, sibling pruning);
* the Outlier model on the generic graph — bit-identical to the retired
  bespoke ``VectorizedOutlierSDS`` oracle at a fixed seed, and
  posterior-equivalent to the scalar sds/bds engines in law;
* executor bit-identity for a tree-shaped model: serial / threads /
  processes / processes-persistent must reproduce the same posterior
  stream bit for bit;
* the degradation ladder: a model that breaks conjugacy at step k
  realizes only the offending slot and continues on the graph
  (``repro_slot_realizations_total``), while a model that leaves the
  expressible fragment entirely (an unsupported family) migrates to the
  scalar delayed sampler (one-time ``RuntimeWarning``, state migrated)
  instead of aborting with ``ChainStructureError``.
"""

import warnings

import numpy as np
import pytest

from repro.bench.data import outlier_data
from repro.bench.models import CoinModel, OutlierModel
from repro.dists import Bernoulli, Beta
from repro.errors import GraphError
from repro.inference import infer
from repro.lang import bernoulli, beta, gaussian, uniform
from repro.runtime.node import ProbCtx, ProbNode
from repro.vectorized import (
    BatchedDelayedCtx,
    BatchedDSGraph,
    BetaMixtureArray,
    ChainStructureError,
    GaussianMixtureArray,
    GraphOutlierModel,
    ScalarFallbackState,
    VectorizedGaussianChainSDS,
    VectorizedOutlierSDS,
)
from repro.vectorized.sds_graph import (
    MARGINALIZED,
    REALIZED,
    BetaBernoulliEdge,
    ScalarAffineEdge,
)

ODATA = outlier_data(25, seed=7)


def run_stream(engine, observations):
    state = engine.init()
    means, variances = [], []
    for obs in observations:
        dist, state = engine.step(state, obs)
        means.append(dist.mean())
        variances.append(dist.variance())
    return np.asarray(means), np.asarray(variances), dist, state


# ----------------------------------------------------------------------
# graph-level unit tests: Beta-Bernoulli slots and tree shapes
# ----------------------------------------------------------------------
class TestBetaBernoulliSlots:
    def test_beta_root_broadcasts_parameters(self):
        graph = BatchedDSGraph(4)
        node = graph.assume_root_dist(Beta(2.0, 3.0))
        alpha, b = graph.posterior_marginal(node.slot)
        assert alpha.tolist() == [2.0] * 4
        assert b.tolist() == [3.0] * 4

    def test_bernoulli_marginal_is_predictive(self):
        graph = BatchedDSGraph(3)
        parent = graph.assume_root_dist(Beta(1.0, 3.0))
        child = graph.assume_conditional(BetaBernoulliEdge(), parent)
        graph.graft(child.slot)
        p, none = graph.posterior_marginal(child.slot)
        assert none is None
        assert p == pytest.approx([0.25] * 3)

    def test_observe_conditions_counts_deferred(self):
        graph = BatchedDSGraph(2)
        parent = graph.assume_root_dist(Beta(1.0, 1.0))
        child = graph.assume_conditional(BetaBernoulliEdge(), parent)
        logw = graph.observe(child, True)
        assert logw == pytest.approx([np.log(0.5)] * 2)
        # deferred conditioning: counts fold when the parent is queried
        alpha, b = graph.posterior_marginal(parent.slot)
        assert alpha.tolist() == [2.0, 2.0]
        assert b.tolist() == [1.0, 1.0]

    def test_forced_indicator_realizes_per_particle(self):
        graph = BatchedDSGraph(1000, rng=np.random.default_rng(0))
        parent = graph.assume_root_dist(Beta(1.0, 9.0))
        child = graph.assume_conditional(BetaBernoulliEdge(), parent)
        drawn = graph.value(child)
        assert drawn.dtype == bool and drawn.shape == (1000,)
        assert abs(float(drawn.mean()) - 0.1) < 0.05
        assert graph.node_state[child.slot] == REALIZED
        # per-particle counts after folding the indicator array
        alpha, b = graph.posterior_marginal(parent.slot)
        assert np.array_equal(alpha, 1.0 + drawn)
        assert np.array_equal(b, 9.0 + ~drawn)

    def test_realized_beta_parent_collapses_bernoulli(self):
        graph = BatchedDSGraph(50, rng=np.random.default_rng(1))
        parent = graph.assume_root_dist(Beta(5.0, 5.0))
        theta = graph.value(parent)
        child = graph.assume_conditional(BetaBernoulliEdge(), parent)
        p, _ = graph.posterior_marginal(child.slot)
        assert np.array_equal(p, theta)

    def test_beta_observe_scores_density(self):
        graph = BatchedDSGraph(2)
        node = graph.assume_root_dist(Beta(2.0, 2.0))
        logw = graph.observe(node, 0.5)
        assert logw == pytest.approx([Beta(2.0, 2.0).log_pdf(0.5)] * 2)

    def test_ctx_assume_beta_and_bernoulli(self):
        ctx = BatchedDelayedCtx(BatchedDSGraph(3))
        prob = ctx.sample(beta(2.0, 5.0))
        flag = ctx.sample(bernoulli(prob))
        assert prob.node.family == "beta"
        assert flag.node.family == "bernoulli"

    def test_bernoulli_with_concrete_probability(self):
        graph = BatchedDSGraph(4, rng=np.random.default_rng(2))
        ctx = BatchedDelayedCtx(graph)
        flag = ctx.sample(bernoulli(0.5))
        drawn = ctx.value(flag)
        assert drawn.shape == (4,) and drawn.dtype == bool


class TestPerParticleEdges:
    def test_masked_edge_updates_only_unmasked_rows(self):
        """a_i = 0 leaves particle i's parent marginal untouched."""
        graph = BatchedDSGraph(2)
        parent = graph.assume_root("gaussian", np.array([0.0, 0.0]), 1.0)
        mask_a = np.array([1.0, 0.0])
        var = np.array([0.5, 100.0])
        child = graph.assume_conditional(
            ScalarAffineEdge(mask_a, 0.0, var), parent
        )
        graph.observe(child, 2.0)
        mean, post_var = graph.posterior_marginal(parent.slot)
        # particle 0: ordinary Kalman update toward the observation
        exact_gain = 1.0 / (1.0 + 0.5)
        assert mean[0] == pytest.approx(exact_gain * 2.0)
        assert post_var[0] == pytest.approx(1.0 - exact_gain)
        # particle 1: masked out — prior untouched
        assert mean[1] == 0.0
        assert post_var[1] == 1.0

    def test_per_particle_variance_weighting(self):
        graph = BatchedDSGraph(2)
        parent = graph.assume_root("gaussian", 0.0, 1.0)
        var = np.array([0.5, 4.0])
        child = graph.assume_conditional(ScalarAffineEdge(1.0, 0.0, var), parent)
        logw = graph.observe(child, 1.0)
        from repro.dists import Gaussian

        assert logw[0] == pytest.approx(Gaussian(0.0, 1.5).log_pdf(1.0))
        assert logw[1] == pytest.approx(Gaussian(0.0, 5.0).log_pdf(1.0))

    def test_row_ops_carry_per_particle_variance(self):
        graph = BatchedDSGraph(4)
        parent = graph.assume_root(
            "gaussian", np.arange(4.0), np.array([1.0, 2.0, 3.0, 4.0])
        )
        gathered = graph.batch_gather(np.array([3, 1, 1, 0]))
        mean, var = gathered.posterior_marginal(parent.slot)
        assert mean.tolist() == [3.0, 1.0, 1.0, 0.0]
        assert var.tolist() == [4.0, 2.0, 2.0, 1.0]
        left = graph.batch_slice(0, 2)
        merged = left.batch_concat([graph.batch_slice(2, 4)])
        _, var2 = merged.posterior_marginal(parent.slot)
        assert var2.tolist() == [1.0, 2.0, 3.0, 4.0]


class TestTreeShapes:
    def test_beta_branch_beside_gaussian_chain(self):
        """The Outlier shape: two chains in one graph, lockstep."""
        graph = BatchedDSGraph(3, rng=np.random.default_rng(0))
        ctx = BatchedDelayedCtx(graph)
        x = ctx.sample(gaussian(0.0, 1.0))
        prob = ctx.sample(beta(1.0, 1.0))
        flag = ctx.value(ctx.sample(bernoulli(prob)))
        ctx.observe(gaussian(x, 1.0), 0.4)
        assert flag.shape == (3,)
        assert np.asarray(ctx.log_weight).shape == (3,)
        families = {graph.family[s] for s in graph.live_slots()}
        assert {"gaussian", "beta"} <= families

    def test_graft_prunes_sibling_marginalized_branch(self):
        """Grafting one child of a shared parent sample-realizes the
        sibling marginalized sub-path — the whole-population prune."""
        graph = BatchedDSGraph(5, rng=np.random.default_rng(3))
        root = graph.assume_root("gaussian", 0.0, 1.0)
        first = graph.assume_conditional(ScalarAffineEdge(1.0, 0.0, 1.0), root)
        graph.graft(first.slot)  # root -> first is the marginalized path
        assert graph.node_state[first.slot] == MARGINALIZED
        second = graph.assume_conditional(ScalarAffineEdge(1.0, 0.0, 1.0), root)
        graph.graft(second.slot)  # must prune `first` (realize by sampling)
        assert graph.node_state[first.slot] == REALIZED
        assert graph.node_state[second.slot] == MARGINALIZED
        assert np.asarray(graph.value_[first.slot]).shape == (5,)

    def test_realize_with_marginal_child_still_rejected(self):
        graph = BatchedDSGraph(2)
        parent = graph.assume_root("gaussian", 0.0, 1.0)
        child = graph.assume_conditional(ScalarAffineEdge(1.0, 0.0, 1.0), parent)
        graph.graft(child.slot)
        with pytest.raises(GraphError):
            graph.realize(parent.slot, np.zeros(2))


# ----------------------------------------------------------------------
# the Outlier model on the generic graph
# ----------------------------------------------------------------------
class TestOutlierOnGenericGraph:
    def test_sds_routes_to_graph_engine(self):
        engine = infer(
            OutlierModel(), n_particles=8, method="sds", backend="vectorized"
        )
        assert isinstance(engine, VectorizedGaussianChainSDS)
        assert isinstance(engine.model, GraphOutlierModel)

    def test_bds_routes_to_graph_engine(self):
        engine = infer(
            OutlierModel(), n_particles=8, method="bds", backend="vectorized"
        )
        assert isinstance(engine, VectorizedGaussianChainSDS)
        assert engine.mode == "bds"

    def test_sds_bitwise_identical_to_retired_oracle(self):
        """The generic graph performs the bespoke engine's masked-blend
        arithmetic op-for-op: same seed, same floats."""
        generic = infer(
            OutlierModel(), n_particles=64, method="sds", backend="vectorized",
            seed=3,
        )
        oracle = VectorizedOutlierSDS(OutlierModel(), n_particles=64, seed=3)
        gm, gv, gdist, _ = run_stream(generic, ODATA.observations)
        om, ov, odist, _ = run_stream(oracle, ODATA.observations)
        assert np.array_equal(gm, om)
        assert np.array_equal(gv, ov)
        assert np.array_equal(gdist.mus, odist.mus)
        assert np.array_equal(gdist.weights, odist.weights)

    def test_sds_agrees_with_scalar_sds_in_law(self):
        def final_means(build):
            means = []
            for seed in range(4):
                engine = build(seed)
                m, _, _, _ = run_stream(engine, ODATA.observations)
                means.append(m[-1])
            return np.mean(means)

        generic = final_means(
            lambda seed: infer(
                OutlierModel(), n_particles=400, method="sds",
                backend="vectorized", seed=seed,
            )
        )
        scalar = final_means(
            lambda seed: infer(
                OutlierModel(), n_particles=400, method="sds", seed=seed + 10,
            )
        )
        assert generic == pytest.approx(scalar, abs=0.3)

    def test_bds_agrees_with_scalar_bds_in_law(self):
        def final_means(build):
            means = []
            for seed in range(4):
                engine = build(seed)
                m, _, _, _ = run_stream(engine, ODATA.observations)
                means.append(m[-1])
            return np.mean(means)

        generic = final_means(
            lambda seed: infer(
                OutlierModel(), n_particles=400, method="bds",
                backend="vectorized", seed=seed,
            )
        )
        scalar = final_means(
            lambda seed: infer(
                OutlierModel(), n_particles=400, method="bds", seed=seed + 10,
            )
        )
        assert generic == pytest.approx(scalar, abs=0.3)

    def test_sds_memory_constant_over_time(self):
        engine = infer(
            OutlierModel(), n_particles=8, method="sds", backend="vectorized",
            seed=0,
        )
        data = outlier_data(40, seed=9)
        state = engine.init()
        words = []
        for obs in data.observations:
            _, state = engine.step(state, obs)
            words.append(engine.memory_words(state))
        assert words[-1] == words[5]  # constant live words, no history

    def test_output_is_gaussian_mixture(self):
        engine = infer(
            OutlierModel(), n_particles=8, method="sds", backend="vectorized",
            seed=0,
        )
        _, _, dist, _ = run_stream(engine, ODATA.observations[:4])
        assert isinstance(dist, GaussianMixtureArray)

    def test_beta_output_lifts_to_mixture(self):
        """A model reporting the Beta slot yields a BetaMixtureArray."""

        class OutlierProbModel(GraphOutlierModel):
            def step(self, state, yobs, ctx):
                _, new_state = super().step(state, yobs, ctx)
                return new_state[1], new_state  # output the Beta variable

        engine = VectorizedGaussianChainSDS(
            OutlierProbModel(OutlierModel()), mode="sds", n_particles=6, seed=0
        )
        _, _, dist, _ = run_stream(engine, ODATA.observations[:5])
        assert isinstance(dist, BetaMixtureArray)

    def test_bernoulli_output_lifts_to_bernoulli(self):
        """A model reporting the indicator's marginal yields a Bernoulli."""

        class IndicatorModel(ProbNode):
            def init(self):
                return None

            def step(self, state, yobs, ctx: ProbCtx):
                prob = ctx.sample(beta(2.0, 8.0)) if state is None else state
                flag = ctx.sample(bernoulli(prob))
                ctx.observe(gaussian(0.0, 1.0), yobs)
                return flag, prob

        engine = VectorizedGaussianChainSDS(
            IndicatorModel(), mode="sds", n_particles=5, seed=0
        )
        dist, _ = engine.step(engine.init(), 0.1)
        assert isinstance(dist, Bernoulli)
        assert dist.p == pytest.approx(0.2)


class TestCoinBdsOnGenericGraph:
    def test_bds_routes_to_graph_engine(self):
        engine = infer(
            CoinModel(), n_particles=8, method="bds", backend="vectorized"
        )
        assert isinstance(engine, VectorizedGaussianChainSDS)
        assert engine.mode == "bds"

    def test_bds_agrees_with_scalar_bds_in_law(self):
        observations = [True, True, False, True, True, False, True]

        def final_mean(build):
            means = []
            for seed in range(6):
                m, _, _, _ = run_stream(build(seed), observations)
                means.append(m[-1])
            return np.mean(means)

        generic = final_mean(
            lambda seed: infer(
                CoinModel(), n_particles=300, method="bds",
                backend="vectorized", seed=seed,
            )
        )
        scalar = final_mean(
            lambda seed: infer(CoinModel(), n_particles=300, method="bds",
                               seed=seed + 20)
        )
        assert generic == pytest.approx(scalar, abs=0.08)


# ----------------------------------------------------------------------
# executor bit-identity for a tree-shaped model
# ----------------------------------------------------------------------
class TestExecutorBitIdentity:
    @pytest.mark.parametrize(
        "executor",
        ["serial", "threads:2", "processes:2", "processes-persistent:2"],
    )
    def test_outlier_sds_matches_serial_reference(self, executor):
        def run(executor_spec):
            engine = infer(
                OutlierModel(), n_particles=200, method="sds",
                backend="vectorized", seed=0, executor=executor_spec,
            )
            state = engine.init()
            means = []
            for obs in ODATA.observations[:12]:
                dist, state = engine.step(state, obs)
                means.append(dist.mean())
            if hasattr(state, "release"):
                state.release()
            return np.asarray(means)

        reference = run("serial")
        assert np.array_equal(reference, run(executor))


# ----------------------------------------------------------------------
# the degradation ladder: per-slot realization, then scalar migration
# ----------------------------------------------------------------------
class NonlinearAtK(ProbNode):
    """A Gaussian chain whose transition turns quadratic at step k."""

    def __init__(self, k: int = 3):
        self.k = k

    def init(self):
        return (0, None)

    def step(self, state, yobs, ctx: ProbCtx):
        t, prev = state
        if prev is None:
            x = ctx.sample(gaussian(0.0, 4.0))
        elif t >= self.k:
            x = ctx.sample(gaussian(prev * prev, 1.0))  # non-affine
        else:
            x = ctx.sample(gaussian(prev, 1.0))
        ctx.observe(gaussian(x, 0.5), yobs)
        return x, (t + 1, x)


class WithinStepNonlinear(ProbNode):
    """Observation mean quadratic in the *unrealized* draw from step k."""

    def __init__(self, k: int = 3):
        self.k = k

    def init(self):
        return (0, None)

    def step(self, state, yobs, ctx: ProbCtx):
        t, prev = state
        x = ctx.sample(gaussian(0.0 if prev is None else prev, 1.0))
        if t >= self.k:
            ctx.observe(gaussian(x * x, 0.5), yobs)
        else:
            ctx.observe(gaussian(x, 0.5), yobs)
        return x, (t + 1, x)


class UnsupportedAtK(ProbNode):
    """A Gaussian chain that samples an unbatchable family at step k.

    ``uniform`` has no SoA slot kernels, so the batched graph cannot
    express the step at all — per-slot realization does not apply and
    the engine must migrate the population to the scalar delayed
    sampler (the ladder's last resort).
    """

    def __init__(self, k: int = 3):
        self.k = k

    def init(self):
        return (0, None)

    def step(self, state, yobs, ctx: ProbCtx):
        t, prev = state
        x = ctx.sample(gaussian(0.0 if prev is None else prev, 1.0))
        ctx.observe(gaussian(x, 0.5), yobs)
        if t >= self.k:
            ctx.value(ctx.sample(uniform(0.0, 1.0)))  # no batched kernels
        return x, (t + 1, x)


OBS = [0.1, 0.2, -0.1, 0.4, 0.3, 0.2, 0.5]


class TestRealizeAndContinue:
    def test_nonlinear_transition_stays_on_graph(self):
        """The quadratic transition realizes the previous slot and keeps
        the stream on the batched graph — no warning, no migration."""
        engine = VectorizedGaussianChainSDS(
            NonlinearAtK(3), mode="sds", n_particles=20, seed=0
        )
        state = engine.init()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any RuntimeWarning fails
            means = []
            for y in OBS:
                dist, state = engine.step(state, y)
                means.append(dist.mean())
        assert not isinstance(state, ScalarFallbackState)
        assert engine._scalar_engine is None
        assert len(means) == len(OBS) and np.all(np.isfinite(means))

    def test_within_step_nonlinearity_stays_on_graph_under_bds(self):
        engine = VectorizedGaussianChainSDS(
            WithinStepNonlinear(3), mode="bds", n_particles=20, seed=0
        )
        state = engine.init()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for y in OBS[:5]:
                dist, state = engine.step(state, y)
        assert not isinstance(state, ScalarFallbackState)
        assert engine._scalar_engine is None


class TestScalarFallback:
    def test_sds_falls_back_midstream(self):
        engine = VectorizedGaussianChainSDS(
            UnsupportedAtK(3), mode="sds", n_particles=20, seed=0
        )
        state = engine.init()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            means = []
            for y in OBS:
                dist, state = engine.step(state, y)
                means.append(dist.mean())
        fragment_warnings = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "fragment" in str(w.message)
        ]
        assert len(fragment_warnings) == 1  # one-time warning
        assert isinstance(state, ScalarFallbackState)
        assert len(means) == len(OBS) and np.all(np.isfinite(means))
        from repro.inference.engine import StreamingDelayedSampler

        assert isinstance(engine._scalar_engine, StreamingDelayedSampler)

    def test_bds_falls_back_on_unsupported_family(self):
        engine = VectorizedGaussianChainSDS(
            UnsupportedAtK(3), mode="bds", n_particles=20, seed=0
        )
        state = engine.init()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for y in OBS[:5]:
                dist, state = engine.step(state, y)
        assert isinstance(state, ScalarFallbackState)
        assert sum(
            "fragment" in str(w.message) for w in caught
        ) == 1
        from repro.inference.engine import BoundedDelayedSampler

        assert isinstance(engine._scalar_engine, BoundedDelayedSampler)

    def test_bds_handles_realized_nonlinearity_without_fallback(self):
        """x_t ~ N(pre(x)^2, v) stays inside the fragment under BDS: the
        previous state is realized, so the square is a constant."""
        engine = VectorizedGaussianChainSDS(
            NonlinearAtK(3), mode="bds", n_particles=20, seed=0
        )
        state = engine.init()
        for y in OBS:
            dist, state = engine.step(state, y)
        assert not isinstance(state, ScalarFallbackState)
        assert engine._scalar_engine is None

    def test_fallback_migrates_weights_and_state(self):
        """Accumulated log-weights survive the migration particle by
        particle (resampling is off, so they are observable)."""
        engine = VectorizedGaussianChainSDS(
            UnsupportedAtK(1), mode="sds", n_particles=6, seed=5,
            resample_threshold=0.0,  # never resample: weights accumulate
        )
        state = engine.init()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for t, y in enumerate(OBS[:2]):
                _, state = engine.step(state, y)
                if t == 0:
                    pre_fallback = np.array(state.log_weights)
        assert isinstance(state, ScalarFallbackState)
        particles = state.particles
        assert len(particles) == 6
        # every particle carries its own scalar state and graph (the
        # replayed scalar SDS step leaves a symbolic reference again)
        from repro.symbolic import RVar

        for particle in particles:
            step_count, x = particle.state
            assert step_count == 2
            assert isinstance(x, RVar)
            assert particle.graph is not None
        # the failed step was replayed on the scalar engine: weights are
        # pre-fallback weights plus one scalar observe contribution
        post = np.array([p.log_weight for p in particles])
        assert np.all(post <= pre_fallback)  # log-densities here are < 0

    def test_fallback_with_threads_executor(self):
        engine = VectorizedGaussianChainSDS(
            UnsupportedAtK(2), mode="sds", n_particles=16, seed=1,
            executor="threads:2",
        )
        state = engine.init()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for y in OBS[:4]:
                dist, state = engine.step(state, y)
        assert isinstance(state, ScalarFallbackState)
        assert sum("fragment" in str(w.message) for w in caught) == 1
        assert np.isfinite(dist.mean())

    def test_first_step_fallback(self):
        """A model outside the fragment from step one still runs."""

        class ImmediatelyUnsupported(ProbNode):
            def init(self):
                return None

            def step(self, state, yobs, ctx: ProbCtx):
                x = ctx.sample(gaussian(0.0, 1.0))
                ctx.observe(gaussian(x, 0.5), yobs)
                ctx.value(ctx.sample(uniform(0.0, 1.0)))
                return x, x

        engine = VectorizedGaussianChainSDS(
            ImmediatelyUnsupported(), mode="sds", n_particles=8, seed=0
        )
        with pytest.warns(RuntimeWarning, match="fragment"):
            dist, state = engine.step(engine.init(), 0.3)
        assert isinstance(state, ScalarFallbackState)
        assert np.isfinite(dist.mean())
