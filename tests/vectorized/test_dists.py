"""Array-backed posterior distributions vs their object-per-particle twins."""

import numpy as np
import pytest

from repro.dists import Empirical, Gaussian, Mixture
from repro.errors import DistributionError
from repro.vectorized import ArrayEmpirical, GaussianMixtureArray


class TestArrayEmpirical:
    def test_matches_empirical_moments(self):
        values = [1.0, 2.0, 4.0]
        weights = [0.2, 0.3, 0.5]
        ref = Empirical(values, weights)
        arr = ArrayEmpirical(np.array(values), np.array(weights))
        assert arr.mean() == pytest.approx(ref.mean())
        assert arr.variance() == pytest.approx(ref.variance())

    def test_log_pdf_sums_matching_mass(self):
        arr = ArrayEmpirical(np.array([1.0, 2.0, 1.0]), np.array([0.25, 0.5, 0.25]))
        assert arr.log_pdf(1.0) == pytest.approx(np.log(0.5))
        assert arr.log_pdf(7.0) == -np.inf

    def test_uniform_weights_default(self):
        arr = ArrayEmpirical(np.array([0.0, 10.0]))
        assert arr.mean() == pytest.approx(5.0)

    def test_vector_support(self):
        values = np.array([[0.0, 0.0], [2.0, 4.0]])
        arr = ArrayEmpirical(values, np.array([0.5, 0.5]))
        assert np.allclose(arr.mean(), [1.0, 2.0])
        assert np.allclose(arr.variance(), [1.0, 4.0])
        assert arr.log_pdf([2.0, 4.0]) == pytest.approx(np.log(0.5))

    def test_sample_returns_support_value(self, rng):
        arr = ArrayEmpirical(np.array([3.0, 9.0]), np.array([1.0, 0.0]))
        assert arr.sample(rng) == 3.0

    def test_cdf_matches_empirical(self):
        from repro.dists.stats import cdf, probability

        values = [1.0, 2.0, 4.0]
        weights = [0.2, 0.3, 0.5]
        ref = Empirical(values, weights)
        arr = ArrayEmpirical(np.array(values), np.array(weights))
        for x in (0.0, 1.5, 2.0, 5.0):
            assert cdf(arr, x) == pytest.approx(cdf(ref, x))
        assert probability(arr, 2.0, 0.5) == pytest.approx(0.3)

    def test_does_not_freeze_caller_array(self):
        values = np.array([1.0, 2.0])
        ArrayEmpirical(values)
        values[0] = 5.0  # caller's array stays writeable

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            ArrayEmpirical(np.array([]))

    def test_mismatched_weights_rejected(self):
        with pytest.raises(DistributionError):
            ArrayEmpirical(np.array([1.0, 2.0]), np.array([1.0]))


class TestGaussianMixtureArray:
    def test_matches_mixture_of_gaussians(self):
        mus = np.array([-1.0, 0.5, 2.0])
        variances = np.array([1.0, 0.5, 2.0])
        weights = np.array([0.2, 0.3, 0.5])
        ref = Mixture([Gaussian(m, v) for m, v in zip(mus, variances)], weights)
        arr = GaussianMixtureArray(mus, variances, weights)
        assert arr.mean() == pytest.approx(ref.mean())
        assert arr.variance() == pytest.approx(ref.variance())
        for x in (-2.0, 0.0, 1.7):
            assert arr.log_pdf(x) == pytest.approx(ref.log_pdf(x))

    def test_single_component_is_gaussian(self):
        arr = GaussianMixtureArray([1.0], [2.0])
        ref = Gaussian(1.0, 2.0)
        assert arr.mean() == pytest.approx(ref.mean())
        assert arr.variance() == pytest.approx(ref.variance())
        assert arr.log_pdf(0.3) == pytest.approx(ref.log_pdf(0.3))

    def test_component_accessor(self):
        arr = GaussianMixtureArray([1.0, 2.0], [3.0, 4.0])
        assert arr.component(1) == Gaussian(2.0, 4.0)

    def test_sample_moments(self, rng):
        arr = GaussianMixtureArray([0.0, 4.0], [1.0, 1.0], [0.5, 0.5])
        draws = np.array([arr.sample(rng) for _ in range(4000)])
        assert draws.mean() == pytest.approx(2.0, abs=0.15)

    def test_cdf_matches_mixture(self):
        from repro.dists.stats import cdf

        mus = np.array([-1.0, 2.0])
        variances = np.array([1.0, 0.5])
        weights = np.array([0.4, 0.6])
        ref = Mixture([Gaussian(m, v) for m, v in zip(mus, variances)], weights)
        arr = GaussianMixtureArray(mus, variances, weights)
        for x in (-2.0, 0.0, 2.5):
            assert cdf(arr, x) == pytest.approx(cdf(ref, x))

    def test_does_not_freeze_caller_arrays(self):
        mus = np.array([0.0, 1.0])
        variances = np.array([1.0, 1.0])
        GaussianMixtureArray(mus, variances)
        mus[0] = 9.0  # caller's arrays stay writeable
        variances[0] = 9.0

    def test_nonpositive_variance_rejected(self):
        with pytest.raises(DistributionError):
            GaussianMixtureArray([0.0], [0.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DistributionError):
            GaussianMixtureArray([0.0, 1.0], [1.0])


class TestNaNWeights:
    """The array mixtures share the Mixture NaN policy (PR 5 bugfix):
    a NaN weight becomes zero weight for that component, with a
    RuntimeWarning — `np.any(weights < 0)` is False for NaN, so the
    constructors used to accept them silently."""

    def test_gaussian_mixture_array_zeroes_nan(self):
        with pytest.warns(RuntimeWarning, match="NaN mixture weight"):
            dist = GaussianMixtureArray(
                [0.0, 10.0], [1.0, 1.0], weights=[1.0, np.nan]
            )
        assert dist.weights.tolist() == [1.0, 0.0]
        assert dist.mean() == pytest.approx(0.0)

    def test_beta_mixture_array_zeroes_nan(self):
        from repro.vectorized import BetaMixtureArray

        with pytest.warns(RuntimeWarning, match="NaN mixture weight"):
            dist = BetaMixtureArray([2.0, 8.0], [2.0, 2.0], weights=[np.nan, 1.0])
        assert dist.weights.tolist() == [0.0, 1.0]
        assert dist.mean() == pytest.approx(0.8)

    def test_mv_gaussian_mixture_array_zeroes_nan(self):
        from repro.vectorized import MvGaussianMixtureArray

        with pytest.warns(RuntimeWarning, match="NaN mixture weight"):
            dist = MvGaussianMixtureArray(
                [[0.0, 0.0], [4.0, 4.0]], np.eye(2), weights=[3.0, np.nan]
            )
        assert dist.mean() == pytest.approx([0.0, 0.0])

    def test_array_empirical_zeroes_nan(self):
        with pytest.warns(RuntimeWarning, match="NaN mixture weight"):
            dist = ArrayEmpirical([1.0, 5.0], weights=[np.nan, 2.0])
        assert dist.mean() == pytest.approx(5.0)

    def test_all_nan_rejected(self):
        with pytest.warns(RuntimeWarning):
            with pytest.raises(DistributionError):
                GaussianMixtureArray([0.0], [1.0], weights=[np.nan])
