"""Structure-of-arrays particle batch container."""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.vectorized import ParticleBatch, batch_state_words, gather


class TestGather:
    def test_array_leaf(self):
        state = np.array([10.0, 11.0, 12.0])
        out = gather(state, np.array([2, 0, 2]))
        assert np.array_equal(out, [12.0, 10.0, 12.0])

    def test_none_passthrough(self):
        assert gather(None, np.array([0, 1])) is None

    def test_nested_pytree(self):
        state = (np.arange(4.0), {"p": np.arange(4.0) * 2}, [None])
        out = gather(state, np.array([3, 1]))
        assert np.array_equal(out[0], [3.0, 1.0])
        assert np.array_equal(out[1]["p"], [6.0, 2.0])
        assert out[2] == [None]

    def test_matrix_leaf_gathers_rows(self):
        state = np.arange(6.0).reshape(3, 2)
        out = gather(state, np.array([0, 0, 2]))
        assert out.shape == (3, 2)
        assert np.array_equal(out[0], out[1])

    def test_gather_copies_storage(self):
        state = np.array([1.0, 2.0])
        out = gather(state, np.array([0, 0]))
        out[0] = 99.0
        assert state[0] == 1.0  # source untouched
        assert out[1] == 1.0  # duplicated rows do not alias each other

    def test_bad_leaf_rejected(self):
        with pytest.raises(InferenceError):
            gather(object(), np.array([0]))


class TestParticleBatch:
    def test_n_from_log_weights(self):
        batch = ParticleBatch(np.zeros(5), np.zeros(5))
        assert batch.n == 5

    def test_empty_weights_rejected(self):
        with pytest.raises(InferenceError):
            ParticleBatch(None, np.array([]))

    def test_select_resets_weights(self):
        batch = ParticleBatch(np.arange(4.0), np.array([-1.0, -2.0, -3.0, -4.0]))
        picked = batch.select(np.array([3, 3, 0, 1]))
        assert np.array_equal(picked.state, [3.0, 3.0, 0.0, 1.0])
        assert np.array_equal(picked.log_weights, np.zeros(4))

    def test_with_weights_shares_state(self):
        state = np.arange(3.0)
        batch = ParticleBatch(state, np.zeros(3))
        rebatched = batch.with_weights(np.array([-1.0, -1.0, -1.0]))
        assert rebatched.state is state
        assert np.all(rebatched.log_weights == -1.0)

    def test_memory_words_counts_state_and_weights(self):
        batch = ParticleBatch((np.zeros(4), np.zeros(4)), np.zeros(4))
        # tuple header + two arrays (1+4 each) + weight vector (1+4)
        assert batch.memory_words() == 1 + 5 + 5 + 5


class TestBatchStateWords:
    def test_none_is_one_word(self):
        assert batch_state_words(None) == 1

    def test_array_counts_size(self):
        assert batch_state_words(np.zeros((2, 3))) == 7

    def test_dict_counts_values(self):
        assert batch_state_words({"a": np.zeros(2)}) == 1 + 3
