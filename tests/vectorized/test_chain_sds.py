"""The array-native delayed-sampling runtime (BatchedGaussianChainGraph).

Three layers of checks:

* graph-level unit tests of the SoA slot machinery (assume / graft /
  marginalize / deferred conditioning / realize / sweep),
* posterior equivalence of ``bds@vectorized`` / ``sds@vectorized``
  against the scalar delayed samplers at a fixed seed on the Kalman,
  HMM, and robot models — means, variances, per-particle values, and
  resampling ancestry,
* structure rejection: non-chain models raise ``ChainStructureError``
  instead of computing something silently different.
"""

import numpy as np
import pytest

from repro.bench import (
    HmmModel,
    KalmanModel,
    RobotModel,
    kalman_data,
    robot_data,
)
from repro.dists import Gaussian, MvGaussian
from repro.errors import GraphError
from repro.inference import infer
from repro.inference.engine import BoundedDelayedSampler, StreamingDelayedSampler
from repro.lang import bernoulli, beta, gaussian
from repro.runtime.node import ProbCtx, ProbNode
from repro.vectorized import (
    BatchedDelayedCtx,
    BatchedGaussianChainGraph,
    ChainStructureError,
    GaussianMixtureArray,
    MvGaussianMixtureArray,
    VectorizedGaussianChainSDS,
)
from repro.vectorized.sds_graph import (
    FREE,
    MARGINALIZED,
    REALIZED,
    ScalarAffineEdge,
)

KDATA = kalman_data(18, seed=42, prior_var=1.0, motion_var=1.0, obs_var=1.0)
RDATA = robot_data(14, seed=3)


def run_stream(model, data, method, backend, n=10, seed=0, **kwargs):
    engine = infer(
        model, n_particles=n, method=method, backend=backend, seed=seed, **kwargs
    )
    state = engine.init()
    means, variances = [], []
    for obs in data.observations:
        dist, state = engine.step(state, obs)
        means.append(dist.mean())
        variances.append(dist.variance())
    return engine, np.asarray(means), np.asarray(variances), dist, state


# ----------------------------------------------------------------------
# graph-level unit tests
# ----------------------------------------------------------------------
class TestBatchedGraph:
    def test_root_broadcasts_shared_marginal(self):
        graph = BatchedGaussianChainGraph(4)
        node = graph.assume_root_dist(Gaussian(2.0, 3.0))
        mean, var = graph.posterior_marginal(node.slot)
        assert mean.tolist() == [2.0] * 4
        assert var == 3.0
        assert graph.node_state[node.slot] == MARGINALIZED

    def test_observe_conditions_all_particles(self):
        graph = BatchedGaussianChainGraph(3)
        parent = graph.assume_root_dist(Gaussian(0.0, 1.0))
        child = graph.assume_conditional(
            ScalarAffineEdge(1.0, 0.0, 1.0), parent
        )
        logw = graph.observe(child, 1.0)
        assert logw.shape == (3,)
        # deferred conditioning: the parent folds when next queried
        mean, var = graph.posterior_marginal(parent.slot)
        exact = Gaussian(0.0, 1.0).posterior_given_obs(1.0, 1.0)
        assert mean == pytest.approx([exact.mu] * 3)
        assert var == pytest.approx(exact.var)

    def test_observe_weight_matches_predictive_density(self):
        graph = BatchedGaussianChainGraph(2)
        parent = graph.assume_root_dist(Gaussian(0.0, 1.0))
        child = graph.assume_conditional(
            ScalarAffineEdge(1.0, 0.0, 0.5), parent
        )
        logw = graph.observe(child, 0.7)
        assert logw == pytest.approx([Gaussian(0.0, 1.5).log_pdf(0.7)] * 2)

    def test_value_samples_posterior_batched(self):
        graph = BatchedGaussianChainGraph(1000)
        graph.rng = np.random.default_rng(0)
        node = graph.assume_root_dist(Gaussian(5.0, 0.01))
        drawn = graph.value(node)
        assert drawn.shape == (1000,)
        assert graph.node_state[node.slot] == REALIZED
        assert abs(float(drawn.mean()) - 5.0) < 0.05
        # idempotent: a second value() returns the same realization
        assert np.array_equal(graph.value(node), drawn)

    def test_sweep_frees_unreachable_slots(self):
        graph = BatchedGaussianChainGraph(2)
        old = graph.assume_root_dist(Gaussian(0.0, 1.0))
        new = graph.assume_conditional(ScalarAffineEdge(1.0, 0.0, 1.0), old)
        graph.graft(new.slot)
        # only the new node is referenced by the program now
        freed = graph.sweep([new.slot])
        assert freed == 1
        assert graph.node_state[old.slot] == FREE
        assert graph.node_state[new.slot] == MARGINALIZED

    def test_freed_slots_are_recycled(self):
        graph = BatchedGaussianChainGraph(2)
        node = graph.assume_root_dist(Gaussian(0.0, 1.0))
        slot = node.slot
        graph.sweep([])
        again = graph.assume_root_dist(Gaussian(1.0, 1.0))
        assert again.slot == slot  # free list reuses the slot

    def test_realize_with_marginal_child_rejected(self):
        graph = BatchedGaussianChainGraph(2)
        parent = graph.assume_root_dist(Gaussian(0.0, 1.0))
        child = graph.assume_conditional(ScalarAffineEdge(1.0, 0.0, 1.0), parent)
        graph.graft(child.slot)  # parent now has a live marginal child
        with pytest.raises(GraphError):
            graph.realize(parent.slot, np.zeros(2))

    def test_mv_chain_shared_covariance(self):
        graph = BatchedGaussianChainGraph(5)
        node = graph.assume_root_dist(MvGaussian([0.0, 1.0], np.eye(2)))
        mean, cov = graph.posterior_marginal(node.slot)
        assert mean.shape == (5, 2)
        assert cov.shape == (2, 2)  # one covariance for the population


class TestStructureRejection:
    def test_unregistered_root_rejected(self):
        """Families without SoA kernels still raise (Gamma/Poisson/
        Dirichlet/Categorical no longer do — they are first-class
        slots), and the error carries a bounded ``reason`` tag."""
        from repro.lang import gamma, inverse_gamma

        graph = BatchedGaussianChainGraph(2)
        ctx = BatchedDelayedCtx(graph)
        with pytest.raises(ChainStructureError) as excinfo:
            ctx.sample(inverse_gamma(2.0, 1.0))
        assert excinfo.value.reason == "unsupported-family"
        # Gamma roots are part of the fragment now.
        node = ctx.sample(gamma(1.0, 1.0))
        assert node.node.family == "gamma"

    def test_bernoulli_of_gaussian_realizes_and_continues(self):
        """Bernoulli is conjugate to Beta parents only: a Gaussian
        success probability realizes the parent and continues as a
        batched root instead of leaving the graph."""
        graph = BatchedGaussianChainGraph(2)
        graph.rng = np.random.default_rng(0)
        ctx = BatchedDelayedCtx(graph)
        x = ctx.sample(gaussian(0.5, 0.01))
        node = ctx.sample(bernoulli(x))
        assert node.node.family == "bernoulli"
        from repro.vectorized.sds_graph import REALIZED

        assert graph.node_state[x.node.slot] == REALIZED

    def test_nonaffine_mean_realizes_and_continues(self):
        """A quadratic mean breaks the dependency by realizing the
        parent (the scalar layer's dependency-breaking rule, batched)."""
        graph = BatchedGaussianChainGraph(2)
        graph.rng = np.random.default_rng(0)
        ctx = BatchedDelayedCtx(graph)
        x = ctx.sample(gaussian(0.0, 1.0))
        node = ctx.sample(gaussian(x * x, 1.0))
        from repro.vectorized.sds_graph import MARGINALIZED, REALIZED

        assert graph.node_state[x.node.slot] == REALIZED
        assert graph.node_state[node.node.slot] == MARGINALIZED
        mean, _ = graph.posterior_marginal(node.node.slot)
        assert np.allclose(mean, graph.value(x.node) ** 2)

    def test_engine_rejects_bad_mode(self):
        from repro.errors import InferenceError

        with pytest.raises(InferenceError):
            VectorizedGaussianChainSDS(KalmanModel(), mode="smc")


# ----------------------------------------------------------------------
# posterior equivalence vs the scalar engines, fixed seed
# ----------------------------------------------------------------------
class TestKalmanEquivalence:
    def test_bds_particle_values_bitwise_identical(self):
        """Same seed => the batched bds replays the scalar draws exactly."""
        scalar = infer(KalmanModel(), n_particles=8, method="bds", seed=0)
        batched = infer(
            KalmanModel(), n_particles=8, method="bds", backend="vectorized", seed=0
        )
        assert isinstance(scalar, BoundedDelayedSampler)
        assert isinstance(batched, VectorizedGaussianChainSDS)
        s_state, v_state = scalar.init(), batched.init()
        for y in KDATA.observations:
            s_dist, s_state = scalar.step(s_state, y)
            v_dist, v_state = batched.step(v_state, y)
            assert np.array_equal(
                np.asarray(s_dist.values, dtype=float), v_dist.values
            )
            assert np.array_equal(
                np.asarray(s_dist.weights, dtype=float), v_dist.weights
            )

    def test_bds_posterior_moments(self):
        _, sm, sv, _, _ = run_stream(KalmanModel(), KDATA, "bds", "scalar")
        _, vm, vv, _, _ = run_stream(KalmanModel(), KDATA, "bds", "vectorized")
        assert vm == pytest.approx(sm, rel=1e-12, abs=1e-12)
        assert vv == pytest.approx(sv, rel=1e-12, abs=1e-12)

    def test_sds_graph_engine_matches_scalar(self):
        """The graph engine run directly (bypassing the closed form)."""
        _, sm, sv, s_dist, _ = run_stream(KalmanModel(), KDATA, "sds", "scalar")
        engine = VectorizedGaussianChainSDS(
            KalmanModel(), mode="sds", n_particles=10, seed=0
        )
        state = engine.init()
        for y in KDATA.observations:
            dist, state = engine.step(state, y)
        assert isinstance(dist, GaussianMixtureArray)
        assert dist.mean() == pytest.approx(sm[-1], rel=1e-12)
        assert dist.variance() == pytest.approx(sv[-1], rel=1e-12)

    def test_resampling_ancestry_matches(self):
        """Forcing resampling every step keeps ancestry identical too:
        after many steps the surviving particle values coincide."""
        scalar = infer(
            KalmanModel(), n_particles=6, method="bds", seed=1,
            resample_threshold=1.1,  # ess is always below 1.1 * n
        )
        batched = infer(
            KalmanModel(), n_particles=6, method="bds", backend="vectorized",
            seed=1, resample_threshold=1.1,
        )
        s_state, v_state = scalar.init(), batched.init()
        for y in KDATA.observations:
            _, s_state = scalar.step(s_state, y)
            _, v_state = batched.step(v_state, y)
        scalar_values = np.asarray([p.state for p in s_state], dtype=float)
        assert np.array_equal(scalar_values, v_state.state.model_state)

    def test_evidence_matches_scalar(self):
        scalar, *_ = run_stream(KalmanModel(), KDATA, "bds", "scalar", n=7, seed=2)
        batched, *_ = run_stream(KalmanModel(), KDATA, "bds", "vectorized", n=7, seed=2)
        assert batched.last_stats.log_evidence == pytest.approx(
            scalar.last_stats.log_evidence, rel=1e-12
        )
        assert batched.last_stats.ess == pytest.approx(scalar.last_stats.ess)


class TestHmmEquivalence:
    def test_bds_moments(self):
        _, sm, sv, _, _ = run_stream(HmmModel(), KDATA, "bds", "scalar", seed=5)
        _, vm, vv, _, _ = run_stream(HmmModel(), KDATA, "bds", "vectorized", seed=5)
        assert vm == pytest.approx(sm, rel=1e-12, abs=1e-12)
        assert vv == pytest.approx(sv, rel=1e-12, abs=1e-12)

    def test_sds_moments(self):
        _, sm, sv, _, _ = run_stream(HmmModel(), KDATA, "sds", "scalar", seed=5)
        _, vm, vv, _, _ = run_stream(HmmModel(), KDATA, "sds", "vectorized", seed=5)
        assert vm == pytest.approx(sm, rel=1e-9)
        assert vv == pytest.approx(sv, rel=1e-9)


class TestRobotEquivalence:
    def test_sds_exact_match(self):
        """No randomness under SDS: the mv chain must agree to the ulp."""
        _, sm, sv, s_dist, _ = run_stream(RobotModel(), RDATA, "sds", "scalar", n=4)
        engine, vm, vv, v_dist, state = run_stream(
            RobotModel(), RDATA, "sds", "vectorized", n=4
        )
        assert isinstance(engine, VectorizedGaussianChainSDS)
        assert isinstance(v_dist, GaussianMixtureArray)
        assert vm == pytest.approx(sm, rel=1e-12, abs=1e-14)
        assert vv == pytest.approx(sv, rel=1e-12, abs=1e-14)

    def test_bds_moments(self):
        _, sm, sv, _, _ = run_stream(RobotModel(), RDATA, "bds", "scalar", n=6, seed=4)
        _, vm, vv, _, _ = run_stream(
            RobotModel(), RDATA, "bds", "vectorized", n=6, seed=4
        )
        assert vm == pytest.approx(sm, rel=1e-9, abs=1e-9)
        assert vv == pytest.approx(sv, rel=1e-9, abs=1e-9)

    def test_sds_memory_constant_over_time(self):
        engine = infer(
            RobotModel(), n_particles=8, method="sds", backend="vectorized", seed=0
        )
        data = robot_data(40, seed=9)
        state = engine.init()
        words = []
        for obs in data.observations:
            _, state = engine.step(state, obs)
            words.append(engine.memory_words(state))
        assert words[-1] == words[5]  # constant live words, no history
        assert len(state.state.graph.live_slots()) <= 3

    def test_full_state_output(self):
        """A model returning the whole vector yields an mv mixture."""

        class FullStateRobot(RobotModel):
            def step(self, state, inp, ctx):
                _, z = super().step(state, inp, ctx)
                return z, z

        engine = VectorizedGaussianChainSDS(
            FullStateRobot(), mode="sds", n_particles=3, seed=0
        )
        state = engine.init()
        dist, state = engine.step(state, (0.0, 0.0, 0.0))
        assert isinstance(dist, MvGaussianMixtureArray)
        assert dist.mean().shape == (3,)
        assert dist.variance().shape == (3, 3)


# ----------------------------------------------------------------------
# models beyond the benchmarks: a custom chain through the detector
# ----------------------------------------------------------------------
class ScaledChainModel(ProbNode):
    """x_t ~ N(0.9 * x_{t-1} + 0.5, 0.3), observed through N(2*x_t, 0.4)."""

    def init(self):
        return None

    def step(self, state, yobs, ctx: ProbCtx):
        if state is None:
            xt = ctx.sample(gaussian(0.0, 4.0))
        else:
            xt = ctx.sample(gaussian(0.9 * state + 0.5, 0.3))
        ctx.observe(gaussian(2.0 * xt, 0.4), yobs)
        return xt, xt


class TestCustomChain:
    def test_detected_and_equivalent(self):
        from repro.delayed.detect import probe_gaussian_chain
        from repro.vectorized import register_gaussian_chain_model
        from repro.vectorized.models import BDS_ENGINES, SDS_ENGINES

        report = probe_gaussian_chain(ScaledChainModel(), [0.1, 0.2])
        assert report.is_chain
        register_gaussian_chain_model(ScaledChainModel)
        try:
            data = [0.3, -0.1, 0.8, 0.2, 0.5]

            def run(backend, method):
                engine = infer(
                    ScaledChainModel(), n_particles=9, method=method,
                    backend=backend, seed=11,
                )
                state = engine.init()
                for y in data:
                    dist, state = engine.step(state, y)
                return dist.mean(), dist.variance()

            for method in ("bds", "sds"):
                sm, sv = run("scalar", method)
                vm, vv = run("vectorized", method)
                assert vm == pytest.approx(sm, rel=1e-10)
                assert vv == pytest.approx(sv, rel=1e-10)
        finally:
            BDS_ENGINES.pop(ScaledChainModel, None)
            SDS_ENGINES.pop(ScaledChainModel, None)

    def test_sds_fallback_for_unregistered(self):
        engine = infer(
            ScaledChainModel(), n_particles=4, method="sds", backend="vectorized"
        )
        assert isinstance(engine, StreamingDelayedSampler)


class TestChainStateRowOps:
    def test_shared_array_leaves_survive_slice_concat(self):
        """A fixed parameter vector in the state pytree must pass through
        the shard split/merge untouched — only per-particle leaves (the
        ones whose leading axis is the particle count) concatenate."""
        from repro.vectorized import ChainState

        per_particle = np.arange(4, dtype=float)
        shared = np.array([1.0, 2.0, 3.0])
        state = ChainState(None, (per_particle, shared), 4)
        left = state.batch_slice(0, 2)
        right = state.batch_slice(2, 4)
        merged = left.batch_concat([right])
        assert merged.n == 4
        assert np.array_equal(merged.model_state[0], per_particle)
        assert np.array_equal(merged.model_state[1], shared)

    def test_shared_array_leaves_survive_gather(self):
        from repro.vectorized import ChainState

        state = ChainState(None, (np.arange(4.0), np.array([9.0, 8.0, 7.0])), 4)
        gathered = state.batch_gather(np.array([3, 3, 0, 1]))
        assert np.array_equal(gathered.model_state[0], [3.0, 3.0, 0.0, 1.0])
        assert np.array_equal(gathered.model_state[1], [9.0, 8.0, 7.0])
