"""Vectorized engines: equivalence with the scalar reference engines.

The vectorized particle filter samples the same laws as the scalar
:class:`~repro.inference.engine.ParticleFilter` — and because NumPy
batched draws consume the generator stream exactly like sequential
scalar draws, a same-seed run of the HMM/coin models is numerically the
*same* run up to float summation order. :class:`VectorizedKalmanSDS`
must reproduce the exact closed-form Kalman posterior the scalar SDS
engine computes through its delayed-sampling graph.
"""

import numpy as np
import pytest

from repro.bench.data import coin_data, kalman_data, outlier_data
from repro.bench.models import CoinModel, HmmModel, KalmanModel, OutlierModel
from repro.dists import Gaussian
from repro.inference import infer
from repro.vectorized import (
    ArrayEmpirical,
    GaussianMixtureArray,
    ParticleBatch,
    VectorizedKalmanSDS,
    VectorizedParticleFilter,
)


def run_means(engine, observations):
    state = engine.init()
    means = []
    for obs in observations:
        dist, state = engine.step(state, obs)
        means.append(dist.mean())
    return np.array(means), state


class TestPfEquivalenceHmm:
    """Satellite: PF and VectorizedParticleFilter agree on the Fig. 2 HMM."""

    def test_posterior_means_match_scalar_same_seed(self):
        data = kalman_data(40, seed=42, prior_var=1.0, motion_var=1.0, obs_var=1.0)
        scalar = infer(HmmModel(), n_particles=500, method="pf", seed=11)
        vectorized = infer(
            HmmModel(), n_particles=500, method="pf", seed=11, backend="vectorized"
        )
        ms, _ = run_means(scalar, data.observations)
        mv, _ = run_means(vectorized, data.observations)
        assert np.allclose(ms, mv, atol=1e-8)

    def test_tracks_exact_posterior(self):
        data = kalman_data(40, seed=1, prior_var=1.0, motion_var=1.0, obs_var=1.0)
        engine = infer(
            HmmModel(), n_particles=3000, method="pf", seed=5, backend="vectorized"
        )
        exact = infer(HmmModel(), n_particles=1, method="sds", seed=0)
        mv, _ = run_means(engine, data.observations)
        me, _ = run_means(exact, data.observations)
        assert np.max(np.abs(mv - me)) < 0.2


class TestPfEquivalenceCoin:
    """Satellite: PF and VectorizedParticleFilter agree on coin bias."""

    def test_posterior_means_match_scalar_same_seed(self):
        data = coin_data(60, seed=9)
        scalar = infer(CoinModel(), n_particles=400, method="pf", seed=2)
        vectorized = infer(
            CoinModel(), n_particles=400, method="pf", seed=2, backend="vectorized"
        )
        ms, _ = run_means(scalar, data.observations)
        mv, _ = run_means(vectorized, data.observations)
        assert np.allclose(ms, mv, atol=1e-8)

    def test_approaches_exact_beta_posterior(self):
        data = coin_data(80, seed=3)
        engine = infer(
            CoinModel(), n_particles=4000, method="pf", seed=1, backend="vectorized"
        )
        mv, _ = run_means(engine, data.observations)
        alpha, beta = 1.0, 1.0
        for i, obs in enumerate(data.observations):
            alpha, beta = (alpha + 1, beta) if obs else (alpha, beta + 1)
        assert mv[-1] == pytest.approx(alpha / (alpha + beta), abs=0.05)


class TestVectorizedOutlier:
    def test_tracks_truth(self):
        data = outlier_data(40, seed=7)
        engine = infer(
            OutlierModel(), n_particles=1000, method="pf", seed=4, backend="vectorized"
        )
        means, _ = run_means(engine, data.observations)
        errors = np.abs(means[5:] - np.array(data.truths)[5:])
        assert np.median(errors) < 1.5


class TestVectorizedKalmanSDS:
    def test_matches_scalar_sds_exactly(self):
        data = kalman_data(30, seed=42)
        scalar = infer(KalmanModel(), n_particles=1, method="sds", seed=0)
        vectorized = infer(
            KalmanModel(), n_particles=8, method="sds", seed=0, backend="vectorized"
        )
        ms, _ = run_means(scalar, data.observations)
        mv, _ = run_means(vectorized, data.observations)
        assert np.allclose(ms, mv, atol=1e-10)

    def test_matches_closed_form_kalman_filter(self):
        data = kalman_data(25, seed=13)
        engine = VectorizedKalmanSDS(KalmanModel(), n_particles=4, seed=0)
        means, _ = run_means(engine, data.observations)
        posterior = None
        for obs, got in zip(data.observations, means):
            if posterior is None:
                predictive = Gaussian(0.0, 100.0)
            else:
                predictive = Gaussian(posterior.mu, posterior.var + 1.0)
            posterior = predictive.posterior_given_obs(obs, 1.0)
            assert got == pytest.approx(posterior.mu, rel=1e-9)

    def test_output_is_gaussian_mixture_array(self):
        engine = VectorizedKalmanSDS(HmmModel(), n_particles=4, seed=0)
        dist, _ = engine.step(engine.init(), 0.5)
        assert isinstance(dist, GaussianMixtureArray)
        assert len(dist) == 4

    def test_log_evidence_matches_scalar_sds(self):
        data = kalman_data(20, seed=5)
        scalar = infer(KalmanModel(), n_particles=1, method="sds", seed=0)
        vectorized = VectorizedKalmanSDS(KalmanModel(), n_particles=3, seed=0)
        total_s = total_v = 0.0
        state_s, state_v = scalar.init(), vectorized.init()
        for obs in data.observations:
            _, state_s = scalar.step(state_s, obs)
            _, state_v = vectorized.step(state_v, obs)
            total_s += scalar.last_stats.log_evidence
            total_v += vectorized.last_stats.log_evidence
        assert total_v == pytest.approx(total_s, rel=1e-9)

    def test_rejects_non_conjugate_model(self):
        from repro.errors import InferenceError

        with pytest.raises(InferenceError):
            VectorizedKalmanSDS(CoinModel(), n_particles=2)


class TestVectorizedEngineContract:
    def test_state_is_particle_batch(self):
        engine = infer(HmmModel(), n_particles=6, method="pf", backend="vectorized", seed=0)
        state = engine.init()
        assert isinstance(state, ParticleBatch)
        dist, state2 = engine.step(state, 0.5)
        assert isinstance(dist, ArrayEmpirical)
        assert state2.n == 6

    def test_resample_threshold_accumulates_weights(self):
        engine = infer(
            HmmModel(), n_particles=10, method="pf", seed=0,
            backend="vectorized", resample_threshold=0.0,
        )
        state = engine.init()
        for obs in (1.0, 2.0, 3.0):
            _, state = engine.step(state, obs)
        assert len(np.unique(np.round(state.log_weights, 6))) > 1

    def test_always_resample_resets_weights(self):
        engine = infer(HmmModel(), n_particles=10, method="pf", seed=0, backend="vectorized")
        _, state = engine.step(engine.init(), 1.0)
        assert np.all(state.log_weights == 0.0)

    @pytest.mark.parametrize("scheme", ["systematic", "stratified", "multinomial", "residual"])
    def test_all_resamplers_work(self, scheme):
        engine = infer(
            HmmModel(), n_particles=8, method="pf", seed=0,
            backend="vectorized", resampler=scheme,
        )
        dist, _ = engine.step(engine.init(), 1.0)
        assert np.isfinite(dist.mean())

    def test_all_neg_inf_weights_fall_back_to_uniform(self):
        """Satellite: zero-likelihood steps keep the stream running."""
        from repro.vectorized import VectorizedCoin

        # every particle observes an impossible outcome: p is in (0,1)
        # open interval almost surely, but force it with a point mass
        class ImpossibleCoin(VectorizedCoin):
            def step_batch(self, state, yobs, n, rng):
                xt, state, _ = super().step_batch(state, yobs, n, rng)
                return xt, state, np.full(n, -np.inf)

        engine = VectorizedParticleFilter(ImpossibleCoin(), n_particles=5, seed=0)
        dist, state = engine.step(engine.init(), True)
        assert np.allclose(dist.weights, 0.2)
        assert np.isfinite(dist.mean())
        assert engine.last_stats.log_evidence == -np.inf

    def test_memory_words_scales_with_particles(self):
        small = infer(HmmModel(), n_particles=10, method="pf", backend="vectorized", seed=0)
        big = infer(HmmModel(), n_particles=100, method="pf", backend="vectorized", seed=0)
        _, ss = small.step(small.init(), 0.0)
        _, sb = big.step(big.init(), 0.0)
        assert big.memory_words(sb) > small.memory_words(ss)

    def test_step_stats_match_scalar_engine(self):
        data = kalman_data(10, seed=2, prior_var=1.0, motion_var=1.0, obs_var=1.0)
        scalar = infer(HmmModel(), n_particles=50, method="pf", seed=9)
        vectorized = infer(HmmModel(), n_particles=50, method="pf", seed=9, backend="vectorized")
        state_s, state_v = scalar.init(), vectorized.init()
        for obs in data.observations:
            _, state_s = scalar.step(state_s, obs)
            _, state_v = vectorized.step(state_v, obs)
            assert vectorized.last_stats.log_evidence == pytest.approx(
                scalar.last_stats.log_evidence, rel=1e-9
            )
            assert vectorized.last_stats.ess == pytest.approx(
                scalar.last_stats.ess, rel=1e-9
            )
