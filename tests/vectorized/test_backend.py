"""The ``backend=`` parameter of ``infer`` and the fallback policy."""

import numpy as np
import pytest

from repro.bench.models import (
    CoinModel,
    HmmModel,
    KalmanModel,
    OutlierModel,
    WalkModel,
)
from repro.errors import InferenceError
from repro.inference import BACKENDS, infer
from repro.inference.engine import (
    BoundedDelayedSampler,
    ParticleFilter,
    StreamingDelayedSampler,
)
from repro.vectorized import (
    VectorizedBetaBernoulliSDS,
    VectorizedGaussianChainSDS,
    VectorizedKalman,
    VectorizedKalmanSDS,
    VectorizedModel,
    VectorizedParticleFilter,
    register_vectorizer,
    vectorize_model,
)
from repro.vectorized.models import VECTORIZED_MODELS


class TestBackendSelection:
    def test_default_backend_is_scalar(self):
        assert isinstance(infer(HmmModel()), ParticleFilter)
        assert not isinstance(infer(HmmModel()), VectorizedParticleFilter)

    def test_unknown_backend_rejected(self):
        with pytest.raises(InferenceError):
            infer(HmmModel(), backend="gpu")

    def test_backends_constant(self):
        assert set(BACKENDS) == {"scalar", "vectorized", "auto"}

    @pytest.mark.parametrize("model_cls", [KalmanModel, HmmModel, CoinModel, OutlierModel])
    def test_pf_vectorizes_registered_models(self, model_cls):
        engine = infer(model_cls(), n_particles=4, method="pf", backend="vectorized")
        assert isinstance(engine, VectorizedParticleFilter)

    def test_sds_vectorizes_conjugate_chains_only(self):
        assert isinstance(
            infer(KalmanModel(), method="sds", backend="vectorized"),
            VectorizedKalmanSDS,
        )
        assert isinstance(
            infer(CoinModel(), method="sds", backend="vectorized"),
            VectorizedBetaBernoulliSDS,
        )
        # The Outlier model rides the generic batched DS graph since
        # PR 5 (VectorizedOutlierSDS survives only as a test oracle).
        outlier_engine = infer(OutlierModel(), method="sds", backend="vectorized")
        assert isinstance(outlier_engine, VectorizedGaussianChainSDS)
        # no closed-form SDS engine registered: scalar fallback
        assert isinstance(
            infer(WalkModel(), method="sds", backend="vectorized"),
            StreamingDelayedSampler,
        )

    def test_auto_behaves_like_vectorized(self):
        assert isinstance(
            infer(HmmModel(), method="pf", backend="auto"), VectorizedParticleFilter
        )
        assert isinstance(
            infer(WalkModel(), method="pf", backend="auto"), ParticleFilter
        )


class TestFallback:
    def test_unvectorizable_model_falls_back(self):
        engine = infer(WalkModel(), n_particles=4, method="pf", backend="vectorized")
        assert isinstance(engine, ParticleFilter)

    def test_chain_bds_vectorizes(self):
        """Gaussian-chain models route bds to the array-native graph engine."""
        engine = infer(HmmModel(), n_particles=4, method="bds", backend="vectorized")
        assert isinstance(engine, VectorizedGaussianChainSDS)
        assert engine.mode == "bds"

    def test_unvectorizable_method_falls_back(self):
        # WalkModel is not a registered chain; "ds" has no batched engine.
        engine = infer(WalkModel(), n_particles=4, method="bds", backend="vectorized")
        assert isinstance(engine, BoundedDelayedSampler)
        engine = infer(HmmModel(), n_particles=4, method="ds", backend="vectorized")
        assert not isinstance(engine, VectorizedGaussianChainSDS)

    def test_fallback_engine_still_runs(self):
        engine = infer(WalkModel(), n_particles=4, method="pf", backend="vectorized", seed=0)
        dist, _ = engine.step(engine.init(), None)
        assert np.isfinite(dist.mean())

    def test_direct_vectorized_model_accepted(self):
        engine = infer(
            VectorizedKalman(), n_particles=4, method="pf", backend="vectorized", seed=0
        )
        assert isinstance(engine, VectorizedParticleFilter)
        dist, _ = engine.step(engine.init(), 0.5)
        assert np.isfinite(dist.mean())


class TestVectorizeModel:
    def test_maps_scalar_parameters(self):
        model = KalmanModel(prior_mean=2.0, prior_var=5.0, motion_var=0.5, obs_var=0.1)
        batched = vectorize_model(model)
        assert isinstance(batched, VectorizedKalman)
        assert batched.prior_mean == 2.0
        assert batched.prior_var == 5.0
        assert batched.motion_var == 0.5
        assert batched.obs_var == 0.1

    def test_unknown_model_returns_none(self):
        assert vectorize_model(WalkModel()) is None

    def test_subclass_does_not_inherit_vectorization(self):
        class TweakedKalman(KalmanModel):
            def step(self, state, yobs, ctx):
                return super().step(state, yobs, ctx)

        assert vectorize_model(TweakedKalman()) is None

    def test_register_vectorizer_extends_registry(self):
        class MyModel(WalkModel):
            pass

        class MyVectorized(VectorizedModel):
            def init_batch(self, n, rng):
                return None

            def step_batch(self, state, inp, n, rng):
                x = rng.normal(0.0, 1.0, size=n) if state is None else state
                return x, x, np.zeros(n)

        register_vectorizer(MyModel, lambda m: MyVectorized())
        try:
            engine = infer(MyModel(), n_particles=3, method="pf", backend="vectorized", seed=0)
            assert isinstance(engine, VectorizedParticleFilter)
            dist, _ = engine.step(engine.init(), None)
            assert np.isfinite(dist.mean())
        finally:
            VECTORIZED_MODELS.pop(MyModel, None)

    def test_vectorized_pf_rejects_unknown_model_directly(self):
        with pytest.raises(InferenceError):
            VectorizedParticleFilter(WalkModel(), n_particles=2)
