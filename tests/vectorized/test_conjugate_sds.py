"""Closed-form vectorized SDS beyond the Gaussian chain.

The Beta-Bernoulli kernels and the two engines built on them:
``VectorizedBetaBernoulliSDS`` (Coin) must reproduce the scalar SDS
posterior exactly — the conjugate update is deterministic — and
``VectorizedOutlierSDS`` must agree with the scalar SDS engine in law.
"""

import math

import numpy as np
import pytest

from repro.bench.data import outlier_data
from repro.bench.models import CoinModel, OutlierModel
from repro.dists import Beta
from repro.errors import DistributionError
from repro.inference import infer
from repro.vectorized import (
    BetaMixtureArray,
    beta_bernoulli_log_prob,
    beta_bernoulli_predictive,
    beta_bernoulli_update,
)


class TestKernels:
    def test_predictive_probability(self):
        p = beta_bernoulli_predictive([2.0, 1.0], [2.0, 3.0])
        assert p == pytest.approx([0.5, 0.25])

    def test_log_prob_matches_predictive_mass(self):
        logp = beta_bernoulli_log_prob(True, np.array([3.0]), np.array([1.0]))
        assert logp == pytest.approx([math.log(0.75)])
        logp = beta_bernoulli_log_prob(False, np.array([3.0]), np.array([1.0]))
        assert logp == pytest.approx([math.log(0.25)])

    def test_update_scalar_observation(self):
        alpha, beta = beta_bernoulli_update(True, np.ones(3), np.ones(3))
        assert np.all(alpha == 2.0) and np.all(beta == 1.0)

    def test_update_per_particle_indicators(self):
        alpha, beta = beta_bernoulli_update(
            np.array([True, False]), np.array([1.0, 1.0]), np.array([5.0, 5.0])
        )
        assert alpha.tolist() == [2.0, 1.0]
        assert beta.tolist() == [5.0, 6.0]


class TestBetaMixtureArray:
    def test_uniform_components_match_scalar_beta(self):
        mixture = BetaMixtureArray([3.0, 3.0], [2.0, 2.0])
        scalar = Beta(3.0, 2.0)
        assert mixture.mean() == pytest.approx(scalar.mean())
        assert mixture.variance() == pytest.approx(scalar.variance())
        assert mixture.log_pdf(0.6) == pytest.approx(scalar.log_pdf(0.6))

    def test_log_pdf_outside_support(self):
        mixture = BetaMixtureArray([2.0], [2.0])
        assert mixture.log_pdf(0.0) == -math.inf
        assert mixture.log_pdf(1.5) == -math.inf

    def test_component_access(self):
        mixture = BetaMixtureArray([2.0, 4.0], [3.0, 5.0])
        assert isinstance(mixture.component(1), Beta)
        assert mixture.component(1).alpha == 4.0
        assert len(mixture) == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DistributionError):
            BetaMixtureArray([1.0, -1.0], [1.0, 1.0])
        with pytest.raises(DistributionError):
            BetaMixtureArray([1.0], [1.0, 2.0])

    def test_sample_in_support(self):
        mixture = BetaMixtureArray([5.0], [2.0])
        rng = np.random.default_rng(0)
        draws = [mixture.sample(rng) for _ in range(20)]
        assert all(0.0 < x < 1.0 for x in draws)


class TestCoinSDS:
    def test_matches_exact_conjugate_posterior(self):
        observations = [True, True, False, True, True, False, True]
        engine = infer(
            CoinModel(), n_particles=6, method="sds", backend="vectorized", seed=0
        )
        state = engine.init()
        for y in observations:
            dist, state = engine.step(state, y)
        heads = sum(observations)
        tails = len(observations) - heads
        exact = Beta(1.0 + heads, 1.0 + tails)
        assert dist.mean() == pytest.approx(exact.mean())
        assert dist.variance() == pytest.approx(exact.variance())

    def test_matches_scalar_sds_engine(self):
        observations = [True, False, True, True]

        def run(backend):
            engine = infer(
                CoinModel(alpha=2.0, beta_param=3.0), n_particles=4,
                method="sds", backend=backend, seed=0,
            )
            state = engine.init()
            means = []
            for y in observations:
                dist, state = engine.step(state, y)
                means.append(dist.mean())
            return means

        assert run("vectorized") == pytest.approx(run("scalar"))

    def test_single_particle_is_exact(self):
        """Like scalar SDS: one particle already computes the posterior."""
        engine = infer(
            CoinModel(), n_particles=1, method="sds", backend="vectorized", seed=0
        )
        state = engine.init()
        dist, state = engine.step(state, True)
        assert dist.mean() == pytest.approx(Beta(2.0, 1.0).mean())

    def test_evidence_matches_scalar_sds(self):
        """The Rao-Blackwellized log-evidence is exact on both paths."""
        observations = [True, True, False]

        def total_evidence(backend):
            engine = infer(
                CoinModel(), n_particles=3, method="sds", backend=backend, seed=0
            )
            state = engine.init()
            total = 0.0
            for y in observations:
                _, state = engine.step(state, y)
                total += engine.last_stats.log_evidence
            return total

        assert total_evidence("vectorized") == pytest.approx(
            total_evidence("scalar")
        )


class TestOutlierSDS:
    def test_agrees_with_scalar_sds_in_law(self):
        """Same model, same data: posterior means agree statistically."""
        data = outlier_data(25, seed=4)

        def final_means(backend, seeds):
            means = []
            for seed in seeds:
                engine = infer(
                    OutlierModel(), n_particles=300, method="sds",
                    backend=backend, seed=seed,
                )
                state = engine.init()
                for y in data.observations:
                    dist, state = engine.step(state, y)
                means.append(dist.mean())
            return np.asarray(means)

        vectorized = final_means("vectorized", range(5))
        scalar = final_means("scalar", range(5, 10))
        assert np.mean(vectorized) == pytest.approx(np.mean(scalar), abs=0.35)

    def test_posterior_variance_positive_and_finite(self):
        engine = infer(
            OutlierModel(), n_particles=50, method="sds", backend="vectorized",
            seed=0,
        )
        state = engine.init()
        for y in (0.5, 0.9, 25.0, 1.1):  # includes one wild outlier
            dist, state = engine.step(state, y)
            assert np.isfinite(dist.mean())
            assert dist.variance() > 0.0

    def test_outlier_indicator_conditions_beta(self):
        """After steps, the (alpha, beta) counts grew by one per step.

        The Outlier model now runs on the generic batched DS graph, so
        the conjugate counts live in the graph's Beta slot (folding any
        still-deferred indicator when queried).
        """
        engine = infer(
            OutlierModel(), n_particles=8, method="sds", backend="vectorized",
            seed=0,
        )
        state = engine.init()
        for t, y in enumerate((0.5, 0.7, 0.6), start=1):
            _, state = engine.step(state, y)
        graph = state.state.graph
        beta_slots = [s for s in graph.live_slots() if graph.family[s] == "beta"]
        assert len(beta_slots) == 1
        alpha, beta = graph.posterior_marginal(beta_slots[0])
        assert np.all(alpha + beta == pytest.approx(100.0 + 1000.0 + 3))
