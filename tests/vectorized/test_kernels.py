"""Batched distribution kernels against the scalar interface."""

import numpy as np
import pytest

from repro.dists import (
    Bernoulli,
    Beta,
    Categorical,
    Gaussian,
    MvGaussian,
    Poisson,
)
from repro.vectorized import log_prob, sample_n, supports_batch
from repro.vectorized.kernels import (
    bernoulli_log_prob,
    bernoulli_sample,
    categorical_sample,
    gaussian_log_prob,
    gaussian_sample,
)

BATCHED_DISTS = [
    Gaussian(1.5, 2.0),
    Bernoulli(0.3),
    Beta(2.0, 5.0),
    Categorical([0.2, 0.5, 0.3]),
    MvGaussian([0.0, 1.0], [[2.0, 0.3], [0.3, 1.0]]),
]


class TestSampleN:
    @pytest.mark.parametrize("dist", BATCHED_DISTS, ids=lambda d: type(d).__name__)
    def test_registered(self, dist):
        assert supports_batch(dist)

    @pytest.mark.parametrize("dist", BATCHED_DISTS, ids=lambda d: type(d).__name__)
    def test_moments_match(self, dist, rng):
        draws = np.asarray(sample_n(dist, 20000, rng), dtype=float)
        assert draws.shape[0] == 20000
        mean = draws.mean(axis=0)
        std = np.sqrt(np.atleast_2d(np.asarray(dist.variance())).diagonal())
        assert np.allclose(mean, dist.mean(), atol=4 * np.max(std) / np.sqrt(20000) + 1e-3)

    def test_same_stream_as_scalar_gaussian(self, rng_factory):
        """Batched draws consume the generator stream like sequential draws."""
        d = Gaussian(0.0, 1.0)
        batched = sample_n(d, 5, rng_factory(7))
        rng = rng_factory(7)
        sequential = [d.sample(rng) for _ in range(5)]
        assert np.allclose(batched, sequential)

    def test_fallback_loops_scalar_interface(self, rng):
        draws = sample_n(Poisson(3.0), 64, rng)
        assert not supports_batch(Poisson(3.0))
        assert draws.shape == (64,)
        assert np.all(draws >= 0)


class TestLogProb:
    @pytest.mark.parametrize("dist", BATCHED_DISTS, ids=lambda d: type(d).__name__)
    def test_matches_scalar_log_pdf(self, dist, rng):
        values = sample_n(dist, 50, rng)
        batched = log_prob(dist, values)
        scalar = np.array([dist.log_pdf(v) for v in values])
        assert np.allclose(batched, scalar)

    def test_bernoulli_impossible_value(self):
        assert log_prob(Bernoulli(1.0), np.array([False]))[0] == -np.inf

    def test_beta_out_of_support(self):
        out = log_prob(Beta(2.0, 3.0), np.array([-0.5, 0.5, 1.0]))
        assert out[0] == -np.inf and out[2] == -np.inf
        assert np.isfinite(out[1])

    def test_categorical_out_of_range(self):
        out = log_prob(Categorical([0.5, 0.5]), np.array([-1, 0, 5]))
        assert out[0] == -np.inf and out[2] == -np.inf

    def test_fallback_matches_scalar(self, rng):
        d = Poisson(2.5)
        values = np.array([0, 1, 2, 3])
        assert np.allclose(log_prob(d, values), [d.log_pdf(v) for v in values])


class TestArrayParameterKernels:
    def test_gaussian_per_particle_params(self, rng):
        mus = np.array([-10.0, 0.0, 10.0])
        draws = gaussian_sample(mus, 0.01, rng)
        assert np.allclose(draws, mus, atol=1.0)

    def test_gaussian_log_prob_matches_objects(self):
        mus = np.array([0.0, 1.0])
        variances = np.array([1.0, 4.0])
        got = gaussian_log_prob(0.5, mus, variances)
        expected = [Gaussian(m, v).log_pdf(0.5) for m, v in zip(mus, variances)]
        assert np.allclose(got, expected)

    def test_bernoulli_sample_rate(self, rng):
        p = np.full(20000, 0.25)
        draws = bernoulli_sample(p, rng)
        assert draws.dtype == bool
        assert draws.mean() == pytest.approx(0.25, abs=0.02)

    def test_bernoulli_log_prob_edge_probs(self):
        got = bernoulli_log_prob(np.array([True, False]), np.array([0.0, 1.0]))
        assert np.all(got == -np.inf)

    def test_categorical_sample_frequencies(self, rng):
        probs = np.broadcast_to(np.array([0.1, 0.6, 0.3]), (30000, 3))
        draws = categorical_sample(probs, rng)
        freqs = np.bincount(draws, minlength=3) / draws.size
        assert np.allclose(freqs, [0.1, 0.6, 0.3], atol=0.02)

    def test_categorical_sample_row_parameters(self, rng):
        # each row puts all mass on a different category
        probs = np.eye(3)
        draws = categorical_sample(probs, rng)
        assert np.array_equal(draws, [0, 1, 2])
