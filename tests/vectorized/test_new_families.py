"""The PR-8 conjugacy families and the per-slot degradation ladder.

Four layers of checks:

* scalar-vs-vectorized posterior equivalence for the Gamma-Poisson and
  Dirichlet-Categorical families at a fixed seed (the sds conjugate
  updates are deterministic, so the match is tight);
* executor bit-identity for the count model: serial / threads /
  processes / processes-persistent reproduce the same posterior stream
  bit for bit;
* the realize-and-continue regression: a model that goes non-conjugate
  on ONE slot at step k realizes only that slot (node-state array
  inspection + ``repro_slot_realizations_total``), keeps the other
  slots symbolic, never migrates to ``ScalarFallbackState``, and stays
  accurate (MSE harness);
* the deprecated ``ChainFragmentError`` alias warns and resolves to
  ``ChainStructureError``.
"""

import warnings

import numpy as np
import pytest

from repro.bench.data import categorical_data, count_data
from repro.bench.models import DirichletCategoricalModel, PoissonCountModel
from repro.inference import infer
from repro.lang import gamma, poisson
from repro.obs.registry import default_registry
from repro.runtime.node import ProbCtx, ProbNode
from repro.vectorized import (
    CountMixtureArray,
    DirichletMixtureArray,
    GammaMixtureArray,
    ScalarFallbackState,
    VectorizedGaussianChainSDS,
)
from repro.vectorized.sds_graph import MARGINALIZED, REALIZED

CDATA = count_data(25, seed=11)
DDATA = categorical_data(25, seed=11, alpha=(2.0, 1.0, 3.0))


def run_stream(engine, observations):
    state = engine.init()
    means = []
    for obs in observations:
        dist, state = engine.step(state, obs)
        mean = dist.mean() if callable(dist.mean) else dist.mean
        means.append(np.asarray(mean, dtype=float))
    if hasattr(state, "release"):
        state.release()
    return np.asarray(means), dist, state


def counter_value(name, labels=None):
    counter = default_registry().get(name, labels)
    return 0.0 if counter is None else counter.value


class TestGammaPoissonEquivalence:
    def test_sds_posterior_matches_scalar(self):
        scalar = infer(
            PoissonCountModel(), n_particles=32, method="sds", seed=4
        )
        batched = infer(
            PoissonCountModel(), n_particles=32, method="sds",
            backend="vectorized", seed=4,
        )
        assert isinstance(batched, VectorizedGaussianChainSDS)
        s_means, _, _ = run_stream(scalar, CDATA.observations)
        v_means, v_dist, _ = run_stream(batched, CDATA.observations)
        assert isinstance(v_dist, GammaMixtureArray)
        assert v_means == pytest.approx(s_means, rel=1e-10)

    def test_sds_posterior_is_exact_conjugate_update(self):
        """Every particle carries the same closed-form Gamma posterior:
        shape + sum(counts), rate + #observations."""
        model = PoissonCountModel(shape=2.0, rate=1.0)
        batched = infer(
            model, n_particles=8, method="sds", backend="vectorized", seed=0
        )
        _, dist, _ = run_stream(batched, CDATA.observations)
        total = sum(CDATA.observations)
        k = len(CDATA.observations)
        expected = (2.0 + total) / (1.0 + k)
        assert dist.mean() == pytest.approx(expected, rel=1e-12)

    def test_bds_particle_values_bitwise_identical(self):
        scalar = infer(PoissonCountModel(), n_particles=16, method="bds", seed=0)
        batched = infer(
            PoissonCountModel(), n_particles=16, method="bds",
            backend="vectorized", seed=0,
        )
        s_state, v_state = scalar.init(), batched.init()
        for y in CDATA.observations:
            s_dist, s_state = scalar.step(s_state, y)
            v_dist, v_state = batched.step(v_state, y)
            assert np.array_equal(
                np.asarray(s_dist.values, dtype=float), v_dist.values
            )


class TestDirichletCategoricalEquivalence:
    def test_sds_posterior_matches_scalar(self):
        model = DirichletCategoricalModel(alpha=(2.0, 1.0, 3.0))
        scalar = infer(model, n_particles=32, method="sds", seed=4)
        batched = infer(
            model, n_particles=32, method="sds", backend="vectorized", seed=4
        )
        assert isinstance(batched, VectorizedGaussianChainSDS)
        s_means, _, _ = run_stream(scalar, DDATA.observations)
        v_means, v_dist, _ = run_stream(batched, DDATA.observations)
        assert isinstance(v_dist, DirichletMixtureArray)
        assert v_means == pytest.approx(s_means, rel=1e-10)

    def test_sds_posterior_is_exact_conjugate_update(self):
        """The posterior concentration adds one pseudo-count per
        observed category."""
        alpha = np.array([2.0, 1.0, 3.0])
        model = DirichletCategoricalModel(alpha=tuple(alpha))
        batched = infer(
            model, n_particles=8, method="sds", backend="vectorized", seed=0
        )
        _, dist, _ = run_stream(batched, DDATA.observations)
        counts = np.bincount(DDATA.observations, minlength=3)
        post = alpha + counts
        assert dist.mean() == pytest.approx(post / post.sum(), rel=1e-12)


class TestCountExecutorBitIdentity:
    @pytest.mark.parametrize(
        "executor", ["serial", "threads:2", "processes-persistent:2"]
    )
    def test_count_sds_matches_serial_reference(self, executor):
        def run(executor_spec):
            engine = infer(
                PoissonCountModel(), n_particles=64, method="sds",
                backend="vectorized", seed=0, executor=executor_spec,
            )
            means, _, _ = run_stream(engine, CDATA.observations[:12])
            return means

        reference = run("serial")
        assert np.array_equal(reference, run(executor))


class OneBadSlotAtK(ProbNode):
    """Three persistent Gamma rate slots; slot 0 turns non-conjugate at
    step k (``poisson(2 * lam)`` has no conjugate edge), forcing the
    batched graph to realize that slot only."""

    def __init__(self, k: int = 3):
        self.k = k

    def init(self):
        return (0, None)

    def step(self, state, yobs, ctx: ProbCtx):
        t, lams = state
        if lams is None:
            lams = tuple(ctx.sample(gamma(2.0, 1.0)) for _ in range(3))
        for i, lam in enumerate(lams):
            if i == 0 and t >= self.k:
                ctx.observe(poisson(2.0 * lam), yobs[i])  # non-conjugate
            else:
                ctx.observe(poisson(lam), yobs[i])
        return lams[1], (t + 1, lams)


class TestRealizeAndContinueRegression:
    def _dataset(self, steps=8, seed=3):
        rng = np.random.default_rng(seed)
        lams = rng.gamma(2.0, 1.0, size=3)
        obs = [tuple(int(c) for c in rng.poisson(lams)) for _ in range(steps)]
        return lams, obs

    def test_one_bad_slot_keeps_others_symbolic(self):
        truths, obs = self._dataset()
        before = counter_value(
            "repro_slot_realizations_total", {"family": "gamma"}
        )
        engine = VectorizedGaussianChainSDS(
            OneBadSlotAtK(3), mode="sds", n_particles=64, seed=0
        )
        state = engine.init()
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            for y in obs:
                dist, state = engine.step(state, y)
        # never migrated: the stream stayed on the batched graph
        assert not isinstance(state, ScalarFallbackState)
        assert engine._scalar_engine is None
        # exactly one realization: slot 0 at step k; once realized, the
        # later non-conjugate steps reuse the concrete rows
        after = counter_value(
            "repro_slot_realizations_total", {"family": "gamma"}
        )
        assert after - before == 1.0
        # node-state array inspection: slot 0 realized, slots 1-2 still
        # symbolic (marginalized) with their exact conjugate posteriors
        chain = state.state
        _, lams = chain.model_state
        states = [chain.graph.node_state[lam.node.slot] for lam in lams]
        assert states[0] == REALIZED
        assert states[1] == MARGINALIZED and states[2] == MARGINALIZED
        # the output (slot 1) posterior is still the exact closed form
        total = sum(y[1] for y in obs)
        expected = (2.0 + total) / (1.0 + len(obs))
        assert dist.mean() == pytest.approx(expected, rel=1e-12)
        # accuracy: posterior mean near the generating rate (MSE harness)
        assert (dist.mean() - truths[1]) ** 2 < 1.0

    def test_scalar_fallback_counter_untouched(self):
        _, obs = self._dataset()
        engine = VectorizedGaussianChainSDS(
            OneBadSlotAtK(2), mode="sds", n_particles=16, seed=1
        )
        state = engine.init()
        for y in obs:
            _, state = engine.step(state, y)
        snapshot = default_registry().snapshot()
        assert not any(
            name.startswith("repro_scalar_fallback_total")
            and "OneBadSlotAtK" in name
            for name in snapshot["counters"]
        )


class TestDeprecatedAlias:
    def test_chain_fragment_error_warns_and_aliases(self):
        from repro.vectorized import sds_graph

        with pytest.warns(DeprecationWarning, match="ChainFragmentError"):
            alias = sds_graph.ChainFragmentError
        assert alias is sds_graph.ChainStructureError

    def test_package_level_alias_warns_too(self):
        import repro.vectorized as vec

        with pytest.warns(DeprecationWarning, match="ChainFragmentError"):
            alias = vec.ChainFragmentError
        assert alias is vec.ChainStructureError
        assert "ChainFragmentError" not in vec.__all__


class TestMixtureArrays:
    def test_gamma_mixture_moments_and_log_pdf(self):
        import math

        shapes = np.array([2.0, 3.0])
        rates = np.array([1.0, 2.0])
        mix = GammaMixtureArray(shapes, rates)
        assert mix.mean() == pytest.approx(0.5 * 2.0 + 0.5 * 1.5)
        x = 1.7

        def gamma_pdf(x, a, b):
            return math.exp(
                a * math.log(b)
                - math.lgamma(a)
                + (a - 1.0) * math.log(x)
                - b * x
            )

        expected = 0.5 * gamma_pdf(x, 2.0, 1.0) + 0.5 * gamma_pdf(x, 3.0, 2.0)
        assert mix.log_pdf(x) == pytest.approx(math.log(expected), rel=1e-12)

    def test_count_mixture_poisson_vs_nb(self):
        pois = CountMixtureArray(np.array([2.0, 4.0]))
        assert pois.mean() == pytest.approx(3.0)
        nb = CountMixtureArray(np.array([2.0, 4.0]), np.array([1.0, 2.0]))
        assert nb.mean() == pytest.approx(0.5 * 2.0 + 0.5 * 2.0)

    def test_dirichlet_mixture_mean_on_simplex(self):
        alphas = np.array([[1.0, 2.0, 3.0], [2.0, 2.0, 2.0]])
        mix = DirichletMixtureArray(alphas)
        mean = np.asarray(mix.mean(), dtype=float)
        assert mean.shape == (3,)
        assert mean.sum() == pytest.approx(1.0)

    def test_nan_weights_zeroed(self):
        shapes = np.array([2.0, 3.0])
        rates = np.array([1.0, 1.0])
        with pytest.warns(RuntimeWarning, match="NaN"):
            mix = GammaMixtureArray(
                shapes, rates, weights=np.array([1.0, np.nan])
            )
        assert mix.mean() == pytest.approx(2.0)
