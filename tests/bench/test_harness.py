"""The evaluation harness: sweeps, profiles, and reporting."""

import numpy as np
import pytest

from repro.bench import (
    KalmanModel,
    Quantiles,
    accuracy_sweep,
    format_profile,
    format_sweep,
    kalman_data,
    latency_sweep,
    memory_profile,
    particles_to_match,
    run_mse,
    step_latency_profile,
    summarize_profile,
)


@pytest.fixture(scope="module")
def data():
    return kalman_data(15, seed=2)


class TestQuantiles:
    def test_of_ordered_values(self):
        q = Quantiles.of(list(range(101)))
        assert q.median == pytest.approx(50.0)
        assert q.q10 == pytest.approx(10.0)
        assert q.q90 == pytest.approx(90.0)


class TestRunMse:
    def test_sds_single_particle_mse_finite(self, data):
        mse = run_mse(KalmanModel, "sds", 1, data, seed=0)
        assert 0.0 < mse < 10.0

    def test_same_seed_reproducible(self, data):
        a = run_mse(KalmanModel, "pf", 5, data, seed=3)
        b = run_mse(KalmanModel, "pf", 5, data, seed=3)
        assert a == b


class TestSweeps:
    def test_accuracy_sweep_shape(self, data):
        result = accuracy_sweep(
            KalmanModel, data, particle_counts=[1, 5], methods=["pf", "sds"],
            runs=3,
        )
        assert set(result.cells) == {"pf", "sds"}
        assert set(result.cells["pf"]) == {1, 5}
        q = result.get("sds", 1)
        assert q.q10 <= q.median <= q.q90

    def test_sds_flat_in_particles(self, data):
        result = accuracy_sweep(
            KalmanModel, data, particle_counts=[1, 10], methods=["sds"], runs=3
        )
        assert result.get("sds", 1).median == pytest.approx(
            result.get("sds", 10).median, rel=1e-9
        )

    def test_latency_sweep_positive(self, data):
        result = latency_sweep(
            KalmanModel, data, particle_counts=[1, 4], methods=["pf"], runs=1
        )
        assert result.get("pf", 4).median > 0.0

    def test_particles_to_match(self, data):
        sweep = accuracy_sweep(
            KalmanModel, data, particle_counts=[1, 2, 20, 80],
            methods=["pf", "sds"], runs=5,
        )
        needed = particles_to_match(sweep, "sds", "pf", slack=1.5)
        assert needed in (1, 2, 20, 80, -1)
        # with 80 particles PF should be within 1.5x of exact on this data
        assert needed != -1


class TestProfiles:
    def test_memory_profile_orders_engines(self, data):
        result = memory_profile(
            KalmanModel, data, n_particles=3, methods=["sds", "ds"]
        )
        summary = summarize_profile(result)
        assert summary["ds"]["growth"] > 2.0
        assert summary["sds"]["growth"] < 1.5

    def test_step_latency_profile_shape(self, data):
        result = step_latency_profile(
            KalmanModel, data, n_particles=2, methods=["pf"]
        )
        assert len(result.series["pf"]) == len(data.observations)


class TestReporting:
    def test_format_sweep_contains_all_cells(self, data):
        sweep = accuracy_sweep(
            KalmanModel, data, particle_counts=[1], methods=["sds"], runs=2
        )
        text = format_sweep(sweep, "title")
        assert "title" in text
        assert "sds" in text
        assert "1" in text

    def test_format_profile_truncates(self, data):
        profile = memory_profile(KalmanModel, data, n_particles=1, methods=["pf"])
        text = format_profile(profile, "mem", max_rows=5)
        assert text.count("\n") < 15
