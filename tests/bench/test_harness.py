"""The evaluation harness: sweeps, profiles, and reporting."""

import numpy as np
import pytest

from repro.bench import (
    KalmanModel,
    Quantiles,
    accuracy_sweep,
    format_profile,
    format_sweep,
    kalman_data,
    latency_sweep,
    memory_profile,
    particles_to_match,
    parse_method_spec,
    run_mse,
    step_latency_profile,
    summarize_profile,
)
from repro.errors import InferenceError


@pytest.fixture(scope="module")
def data():
    return kalman_data(15, seed=2)


class TestQuantiles:
    def test_of_ordered_values(self):
        q = Quantiles.of(list(range(101)))
        assert q.median == pytest.approx(50.0)
        assert q.q10 == pytest.approx(10.0)
        assert q.q90 == pytest.approx(90.0)


class TestRunMse:
    def test_sds_single_particle_mse_finite(self, data):
        mse = run_mse(KalmanModel, "sds", 1, data, seed=0)
        assert 0.0 < mse < 10.0

    def test_same_seed_reproducible(self, data):
        a = run_mse(KalmanModel, "pf", 5, data, seed=3)
        b = run_mse(KalmanModel, "pf", 5, data, seed=3)
        assert a == b


class TestSweeps:
    def test_accuracy_sweep_shape(self, data):
        result = accuracy_sweep(
            KalmanModel, data, particle_counts=[1, 5], methods=["pf", "sds"],
            runs=3,
        )
        assert set(result.cells) == {"pf", "sds"}
        assert set(result.cells["pf"]) == {1, 5}
        q = result.get("sds", 1)
        assert q.q10 <= q.median <= q.q90

    def test_sds_flat_in_particles(self, data):
        result = accuracy_sweep(
            KalmanModel, data, particle_counts=[1, 10], methods=["sds"], runs=3
        )
        assert result.get("sds", 1).median == pytest.approx(
            result.get("sds", 10).median, rel=1e-9
        )

    def test_latency_sweep_positive(self, data):
        result = latency_sweep(
            KalmanModel, data, particle_counts=[1, 4], methods=["pf"], runs=1
        )
        assert result.get("pf", 4).median > 0.0

    def test_particles_to_match(self, data):
        sweep = accuracy_sweep(
            KalmanModel, data, particle_counts=[1, 2, 20, 80],
            methods=["pf", "sds"], runs=5,
        )
        needed = particles_to_match(sweep, "sds", "pf", slack=1.5)
        assert needed in (1, 2, 20, 80, -1)
        # with 80 particles PF should be within 1.5x of exact on this data
        assert needed != -1


class TestProfiles:
    def test_memory_profile_orders_engines(self, data):
        result = memory_profile(
            KalmanModel, data, n_particles=3, methods=["sds", "ds"]
        )
        summary = summarize_profile(result)
        assert summary["ds"]["growth"] > 2.0
        assert summary["sds"]["growth"] < 1.5

    def test_step_latency_profile_shape(self, data):
        result = step_latency_profile(
            KalmanModel, data, n_particles=2, methods=["pf"]
        )
        assert len(result.series["pf"]) == len(data.observations)


class TestMethodSpecs:
    def test_plain_method(self):
        assert parse_method_spec("pf") == ("pf", "scalar", None)

    def test_method_with_backend(self):
        assert parse_method_spec("pf@vectorized") == ("pf", "vectorized", None)

    def test_method_with_backend_and_executor(self):
        assert parse_method_spec("pf@vectorized@threads:2") == (
            "pf", "vectorized", "threads:2",
        )

    def test_empty_backend_segment_means_scalar(self):
        assert parse_method_spec("sds@@threads:2") == ("sds", "scalar", "threads:2")

    def test_bad_specs_rejected(self):
        with pytest.raises(InferenceError):
            parse_method_spec("pf@gpu")
        with pytest.raises(InferenceError):
            parse_method_spec("pf@scalar@warp")
        with pytest.raises(InferenceError):
            parse_method_spec("pf@scalar@threads:2@extra")

    def test_executor_spec_runs_in_sweep(self, data):
        result = latency_sweep(
            KalmanModel, data, particle_counts=[8],
            methods=["pf", "pf@scalar@threads:2"], runs=1,
        )
        assert result.get("pf@scalar@threads:2", 8).median > 0.0

    def test_executor_spec_reproduces_serial_mse(self, data):
        serial = run_mse(KalmanModel, "pf@scalar@serial", 8, data, seed=3)
        threaded = run_mse(KalmanModel, "pf@scalar@threads:2", 8, data, seed=3)
        assert serial == threaded


class TestEngineKwargs:
    def test_run_mse_forwards_engine_kwargs(self, data):
        # threshold 0 disables resampling entirely: same seed, different
        # trajectory than the default always-resample configuration
        default = run_mse(KalmanModel, "pf", 10, data, seed=3)
        no_resample = run_mse(
            KalmanModel, "pf", 10, data, seed=3,
            engine_kwargs={"resample_threshold": 0.0},
        )
        assert default != no_resample

    def test_accuracy_sweep_forwards_engine_kwargs(self, data):
        result = accuracy_sweep(
            KalmanModel, data, particle_counts=[5], methods=["pf"], runs=2,
            engine_kwargs={"resampler": "residual"},
        )
        assert result.get("pf", 5).median > 0.0

    def test_sweep_kwargs_change_results(self, data):
        base = accuracy_sweep(
            KalmanModel, data, particle_counts=[5], methods=["pf"], runs=2,
        )
        residual = accuracy_sweep(
            KalmanModel, data, particle_counts=[5], methods=["pf"], runs=2,
            engine_kwargs={"resampler": "residual"},
        )
        assert base.get("pf", 5).median != residual.get("pf", 5).median

    def test_profiles_accept_engine_kwargs(self, data):
        profile = memory_profile(
            KalmanModel, data, n_particles=3, methods=["pf"],
            engine_kwargs={"resample_threshold": 0.5},
        )
        assert len(profile.series["pf"]) == len(data.observations)
        latency = step_latency_profile(
            KalmanModel, data, n_particles=3, methods=["pf"],
            engine_kwargs={"resample_threshold": 0.5},
        )
        assert len(latency.series["pf"]) == len(data.observations)


class TestReporting:
    def test_format_sweep_contains_all_cells(self, data):
        sweep = accuracy_sweep(
            KalmanModel, data, particle_counts=[1], methods=["sds"], runs=2
        )
        text = format_sweep(sweep, "title")
        assert "title" in text
        assert "sds" in text
        assert "1" in text

    def test_format_profile_truncates(self, data):
        profile = memory_profile(KalmanModel, data, n_particles=1, methods=["pf"])
        text = format_profile(profile, "mem", max_rows=5)
        assert text.count("\n") < 15
