"""The textual paper sources agree with the hand-written models.

Both forms of each benchmark — the parsed-and-compiled Appendix-B source
and the direct ProbNode in repro.bench.models — must compute identical
posteriors under SDS (the posterior is deterministic given the data).
"""

import pytest

from repro.bench.data import coin_data, kalman_data
from repro.bench.models import CoinModel, HmmModel, KalmanModel
from repro.bench.paper_sources import PAPER_SOURCES, load_paper_node
from repro.inference import infer


def posteriors(model, observations, method="sds"):
    engine = infer(model, n_particles=1, method=method, seed=0)
    state = engine.init()
    result = []
    for obs in observations:
        dist, state = engine.step(state, obs)
        result.append((dist.mean(), dist.variance()))
    return result


class TestSourceModelAgreement:
    def test_kalman_source_equals_model(self):
        data = kalman_data(20, seed=8)
        from_source = posteriors(load_paper_node("delay_kalman"), data.observations)
        from_model = posteriors(KalmanModel(), data.observations)
        for (m1, v1), (m2, v2) in zip(from_source, from_model):
            assert m1 == pytest.approx(m2, rel=1e-9)
            assert v1 == pytest.approx(v2, rel=1e-9)

    def test_hmm_source_equals_model(self):
        data = kalman_data(20, seed=8, prior_var=1.0)
        from_source = posteriors(load_paper_node("hmm"), data.observations)
        from_model = posteriors(HmmModel(), data.observations)
        for (m1, v1), (m2, v2) in zip(from_source, from_model):
            assert m1 == pytest.approx(m2, rel=1e-9)

    def test_coin_source_equals_model(self):
        data = coin_data(20, seed=8)
        from_source = posteriors(load_paper_node("coin"), data.observations)
        from_model = posteriors(CoinModel(), data.observations)
        for (m1, v1), (m2, v2) in zip(from_source, from_model):
            assert m1 == pytest.approx(m2, rel=1e-12)
            assert v1 == pytest.approx(v2, rel=1e-12)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_paper_node("nope")

    def test_all_sources_parse(self):
        from repro.core import check_program, prepare_program
        from repro.frontend import parse_program

        for name, source in PAPER_SOURCES.items():
            kinds = check_program(prepare_program(parse_program(source)))
            assert kinds[name] == "P"
