"""The robot example substrate: model, environment, closed loop."""

import numpy as np
import pytest

from repro.bench.robot import (
    RobotConfig,
    RobotEnv,
    RobotModel,
    reached_target,
    robot_matrices,
)
from repro.dists import Gaussian, Mixture
from repro.inference import infer
from repro.runtime import Pid


class TestMatrices:
    def test_dynamics_shapes(self):
        f, b, q = robot_matrices(RobotConfig())
        assert f.shape == (3, 3)
        assert b.shape == (3,)
        assert q.shape == (3, 3)

    def test_position_integrates_velocity(self):
        config = RobotConfig(dt=0.5)
        f, _, _ = robot_matrices(config)
        z = np.array([1.0, 2.0, 0.0])
        z_next = f @ z
        assert z_next[0] == pytest.approx(1.0 + 2.0 * 0.5)


class TestModel:
    def test_sds_output_is_gaussian_mixture(self):
        engine = infer(RobotModel(), n_particles=2, method="sds", seed=0)
        state = engine.init()
        dist, state = engine.step(state, (0.0, 0.0, 0.0))
        assert isinstance(dist, Mixture)
        assert all(isinstance(c, Gaussian) for c in dist.components)

    def test_gps_fix_shrinks_position_variance(self):
        engine = infer(RobotModel(), n_particles=1, method="sds", seed=0)
        state = engine.init()
        dist_no_gps, state = engine.step(state, (0.0, None, 0.0))
        dist_gps, state = engine.step(state, (0.0, 0.0, 0.0))
        assert dist_gps.variance() < dist_no_gps.variance()

    def test_dead_reckoning_variance_grows(self):
        engine = infer(RobotModel(), n_particles=1, method="sds", seed=0)
        state = engine.init()
        _, state = engine.step(state, (0.0, 0.0, 0.0))  # anchor with GPS
        variances = []
        for _ in range(5):
            dist, state = engine.step(state, (0.0, None, 0.0))
            variances.append(dist.variance())
        assert variances == sorted(variances)

    def test_runs_under_particle_filter_too(self):
        engine = infer(RobotModel(), n_particles=30, method="pf", seed=0)
        state = engine.init()
        for _ in range(5):
            dist, state = engine.step(state, (0.0, 0.0, 0.0))
        assert abs(dist.mean()) < 3.0


class TestEnvironment:
    def test_env_reproducible(self):
        a, b = RobotEnv(seed=1), RobotEnv(seed=1)
        assert a.step(1.0) == b.step(1.0)

    def test_gps_period(self):
        config = RobotConfig(gps_period=3)
        env = RobotEnv(config, seed=0)
        fixes = [env.step(0.0)[1] is not None for _ in range(9)]
        assert fixes == [True, False, False] * 3


class TestClosedLoop:
    def test_robot_reaches_target(self):
        """Inference in the loop: the SDS posterior drives the PID."""
        config = RobotConfig()
        env = RobotEnv(config, seed=3)
        engine = infer(RobotModel(config), n_particles=1, method="sds", seed=0)
        state = engine.init()
        pid = Pid(kp=2.0, kd=4.0, h=config.dt).instance()
        cmd = 0.0
        reached_step = None
        for t in range(400):
            a_obs, gps, true_p = env.step(cmd)
            dist, state = engine.step(state, (a_obs, gps, cmd))
            cmd = max(-5.0, min(5.0, pid.step(config.target - dist.mean())))
            if reached_target(dist, config):
                reached_step = t
                break
        assert reached_step is not None
        assert abs(true_p - config.target) < 2.0
