"""Benchmark models and data generation."""

import numpy as np
import pytest

from repro.bench.data import coin_data, kalman_data, outlier_data
from repro.bench.models import CoinModel, HmmModel, KalmanModel, OutlierModel
from repro.inference import infer


class TestDataGeneration:
    def test_kalman_deterministic_by_seed(self):
        a = kalman_data(20, seed=3)
        b = kalman_data(20, seed=3)
        assert a.observations == b.observations
        assert a.truths == b.truths

    def test_different_seeds_differ(self):
        assert kalman_data(20, seed=1).observations != kalman_data(20, seed=2).observations

    def test_coin_truth_is_constant_bias(self):
        data = coin_data(30, seed=5)
        assert len(set(data.truths)) == 1
        assert 0.0 < data.truths[0] < 1.0
        assert all(isinstance(o, bool) for o in data.observations)

    def test_outlier_rate_near_prior_mean(self):
        # with alpha=100, beta=1000 roughly 9% of readings are invalid
        data = outlier_data(3000, seed=7)
        far = sum(
            1 for o, t in zip(data.observations, data.truths) if abs(o - t) > 5
        )
        assert 0.02 < far / len(data) < 0.2

    def test_lengths(self):
        data = kalman_data(17, seed=0)
        assert len(data) == 17
        assert len(data.truths) == len(data.observations)


class TestModelShapes:
    @pytest.mark.parametrize("method", ["pf", "bds", "sds", "ds", "importance"])
    @pytest.mark.parametrize(
        "model_cls,datagen",
        [
            (KalmanModel, kalman_data),
            (CoinModel, coin_data),
            (OutlierModel, outlier_data),
        ],
    )
    def test_every_model_runs_under_every_engine(self, model_cls, datagen, method):
        data = datagen(10, seed=1)
        engine = infer(model_cls(), n_particles=5, method=method, seed=0)
        state = engine.init()
        for obs in data.observations:
            dist, state = engine.step(state, obs)
            assert np.isfinite(float(np.asarray(dist.mean())))


class TestHmmModel:
    def test_section2_constants(self):
        model = HmmModel(speed_x=2.0, noise_x=0.5)
        assert model.motion_var == 2.0
        assert model.obs_var == 0.5

    def test_hmm_sds_matches_kalman_recursion(self):
        model = HmmModel(speed_x=1.0, noise_x=1.0)
        engine = infer(model, n_particles=1, method="sds", seed=0)
        state = engine.init()
        mu, var = 0.0, 1.0
        for t, obs in enumerate([0.4, 0.9, 1.3]):
            if t > 0:
                var += 1.0
            gain = var / (var + 1.0)
            mu = mu + gain * (obs - mu)
            var = (1 - gain) * var
            dist, state = engine.step(state, obs)
            assert dist.mean() == pytest.approx(mu, rel=1e-12)
