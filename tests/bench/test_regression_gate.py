"""The mechanical perf-regression gate over benchmark JSON artifacts."""

import json

import pytest

from repro.bench import (
    compare_medians,
    format_regressions,
    load_bench_medians,
    machine_drift,
    sweep_records,
    write_bench_json,
)
from repro.bench.regression import BenchCell, compare_cells, load_bench_cells
from repro.bench.harness import Quantiles, SweepResult


def _document(path, cells):
    """Write a bench JSON with {(model, spec, particles): median_ms}."""
    entries = [
        {
            "model": model,
            "spec": spec,
            "particles": particles,
            "metric": "latency_ms",
            "q10_ms": median * 0.9,
            "median_ms": median,
            "q90_ms": median * 1.1,
        }
        for (model, spec, particles), median in cells.items()
    ]
    write_bench_json(path, entries, meta={"benchmark": "unit-test"})
    return path


class TestLoadMedians:
    def test_roundtrip(self, tmp_path):
        path = _document(
            tmp_path / "fresh.json",
            {("hmm", "bds@vectorized", 1000): 0.5},
        )
        medians = load_bench_medians(path)
        assert medians == {("hmm", "bds@vectorized", 1000): 0.5}

    def test_entries_without_latency_skipped(self, tmp_path):
        path = tmp_path / "doc.json"
        with open(path, "w") as handle:
            json.dump(
                {"entries": [{"model": "m", "spec": "s", "particles": 1,
                              "metric": "mse"}]},
                handle,
            )
        assert load_bench_medians(path) == {}

    def test_non_latency_metric_cannot_shadow_latency_cell(self, tmp_path):
        """Concatenated documents may carry several metrics per cell; a
        memory/accuracy record must not overwrite the latency median."""
        path = tmp_path / "doc.json"
        with open(path, "w") as handle:
            json.dump(
                {"entries": [
                    {"model": "m", "spec": "s", "particles": 1,
                     "metric": "latency_ms", "median_ms": 0.5},
                    {"model": "m", "spec": "s", "particles": 1,
                     "metric": "memory_words", "median": 9999.0},
                ]},
                handle,
            )
        assert load_bench_medians(path) == {("m", "s", 1): 0.5}

    def test_metric_filter_selects_byte_records(self, tmp_path):
        """``metric="pickled_bytes"`` loads the transport byte cells
        that the default latency view skips — and vice versa."""
        path = tmp_path / "doc.json"
        with open(path, "w") as handle:
            json.dump(
                {"entries": [
                    {"model": "m", "spec": "s", "particles": 1,
                     "metric": "latency_ms", "median_ms": 0.5},
                    {"model": "m", "spec": "s", "particles": 1,
                     "metric": "pickled_bytes_per_step", "median": 160.0},
                    # legacy record without a metric tag: latency only
                    {"model": "m", "spec": "legacy", "particles": 1,
                     "median_ms": 0.7},
                ]},
                handle,
            )
        bytes_cells = load_bench_cells(path, metric="pickled_bytes")
        assert {k: c.median for k, c in bytes_cells.items()} == {
            ("m", "s", 1): 160.0
        }
        latency_cells = load_bench_cells(path)
        assert {k: c.median for k, c in latency_cells.items()} == {
            ("m", "s", 1): 0.5, ("m", "legacy", 1): 0.7,
        }

    def test_sweep_records_feed_the_gate(self, tmp_path):
        """The records the benchmark suite writes are gate-loadable."""
        result = SweepResult(
            metric="latency_ms",
            methods=["sds@vectorized"],
            particle_counts=[100],
            cells={"sds@vectorized": {100: Quantiles(0.1, 0.2, 0.3)}},
        )
        path = tmp_path / "sweep.json"
        write_bench_json(path, sweep_records(result, "outlier"))
        assert load_bench_medians(path) == {("outlier", "sds@vectorized", 100): 0.2}


class TestCompareMedians:
    def test_no_regression_within_threshold(self):
        base = {("m", "s", 100): 1.0}
        fresh = {("m", "s", 100): 1.25}
        assert compare_medians(fresh, base, threshold=0.30) == []

    def test_regression_beyond_threshold_reported(self):
        base = {("m", "s", 100): 1.0, ("m", "t", 100): 1.0}
        fresh = {("m", "s", 100): 1.5, ("m", "t", 100): 0.9}
        regressions = compare_medians(fresh, base, threshold=0.30)
        assert len(regressions) == 1
        assert regressions[0].key == ("m", "s", 100)
        assert regressions[0].ratio == pytest.approx(1.5)

    def test_new_and_retired_specs_ignored(self):
        base = {("m", "old", 100): 1.0}
        fresh = {("m", "new", 100): 99.0}
        assert compare_medians(fresh, base) == []

    def test_speedups_pass(self):
        base = {("m", "s", 100): 2.0}
        fresh = {("m", "s", 100): 0.5}
        assert compare_medians(fresh, base) == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_medians({}, {}, threshold=-0.1)

    def test_machine_drift_lower_quartile_of_ratios(self):
        base = {("m", a, 100): 1.0 for a in "abcde"}
        fresh = {("m", a, 100): r for a, r in zip("abcde", (1.4, 1.5, 1.6, 1.5, 9.0))}
        assert machine_drift(fresh, base) == pytest.approx(1.5)

    def test_machine_drift_not_dragged_by_regressed_majority(self):
        """Even when most cells regress, the clean-cell quartile holds."""
        base = {("m", a, 100): 1.0 for a in "abcde"}
        fresh = {("m", a, 100): r for a, r in zip("abcde", (1.0, 1.0, 3.0, 3.0, 3.0))}
        assert machine_drift(fresh, base) == pytest.approx(1.0)

    def test_machine_drift_clamped_at_one(self):
        base = {("m", a, 100): 2.0 for a in "abc"}
        fresh = {("m", a, 100): 1.0 for a in "abc"}
        assert machine_drift(fresh, base) == 1.0
        assert machine_drift({}, {}) == 1.0

    def test_machine_drift_needs_three_cells(self):
        """With one or two shared cells drift is indistinguishable from
        regression; the comparison stays raw."""
        base = {("m", "a", 100): 1.0, ("m", "b", 100): 1.0}
        fresh = {("m", "a", 100): 5.0, ("m", "b", 100): 5.0}
        assert machine_drift(fresh, base) == 1.0

    def test_uniform_slowdown_is_not_a_regression(self):
        """A 2x-slower machine shifts every cell; the gate must not fire."""
        base = {("m", a, 100): 1.0 for a in "abcd"}
        fresh = {("m", a, 100): 2.0 for a in "abcd"}
        assert compare_medians(fresh, base, threshold=0.30) == []
        # ...but a raw comparison does flag them all
        raw = compare_medians(fresh, base, threshold=0.30, normalize=False)
        assert len(raw) == 4

    def test_relative_regression_survives_drift_correction(self):
        """One spec 4x slower on a uniformly 1.5x-slower machine fails."""
        base = {("m", a, 100): 1.0 for a in "abcde"}
        fresh = {("m", a, 100): 1.5 for a in "abcd"}
        fresh[("m", "e", 100)] = 4.0
        regressions = compare_medians(fresh, base, threshold=0.30)
        assert [r.key for r in regressions] == [("m", "e", 100)]
        assert regressions[0].drift == pytest.approx(1.5)
        assert regressions[0].corrected_ratio == pytest.approx(4.0 / 1.5)
        assert "drift" in str(regressions[0])

    def test_format_verdicts(self):
        assert "OK" in format_regressions([], 0.3)
        regs = compare_medians({("m", "s", 10): 2.0}, {("m", "s", 10): 1.0})
        text = format_regressions(regs, 0.3)
        assert "FAILED" in text and "2.00x" in text


class TestCompareCells:
    """The quantile-confirmed gate criterion used by the CLI."""

    @staticmethod
    def _cell(median, spread=0.1):
        return BenchCell(median, q10=median * (1 - spread), q90=median * (1 + spread))

    def test_true_regression_confirmed(self):
        base = {("m", "s", 100): self._cell(1.0), ("m", "t", 100): self._cell(1.0)}
        fresh = {("m", "s", 100): self._cell(2.5), ("m", "t", 100): self._cell(1.0)}
        regressions = compare_cells(fresh, base, threshold=0.30)
        assert [r.key for r in regressions] == [("m", "s", 100)]

    def test_contention_spike_not_confirmed(self):
        """Median inflated by a load phase, q10 floor unchanged: pass."""
        base = {("m", "s", 100): self._cell(1.0), ("m", "t", 100): self._cell(1.0)}
        fresh = {
            # median 1.6x but the quiet floor matches the baseline
            ("m", "s", 100): BenchCell(1.6, q10=1.0, q90=2.4),
            ("m", "t", 100): self._cell(1.0),
        }
        assert compare_cells(fresh, base, threshold=0.30) == []

    def test_fluky_fast_baseline_not_flagged(self):
        """A baseline cell recorded in an unusually quiet phase has a
        wide honest q90; a fresh run at the machine's true cost passes."""
        base = {
            ("m", "s", 100): BenchCell(4.4, q10=4.0, q90=5.3),
            ("m", "t", 100): self._cell(1.0),
        }
        fresh = {
            ("m", "s", 100): BenchCell(6.2, q10=5.3, q90=7.0),
            ("m", "t", 100): self._cell(1.0),
        }
        # 1.41x median regression, but q10 (5.3) does not clear
        # q90 * 1.3 (6.9): treated as measurement noise.
        assert compare_cells(fresh, base, threshold=0.30) == []

    def test_cells_without_quantiles_fall_back_to_median(self):
        base = {("m", "s", 100): BenchCell(1.0)}
        fresh = {("m", "s", 100): BenchCell(2.0)}
        regressions = compare_cells(fresh, base, threshold=0.30)
        assert len(regressions) == 1

    def test_load_bench_cells_roundtrip(self, tmp_path):
        path = _document(tmp_path / "doc.json", {("m", "s", 10): 1.0})
        cells = load_bench_cells(path)
        cell = cells[("m", "s", 10)]
        assert cell.median == 1.0
        assert cell.q10 == pytest.approx(0.9)
        assert cell.q90 == pytest.approx(1.1)
        assert cell.has_quantiles


class TestCliScript:
    def test_exit_codes(self, tmp_path):
        import importlib.util
        import pathlib

        script = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "check_perf_regression.py"
        )
        spec = importlib.util.spec_from_file_location("check_perf", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        base = _document(tmp_path / "base.json", {("m", "s", 100): 1.0})
        ok = _document(tmp_path / "ok.json", {("m", "s", 100): 1.1})
        bad = _document(tmp_path / "bad.json", {("m", "s", 100): 2.0})
        assert module.main([str(ok), str(base)]) == 0
        assert module.main([str(bad), str(base)]) == 1
        assert module.main([str(bad), str(base), "--threshold", "1.5"]) == 0