"""infer inside compiled programs: engine plumbing and configuration."""

import pytest

from repro.core import Interpreter, load
from repro.dsl import (
    app,
    arrow,
    const,
    eq,
    gaussian,
    infer_,
    node,
    observe,
    op,
    pre,
    program,
    sample,
    var,
    where_,
)
from repro.errors import CompilationError
from repro.runtime import run


def hmm_main(method="sds", particles=1):
    hmm = node("hmm", "y", where_(
        var("x"),
        eq("x", sample(gaussian(arrow(const(0.0), pre(var("x"))), const(1.0)))),
        eq("_u", observe(gaussian(var("x"), const(1.0)), var("y"))),
    ))
    main = node("main", "y",
                infer_(app("hmm", var("y")), particles=particles,
                       method=method, seed=0))
    return program(hmm, main)


class TestCompiledInfer:
    @pytest.mark.parametrize("method", ["pf", "bds", "sds", "ds"])
    def test_all_methods_run_compiled(self, method):
        module = load(hmm_main(method=method, particles=5))
        main = module.det_node("main")
        outputs = run(main, [0.5, 1.0, 1.5])
        assert all(hasattr(d, "mean") for d in outputs)

    def test_two_instances_have_independent_state(self):
        module = load(hmm_main())
        main = module.det_node("main")
        s1, s2 = main.init(), main.init()
        d1, s1 = main.step(s1, 10.0)
        d2, s2 = main.step(s2, -10.0)
        assert d1.mean() > 0 > d2.mean()

    def test_prob_node_of_deterministic_allowed(self):
        """Kind D lifts to P: any node can serve as a model."""
        prog = program(node("n", "x", var("x") + const(1.0)))
        module = load(prog)
        model = module.prob_node("n")
        from repro.inference import infer

        engine = infer(model, n_particles=2, method="pf", seed=0)
        state = engine.init()
        dist, _ = engine.step(state, 1.0)
        assert dist.mean() == pytest.approx(2.0)

    def test_det_node_of_probabilistic_rejected(self):
        module = load(hmm_main())
        with pytest.raises(CompilationError):
            module.det_node("hmm")

    def test_node_names_and_kinds(self):
        module = load(hmm_main())
        assert module.node_names() == ["hmm", "main"]
        assert module.kind("hmm") == "P"
        assert module.kind("main") == "D"


class TestInterpretedInfer:
    def test_interpreter_prob_node_under_engine(self):
        from repro.inference import infer

        prog = hmm_main()
        interp = Interpreter(prog)
        model = interp.prob_node("hmm")
        engine = infer(model, n_particles=1, method="sds", seed=0)
        state = engine.init()
        dist, state = engine.step(state, 0.5)
        assert dist.mean() == pytest.approx(0.25)  # N(0,1) prior, obs var 1

    def test_nested_infer_inside_deterministic_node(self):
        prog = hmm_main()
        interp = Interpreter(prog)
        main = interp.det_node("main")
        outputs = run(main, [0.5, 1.5])
        assert outputs[1].mean() != outputs[0].mean()
