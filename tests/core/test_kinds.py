"""The kind system of Fig. 7: D/P assignment and rule violations."""

import pytest

from repro.core import D, P, check_program, kind_of_expr
from repro.dsl import (
    app,
    arrow,
    const,
    eq,
    factor,
    gaussian,
    infer_,
    node,
    observe,
    pre,
    program,
    sample,
    var,
    where_,
)
from repro.errors import KindError, ScopeError


class TestBasicKinds:
    def test_constants_and_variables_are_d(self):
        assert kind_of_expr(const(1.0), {}) == D
        assert kind_of_expr(var("x"), {}) == D

    def test_sample_is_p(self):
        assert kind_of_expr(sample(gaussian(0.0, 1.0)), {}) == P

    def test_observe_is_p(self):
        assert kind_of_expr(observe(gaussian(0.0, 1.0), const(1.0)), {}) == P

    def test_factor_is_p(self):
        assert kind_of_expr(factor(const(-1.0)), {}) == P

    def test_infer_is_d(self):
        assert kind_of_expr(infer_(sample(gaussian(0.0, 1.0))), {}) == D

    def test_infer_of_deterministic_allowed(self):
        # D lifts to P by sub-typing, so infer(det) is well-kinded
        assert kind_of_expr(infer_(const(1.0)), {}) == D


class TestPropagation:
    def test_op_joins_kinds(self):
        assert kind_of_expr(sample(gaussian(0.0, 1.0)) + const(1.0), {}) == P
        assert kind_of_expr(const(1.0) + const(2.0), {}) == D

    def test_where_propagates_equation_kind(self):
        expr = where_(var("x"), eq("x", sample(gaussian(0.0, 1.0))))
        assert kind_of_expr(expr, {}) == P

    def test_application_takes_node_kind(self):
        env = {"f": P, "g": D}
        assert kind_of_expr(app("f", const(1.0)), env) == P
        assert kind_of_expr(app("g", const(1.0)), env) == D

    def test_surface_sugar_kinds(self):
        assert kind_of_expr(arrow(const(0.0), pre(var("x"))), {}) == D
        assert kind_of_expr(arrow(const(0.0), sample(gaussian(0.0, 1.0))), {}) == P


class TestViolations:
    def test_sample_of_probabilistic_arg_rejected(self):
        inner = sample(gaussian(0.0, 1.0))
        with pytest.raises(KindError):
            kind_of_expr(sample(gaussian(inner, 1.0)), {})

    def test_observe_of_probabilistic_value_rejected(self):
        with pytest.raises(KindError):
            kind_of_expr(
                observe(gaussian(0.0, 1.0), sample(gaussian(0.0, 1.0))), {}
            )

    def test_probabilistic_node_argument_rejected(self):
        env = {"f": D}
        with pytest.raises(KindError):
            kind_of_expr(app("f", sample(gaussian(0.0, 1.0))), env)

    def test_undeclared_node_rejected(self):
        with pytest.raises(ScopeError):
            kind_of_expr(app("missing", const(1.0)), {})

    def test_pre_of_probabilistic_rejected(self):
        with pytest.raises(KindError):
            kind_of_expr(pre(sample(gaussian(0.0, 1.0))), {})


class TestProgramChecking:
    def test_program_kinds(self):
        hmm = node("hmm", "y", where_(
            var("x"),
            eq("x", sample(gaussian(0.0, 1.0))),
        ))
        main = node("main", "y", infer_(app("hmm", var("y"))))
        kinds = check_program(program(hmm, main))
        assert kinds == {"hmm": P, "main": D}

    def test_deterministic_program(self):
        counter = node("counter", "u", where_(
            var("x"),
            eq("x", arrow(const(0.0), pre(var("x")) + const(1.0))),
        ))
        kinds = check_program(program(counter))
        assert kinds == {"counter": D}

    def test_probabilistic_node_used_deterministically(self):
        """A P node applied inside a D node without infer propagates P.

        The result is that the outer node is itself P — probabilistic
        kinds only discharge through infer.
        """
        prob = node("prob", "u", sample(gaussian(0.0, 1.0)))
        outer = node("outer", "u", app("prob", var("u")) + const(1.0))
        kinds = check_program(program(prob, outer))
        assert kinds["outer"] == P
