"""Optional signals and the binding present (Fig. 5's GPS conditioning)."""

import pytest

from repro.core import Interpreter, load
from repro.core.signals import present_signal
from repro.dsl import (
    app,
    arrow,
    const,
    eq,
    gaussian,
    infer_,
    node,
    observe,
    pre,
    program,
    sample,
    var,
    where_,
)
from repro.errors import LanguageError
from repro.runtime import run


class TestEncoding:
    def test_signal_must_be_variable(self):
        with pytest.raises(LanguageError):
            present_signal(const(1.0) + const(2.0), "x", const(0.0), const(1.0))

    def test_binds_payload_when_present(self):
        body = present_signal(var("s"), "payload", var("payload"), const(-1.0))
        prog = program(node("n", "s", body))
        outputs = run(load(prog).det_node("n"), [None, 2.5, None, 7.0])
        assert outputs == [-1.0, 2.5, -1.0, 7.0]

    def test_else_branch_state_preserved(self):
        """Stateful then-branch only advances on present instants."""
        counter = where_(
            var("c"), eq("c", arrow(const(0.0), pre(var("c")) + const(1.0)))
        )
        body = present_signal(var("s"), "p", counter + var("p"), const(-1.0))
        prog = program(node("n", "s", body))
        outputs = run(load(prog).det_node("n"), [10.0, None, 10.0, 10.0])
        assert outputs == [10.0, -1.0, 11.0, 12.0]

    def test_compiled_equals_interpreted(self):
        body = present_signal(var("s"), "x", var("x") * const(2.0), const(0.0))
        prog = program(node("n", "s", body))
        inputs = [None, 1.0, 3.0, None]
        assert run(load(prog).det_node("n"), inputs) == run(
            Interpreter(prog).det_node("n"), inputs
        )


class TestGpsConditioning:
    def test_intermittent_observation_model(self):
        """The gps_acc_tracker pattern: condition only on present fixes."""
        model = node("tracker", ("gps", "y"), where_(
            var("x"),
            eq("x", sample(gaussian(arrow(const(0.0), pre(var("x"))), const(1.0)))),
            eq("_a", observe(gaussian(var("x"), const(1.0)), var("y"))),
            eq("_g", present_signal(
                var("gps"),
                "fix",
                observe(gaussian(var("x"), const(0.25)), var("fix")),
                const(()),
            )),
        ))
        main = node("main", ("gps", "y"),
                    infer_(app("tracker", var("gps"), var("y")),
                           particles=1, method="sds", seed=0))
        module = load(program(model, main))
        n = module.det_node("main")
        state = n.init()
        # without a fix
        d1, state = n.step(state, (None, 1.0))
        # with a precise fix at 2.0: posterior must move toward it and tighten
        d2, state = n.step(state, (2.0, 1.0))
        assert d2.variance() < d1.variance()
        assert abs(d2.mean() - 2.0) < abs(d1.mean() - 2.0)

    def test_sds_matches_kalman_with_intermittent_updates(self):
        """Oracle check: Kalman filter with occasional extra updates."""
        from repro.dists import Gaussian

        model = node("tracker", ("gps", "y"), where_(
            var("x"),
            eq("x", sample(gaussian(arrow(const(0.0), pre(var("x"))), const(1.0)))),
            eq("_a", observe(gaussian(var("x"), const(1.0)), var("y"))),
            eq("_g", present_signal(
                var("gps"), "fix",
                observe(gaussian(var("x"), const(0.25)), var("fix")),
                const(()),
            )),
        ))
        main = node("main", ("gps", "y"),
                    infer_(app("tracker", var("gps"), var("y")),
                           particles=1, method="sds", seed=0))
        n = load(program(model, main)).det_node("main")
        state = n.init()

        oracle_mu, oracle_var = 0.0, 1.0
        inputs = [(None, 0.5), (1.2, 0.8), (None, 1.0), (0.9, 1.1)]
        for t, (gps, y) in enumerate(inputs):
            if t > 0:
                oracle_var += 1.0
            post = Gaussian(oracle_mu, oracle_var).posterior_given_obs(y, 1.0)
            if gps is not None:
                post = post.posterior_given_obs(gps, 0.25)
            oracle_mu, oracle_var = post.mu, post.var
            dist, state = n.step(state, (gps, y))
            assert dist.mean() == pytest.approx(oracle_mu, rel=1e-9)
            assert dist.variance() == pytest.approx(oracle_var, rel=1e-9)
