"""The co-iterative interpreter: states, scoping, and error paths."""

import pytest

from repro.core import Interpreter
from repro.dsl import (
    app,
    arrow,
    const,
    eq,
    gaussian,
    init,
    last,
    node,
    pair,
    pre,
    program,
    sample,
    var,
    where_,
)
from repro.errors import EvaluationError, ScopeError
from repro.runtime import run


class TestStates:
    def test_initial_state_shape_of_where(self):
        prog = program(node("n", "u", where_(
            var("x"),
            init("x", 5.0),
            eq("x", last("x") + const(1.0)),
        )))
        interp = Interpreter(prog)
        mems, eq_states, body_state = interp.det_node("n").init()
        assert mems == (5.0,)

    def test_state_is_immutable_nested_tuples(self):
        prog = program(node("n", "u", where_(
            var("x"), eq("x", arrow(const(0.0), pre(var("x")) + const(1.0)))
        )))
        n = Interpreter(prog).det_node("n")
        state = n.init()
        _, state2 = n.step(state, None)
        # stepping must not mutate the old state (pure transition)
        _, state3 = n.step(state, None)
        assert state2 == state3


class TestScoping:
    def test_unbound_variable(self):
        prog = program(node("n", "u", var("ghost")))
        n = Interpreter(prog).det_node("n")
        with pytest.raises(ScopeError):
            n.step(n.init(), 1.0)

    def test_node_scope_is_not_dynamic(self):
        """A node body cannot see the caller's locals."""
        callee = node("callee", "a", var("secret"))
        caller = node("caller", "u", where_(
            app("callee", var("u")),
            eq("secret", const(42.0)),
        ))
        n = Interpreter(program(callee, caller)).det_node("caller")
        with pytest.raises(ScopeError):
            n.step(n.init(), 1.0)

    def test_undeclared_node_application(self):
        prog = program(node("n", "u", app("missing_node", var("u"))))
        with pytest.raises(ScopeError):
            Interpreter(prog).det_node("n").init()


class TestDeterministicContext:
    def test_sample_without_ctx_raises(self):
        prog = program(node("n", "u", sample(gaussian(const(0.0), const(1.0)))))
        interp = Interpreter(prog)
        n = interp.det_node("n")
        with pytest.raises(EvaluationError):
            n.step(n.init(), None)

    def test_prob_node_runs_with_ctx(self, rng):
        from repro.inference.contexts import SamplingCtx

        prog = program(node("n", "u", sample(gaussian(const(0.0), const(1.0)))))
        model = Interpreter(prog).prob_node("n")
        ctx = SamplingCtx(rng)
        value, _ = model.step(model.init(), None, ctx)
        assert isinstance(value, float)


class TestMultiParam:
    def test_nested_pair_binding(self):
        three = node("f", ("a", "b", "c"), var("a") + var("b") * var("c"))
        n = Interpreter(program(three)).det_node("f")
        out, _ = n.step(n.init(), (1.0, (2.0, 3.0)))
        assert out == 7.0

    def test_pair_outputs(self):
        prog = program(node("n", "u", pair(var("u"), var("u") + const(1.0))))
        outputs = run(Interpreter(prog).det_node("n"), [1.0, 2.0])
        assert outputs == [(1.0, 2.0), (2.0, 3.0)]
