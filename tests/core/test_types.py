"""Data-type analysis (Section 3.2)."""

import pytest

from repro.core import check_types, prepare_program
from repro.core.types import BOOL, FLOAT, TDist, UNIT
from repro.dsl import (
    app,
    arrow,
    bernoulli,
    const,
    eq,
    factor,
    gaussian,
    infer_,
    node,
    observe,
    pre,
    program,
    sample,
    var,
    where_,
)
from repro.errors import TypeCheckError


class TestProbabilisticRules:
    def test_sample_strips_dist(self):
        prog = program(node("n", "u", sample(gaussian(const(0.0), const(1.0)))))
        sigs = check_types(prog)
        assert sigs["n"][1] == FLOAT

    def test_sample_bernoulli_is_bool(self):
        prog = program(node("n", "u", sample(bernoulli(const(0.5)))))
        assert check_types(prog)["n"][1] == BOOL

    def test_observe_is_unit(self):
        prog = program(
            node("n", "y", observe(gaussian(const(0.0), const(1.0)), var("y")))
        )
        sigs = check_types(prog)
        assert sigs["n"][1] == UNIT
        assert sigs["n"][0] == FLOAT  # inferred from the observation

    def test_factor_requires_float(self):
        prog = program(node("n", "u", factor(const(True))))
        with pytest.raises(TypeCheckError):
            check_types(prog)

    def test_infer_wraps_dist(self):
        inner = node("m", "u", sample(gaussian(const(0.0), const(1.0))))
        outer = node("n", "u", infer_(app("m", var("u"))))
        sigs = check_types(program(inner, outer))
        assert sigs["n"][1] == TDist(FLOAT)

    def test_observe_type_mismatch(self):
        prog = program(
            node("n", "u", observe(bernoulli(const(0.5)), const(1.5)))
        )
        with pytest.raises(TypeCheckError):
            check_types(prog)


class TestDeterministicRules:
    def test_arithmetic_is_float(self):
        prog = program(node("n", "x", var("x") + const(1.0)))
        sigs = check_types(prog)
        assert sigs["n"] == (FLOAT, FLOAT)

    def test_bool_plus_float_rejected(self):
        prog = program(node("n", "u", const(True) + const(1.0)))
        with pytest.raises(TypeCheckError):
            check_types(prog)

    def test_arrow_unifies_branches(self):
        prog = program(node("n", "u", arrow(const(True), const(1.0))))
        with pytest.raises(TypeCheckError):
            check_types(prog)

    def test_node_application_propagates(self):
        double = node("double", "x", var("x") * const(2.0))
        main = node("main", "u", app("double", const(True)))
        with pytest.raises(TypeCheckError):
            check_types(program(double, main))

    def test_where_equation_unification(self):
        prog = program(node("n", "u", where_(
            var("x") + var("u"),
            eq("x", const(1.0)),
        )))
        sigs = check_types(prog)
        assert sigs["n"] == (FLOAT, FLOAT)

    def test_prepared_program_still_types(self):
        """Desugaring preserves typability (fresh flags are booleans)."""
        counter = node("counter", "u", where_(
            var("x"),
            eq("x", arrow(const(0.0), pre(var("x")) + const(1.0))),
        ))
        sigs = check_types(prepare_program(program(counter)))
        assert sigs["counter"][1] == FLOAT
