"""Equation scheduling and causality analysis (Section 3.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ast import Eq, InitEq, Const, Last, Var, Op
from repro.core.scheduling import (
    check_initialization,
    instantaneous_reads,
    last_reads,
    schedule_equations,
)
from repro.dsl import const, eq, init, last, op, sample, var, where_, gaussian
from repro.errors import CausalityError, InitializationError


class TestInstantaneousReads:
    def test_var_is_instantaneous(self):
        assert instantaneous_reads(var("x")) == {"x"}

    def test_last_is_not(self):
        assert instantaneous_reads(last("x")) == set()

    def test_nested_where_shadows(self):
        inner = where_(var("a") + var("outer"), eq("a", const(1.0)))
        assert instantaneous_reads(inner) == {"outer"}

    def test_op_collects_all(self):
        expr = op("add", var("a"), op("mul", var("b"), last("c")))
        assert instantaneous_reads(expr) == {"a", "b"}


class TestLastReads:
    def test_collects_last(self):
        expr = op("add", var("a"), last("c"))
        assert last_reads(expr) == {"c"}


class TestSchedule:
    def test_orders_by_dependency(self):
        eqs = (
            eq("y", var("x") + const(1.0)),
            eq("x", const(2.0)),
        )
        ordered = schedule_equations(eqs)
        names = [e.name for e in ordered]
        assert names.index("x") < names.index("y")

    def test_inits_come_first(self):
        eqs = (
            eq("x", last("x") + const(1.0)),
            init("x", 0.0),
        )
        ordered = schedule_equations(eqs)
        assert isinstance(ordered[0], InitEq)

    def test_last_breaks_cycles(self):
        eqs = (
            init("x", 0.0),
            eq("x", var("y")),
            eq("y", last("x") + const(1.0)),
        )
        ordered = schedule_equations(eqs)
        names = [e.name for e in ordered if isinstance(e, Eq)]
        assert names.index("y") < names.index("x")

    def test_instantaneous_cycle_rejected(self):
        eqs = (
            eq("x", var("y")),
            eq("y", var("x")),
        )
        with pytest.raises(CausalityError):
            schedule_equations(eqs)

    def test_self_cycle_rejected(self):
        with pytest.raises(CausalityError):
            schedule_equations((eq("x", var("x") + const(1.0)),))

    def test_duplicate_definition_rejected(self):
        eqs = (eq("x", const(1.0)), eq("x", const(2.0)))
        with pytest.raises(CausalityError):
            schedule_equations(eqs)

    def test_missing_definition_gets_implicit_last(self):
        """init x = c with no defining equation adds x = last x."""
        ordered = schedule_equations((init("x", 1.0),))
        defs = [e for e in ordered if isinstance(e, Eq)]
        assert len(defs) == 1
        assert isinstance(defs[0].expr, Last)

    def test_stable_among_independent(self):
        eqs = (eq("a", const(1.0)), eq("b", const(2.0)), eq("c", const(3.0)))
        ordered = schedule_equations(eqs)
        assert [e.name for e in ordered] == ["a", "b", "c"]

    @given(n=st.integers(min_value=2, max_value=12), seed=st.integers(0, 1000))
    def test_random_chains_schedule_correctly(self, n, seed):
        """A random permutation of a dependency chain always schedules."""
        import random

        rnd = random.Random(seed)
        eqs = [eq("x0", const(0.0))]
        for i in range(1, n):
            eqs.append(eq(f"x{i}", var(f"x{i-1}") + const(1.0)))
        rnd.shuffle(eqs)
        ordered = schedule_equations(tuple(eqs))
        positions = {e.name: i for i, e in enumerate(ordered)}
        for i in range(1, n):
            assert positions[f"x{i-1}"] < positions[f"x{i}"]


class TestInitializationAnalysis:
    def test_last_without_init_rejected(self):
        expr = where_(last("x"), eq("x", const(1.0)))
        with pytest.raises(InitializationError):
            check_initialization(expr)

    def test_last_with_init_accepted(self):
        expr = where_(last("x"), init("x", 0.0), eq("x", const(1.0)))
        check_initialization(expr)

    def test_init_scope_extends_to_nested_blocks(self):
        inner = where_(last("x"), eq("y", const(1.0)))
        outer = where_(inner, init("x", 0.0), eq("x", const(2.0)))
        check_initialization(outer)
