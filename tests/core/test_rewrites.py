"""Source-to-source rewrites: ->, pre, fby elimination (Section 3.1)."""

import pytest

from repro.core.ast import Arrow, Eq, Fby, InitEq, Last, Op, PreE, Where
from repro.core.rewrites import desugar_expr, desugar_node, has_surface_sugar
from repro.dsl import arrow, const, eq, fby, node, pre, sample, gaussian, var, where_
from repro.runtime import run


class TestDetection:
    def test_detects_sugar(self):
        assert has_surface_sugar(arrow(const(0.0), var("x")))
        assert has_surface_sugar(pre(var("x")))
        assert has_surface_sugar(fby(const(0.0), var("x")))
        assert has_surface_sugar(where_(var("x"), eq("x", pre(var("y")))))

    def test_kernel_is_sugar_free(self):
        assert not has_surface_sugar(var("x") + const(1.0))


class TestDesugaring:
    def test_result_is_kernel_only(self):
        expr = where_(
            var("x"),
            eq("x", arrow(const(0.0), pre(var("x")) + const(1.0))),
        )
        result = desugar_expr(expr)
        assert not has_surface_sugar(result)

    def test_arrow_becomes_if_on_first_flag(self):
        expr = where_(var("x"), eq("x", arrow(const(1.0), const(2.0))))
        result = desugar_expr(expr)
        (def_eq,) = [
            e for e in result.equations if isinstance(e, Eq) and e.name == "x"
        ]
        assert isinstance(def_eq.expr, Op)
        assert def_eq.expr.name == "if"
        assert isinstance(def_eq.expr.args[0], Last)

    def test_pre_introduces_init_and_equation(self):
        expr = where_(var("x"), eq("x", pre(var("y")) ), eq("y", const(1.0)))
        result = desugar_expr(expr)
        inits = [e for e in result.equations if isinstance(e, InitEq)]
        assert len(inits) == 1  # the fresh pre variable

    def test_arrows_share_one_flag_per_block(self):
        expr = where_(
            var("x") + var("y"),
            eq("x", arrow(const(0.0), const(1.0))),
            eq("y", arrow(const(5.0), const(6.0))),
        )
        result = desugar_expr(expr)
        inits = [e for e in result.equations if isinstance(e, InitEq)]
        # one shared fst flag, no pre variables
        assert len(inits) == 1

    def test_bare_expression_wrapped_in_where(self):
        result = desugar_expr(arrow(const(1.0), const(2.0)))
        assert isinstance(result, Where)

    def test_fby_equals_arrow_pre(self):
        """e1 fby e2 and e1 -> pre e2 compute the same stream."""
        from repro.core import load
        from repro.dsl import program

        n1 = node("a", "u", where_(
            var("x"), eq("x", fby(const(0.0), var("x") + const(1.0)))
        ))
        n2 = node("a", "u", where_(
            var("x"), eq("x", arrow(const(0.0), pre(var("x") + const(1.0))))
        ))
        out1 = run(load(program(n1)).det_node("a"), [None] * 6)
        out2 = run(load(program(n2)).det_node("a"), [None] * 6)
        assert out1 == out2 == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]


class TestPaperExample:
    def test_counter_example_from_section_3_1(self):
        """x = 0 -> pre x + 1 counts 0, 1, 2, ..."""
        from repro.core import load
        from repro.dsl import program

        counter = node("counter", "u", where_(
            var("x"),
            eq("x", arrow(const(0.0), pre(var("x")) + const(1.0))),
        ))
        outputs = run(load(program(counter)).det_node("counter"), [None] * 5)
        assert outputs == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_desugared_node_equivalent(self):
        from repro.core import load
        from repro.dsl import program

        source = node("n", "u", where_(
            var("x"),
            eq("x", arrow(const(0.0), pre(var("x")) + const(2.0))),
        ))
        desugared = desugar_node(source)
        assert not has_surface_sugar(desugared.body)
        out_src = run(load(program(source)).det_node("n"), [None] * 4)
        out_des = run(load(program(desugared)).det_node("n"), [None] * 4)
        assert out_src == out_des
