"""Property-based compiler testing: random programs, two semantics.

Hypothesis generates random well-formed deterministic dataflow
expressions (arithmetic, ``->``, ``pre``, ``if``, nested ``where``
blocks) and checks Theorem 4.2 on each: the compiled muF term and the
co-iterative interpreter produce identical streams.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Interpreter, load
from repro.core.ast import (
    Arrow,
    Const,
    Eq,
    NodeDecl,
    Op,
    PreE,
    Program,
    Var,
    Where,
)
from repro.runtime import run

# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------

_consts = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False).map(
    lambda v: Const(round(v, 3))
)


def _exprs(var_names, max_depth):
    """Expressions over ``var_names`` (instantaneously readable) plus
    the node input ``u``; depth-bounded."""
    leaves = [_consts, st.just(Var("u"))]
    if var_names:
        leaves.append(st.sampled_from([Var(n) for n in var_names]))
    leaf = st.one_of(*leaves)
    if max_depth <= 0:
        return leaf

    sub = _exprs(var_names, max_depth - 1)

    def binop(name):
        return st.tuples(sub, sub).map(lambda pair: Op(name, pair))

    return st.one_of(
        leaf,
        binop("add"),
        binop("sub"),
        binop("mul"),
        st.tuples(sub, sub).map(lambda p: Arrow(p[0], p[1])),
        sub.map(PreE),
        st.tuples(sub, sub, sub).map(
            lambda t: Op("if", (Op("gt", (t[0], Const(0.0))), t[1], t[2]))
        ),
    )


@st.composite
def programs(draw):
    """A node with a chain of equations, each reading earlier ones."""
    n_eqs = draw(st.integers(min_value=1, max_value=4))
    equations = []
    names = []
    for i in range(n_eqs):
        name = f"x{i}"
        expr = draw(_exprs(tuple(names), max_depth=3))
        equations.append(Eq(name, expr))
        names.append(name)
    body = Where(Var(names[-1]), tuple(equations))
    return Program((NodeDecl("n", ("u",), body),))


@st.composite
def input_streams(draw):
    return draw(
        st.lists(
            st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
            min_size=1,
            max_size=6,
        )
    )


# ----------------------------------------------------------------------

def _close(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


class TestCompiledEqualsInterpreted:
    @settings(max_examples=120, deadline=None)
    @given(prog=programs(), inputs=input_streams())
    def test_streams_identical(self, prog, inputs):
        compiled = load(prog).det_node("n")
        interpreted = Interpreter(prog).det_node("n")
        out_compiled = run(compiled, inputs)
        out_interpreted = run(interpreted, inputs)
        assert len(out_compiled) == len(out_interpreted)
        for a, b in zip(out_compiled, out_interpreted):
            assert _close(a, b), (prog, inputs, out_compiled, out_interpreted)

    @settings(max_examples=60, deadline=None)
    @given(prog=programs(), inputs=input_streams())
    def test_state_restart_consistency(self, prog, inputs):
        """Feeding a stream in two sessions through the saved state gives
        the same outputs as one session (state is fully externalized)."""
        compiled = load(prog).det_node("n")
        full = run(compiled, inputs)
        state = compiled.init()
        split_outputs = []
        for inp in inputs:
            out, state = compiled.step(state, inp)
            split_outputs.append(out)
        assert all(_close(a, b) for a, b in zip(full, split_outputs))

    @settings(max_examples=60, deadline=None)
    @given(prog=programs())
    def test_prepared_program_passes_static_checks(self, prog):
        from repro.core import check_program, check_types, prepare_program

        prepared = prepare_program(prog)
        kinds = check_program(prepared)
        assert kinds["n"] == "D"
        check_types(prepared)  # must not raise
