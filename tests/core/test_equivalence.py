"""Theorem 4.2: the compiled muF term and the co-iterative semantics agree.

Deterministic programs must agree *exactly*, step for step. Probabilistic
programs must agree as inference processes: with delayed sampling the
posterior is deterministic given the observations, so SDS posteriors
through both paths must be identical.
"""

import pytest

from repro.core import Interpreter, load
from repro.dsl import (
    app,
    arrow,
    const,
    eq,
    fby,
    gaussian,
    if_,
    infer_,
    init,
    last,
    node,
    observe,
    op,
    pair,
    pre,
    present,
    program,
    reset,
    sample,
    var,
    where_,
)
from repro.runtime import run


def both_nodes(prog, name):
    return load(prog).det_node(name), Interpreter(prog).det_node(name)


def assert_equivalent(prog, name, inputs):
    compiled, interpreted = both_nodes(prog, name)
    out_c = run(compiled, inputs)
    out_i = run(interpreted, inputs)
    assert out_c == out_i
    return out_c


class TestDeterministicEquivalence:
    def test_counter(self):
        counter = node("counter", "u", where_(
            var("x"), eq("x", arrow(const(0.0), pre(var("x")) + const(1.0)))
        ))
        outputs = assert_equivalent(program(counter), "counter", [None] * 6)
        assert outputs == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_integr_backward_euler(self):
        """The paper's very first example: backward Euler integration."""
        integr = node("integr", ("xo", "xp"), where_(
            var("x"),
            eq("x", arrow(var("xo"), pre(var("x")) + var("xp") * const(0.5))),
        ))
        outputs = assert_equivalent(
            program(integr), "integr", [(2.0, 1.0)] * 4
        )
        assert outputs == [2.0, 2.5, 3.0, 3.5]

    def test_node_application(self):
        inner = node("double", "x", var("x") * const(2.0))
        outer = node("main", "y", app("double", var("y")) + const(1.0))
        outputs = assert_equivalent(program(inner, outer), "main", [1.0, 2.0])
        assert outputs == [3.0, 5.0]

    def test_stateful_subnode(self):
        counter = node("counter", "u", where_(
            var("x"), eq("x", arrow(const(0.0), pre(var("x")) + const(1.0)))
        ))
        main = node("main", "u", app("counter", var("u")) * const(10.0))
        outputs = assert_equivalent(program(counter, main), "main", [None] * 3)
        assert outputs == [0.0, 10.0, 20.0]

    def test_present_lazy_branches(self):
        """present executes only the selected branch's state."""
        prog = program(node("n", "c", where_(
            var("out"),
            eq("out", present(
                var("c"),
                where_(var("a"), eq("a", arrow(const(100.0), pre(var("a")) + const(1.0)))),
                const(-1.0),
            )),
        )))
        outputs = assert_equivalent(prog, "n", [True, False, True, True])
        # the then-branch's counter only advances when selected
        assert outputs == [100.0, -1.0, 101.0, 102.0]

    def test_if_strict_both_branches(self):
        """if (an external op) advances both branches' state."""
        prog = program(node("n", "c", where_(
            var("out"),
            eq("cnt", arrow(const(0.0), pre(var("cnt")) + const(1.0))),
            eq("out", if_(var("c"), var("cnt"), const(-1.0))),
        )))
        outputs = assert_equivalent(prog, "n", [True, False, True])
        assert outputs == [0.0, -1.0, 2.0]

    def test_reset_reinitializes(self):
        prog = program(node("n", "r", where_(
            var("out"),
            eq("out", reset(
                where_(var("x"), eq("x", arrow(const(0.0), pre(var("x")) + const(1.0)))),
                var("r"),
            )),
        )))
        outputs = assert_equivalent(prog, "n", [False, False, True, False, True])
        assert outputs == [0.0, 1.0, 0.0, 1.0, 0.0]

    def test_pairs_and_projections(self):
        prog = program(node("n", "u", where_(
            op("fst", var("p")) + op("snd", var("p")),
            eq("p", pair(const(1.0), const(2.0))),
        )))
        outputs = assert_equivalent(prog, "n", [None])
        assert outputs == [3.0]

    def test_fby_chains(self):
        prog = program(node("n", "u", where_(
            var("y"),
            eq("x", fby(const(1.0), var("x") + const(1.0))),
            eq("y", fby(const(10.0), var("x"))),
        )))
        outputs = assert_equivalent(prog, "n", [None] * 4)
        assert outputs == [10.0, 1.0, 2.0, 3.0]

    def test_last_with_init(self):
        prog = program(node("n", "u", where_(
            var("x"),
            init("x", 5.0),
            eq("x", last("x") + const(1.0)),
        )))
        outputs = assert_equivalent(prog, "n", [None] * 3)
        assert outputs == [6.0, 7.0, 8.0]


class TestProbabilisticEquivalence:
    def hmm_program(self, method):
        hmm = node("hmm", "y", where_(
            var("x"),
            eq("x", sample(gaussian(arrow(const(0.0), pre(var("x"))), const(1.0)))),
            eq("_u", observe(gaussian(var("x"), const(1.0)), var("y"))),
        ))
        main = node(
            "main", "y",
            op("mean_float", infer_(app("hmm", var("y")), particles=1,
                                    method=method, seed=0)),
        )
        return program(hmm, main)

    def test_sds_posterior_identical_through_both_paths(self):
        observations = [0.5, 1.0, 1.5, 0.7]
        prog = self.hmm_program("sds")
        compiled = load(prog).det_node("main")
        interpreted = Interpreter(prog).det_node("main")
        out_c = run(compiled, observations)
        out_i = run(interpreted, observations)
        assert out_c == pytest.approx(out_i, rel=1e-12)

    def test_sds_posterior_matches_kalman_oracle(self):
        observations = [0.5, 1.0, 1.5, 0.7]
        prog = self.hmm_program("sds")
        compiled = load(prog).det_node("main")
        # oracle: scalar Kalman with prior N(0, 1), motion 1, obs 1
        mu, var = 0.0, 1.0
        state = compiled.init()
        for t, obs in enumerate(observations):
            if t > 0:
                var += 1.0
            gain = var / (var + 1.0)
            mu = mu + gain * (obs - mu)
            var = (1.0 - gain) * var
            out, state = compiled.step(state, obs)
            assert out == pytest.approx(mu, rel=1e-12)
