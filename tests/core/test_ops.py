"""The external operator table shared by both evaluators."""

import pytest

from repro.core.ops import OPS, apply_op, register
from repro.dists import Gaussian
from repro.errors import EvaluationError
from repro.symbolic import App, RVar


class FakeNode:
    family = "gaussian"


class TestArithmetic:
    def test_concrete_arithmetic(self):
        assert apply_op("add", (1.0, 2.0)) == 3.0
        assert apply_op("div", (6.0, 3.0)) == 2.0
        assert apply_op("neg", (5.0,)) == -5.0

    def test_symbolic_arguments_build_trees(self):
        x = RVar(FakeNode())
        result = apply_op("add", (x, 1.0))
        assert isinstance(result, App)

    def test_unknown_operator(self):
        with pytest.raises(EvaluationError):
            apply_op("quux", (1.0,))


class TestControl:
    def test_if_selects_value(self):
        assert apply_op("if", (True, 1.0, 2.0)) == 1.0
        assert apply_op("if", (False, 1.0, 2.0)) == 2.0

    def test_if_symbolic_condition_rejected(self):
        x = RVar(FakeNode())
        with pytest.raises(EvaluationError):
            apply_op("if", (x, 1.0, 2.0))

    def test_comparisons_concrete_only(self):
        assert apply_op("gt", (2.0, 1.0)) is True
        x = RVar(FakeNode())
        with pytest.raises(EvaluationError):
            apply_op("lt", (x, 1.0))

    def test_logic(self):
        assert apply_op("and", (True, False)) is False
        assert apply_op("or", (True, False)) is True
        assert apply_op("not", (False,)) is True


class TestPairsAndDists:
    def test_fst_snd(self):
        assert apply_op("fst", ((1, 2),)) == 1
        assert apply_op("snd", ((1, 2),)) == 2

    def test_distribution_constructors(self):
        dist = apply_op("gaussian", (0.0, 2.0))
        assert isinstance(dist, Gaussian)
        assert dist.var == 2.0

    def test_mean_accessors(self):
        dist = Gaussian(1.5, 1.0)
        assert apply_op("mean", (dist,)) == 1.5
        assert apply_op("mean_float", (dist,)) == 1.5
        assert apply_op("variance", (dist,)) == 1.0

    def test_signal_operators_registered(self):
        import repro.core.signals  # noqa: F401 — registers is_present/get

        assert apply_op("is_present", (None,)) is False
        assert apply_op("is_present", (3.0,)) is True
        assert apply_op("get", (3.0,)) == 3.0
        with pytest.raises(EvaluationError):
            apply_op("get", (None,))


class TestRegistration:
    def test_register_new_operator(self):
        register("triple", lambda v: v * 3)
        assert apply_op("triple", (4.0,)) == 12.0
        del OPS["triple"]
