"""Language-level automata: the present/reset encoding (Section 3.1)."""

import pytest

from repro.core import Interpreter, load
from repro.core.automata import AutomatonE, AutoStateE, expand_automata
from repro.dsl import arrow, const, eq, node, op, pre, program, var, where_
from repro.errors import LanguageError
from repro.runtime import run


def counter_body():
    """A body that counts 0, 1, 2, ... from each (re-)entry."""
    return where_(
        var("c"), eq("c", arrow(const(0.0), pre(var("c")) + const(1.0)))
    )


def two_state(threshold: float):
    """Go counts until `threshold`, then Task counts afresh."""
    return AutomatonE(
        states=(
            AutoStateE(
                "Go",
                counter_body(),
                ((op("ge", var("o"), const(threshold)), "Task"),),
            ),
            AutoStateE("Task", counter_body()),
        ),
    )


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(LanguageError):
            expand_automata(AutomatonE(states=()))

    def test_duplicate_state_rejected(self):
        auto = AutomatonE(states=(
            AutoStateE("A", const(1.0)),
            AutoStateE("A", const(2.0)),
        ))
        with pytest.raises(LanguageError):
            expand_automata(auto)

    def test_unknown_target_rejected(self):
        auto = AutomatonE(states=(
            AutoStateE("A", const(1.0), ((const(True), "Ghost"),)),
        ))
        with pytest.raises(LanguageError):
            expand_automata(auto)


class TestExecution:
    def test_single_state_runs_body(self):
        prog = program(node("n", "u", AutomatonE(states=(
            AutoStateE("Only", counter_body()),
        ))))
        outputs = run(load(prog).det_node("n"), [None] * 4)
        assert outputs == [0.0, 1.0, 2.0, 3.0]

    def test_weak_transition_next_instant(self):
        prog = program(node("n", "u", two_state(threshold=1.0)))
        outputs = run(load(prog).det_node("n"), [None] * 5)
        # Go emits 0, 1 (guard fires on 1); Task starts fresh
        assert outputs == [0.0, 1.0, 0.0, 1.0, 2.0]

    def test_reentry_resets_state(self):
        # ping-pong: each state leaves immediately; bodies always fresh
        auto = AutomatonE(states=(
            AutoStateE("A", counter_body(), ((const(True), "B"),)),
            AutoStateE("B", counter_body(), ((const(True), "A"),)),
        ))
        prog = program(node("n", "u", auto))
        outputs = run(load(prog).det_node("n"), [None] * 6)
        assert outputs == [0.0] * 6

    def test_guard_reads_mode_output(self):
        """Guards reference the body's value through `out_name`."""
        auto = AutomatonE(
            states=(
                AutoStateE(
                    "Up",
                    counter_body(),
                    ((op("ge", var("val"), const(2.0)), "Down"),),
                ),
                AutoStateE("Down", const(-1.0)),
            ),
            out_name="val",
        )
        prog = program(node("n", "u", auto))
        outputs = run(load(prog).det_node("n"), [None] * 5)
        assert outputs == [0.0, 1.0, 2.0, -1.0, -1.0]

    def test_guard_reads_enclosing_input(self):
        """Guards can also read the node input (enclosing scope)."""
        auto = AutomatonE(states=(
            AutoStateE("Wait", const(0.0), ((var("go"), "Run"),)),
            AutoStateE("Run", counter_body()),
        ))
        prog = program(node("n", "go", auto))
        outputs = run(load(prog).det_node("n"), [False, False, True, False, False])
        assert outputs == [0.0, 0.0, 0.0, 0.0, 1.0]

    def test_three_states_chain(self):
        auto = AutomatonE(states=(
            AutoStateE("A", const(10.0), ((const(True), "B"),)),
            AutoStateE("B", const(20.0), ((const(True), "C"),)),
            AutoStateE("C", const(30.0)),
        ))
        prog = program(node("n", "u", auto))
        outputs = run(load(prog).det_node("n"), [None] * 4)
        assert outputs == [10.0, 20.0, 30.0, 30.0]

    def test_compiled_equals_interpreted(self):
        prog = program(node("n", "u", two_state(threshold=2.0)))
        compiled = run(load(prog).det_node("n"), [None] * 7)
        interpreted = run(Interpreter(prog).det_node("n"), [None] * 7)
        assert compiled == interpreted

    def test_matches_runtime_automaton(self):
        """The AST encoding agrees with the runtime combinator."""
        from repro.runtime import Automaton, AutoState
        from repro.runtime.stdlib import Counter

        runtime_auto = Automaton([
            AutoState("Go", Counter(), [(lambda out: out >= 1, "Task")]),
            AutoState("Task", Counter()),
        ])
        ast_prog = program(node("n", "u", two_state(threshold=1.0)))
        runtime_out = [float(v) for v in run(runtime_auto, [None] * 6)]
        ast_out = run(load(ast_prog).det_node("n"), [None] * 6)
        assert runtime_out == ast_out
