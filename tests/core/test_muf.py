"""muF core calculus: evaluation, patterns, probabilistic operators."""

import pytest

from repro.core.muf import (
    Closure,
    MApp,
    MConst,
    MFactor,
    MFun,
    MIf,
    MLet,
    MObserve,
    MOp,
    MSample,
    MTuple,
    MVar,
    PTuple,
    PVar,
    bind_pattern,
    eval_term,
    pretty,
)
from repro.dists import Gaussian
from repro.errors import MuFRuntimeError
from repro.inference.contexts import SamplingCtx


class TestPatterns:
    def test_var_binding(self):
        env = bind_pattern(PVar("x"), 42, {})
        assert env["x"] == 42

    def test_tuple_binding(self):
        pat = PTuple((PVar("a"), PTuple((PVar("b"), PVar("c")))))
        env = bind_pattern(pat, (1, (2, 3)), {})
        assert (env["a"], env["b"], env["c"]) == (1, 2, 3)

    def test_arity_mismatch(self):
        with pytest.raises(MuFRuntimeError):
            bind_pattern(PTuple((PVar("a"), PVar("b"))), (1, 2, 3), {})


class TestEvaluation:
    def test_const_var(self):
        assert eval_term(MConst(5), {}) == 5
        assert eval_term(MVar("x"), {"x": 7}) == 7

    def test_unbound_var(self):
        with pytest.raises(MuFRuntimeError):
            eval_term(MVar("missing"), {})

    def test_tuple_and_op(self):
        term = MTuple((MOp("add", (MConst(1.0), MConst(2.0))), MConst(0)))
        assert eval_term(term, {}) == (3.0, 0)

    def test_if_strict(self):
        term = MIf(MConst(True), MConst(1), MConst(2))
        assert eval_term(term, {}) == 1

    def test_let_and_fun(self):
        # let f = fun x -> x + 1 in f 41
        term = MLet(
            PVar("f"),
            MFun(PVar("x"), MOp("add", (MVar("x"), MConst(1)))),
            MApp(MVar("f"), MConst(41)),
        )
        assert eval_term(term, {}) == 42

    def test_closure_captures_env(self):
        term = MLet(
            PVar("y"),
            MConst(10),
            MLet(
                PVar("f"),
                MFun(PVar("x"), MOp("add", (MVar("x"), MVar("y")))),
                MLet(PVar("y"), MConst(999), MApp(MVar("f"), MConst(1))),
            ),
        )
        assert eval_term(term, {}) == 11  # lexical scoping

    def test_apply_non_function(self):
        with pytest.raises(MuFRuntimeError):
            eval_term(MApp(MConst(1), MConst(2)), {})


class TestProbabilisticOps:
    def test_sample_without_ctx_raises(self):
        with pytest.raises(MuFRuntimeError):
            eval_term(MSample(MConst(Gaussian(0.0, 1.0))), {})

    def test_sample_with_ctx(self, rng):
        ctx = SamplingCtx(rng)
        value = eval_term(MSample(MConst(Gaussian(0.0, 1.0))), {}, ctx)
        assert isinstance(value, float)

    def test_observe_updates_weight(self, rng):
        ctx = SamplingCtx(rng)
        eval_term(MObserve(MConst(Gaussian(0.0, 1.0)), MConst(0.5)), {}, ctx)
        assert ctx.log_weight == pytest.approx(Gaussian(0.0, 1.0).log_pdf(0.5))

    def test_factor_updates_weight(self, rng):
        ctx = SamplingCtx(rng)
        eval_term(MFactor(MConst(-2.0)), {}, ctx)
        assert ctx.log_weight == -2.0


class TestPretty:
    def test_renders_terms(self):
        term = MLet(
            PVar("x"), MConst(1), MOp("add", (MVar("x"), MConst(2)))
        )
        text = pretty(term)
        assert "let x" in text
        assert "add" in text

    def test_renders_fun(self):
        text = pretty(MFun(PTuple((PVar("s"), PVar("x"))), MVar("s")))
        assert "fun (s, x)" in text
