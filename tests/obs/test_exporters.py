"""Exporters: JSON snapshot documents and the Prometheus round-trip."""

import json

import pytest

from repro.obs.exporters import (
    METRICS_JSON_SCHEMA,
    parse_prometheus,
    snapshot_document,
    to_prometheus,
    write_metrics_json,
)
from repro.obs.registry import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_events_total", help="test events").inc(5)
    reg.counter("repro_events_total", labels={"kind": "nan"}).inc(2)
    reg.gauge("repro_sessions_active", help="open sessions").set(3)
    hist = reg.histogram(
        "repro_step_ms", labels={"phase": "eval"}, buckets=(1.0, 10.0)
    )
    hist.observe(0.5)
    hist.observe(5.0)
    hist.observe(50.0)
    return reg


class TestJsonDocument:
    def test_document_shape(self):
        doc = snapshot_document(populated_registry(), meta={"pr": 6})
        assert doc["schema"] == METRICS_JSON_SCHEMA
        assert doc["meta"] == {"pr": 6}
        assert "platform" in doc["host"]
        assert doc["metrics"]["counters"]["repro_events_total"] == 5.0

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(path, populated_registry())
        doc = json.loads(path.read_text())
        assert doc["schema"] == METRICS_JSON_SCHEMA
        hist = doc["metrics"]["histograms"]['repro_step_ms{phase="eval"}']
        assert hist["count"] == 3


class TestPrometheusFormat:
    def test_headers_emitted_once_per_family(self):
        text = to_prometheus(populated_registry())
        assert text.count("# TYPE repro_events_total counter") == 1
        assert "# HELP repro_events_total test events" in text
        assert text.endswith("\n")

    def test_histogram_expansion(self):
        text = to_prometheus(populated_registry())
        assert 'repro_step_ms_bucket{le="1",phase="eval"} 1' in text
        assert 'repro_step_ms_bucket{le="10",phase="eval"} 2' in text
        assert 'repro_step_ms_bucket{le="+Inf",phase="eval"} 3' in text
        assert 'repro_step_ms_count{phase="eval"} 3' in text

    def test_round_trip_through_parser(self):
        """Everything the exporter emits parses back losslessly."""
        reg = populated_registry()
        families = parse_prometheus(to_prometheus(reg))

        assert families["repro_events_total"]["type"] == "counter"
        samples = families["repro_events_total"]["samples"]
        assert samples["repro_events_total"] == 5.0
        assert samples['repro_events_total{kind="nan"}'] == 2.0

        assert families["repro_sessions_active"]["type"] == "gauge"
        assert families["repro_sessions_active"]["samples"][
            "repro_sessions_active"
        ] == 3.0

        hist = families["repro_step_ms"]
        assert hist["type"] == "histogram"
        assert hist["samples"]['repro_step_ms_bucket{le="+Inf",phase="eval"}'] == 3.0
        assert hist["samples"]['repro_step_ms_sum{phase="eval"}'] == pytest.approx(
            55.5
        )
        assert hist["samples"]['repro_step_ms_count{phase="eval"}'] == 3.0

    def test_round_trip_matches_registry_cumulative_counts(self):
        reg = populated_registry()
        hist = reg.get("repro_step_ms", labels={"phase": "eval"})
        families = parse_prometheus(to_prometheus(reg))
        samples = families["repro_step_ms"]["samples"]
        parsed = [
            samples[f'repro_step_ms_bucket{{le="{int(b)}",phase="eval"}}']
            for b in hist.buckets
        ] + [samples['repro_step_ms_bucket{le="+Inf",phase="eval"}']]
        assert parsed == [float(c) for c in hist.cumulative_counts()]
