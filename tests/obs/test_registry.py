"""Metrics registry primitives: counters, gauges, histograms, snapshots."""

import math

import numpy as np
import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count_event,
    default_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("steps_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increments(self):
        c = Counter("steps_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1.0)

    def test_full_name_includes_labels(self):
        c = Counter("events_total", labels=(("kind", "nan"),))
        assert c.full_name == 'events_total{kind="nan"}'


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("sessions_active")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0


class TestHistogram:
    def test_observe_routes_to_correct_bucket(self):
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 2, 1, 1]  # last = +inf overflow
        assert h.cumulative_counts() == [1, 3, 4, 5]
        assert h.count == 5
        assert h.sum == pytest.approx(560.5)

    def test_bucket_bounds_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("lat", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("lat", buckets=())

    def test_quantiles_interpolate_within_buckets(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        # 100 observations uniform in (0, 4): quantiles track the data.
        for v in np.linspace(0.02, 3.98, 100):
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(2.0, abs=0.25)
        assert h.quantile(0.95) == pytest.approx(3.8, abs=0.25)

    def test_quantile_edge_cases(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        assert math.isnan(h.quantile(0.5))  # empty
        h.observe(1e9)  # lands in +inf bucket
        assert h.quantile(0.99) == 10.0  # reports last finite bound
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_mean(self):
        h = Histogram("lat")
        h.observe(1.0)
        h.observe(3.0)
        assert h.mean == 2.0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("steps_total")
        b = reg.counter("steps_total")
        assert a is b
        labelled = reg.counter("steps_total", labels={"phase": "eval"})
        assert labelled is not a

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("metric_x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("metric_x")

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("m", labels={"a": 1, "b": 2})
        b = reg.counter("m", labels={"b": 2, "a": 1})
        assert a is b

    def test_snapshot_layout(self):
        reg = MetricsRegistry()
        reg.counter("events_total").inc(3)
        reg.gauge("depth").set(7)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"]["events_total"] == 3.0
        assert snap["gauges"]["depth"] == 7.0
        hist = snap["histograms"]["lat"]
        assert hist == {
            "buckets": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1,
        }

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("events_total").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.get("events_total") is None


class TestDefaults:
    def test_count_event_hits_default_registry(self, fresh_registry):
        count_event("repro_test_events_total")
        count_event("repro_test_events_total", amount=2)
        counter = default_registry().get("repro_test_events_total")
        assert counter.value == 3.0
        assert default_registry() is fresh_registry

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(
            DEFAULT_LATENCY_BUCKETS_MS
        )
