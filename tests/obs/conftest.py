"""Isolation for the observability tests.

Every test in this package gets a fresh process-global registry and a
guaranteed-disabled telemetry switch, so counter assertions ("exactly
once") cannot be polluted by other tests — or pollute them.
"""

import pytest

from repro.obs.registry import MetricsRegistry, set_default_registry
from repro.obs.spans import disable_telemetry


@pytest.fixture(autouse=True)
def fresh_registry():
    """Swap in an empty default registry; restore the old one after."""
    registry = MetricsRegistry()
    previous = set_default_registry(registry)
    yield registry
    set_default_registry(previous)
    disable_telemetry()
