"""Step-phase tracing: the disabled fast path and the live span flow."""

import numpy as np
import pytest

from repro.bench.models import HmmModel
from repro.inference.infer import infer
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import (
    NULL_RECORDER,
    NULL_TIMER,
    PHASE_HISTOGRAM,
    TELEMETRY,
    SpanRecorder,
    StepTimer,
    disable_telemetry,
    enable_telemetry,
    telemetry,
)

OBS = [0.1, -0.3, 0.7, 0.2, -0.1, 0.4, 0.0, 0.5]


def run_stream(**infer_kwargs):
    engine = infer(HmmModel(), n_particles=24, seed=11, **infer_kwargs)
    state = engine.init()
    for y in OBS:
        _, state = engine.step(state, y)
    if hasattr(state, "release"):
        state.release()


class TestDisabledFastPath:
    def test_disabled_timer_is_the_shared_singleton(self):
        assert not TELEMETRY.enabled
        assert TELEMETRY.step_timer() is NULL_TIMER
        assert TELEMETRY.recorder is NULL_RECORDER
        NULL_TIMER.mark("anything")  # no-ops, no state
        NULL_TIMER.total("anything")

    def test_disabled_run_registers_no_phase_metrics(self, fresh_registry):
        run_stream(method="sds")
        assert fresh_registry.get(PHASE_HISTOGRAM, {"phase": "step"}) is None


class TestRecorder:
    def test_spans_feed_per_phase_histograms(self):
        reg = MetricsRegistry()
        rec = SpanRecorder(reg, keep=4)
        for i in range(6):
            rec.record("model_eval", 1.0 + i)
        rec.record("resample", 0.5)
        assert rec.phases() == ["model_eval", "resample"]
        hist = reg.get(PHASE_HISTOGRAM, {"phase": "model_eval"})
        assert hist.count == 6
        assert len(rec.recent) == 4  # bounded ring

    def test_record_shipped_folds_worker_tuples(self):
        reg = MetricsRegistry()
        rec = SpanRecorder(reg)
        rec.record_shipped([("worker_step", 2.0), ("worker_step", 3.0)])
        hist = reg.get(PHASE_HISTOGRAM, {"phase": "worker_step"})
        assert hist.count == 2
        assert hist.sum == 5.0


class TestTelemetrySwitch:
    def test_enable_disable(self):
        rec = enable_telemetry(MetricsRegistry())
        assert TELEMETRY.enabled and TELEMETRY.recorder is rec
        assert isinstance(TELEMETRY.step_timer(), StepTimer)
        disable_telemetry()
        assert not TELEMETRY.enabled
        assert TELEMETRY.step_timer() is NULL_TIMER

    def test_context_manager_restores_prior_state(self):
        assert not TELEMETRY.enabled
        with telemetry(MetricsRegistry()) as rec:
            assert TELEMETRY.enabled and TELEMETRY.recorder is rec
        assert not TELEMETRY.enabled


class TestEngineSpans:
    @pytest.mark.parametrize("kwargs", [
        {"method": "pf"},
        {"method": "sds"},
        {"method": "sds", "backend": "vectorized"},
        {"method": "bds", "backend": "vectorized"},
    ])
    def test_step_phases_recorded(self, kwargs):
        reg = MetricsRegistry()
        with telemetry(reg) as rec:
            run_stream(**kwargs)
        phases = rec.phases()
        assert "model_eval" in phases
        assert "weight_merge" in phases
        assert "step" in phases
        # Every step records exactly one end-to-end span.
        assert reg.get(PHASE_HISTOGRAM, {"phase": "step"}).count == len(OBS)
        # Each step ends in exactly one of the two barrier phases.
        barrier = sum(
            reg.get(PHASE_HISTOGRAM, {"phase": p}).count
            for p in ("resample", "weight_commit")
            if reg.get(PHASE_HISTOGRAM, {"phase": p}) is not None
        )
        assert barrier == len(OBS)

    def test_worker_resident_spans_ship_back(self):
        """processes-persistent workers time their shard steps and the
        coordinator folds the shipped spans into its registry."""
        reg = MetricsRegistry()
        with telemetry(reg) as rec:
            run_stream(method="sds", executor="processes-persistent:2")
        assert "worker_step" in rec.phases()
        hist = reg.get(PHASE_HISTOGRAM, {"phase": "worker_step"})
        # one span per shard per step (default 4 shards)
        assert hist.count == 4 * len(OBS)
        assert hist.sum > 0.0
        # the resample barrier phases of the resident path
        for phase in ("model_eval", "step"):
            assert reg.get(PHASE_HISTOGRAM, {"phase": phase}).count == len(OBS)

    def test_tracing_does_not_change_results(self):
        def posterior_means(**kwargs):
            engine = infer(HmmModel(), n_particles=24, seed=11, method="sds", **kwargs)
            state = engine.init()
            means = []
            for y in OBS:
                dist, state = engine.step(state, y)
                means.append(dist.mean())
            if hasattr(state, "release"):
                state.release()
            return means

        plain = posterior_means(executor="processes-persistent:2")
        with telemetry(MetricsRegistry()):
            traced = posterior_means(executor="processes-persistent:2")
        assert plain == traced
