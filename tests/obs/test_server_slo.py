"""StreamServer SLO instrumentation: latency histograms and gauges."""

import numpy as np
import pytest

from repro.bench.models import HmmModel
from repro.errors import InferenceError
from repro.exec.server import StreamServer
from repro.obs.registry import MetricsRegistry, default_registry
from repro.obs.spans import PHASE_HISTOGRAM, telemetry
from repro.runtime.node import ProbCtx, ProbNode


class FailingModel(ProbNode):
    def init(self):
        return None

    def step(self, state, obs, ctx: ProbCtx):
        raise InferenceError("broken model")


def serve_traffic(n_sessions=3, n_obs=4, **server_kwargs):
    server = StreamServer(**server_kwargs)
    rng = np.random.default_rng(0)
    for i in range(n_sessions):
        server.open(HmmModel(), session_id=f"u{i}", seed=i, n_particles=8)
        server.submit_many(f"u{i}", rng.normal(size=n_obs))
    server.drain()
    return server


class TestSessionLatency:
    def test_every_step_is_timed(self):
        server = serve_traffic(n_sessions=2, n_obs=5)
        snap = server.metrics_snapshot()
        assert snap["step_ms"]["count"] == 10
        for sid in ("u0", "u1"):
            per = snap["per_session"][sid]
            assert per["count"] == 5
            assert per["p99_ms"] > 0.0
            assert per["p50_ms"] <= per["p95_ms"] <= per["p99_ms"]
            assert per["histogram"]["count"] == 5
        assert server._sessions["u0"].last_step_ms > 0.0

    def test_tick_latency_and_queue_depth(self):
        server = serve_traffic(n_sessions=2, n_obs=3)
        snap = server.metrics_snapshot()
        # round_robin: 3 productive rounds + 1 empty terminating round
        assert snap["tick_ms"]["count"] == 4
        assert snap["tick_ms"]["p99_ms"] >= snap["tick_ms"]["p50_ms"]
        assert snap["queue_depth"]["ticks"] == 4
        # first round sees the full backlog of 6
        assert snap["queue_depth"]["p95"] >= 2.0

    def test_stats_carries_latency_fields(self):
        server = serve_traffic(n_sessions=1, n_obs=2)
        stats = server.stats()
        assert stats["evicted"] == 0
        assert stats["per_session"]["u0"]["last_step_ms"] > 0.0


class TestEviction:
    def test_eviction_updates_gauge_and_counter(self, fresh_registry):
        server = StreamServer()
        server.open(FailingModel(), session_id="bad", n_particles=4)
        server.submit("bad", 1.0)
        with pytest.raises(InferenceError, match="broken model"):
            server.tick()
        snap = server.metrics_snapshot()
        assert snap["sessions"] == {"active": 0, "evicted": 1}
        counter = default_registry().get("repro_session_evictions_total")
        assert counter is not None and counter.value == 1.0
        # closing a healthy session is not an eviction
        server.open(HmmModel(), session_id="ok", n_particles=4)
        server.close("ok")
        assert server.metrics_snapshot()["sessions"]["evicted"] == 1


class TestServerTracing:
    def test_server_phases_reach_the_registry_when_enabled(self):
        reg = MetricsRegistry()
        with telemetry(reg):
            serve_traffic(n_sessions=2, n_obs=3)
        assert reg.get(PHASE_HISTOGRAM, {"phase": "server_step"}).count == 6
        assert reg.get(PHASE_HISTOGRAM, {"phase": "server_tick"}).count == 4

    def test_disabled_tracing_keeps_registry_clean(self, fresh_registry):
        serve_traffic(n_sessions=1, n_obs=2)
        assert fresh_registry.get(PHASE_HISTOGRAM, {"phase": "server_step"}) is None
