"""Diagnostics parity: the same StepStats stream on every substrate.

``infer(..., diagnostics=True)`` must yield identical per-step ESS and
log-evidence for the scalar engine, the vectorized engine, and the
worker-resident executor at a fixed seed — the deterministic-partition
guarantee, observed through the diagnostics log instead of the
posterior.
"""

import warnings

import numpy as np
import pytest

from repro.bench.models import HmmModel
from repro.inference.diagnostics import DiagnosticsLog
from repro.inference.infer import infer
from repro.lang import gaussian, uniform
from repro.runtime.node import ProbCtx, ProbNode
from repro.vectorized.engine import ScalarFallbackState

OBS = list(np.random.default_rng(42).normal(size=10))


def run_diagnostics(**infer_kwargs) -> DiagnosticsLog:
    engine = infer(
        HmmModel(), n_particles=32, method="sds", seed=9,
        diagnostics=True, **infer_kwargs
    )
    state = engine.init()
    for y in OBS:
        _, state = engine.step(state, y)
    if hasattr(state, "release"):
        state.release()
    return engine.diagnostics


class TestParity:
    def test_one_record_per_step(self):
        log = run_diagnostics()
        assert len(log) == len(OBS)
        assert all(s.n_particles == 32 for s in log.steps)

    @pytest.mark.parametrize("kwargs", [
        {"backend": "vectorized"},
        {"executor": "serial", "n_shards": 4},
        {"executor": "threads:2"},
        {"executor": "processes-persistent:2"},
        {"backend": "vectorized", "executor": "processes-persistent:2"},
    ])
    def test_identical_stats_across_substrates(self, kwargs):
        reference = run_diagnostics()
        other = run_diagnostics(**kwargs)
        assert len(other) == len(reference)
        for a, b in zip(reference.steps, other.steps):
            assert b.log_evidence == pytest.approx(a.log_evidence, abs=1e-9)
            assert b.ess == pytest.approx(a.ess, abs=1e-9)

    def test_existing_log_is_shared_not_replaced(self):
        shared = DiagnosticsLog()
        engine = infer(
            HmmModel(), n_particles=8, method="pf", seed=1, diagnostics=shared
        )
        assert engine.diagnostics is shared
        state = engine.init()
        _, state = engine.step(state, 0.5)
        assert len(shared) == 1

    def test_diagnostics_off_by_default(self):
        engine = infer(HmmModel(), n_particles=8, method="pf", seed=1)
        assert engine.diagnostics is None


class UnsupportedAtK(ProbNode):
    """Gaussian chain leaving the expressible batched fragment at step
    k (an unbatchable family forces the scalar migration; breaking
    conjugacy alone would realize-and-continue on the graph)."""

    def __init__(self, k: int = 3):
        self.k = k

    def init(self):
        return (0, None)

    def step(self, state, yobs, ctx: ProbCtx):
        t, prev = state
        x = ctx.sample(gaussian(0.0 if prev is None else prev, 1.0))
        ctx.observe(gaussian(x, 0.5), yobs)
        if t >= self.k:
            ctx.value(ctx.sample(uniform(0.0, 1.0)))
        return x, (t + 1, x)


class TestFallbackContinuity:
    def test_one_uninterrupted_stream_across_migration(self):
        """The mid-stream scalar fallback appends to the same log: one
        StepStats per input, before and after the migration."""
        from repro.vectorized.engine import VectorizedGaussianChainSDS

        engine = VectorizedGaussianChainSDS(
            UnsupportedAtK(3), mode="sds", n_particles=16, seed=2,
            diagnostics=True,
        )
        state = engine.init()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for y in OBS[:7]:
                _, state = engine.step(state, y)
        assert isinstance(state, ScalarFallbackState)
        assert len(engine.diagnostics) == 7
        assert engine._scalar_engine.diagnostics is engine.diagnostics
