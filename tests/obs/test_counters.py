"""Degradation-path event counters: exactly one increment per event."""

import warnings

import numpy as np
import pytest

from repro.dists.mixture import zero_nan_weights
from repro.inference.resampling import normalize_log_weights
from repro.obs.registry import default_registry
from repro.runtime.node import ProbCtx, ProbNode
from repro.lang import gaussian, uniform
from repro.vectorized.engine import (
    ScalarFallbackState,
    VectorizedGaussianChainSDS,
)


class NonlinearAtK(ProbNode):
    """A Gaussian chain whose transition turns quadratic at step k.

    Breaks conjugacy but stays expressible: the batched graph realizes
    the previous slot and continues (per-slot degradation, counted by
    ``repro_slot_realizations_total``), never migrating to scalar.
    """

    def __init__(self, k: int = 2):
        self.k = k

    def init(self):
        return (0, None)

    def step(self, state, yobs, ctx: ProbCtx):
        t, prev = state
        if prev is None:
            x = ctx.sample(gaussian(0.0, 4.0))
        elif t >= self.k:
            x = ctx.sample(gaussian(prev * prev, 1.0))  # non-affine
        else:
            x = ctx.sample(gaussian(prev, 1.0))
        ctx.observe(gaussian(x, 0.5), yobs)
        return x, (t + 1, x)


class UnsupportedAtK(ProbNode):
    """A Gaussian chain that samples an unbatchable family at step k,
    forcing the whole-population scalar migration (the ladder's last
    resort, counted by ``repro_scalar_fallback_total``)."""

    def __init__(self, k: int = 2):
        self.k = k

    def init(self):
        return (0, None)

    def step(self, state, yobs, ctx: ProbCtx):
        t, prev = state
        x = ctx.sample(gaussian(0.0 if prev is None else prev, 1.0))
        ctx.observe(gaussian(x, 0.5), yobs)
        if t >= self.k:
            ctx.value(ctx.sample(uniform(0.0, 1.0)))  # no batched kernels
        return x, (t + 1, x)


def counter_value(name, labels=None):
    counter = default_registry().get(name, labels)
    return 0.0 if counter is None else counter.value


class TestNanCounters:
    def test_nan_log_weights_count_per_particle(self):
        logw = np.array([0.0, np.nan, -1.0, np.nan])
        with pytest.warns(RuntimeWarning, match="NaN log-weight"):
            normalize_log_weights(logw)
        assert counter_value("repro_nan_log_weights_total") == 2.0
        # a clean call adds nothing
        normalize_log_weights(np.zeros(3))
        assert counter_value("repro_nan_log_weights_total") == 2.0

    def test_nan_mixture_weights_count_per_component(self):
        weights = np.array([0.5, np.nan, 0.5])
        with pytest.warns(RuntimeWarning, match="NaN mixture weight"):
            zero_nan_weights(weights)
        assert counter_value("repro_nan_mixture_weights_total") == 1.0
        zero_nan_weights(np.array([0.5, 0.5]))
        assert counter_value("repro_nan_mixture_weights_total") == 1.0


class TestFallbackCounter:
    def test_scalar_fallback_counts_exactly_once(self):
        engine = VectorizedGaussianChainSDS(
            UnsupportedAtK(2), mode="sds", n_particles=12, seed=3
        )
        state = engine.init()
        labels = {
            "model": "UnsupportedAtK",
            "mode": "sds",
            "reason": "unsupported-family",
        }
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for y in [0.1, 0.2, -0.1, 0.4, 0.3]:
                _, state = engine.step(state, y)
        assert isinstance(state, ScalarFallbackState)
        # the migration happened once; later steps run scalar, no re-count
        assert counter_value("repro_scalar_fallback_total", labels) == 1.0


class TestSlotRealizationCounter:
    def test_realizations_counted_per_slot_not_migrated(self):
        """Per-slot degradation is observable separately from migration:
        the quadratic transition counts one gaussian realization per
        step from k on, and the fallback counter never moves."""
        before = counter_value(
            "repro_slot_realizations_total", {"family": "gaussian"}
        )
        engine = VectorizedGaussianChainSDS(
            NonlinearAtK(2), mode="sds", n_particles=12, seed=3
        )
        state = engine.init()
        for y in [0.1, 0.2, -0.1, 0.4, 0.3]:
            _, state = engine.step(state, y)
        assert not isinstance(state, ScalarFallbackState)
        after = counter_value(
            "repro_slot_realizations_total", {"family": "gaussian"}
        )
        # steps t=2,3,4 each break the prev*prev dependency once
        assert after - before == 3.0
        assert (
            counter_value(
                "repro_scalar_fallback_total",
                {"model": "NonlinearAtK", "mode": "sds", "reason": "structure"},
            )
            == 0.0
        )

    def test_no_fallback_no_count(self):
        from repro.bench.models import HmmModel
        from repro.inference.infer import infer

        engine = infer(
            HmmModel(), n_particles=12, seed=3, method="sds",
            backend="vectorized",
        )
        state = engine.init()
        for y in [0.1, 0.2, -0.1]:
            _, state = engine.step(state, y)
        snapshot = default_registry().snapshot()
        assert not any(
            name.startswith("repro_scalar_fallback_total")
            for name in snapshot["counters"]
        )
