"""StreamServer under injected faults: per-session retry and isolation.

A session whose worker-resident step fails is retried once from the
executor's coordinator-side checkpoints before eviction; other sessions
sharing the same persistent pool never observe the failure, and the
retried session's posterior stream stays bit-identical to serial.
"""

import numpy as np
import pytest

from repro.bench.models import HmmModel
from repro.exec import PersistentProcessExecutor, StreamServer
from repro.faults import FaultPlan, clear_fault_plan, fault_plan
from repro.inference import infer

OBSERVATIONS = (0.5, 1.0, -0.3, 2.0, 0.8, -1.1)


def serial_outputs(seed):
    clear_fault_plan()
    engine = infer(HmmModel(), n_particles=12, seed=seed, executor="serial")
    state = engine.init()
    means = []
    for y in OBSERVATIONS:
        dist, state = engine.step(state, y)
        means.append(dist.mean())
    return means


def drain_outputs(server, session_id):
    return [dist.mean() for dist in server.outputs(session_id)]


class TestSessionRetry:
    def test_error_fault_retries_once_and_stays_bit_identical(self, counters):
        """An injected worker error poisons the session's population;
        the server must recover it from checkpoints, not evict."""
        serial = serial_outputs(seed=3)
        before = counters("repro_session_retries_total")
        executor = PersistentProcessExecutor(workers=2, checkpoint_every=2)
        try:
            with fault_plan(FaultPlan().error(0, 3)):
                server = StreamServer(executor=executor)
                server.open(HmmModel(), session_id="s0", n_particles=12, seed=3)
                server.submit_many("s0", OBSERVATIONS)
                processed = server.drain()
            assert processed == len(OBSERVATIONS)
            assert drain_outputs(server, "s0") == serial
            stats = server.stats()
            assert stats["per_session"]["s0"]["retries"] == 1
            assert stats["evicted"] == 0
            assert "workers" in stats
            assert stats["workers"]["restart_budget"] >= 0
            assert counters("repro_session_retries_total") == before + 1
        finally:
            executor.close()

    def test_failing_session_does_not_disturb_neighbours(self):
        """Two sessions share the pool; only the faulted one retries."""
        serial_a = serial_outputs(seed=3)
        serial_b = serial_outputs(seed=7)
        executor = PersistentProcessExecutor(workers=2, checkpoint_every=2)
        try:
            with fault_plan(FaultPlan().error(0, 5)):
                server = StreamServer(executor=executor)
                server.open(HmmModel(), session_id="a", n_particles=12, seed=3)
                server.open(HmmModel(), session_id="b", n_particles=12, seed=7)
                for y in OBSERVATIONS:
                    server.submit("a", y)
                    server.submit("b", y)
                server.drain()
            assert drain_outputs(server, "a") == serial_a
            assert drain_outputs(server, "b") == serial_b
            retries = {
                sid: info["retries"]
                for sid, info in server.stats()["per_session"].items()
            }
            assert sum(retries.values()) == 1  # exactly one session retried
            assert server.stats()["evicted"] == 0
        finally:
            executor.close()

    def test_hung_worker_cannot_stall_other_sessions(self):
        """With a step deadline the hang burns one deadline, not forever:
        the drain completes and every session's outputs are intact."""
        import time

        serial_a = serial_outputs(seed=3)
        serial_b = serial_outputs(seed=7)
        executor = PersistentProcessExecutor(
            workers=2, checkpoint_every=2, step_timeout_s=1.0
        )
        try:
            with fault_plan(FaultPlan().hang(0, 4, seconds=60.0)):
                server = StreamServer(executor=executor)
                server.open(HmmModel(), session_id="a", n_particles=12, seed=3)
                server.open(HmmModel(), session_id="b", n_particles=12, seed=7)
                for y in OBSERVATIONS:
                    server.submit("a", y)
                    server.submit("b", y)
                started = time.perf_counter()
                server.drain()
                elapsed = time.perf_counter() - started
            assert elapsed < 30.0  # bounded by deadlines, not the hang
            assert drain_outputs(server, "a") == serial_a
            assert drain_outputs(server, "b") == serial_b
            assert server.stats()["evicted"] == 0
        finally:
            executor.close()

    def test_second_failure_still_evicts(self):
        """Retry is once per step: a fault that refires on the recovered
        population evicts the session (and only that session)."""
        executor = PersistentProcessExecutor(workers=2, checkpoint_every=2)
        try:
            # error on step 3 of gen 0 *and* on the replaying/recovered
            # stream: the recovery reloads shards under a fresh key but
            # the same worker processes, whose step counters keep
            # counting — schedule a second error right after the first.
            plan = FaultPlan().error(0, 3).error(0, 4).error(0, 5).error(0, 6)
            with fault_plan(plan):
                server = StreamServer(executor=executor)
                server.open(HmmModel(), session_id="s0", n_particles=12, seed=3)
                server.submit_many("s0", OBSERVATIONS)
                with pytest.raises(Exception):
                    server.drain()
            assert server.stats()["sessions"] == 0
            assert server.stats()["evicted"] == 1
        finally:
            executor.close()
