"""Transport faults during revival: exhausted rings must not change bits.

Satellite of ISSUE 9: a worker crash whose *revival replay* runs with
an exhausted shared-memory ring (checkpoints and oplog commands forced
onto the pickle fallback) still reconstructs the identical resident
state — the fallback is metered, never semantic.
"""

import pytest

from repro.bench.models import HmmModel
from repro.exec import PersistentProcessExecutor
from repro.faults import FaultPlan, clear_fault_plan, fault_plan
from repro.inference import infer

OBSERVATIONS = (0.5, 1.0, -0.3, 2.0, 0.8, -1.1)


def run_stream(executor, *, seed=3, n_particles=128, **kwargs):
    # Vectorized backend: shard payloads are real arrays (ParticleBatch),
    # large enough to park in the rings — which is what makes ring
    # exhaustion observable as pickle fallbacks.
    engine = infer(HmmModel(), n_particles=n_particles, seed=seed,
                   backend="vectorized", executor=executor, **kwargs)
    state = engine.init()
    means = []
    for y in OBSERVATIONS:
        dist, state = engine.step(state, y)
        means.append(dist.mean())
    return means, engine


def serial_baseline():
    clear_fault_plan()
    means, _ = run_stream("serial")
    return means


class TestRingExhaustionDuringRevival:
    def test_exhausted_cmd_ring_replay_is_bit_identical(self, counters):
        """gen-1 command-ring exhaustion: the whole checkpoint + oplog
        replay of the revived worker ships pickled."""
        serial = serial_baseline()
        before = counters("repro_shm_fallback_total", {"direction": "cmd"})
        executor = PersistentProcessExecutor(workers=2, checkpoint_every=100)
        try:
            plan = FaultPlan().crash(0, 3).exhaust_ring(0, step=1, gen=1)
            with fault_plan(plan):
                means, _ = run_stream(executor)
            slot = executor._slots[0]
            if slot.cmd_ring is not None:
                # The revived slot's command ring was born exhausted, so
                # every replayed array fell back to the pickle path.
                assert slot.cmd_ring.fault_exhausted
                assert counters(
                    "repro_shm_fallback_total", {"direction": "cmd"}
                ) > before
        finally:
            executor.close()
        assert means == serial

    def test_exhausted_reply_ring_is_bit_identical(self, counters):
        """Worker-side reply-ring exhaustion from step 1: every step
        summary falls back inline, results unchanged."""
        serial = serial_baseline()
        before = counters("repro_shm_fallback_total", {"direction": "reply"})
        executor = PersistentProcessExecutor(workers=2, checkpoint_every=2)
        try:
            with fault_plan(FaultPlan().exhaust_ring(0, step=1)):
                means, _ = run_stream(executor)
            if executor._slots[0].ring is not None:
                assert counters(
                    "repro_shm_fallback_total", {"direction": "reply"}
                ) > before
        finally:
            executor.close()
        assert means == serial

    def test_crash_with_late_checkpoint_replays_long_oplog(self):
        """checkpoint_every=100 forces the revival to replay the whole
        oplog from the initial checkpoint, through the exhausted ring."""
        serial = serial_baseline()
        executor = PersistentProcessExecutor(workers=2, checkpoint_every=100)
        try:
            plan = (
                FaultPlan()
                .crash(1, 5)
                .exhaust_ring(1, step=1, gen=1)
            )
            with fault_plan(plan):
                means, _ = run_stream(executor)
        finally:
            executor.close()
        assert means == serial


class TestRingFaultExhaustedSemantics:
    def test_exhausted_flag_behaves_like_overflow(self):
        """A fault-exhausted ring parks nothing but stays functional."""
        import numpy as np

        from repro.exec.shm import ShmRing, TransportStats

        ring = ShmRing.create(1 << 16)
        if ring is None:
            pytest.skip("platform has no shared memory")
        try:
            array = np.arange(64, dtype=float)  # > MIN_BYTES, would park
            stats = TransportStats()
            parked = ring.pack((array,), stats)
            assert stats.fallbacks == 0  # healthy ring parks it

            ring.fault_exhausted = True
            stats = TransportStats()
            inline = ring.pack((array,), stats)
            assert stats.fallbacks == 1
            assert stats.pickled_bytes == array.nbytes
            # the array stayed inline: unpack is the identity on it
            out = ring.unpack(inline)
            assert np.array_equal(out[0], array)
        finally:
            ring.close()
