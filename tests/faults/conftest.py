"""Fixtures for the fault-injection / supervision tests.

Every test runs with a clean fault switch: whatever plan the test
installs (or the CI chaos job exported via ``REPRO_FAULT_PLAN``) is
saved and restored around it, so tests compose with the chaos
environment instead of fighting over the process-global switch.
"""

from typing import Any, Mapping, Optional

import pytest

from repro.faults.plan import FAULTS
from repro.obs.registry import default_registry


@pytest.fixture(autouse=True)
def _restore_fault_switch():
    previous = (FAULTS.enabled, FAULTS.plan)
    yield
    FAULTS.enabled, FAULTS.plan = previous


def counter_value(name: str, labels: Optional[Mapping[str, Any]] = None) -> float:
    """Current value of a registry counter; 0.0 when never incremented."""
    metric = default_registry().get(name, labels)
    return 0.0 if metric is None else float(metric.value)


@pytest.fixture
def counters():
    """Callable reading event counters from the default registry."""
    return counter_value
