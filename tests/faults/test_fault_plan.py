"""The fault model itself: plans, the spec DSL, generations, the switch."""

import pytest

from repro.errors import InferenceError
from repro.faults import (
    FAULTS,
    Fault,
    FaultPlan,
    clear_fault_plan,
    fault_plan,
    install_fault_plan,
    load_env_plan,
)


class TestFault:
    def test_validation(self):
        with pytest.raises(InferenceError, match="unknown fault kind"):
            Fault("meteor", 0)
        with pytest.raises(InferenceError, match="non-negative"):
            Fault("crash", -1)
        with pytest.raises(InferenceError, match="step >= 1"):
            Fault("crash", 0, step=0)
        with pytest.raises(InferenceError, match="seconds"):
            Fault("hang", 0, step=1, seconds=-1.0)
        with pytest.raises(InferenceError, match="generation"):
            Fault("crash", 0, step=1, gen=-1)
        with pytest.raises(InferenceError, match="count"):
            Fault("spawn_fail", 0, count=0)

    def test_generation_matching(self):
        crash = Fault("crash", 0, step=3, gen=0)
        assert crash.matches_gen(0)
        assert not crash.matches_gen(1)  # a revival must not re-crash
        respawns = Fault("spawn_fail", 0, gen=1, count=2)
        assert not respawns.matches_gen(0)
        assert respawns.matches_gen(1)
        assert respawns.matches_gen(2)
        assert not respawns.matches_gen(3)


class TestFaultPlan:
    def test_parse_matches_chaining_constructors(self):
        parsed = FaultPlan.parse(
            "crash@3:w0; hang@4:w1:10; ring-corrupt@5:w0; spawn-fail:w0:3"
        )
        built = (
            FaultPlan()
            .crash(0, 3)
            .hang(1, 4, seconds=10.0)
            .corrupt_ring(0, 5)
            .fail_respawn(0, count=3)
        )
        assert parsed == built

    def test_parse_generation_field(self):
        plan = FaultPlan.parse("ring-exhaust@1:w0:g1")
        assert plan == FaultPlan().exhaust_ring(0, step=1, gen=1)

    def test_parse_rejects_bad_entries(self):
        with pytest.raises(InferenceError, match="names no worker"):
            FaultPlan.parse("crash@3")
        with pytest.raises(InferenceError, match="bad step"):
            FaultPlan.parse("crash@x:w0")
        with pytest.raises(InferenceError, match="bad field"):
            FaultPlan.parse("crash@3:w0:zap")
        with pytest.raises(InferenceError, match="unknown fault kind"):
            FaultPlan.parse("meteor@3:w0")

    def test_seeded_is_deterministic(self):
        assert FaultPlan.seeded(7) == FaultPlan.seeded(7)
        assert FaultPlan.seeded(7) != FaultPlan.seeded(8)
        plan = FaultPlan.seeded(7, workers=2, faults=5)
        assert len(plan) == 5
        assert all(fault.worker in (0, 1) for fault in plan.faults)

    def test_worker_coordinator_partition(self):
        plan = (
            FaultPlan()
            .crash(0, 3)
            .corrupt_ring(0, 5)
            .hang(1, 2, seconds=1.0)
            .exhaust_ring(1, step=1, gen=1)
        )
        assert [f.kind for f in plan.for_worker(0)] == ["crash"]
        assert [f.kind for f in plan.coordinator_for(0)] == ["ring_corrupt"]
        # ring_exhaust is both: worker reply ring and coordinator cmd ring
        assert [f.kind for f in plan.for_worker(1)] == ["hang", "ring_exhaust"]
        assert [f.kind for f in plan.coordinator_for(1)] == ["ring_exhaust"]


class TestSwitch:
    def test_context_manager_restores_previous_state(self):
        clear_fault_plan()
        outer = FaultPlan().crash(0, 1)
        install_fault_plan(outer)
        with fault_plan(FaultPlan().crash(1, 2)) as inner:
            assert FAULTS.enabled and FAULTS.plan is inner
        assert FAULTS.enabled and FAULTS.plan is outer
        clear_fault_plan()
        assert not FAULTS.enabled and FAULTS.plan is None

    def test_install_rejects_non_plans(self):
        with pytest.raises(InferenceError, match="needs a FaultPlan"):
            install_fault_plan(["crash"])

    def test_load_env_plan(self):
        previous = (FAULTS.enabled, FAULTS.plan)
        try:
            assert load_env_plan({}) is None
            plan = load_env_plan({"REPRO_FAULT_PLAN": "crash@3:w0"})
            assert plan == FaultPlan().crash(0, 3)
            assert FAULTS.enabled and FAULTS.plan is plan
            seeded = load_env_plan({"REPRO_FAULT_PLAN": "seed:11"})
            assert seeded == FaultPlan.seeded(11)
        finally:
            FAULTS.enabled, FAULTS.plan = previous
