"""Supervised persistent execution: deadlines, budgets, the ladder.

The acceptance contract of ISSUE 9: every injected failure mode —
crash, hang past the deadline, corrupted ring reply, crash loop — is
survived with a bit-identical posterior, and when the restart budget is
exhausted the engine degrades ``processes-persistent`` → ``processes``
→ ``serial`` while the stream keeps running.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.bench.models import HmmModel
from repro.errors import InferenceError
from repro.exec import (
    PersistentProcessExecutor,
    ProcessShardExecutor,
    SerialExecutor,
    shutdown_executors,
)
from repro.exec.executor import _INSTANCES
from repro.exec.supervision import (
    RestartBudgetExhausted,
    env_checkpoint_every,
    env_restart_budget,
    env_step_timeout_s,
)
from repro.faults import FaultPlan, clear_fault_plan, fault_plan
from repro.inference import infer

OBSERVATIONS = (0.5, 1.0, -0.3, 2.0, 0.8, -1.1)


def run_stream(executor, *, seed=3, n_particles=12, obs=OBSERVATIONS, **kwargs):
    engine = infer(
        HmmModel(), n_particles=n_particles, seed=seed, executor=executor,
        **kwargs,
    )
    state = engine.init()
    means = []
    for y in obs:
        dist, state = engine.step(state, y)
        means.append(dist.mean())
    return means, engine


def serial_baseline(**kwargs):
    # The "serial" spec (not executor=None) selects the sharded
    # population with the executor-independent substreams — the stream
    # every other executor must reproduce bit-for-bit.
    clear_fault_plan()
    means, _ = run_stream("serial", **kwargs)
    return means


class TestEnvKnobs:
    def test_step_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_STEP_TIMEOUT_S", raising=False)
        assert env_step_timeout_s() is None
        monkeypatch.setenv("REPRO_STEP_TIMEOUT_S", "0")
        assert env_step_timeout_s() is None  # 0 means disabled
        monkeypatch.setenv("REPRO_STEP_TIMEOUT_S", "2.5")
        assert env_step_timeout_s() == 2.5
        monkeypatch.setenv("REPRO_STEP_TIMEOUT_S", "soon")
        with pytest.raises(InferenceError, match="REPRO_STEP_TIMEOUT_S"):
            env_step_timeout_s()
        monkeypatch.setenv("REPRO_STEP_TIMEOUT_S", "-1")
        with pytest.raises(InferenceError, match="REPRO_STEP_TIMEOUT_S"):
            env_step_timeout_s()

    def test_restart_budget(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESTART_BUDGET", raising=False)
        assert env_restart_budget() == 3
        monkeypatch.setenv("REPRO_RESTART_BUDGET", "0")
        assert env_restart_budget() == 0
        monkeypatch.setenv("REPRO_RESTART_BUDGET", "-2")
        with pytest.raises(InferenceError, match="REPRO_RESTART_BUDGET"):
            env_restart_budget()

    def test_checkpoint_every(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_EVERY", raising=False)
        assert env_checkpoint_every() == 8
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "4")
        assert env_checkpoint_every() == 4
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "0")
        with pytest.raises(InferenceError, match="REPRO_CHECKPOINT_EVERY"):
            env_checkpoint_every()

    def test_executor_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STEP_TIMEOUT_S", "1.5")
        monkeypatch.setenv("REPRO_RESTART_BUDGET", "5")
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "2")
        executor = PersistentProcessExecutor(workers=1)
        assert executor.step_timeout_s == 1.5
        assert executor.restart_budget == 5
        assert executor.checkpoint_every == 2

    def test_constructor_validation(self):
        with pytest.raises(InferenceError, match="step_timeout_s"):
            PersistentProcessExecutor(workers=1, step_timeout_s=0)
        with pytest.raises(InferenceError, match="restart_budget"):
            PersistentProcessExecutor(workers=1, restart_budget=-1)


class TestFaultRecovery:
    """Injected failures recover bit-identically under supervision."""

    def test_crash_fault_recovers_bit_identical(self, counters):
        serial = serial_baseline()
        before = counters("repro_worker_restarts_total", {"reason": "crash"})
        executor = PersistentProcessExecutor(workers=2, checkpoint_every=2)
        try:
            with fault_plan(FaultPlan().crash(0, 3)):
                means, _ = run_stream(executor)
        finally:
            executor.close()
        assert means == serial
        after = counters("repro_worker_restarts_total", {"reason": "crash"})
        assert after > before
        assert executor.restart_stats()["consecutive_failures"] == [0, 0]
        assert executor.restart_stats()["restarts_total"] >= 1

    def test_hang_fault_times_out_and_recovers(self, counters):
        """A hung worker is SIGKILLed at the deadline, then revived."""
        serial = serial_baseline()
        before = counters("repro_worker_timeouts_total")
        executor = PersistentProcessExecutor(
            workers=2, checkpoint_every=2, step_timeout_s=1.0
        )
        try:
            started = time.perf_counter()
            with fault_plan(FaultPlan().hang(1, 2, seconds=60.0)):
                means, _ = run_stream(executor)
            elapsed = time.perf_counter() - started
        finally:
            executor.close()
        assert means == serial
        assert elapsed < 30.0  # nowhere near the 60 s hang
        assert counters("repro_worker_timeouts_total") > before
        assert counters(
            "repro_worker_restarts_total", {"reason": "timeout"}
        ) >= 1

    def test_delay_below_deadline_does_not_restart(self):
        serial = serial_baseline()
        executor = PersistentProcessExecutor(
            workers=2, checkpoint_every=2, step_timeout_s=10.0
        )
        try:
            with fault_plan(FaultPlan().delay(0, 2, seconds=0.2)):
                means, _ = run_stream(executor)
            assert means == serial
            assert executor.restart_stats()["restarts_total"] == 0
        finally:
            executor.close()

    def test_ring_corruption_revives_and_recovers(self, counters):
        serial = serial_baseline()
        before = counters("repro_worker_restarts_total", {"reason": "ring"})
        executor = PersistentProcessExecutor(workers=2, checkpoint_every=2)
        try:
            with fault_plan(FaultPlan().corrupt_ring(0, 2)):
                means, _ = run_stream(executor)
        finally:
            executor.close()
        assert means == serial
        assert counters(
            "repro_worker_restarts_total", {"reason": "ring"}
        ) > before

    def test_crash_during_revival_replay_is_survived(self):
        """A gen-1 crash fires while the respawn replays the oplog."""
        serial = serial_baseline()
        executor = PersistentProcessExecutor(workers=2, checkpoint_every=100)
        try:
            with fault_plan(FaultPlan().crash(0, 3).crash(0, 1, gen=1)):
                means, _ = run_stream(executor)
        finally:
            executor.close()
        assert means == serial


class TestDegradationLadder:
    """Budget exhaustion walks persistent -> processes -> serial."""

    def test_crash_loop_degrades_to_processes(self, counters):
        serial = serial_baseline()
        before = counters(
            "repro_executor_degradations_total",
            {"from": "processes-persistent", "to": "processes"},
        )
        executor = PersistentProcessExecutor(
            workers=2, checkpoint_every=2, restart_budget=2,
            backoff_base_s=0.01,
        )
        try:
            plan = FaultPlan().crash(0, 3).fail_respawn(0, count=10)
            with fault_plan(plan):
                with pytest.warns(RuntimeWarning, match="restart budget"):
                    means, engine = run_stream(executor)
        finally:
            executor.close()
        assert means == serial
        assert isinstance(engine.executor, ProcessShardExecutor)
        engine.executor.close()
        assert counters(
            "repro_executor_degradations_total",
            {"from": "processes-persistent", "to": "processes"},
        ) > before

    def test_degraded_engine_survives_pool_death(self, counters):
        """Second rung: BrokenProcessPool mid-stream falls back serially."""
        from concurrent.futures.process import BrokenProcessPool

        import repro.exec.population as population_mod
        import repro.inference.engine as engine_mod

        serial = serial_baseline()
        executor = ProcessShardExecutor(workers=2)
        engine = infer(HmmModel(), n_particles=12, seed=3, executor=executor)
        state = engine.init()
        means = []
        real_map_step = population_mod.map_step
        armed = []

        def exploding_map_step(executor, stepper, population, inp):
            if armed and isinstance(executor, ProcessShardExecutor):
                armed.clear()
                raise BrokenProcessPool("workers reaped")
            return real_map_step(executor, stepper, population, inp)

        engine_mod.map_step = exploding_map_step
        try:
            before = counters(
                "repro_executor_degradations_total",
                {"from": "processes", "to": "serial"},
            )
            for i, y in enumerate(OBSERVATIONS):
                if i == 2:
                    armed.append(True)
                    with pytest.warns(RuntimeWarning, match="pool died"):
                        dist, state = engine.step(state, y)
                else:
                    dist, state = engine.step(state, y)
                means.append(dist.mean())
        finally:
            engine_mod.map_step = real_map_step
            executor.close()
        assert means == serial
        assert isinstance(engine.executor, SerialExecutor)
        assert counters(
            "repro_executor_degradations_total",
            {"from": "processes", "to": "serial"},
        ) > before

    def test_exhausted_budget_raises_for_direct_executor_users(self):
        """Callers driving the executor without an engine see the
        exception itself (no ladder above them to catch it)."""
        executor = PersistentProcessExecutor(
            workers=1, restart_budget=0, backoff_base_s=0.01
        )
        try:
            with fault_plan(FaultPlan().crash(0, 1)):
                engine = infer(
                    HmmModel(), n_particles=8, seed=0, executor=executor
                )
                state = engine.init()
                with pytest.raises(RestartBudgetExhausted):
                    executor.step_population(state.key, 0.5)
        finally:
            executor.close()

    def test_zero_budget_engine_degrades_on_first_failure(self):
        serial = serial_baseline()
        executor = PersistentProcessExecutor(
            workers=2, checkpoint_every=2, restart_budget=0,
            backoff_base_s=0.01,
        )
        try:
            with fault_plan(FaultPlan().crash(0, 3)):
                with pytest.warns(RuntimeWarning, match="restart budget"):
                    means, engine = run_stream(executor)
        finally:
            executor.close()
        assert means == serial
        engine.executor.close()


class TestShutdownHardening:
    def test_close_is_idempotent_and_reentrant(self):
        executor = PersistentProcessExecutor(workers=2)
        executor.map_shards(len, [[1], [2, 3]])  # start the workers
        executor.close()
        executor.close()  # second close is a no-op
        assert executor._slots is None

    def test_close_survives_half_dead_workers(self):
        executor = PersistentProcessExecutor(workers=2)
        pids = executor.worker_pids()
        os.kill(pids[0], signal.SIGKILL)
        time.sleep(0.1)
        executor.close()  # must not raise or hang
        executor.close()

    def test_shutdown_executors_survives_a_failing_close(self):
        class ExplodingExecutor:
            def close(self):
                raise OSError("pipe gone")

        shutdown_executors()
        _INSTANCES["exploding"] = ExplodingExecutor()
        try:
            shutdown_executors()  # must not raise, must drain the cache
            assert not _INSTANCES
        finally:
            _INSTANCES.pop("exploding", None)
