"""Pointer-minimality of the streaming graph (Section 5.3, Fig. 15)."""

import numpy as np
import pytest

from repro.delayed import (
    DelayedGraph,
    NodeState,
    StreamingGraph,
    reachable_nodes,
)
from repro.delayed.conjugacy import AffineGaussian
from repro.dists import Gaussian


def run_hmm_steps(graph, observations):
    """Drive the HMM chain; returns the sequence of current-x nodes."""
    nodes = []
    prev = None
    for obs in observations:
        if prev is None:
            x = graph.assume_root(Gaussian(0.0, 100.0))
        else:
            x = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), prev)
        y = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), x)
        graph.observe(y, obs)
        nodes.append(x)
        prev = x
    return nodes


class TestPointerFlip:
    def test_marginalized_child_drops_parent_pointer(self, rng):
        graph = StreamingGraph(rng=rng)
        root = graph.assume_root(Gaussian(0.0, 1.0))
        child = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), root)
        assert child.parent is root  # backward pointer while initialized
        graph.graft(child)
        assert child.parent is None  # flipped at marginalization
        assert child in root.children  # forward pointer in

    def test_original_graph_keeps_both_pointers(self, rng):
        graph = DelayedGraph(rng=rng)
        root = graph.assume_root(Gaussian(0.0, 1.0))
        child = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), root)
        graph.graft(child)
        assert child.parent is root
        assert child in root.children


class TestDeferredConditioning:
    def test_fold_happens_at_next_access(self, rng):
        graph = StreamingGraph(rng=rng)
        x = graph.assume_root(Gaussian(0.0, 100.0))
        y = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), x)
        graph.observe(y, 4.0)
        # the observation is recorded but not yet folded into x
        assert y in x.children and y.state is NodeState.REALIZED
        post = graph.posterior_marginal(x)  # triggers the fold
        assert y not in x.children  # pointer dropped after folding
        oracle = Gaussian(0.0, 100.0).posterior_given_obs(4.0, 1.0)
        assert post.mu == pytest.approx(oracle.mu)

    def test_fold_is_idempotent(self, rng):
        graph = StreamingGraph(rng=rng)
        x = graph.assume_root(Gaussian(0.0, 100.0))
        y = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), x)
        graph.observe(y, 4.0)
        first = graph.posterior_marginal(x)
        second = graph.posterior_marginal(x)
        assert first.mu == second.mu
        assert first.var == second.var

    def test_multiple_pending_folds(self, rng):
        graph = StreamingGraph(rng=rng)
        x = graph.assume_root(Gaussian(0.0, 100.0))
        for obs in (1.0, 2.0, 3.0):
            y = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), x)
            graph.observe(y, obs)
        post = graph.posterior_marginal(x)
        oracle = Gaussian(0.0, 100.0)
        for obs in (1.0, 2.0, 3.0):
            oracle = oracle.posterior_given_obs(obs, 1.0)
        assert post.mu == pytest.approx(oracle.mu)
        assert post.var == pytest.approx(oracle.var)


class TestReachability:
    def test_streaming_history_collectable(self, rng):
        graph = StreamingGraph(rng=rng)
        nodes = run_hmm_steps(graph, [float(i) for i in range(20)])
        live = reachable_nodes([nodes[-1]])
        # only the current x (plus at most its pending observation)
        assert len(live) <= 2

    def test_original_history_retained(self, rng):
        graph = DelayedGraph(rng=rng)
        nodes = run_hmm_steps(graph, [float(i) for i in range(20)])
        live = reachable_nodes([nodes[-1]])
        assert len(live) >= 20  # the whole marginalized chain

    def test_both_graphs_agree_on_posterior(self, rng_factory):
        observations = [0.3, 1.1, -0.4, 2.2, 0.8]
        posts = []
        for cls in (DelayedGraph, StreamingGraph):
            graph = cls(rng=rng_factory(0))
            nodes = run_hmm_steps(graph, observations)
            posts.append(graph.marginal_snapshot(nodes[-1]))
        assert posts[0].mu == pytest.approx(posts[1].mu)
        assert posts[0].var == pytest.approx(posts[1].var)

    def test_unobserved_walk_grows_in_both(self, rng):
        """Initialized chains (no observations) keep backward pointers."""
        for cls in (DelayedGraph, StreamingGraph):
            graph = cls(rng=rng)
            prev = graph.assume_root(Gaussian(0.0, 1.0))
            for _ in range(10):
                prev = graph.assume_conditional(
                    AffineGaussian(1.0, 0.0, 1.0), prev
                )
            live = reachable_nodes([prev])
            assert len(live) == 11


class TestStreamingInvariants:
    def test_realized_node_keeps_cdistr_for_parent_fold(self, rng):
        graph = StreamingGraph(rng=rng)
        x = graph.assume_root(Gaussian(0.0, 100.0))
        y = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), x)
        graph.observe(y, 1.0)
        assert y.cdistr is not None
        assert y.marginal is None  # dropped to save memory

    def test_initialized_child_of_realized_parent_collapses_lazily(self, rng):
        graph = StreamingGraph(rng=rng)
        x = graph.assume_root(Gaussian(0.0, 1.0))
        child = graph.assume_conditional(AffineGaussian(2.0, 1.0, 0.5), x)
        graph.value(x)  # realize the parent; child still initialized
        assert child.state is NodeState.INITIALIZED
        graph.graft(child)  # lazy collapse to a root
        assert child.state is NodeState.MARGINALIZED
        assert child.parent is None
        assert child.marginal.mu == pytest.approx(2.0 * x.value + 1.0)
