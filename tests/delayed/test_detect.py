"""The Gaussian-chain structure detector."""

import pytest

from repro.bench.models import (
    CoinModel,
    HmmModel,
    KalmanModel,
    OutlierModel,
    WalkModel,
)
from repro.bench.robot import RobotModel
from repro.delayed.detect import GAUSSIAN_FAMILIES, probe_gaussian_chain


class TestChainModels:
    def test_kalman_is_a_chain(self):
        report = probe_gaussian_chain(KalmanModel(), [0.5, -0.2, 1.1])
        assert report.is_chain
        assert report.families == frozenset({"gaussian"})
        assert report.forced == 0
        assert report.steps == 3

    def test_hmm_is_a_chain(self):
        assert probe_gaussian_chain(HmmModel(), [0.1, 0.2]).is_chain

    def test_robot_is_a_chain_with_and_without_gps(self):
        report = probe_gaussian_chain(
            RobotModel(), [(0.0, 0.0, 0.0), (0.1, None, 0.0)]
        )
        assert report.is_chain
        assert report.families == frozenset({"gaussian", "mv_gaussian"})


class TestNonChainModels:
    def test_coin_rejected_by_family(self):
        report = probe_gaussian_chain(CoinModel(), [True, False])
        assert not report.is_chain
        assert "beta" in report.reason or "bernoulli" in report.reason

    def test_outlier_rejected(self):
        """Beta/Bernoulli families *and* a forced indicator realization."""
        report = probe_gaussian_chain(OutlierModel(), [0.5, 0.7])
        assert not report.is_chain
        assert not report.families <= GAUSSIAN_FAMILIES
        assert report.forced > 0

    def test_walk_is_gaussian_but_forced_forcing_matters(self):
        """The unobserved walk stays Gaussian and unforced: it IS a chain.

        (It is still not *registered* for vectorization — registration is
        a separate, explicit step — but the detector's verdict is about
        structure, and the walk's structure is a chain.)
        """
        report = probe_gaussian_chain(WalkModel(), [None, None])
        assert report.is_chain

    def test_empty_probe_rejected(self):
        report = probe_gaussian_chain(KalmanModel(), [])
        assert not report.is_chain
        assert "no probe inputs" in report.reason


class TestRobustness:
    def test_model_raising_is_rejected_not_propagated(self):
        class Broken(KalmanModel):
            def step(self, state, yobs, ctx):
                raise ValueError("boom")

        report = probe_gaussian_chain(Broken(), [0.5])
        assert not report.is_chain
        assert "ValueError" in report.reason

    def test_registration_wiring(self):
        """The bench layer registered its chains with the backend."""
        from repro.vectorized.models import BDS_ENGINES, SDS_ENGINES

        assert KalmanModel in BDS_ENGINES
        assert HmmModel in BDS_ENGINES
        assert RobotModel in BDS_ENGINES
        assert RobotModel in SDS_ENGINES  # graph engine claims robot sds
        assert KalmanModel not in SDS_ENGINES  # closed form keeps Kalman sds
