"""The Gaussian-chain and generic DS structure detectors."""

import pytest

from repro.bench.models import (
    CoinModel,
    HmmModel,
    KalmanModel,
    OutlierModel,
    WalkModel,
)
from repro.bench.robot import RobotModel
from repro.delayed.detect import (
    BATCHABLE_FAMILIES,
    GAUSSIAN_FAMILIES,
    probe_ds_structure,
    probe_gaussian_chain,
)


class TestChainModels:
    def test_kalman_is_a_chain(self):
        report = probe_gaussian_chain(KalmanModel(), [0.5, -0.2, 1.1])
        assert report.is_chain
        assert report.families == frozenset({"gaussian"})
        assert report.forced == 0
        assert report.steps == 3

    def test_hmm_is_a_chain(self):
        assert probe_gaussian_chain(HmmModel(), [0.1, 0.2]).is_chain

    def test_robot_is_a_chain_with_and_without_gps(self):
        report = probe_gaussian_chain(
            RobotModel(), [(0.0, 0.0, 0.0), (0.1, None, 0.0)]
        )
        assert report.is_chain
        assert report.families == frozenset({"gaussian", "mv_gaussian"})


class TestNonChainModels:
    def test_coin_rejected_by_family(self):
        report = probe_gaussian_chain(CoinModel(), [True, False])
        assert not report.is_chain
        assert "beta" in report.reason or "bernoulli" in report.reason

    def test_outlier_rejected(self):
        """Beta/Bernoulli families *and* a forced indicator realization."""
        report = probe_gaussian_chain(OutlierModel(), [0.5, 0.7])
        assert not report.is_chain
        assert not report.families <= GAUSSIAN_FAMILIES
        assert report.forced > 0

    def test_walk_is_gaussian_but_forced_forcing_matters(self):
        """The unobserved walk stays Gaussian and unforced: it IS a chain.

        (It is still not *registered* for vectorization — registration is
        a separate, explicit step — but the detector's verdict is about
        structure, and the walk's structure is a chain.)
        """
        report = probe_gaussian_chain(WalkModel(), [None, None])
        assert report.is_chain

    def test_empty_probe_rejected(self):
        report = probe_gaussian_chain(KalmanModel(), [])
        assert not report.is_chain
        assert "no probe inputs" in report.reason


class TestDSStructureProbe:
    """The generic detector behind the batched DS graph (PR 5)."""

    def test_kalman_is_batchable_chain(self):
        report = probe_ds_structure(KalmanModel(), [0.5, -0.2, 1.1])
        assert report.is_batchable
        assert report.is_chain  # PR-4 compatibility view
        assert report.shape == "chain"
        assert report.families == frozenset({"gaussian"})

    def test_robot_is_batchable(self):
        report = probe_ds_structure(
            RobotModel(), [(0.0, 0.0, 0.0), (0.1, None, 0.0)]
        )
        assert report.is_batchable and report.shape == "chain"

    def test_coin_is_batchable_beyond_gaussian(self):
        """Beta/Bernoulli families are inside the batched fragment now."""
        report = probe_ds_structure(CoinModel(), [True, False])
        assert report.is_batchable
        assert not report.is_chain  # not a *Gaussian* chain
        assert report.families <= BATCHABLE_FAMILIES
        assert "beta" in report.families

    def test_raw_outlier_rejected_by_batched_smoke(self):
        """The raw Outlier model branches Python control flow on the
        forced per-particle indicator — the batched smoke run is what
        catches it (families and conjugacies alone look fine)."""
        report = probe_ds_structure(OutlierModel(), [0.5, 0.7])
        assert not report.is_batchable
        assert report.shape == "tree"
        assert report.forced > 0
        assert "batched probe" in report.reason

    def test_outlier_adapter_is_batchable_tree(self):
        from repro.vectorized import GraphOutlierModel

        adapter = GraphOutlierModel(OutlierModel())
        report = probe_ds_structure(adapter, [0.5, 0.7])
        assert report.is_batchable
        assert report.shape == "tree"
        assert report.forced > 0
        assert {"gaussian", "beta", "bernoulli"} <= report.families

    def test_gamma_poisson_family_batchable(self):
        """Gamma-Poisson count models are first-class batched slots now."""
        from repro.lang import gamma, poisson
        from repro.runtime.node import ProbNode

        class GammaPoissonModel(ProbNode):
            def init(self):
                return None

            def step(self, state, yobs, ctx):
                lam = ctx.sample(gamma(2.0, 1.0)) if state is None else state
                ctx.observe(poisson(lam), yobs)
                return lam, lam

        report = probe_ds_structure(GammaPoissonModel(), [1, 2])
        assert report.is_batchable
        assert {"gamma", "poisson"} <= report.families

    def test_unsupported_family_rejected(self):
        """Families without SoA kernels (opaque roots) are still rejected."""
        from repro.lang import exponential, gaussian
        from repro.runtime.node import ProbNode

        class ExponentialModel(ProbNode):
            def init(self):
                return None

            def step(self, state, yobs, ctx):
                rate = ctx.sample(exponential(1.0)) if state is None else state
                ctx.observe(gaussian(ctx.value(rate), 1.0), yobs)
                return rate, rate

        report = probe_ds_structure(ExponentialModel(), [0.5, 0.7])
        assert not report.is_batchable

    def test_empty_probe_rejected(self):
        assert not probe_ds_structure(KalmanModel(), []).is_batchable


class TestRobustness:
    def test_model_raising_is_rejected_not_propagated(self):
        class Broken(KalmanModel):
            def step(self, state, yobs, ctx):
                raise ValueError("boom")

        report = probe_gaussian_chain(Broken(), [0.5])
        assert not report.is_chain
        assert "ValueError" in report.reason

    def test_registration_wiring(self):
        """The bench layer registered its chains with the backend."""
        from repro.vectorized.models import BDS_ENGINES, SDS_ENGINES

        assert KalmanModel in BDS_ENGINES
        assert HmmModel in BDS_ENGINES
        assert RobotModel in BDS_ENGINES
        assert RobotModel in SDS_ENGINES  # graph engine claims robot sds
        assert KalmanModel not in SDS_ENGINES  # closed form keeps Kalman sds
        # PR 5: the generic graph claims the Outlier model entirely and
        # Coin's bounded delayed sampling; Coin sds keeps its closed form.
        assert OutlierModel in BDS_ENGINES
        assert OutlierModel in SDS_ENGINES
        assert CoinModel in BDS_ENGINES
        from repro.vectorized.engine import VectorizedBetaBernoulliSDS

        assert SDS_ENGINES[CoinModel] is VectorizedBetaBernoulliSDS
