"""Textual graph rendering."""

from repro.delayed import StreamingGraph
from repro.delayed.conjugacy import AffineGaussian
from repro.delayed.pretty import node_summary, render_graph
from repro.dists import Gaussian


class TestRender:
    def test_empty(self):
        assert render_graph([]) == "(empty graph)"

    def test_states_and_pointers_shown(self, rng):
        graph = StreamingGraph(rng=rng)
        x = graph.assume_root(Gaussian(0.0, 1.0), name="x")
        y = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), x, name="y")
        text = render_graph([y])
        assert "x" in text and "y" in text
        assert "[marg]" in text and "[init]" in text
        assert "parent->x" in text

    def test_realized_shows_value(self, rng):
        graph = StreamingGraph(rng=rng)
        x = graph.assume_root(Gaussian(0.0, 1.0), name="x")
        graph.realize(x, 3.5)
        assert "value=3.5" in node_summary(x)

    def test_stable_order_by_uid(self, rng):
        graph = StreamingGraph(rng=rng)
        a = graph.assume_root(Gaussian(0.0, 1.0), name="a")
        b = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), a, name="b")
        lines = render_graph([b]).splitlines()
        assert lines[0].strip().startswith("a")
