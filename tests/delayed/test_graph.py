"""Delayed-sampling graph operations: states, M-path discipline, weights."""

import math

import numpy as np
import pytest

from repro.delayed import DelayedGraph, NodeState, StreamingGraph
from repro.delayed.conjugacy import AffineGaussian, BetaBernoulli
from repro.dists import Beta, Delta, Gaussian
from repro.errors import GraphError

GRAPHS = [DelayedGraph, StreamingGraph]


@pytest.fixture(params=GRAPHS, ids=["ds", "sds"])
def graph(request, rng):
    return request.param(rng=rng)


class TestAssume:
    def test_root_is_marginalized(self, graph):
        node = graph.assume_root(Gaussian(0.0, 1.0))
        assert node.state is NodeState.MARGINALIZED
        assert node.family == "gaussian"

    def test_conditional_is_initialized(self, graph):
        parent = graph.assume_root(Gaussian(0.0, 1.0))
        child = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), parent)
        assert child.state is NodeState.INITIALIZED
        assert child.parent is parent

    def test_conditional_of_realized_parent_collapses(self, graph):
        parent = graph.assume_root(Gaussian(0.0, 1.0))
        graph.realize(parent, 2.0)
        child = graph.assume_conditional(AffineGaussian(3.0, 1.0, 0.5), parent)
        assert child.state is NodeState.MARGINALIZED
        assert child.marginal == Gaussian(7.0, 0.5)

    def test_family_mismatch_rejected(self, graph):
        parent = graph.assume_root(Beta(1.0, 1.0))
        with pytest.raises(GraphError):
            graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), parent)


class TestGraftAndMarginalize:
    def test_graft_marginalizes_chain(self, graph):
        root = graph.assume_root(Gaussian(0.0, 1.0))
        mid = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), root)
        leaf = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), mid)
        graph.graft(leaf)
        assert mid.state is NodeState.MARGINALIZED
        assert leaf.state is NodeState.MARGINALIZED
        # variances accumulate along the chain
        assert graph.posterior_marginal(leaf).var == pytest.approx(3.0)

    def test_graft_realized_rejected(self, graph):
        node = graph.assume_root(Gaussian(0.0, 1.0))
        graph.realize(node, 1.0)
        with pytest.raises(GraphError):
            graph.graft(node)

    def test_graft_prunes_sibling_marginal_child(self, graph):
        root = graph.assume_root(Gaussian(0.0, 10.0))
        a = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), root)
        b = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), root)
        graph.graft(a)  # root--a is the M-path
        assert a.state is NodeState.MARGINALIZED
        graph.graft(b)  # must prune a (realize it by sampling)
        assert a.state is NodeState.REALIZED
        assert b.state is NodeState.MARGINALIZED

    def test_marginalize_requires_initialized(self, graph):
        node = graph.assume_root(Gaussian(0.0, 1.0))
        with pytest.raises(GraphError):
            graph.marginalize(node)


class TestRealize:
    def test_realize_requires_marginalized(self, graph):
        root = graph.assume_root(Gaussian(0.0, 1.0))
        child = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), root)
        with pytest.raises(GraphError):
            graph.realize(child, 1.0)

    def test_realize_with_marginal_child_rejected(self, graph):
        root = graph.assume_root(Gaussian(0.0, 1.0))
        child = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), root)
        graph.graft(child)
        with pytest.raises(GraphError):
            graph.realize(root, 0.0)

    def test_state_transition_is_monotone(self, graph):
        node = graph.assume_root(Gaussian(0.0, 1.0))
        graph.realize(node, 5.0)
        assert node.state is NodeState.REALIZED
        assert node.value == 5.0
        with pytest.raises(GraphError):
            graph.realize(node, 6.0)


class TestValueAndObserve:
    def test_value_realizes_and_is_stable(self, graph):
        node = graph.assume_root(Gaussian(0.0, 1.0))
        first = graph.value(node)
        second = graph.value(node)
        assert first == second
        assert node.state is NodeState.REALIZED

    def test_observe_weight_is_marginal_likelihood(self, graph):
        # y | x ~ N(x, 1), x ~ N(0, 100): predictive is N(0, 101)
        x = graph.assume_root(Gaussian(0.0, 100.0))
        y = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), x)
        logw = graph.observe(y, 3.0)
        assert logw == pytest.approx(Gaussian(0.0, 101.0).log_pdf(3.0))

    def test_observe_conditions_parent(self, graph):
        x = graph.assume_root(Gaussian(0.0, 100.0))
        y = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), x)
        graph.observe(y, 4.0)
        oracle = Gaussian(0.0, 100.0).posterior_given_obs(4.0, 1.0)
        post = graph.posterior_marginal(x)
        assert post.mu == pytest.approx(oracle.mu)
        assert post.var == pytest.approx(oracle.var)

    def test_observe_realized_rejected(self, graph):
        node = graph.assume_root(Gaussian(0.0, 1.0))
        graph.realize(node, 0.0)
        with pytest.raises(GraphError):
            graph.observe(node, 1.0)

    def test_sequential_observes_accumulate(self, graph):
        theta = graph.assume_root(Beta(1.0, 1.0))
        for outcome in (True, True, False):
            child = graph.assume_conditional(BetaBernoulli(), theta)
            graph.observe(child, outcome)
        post = graph.posterior_marginal(theta)
        assert (post.alpha, post.beta) == (3.0, 2.0)


class TestSnapshot:
    def test_realized_snapshot_is_delta(self, graph):
        node = graph.assume_root(Gaussian(0.0, 1.0))
        graph.realize(node, 2.0)
        snap = graph.marginal_snapshot(node)
        assert isinstance(snap, Delta)
        assert snap.value == 2.0

    def test_initialized_snapshot_folds_chain(self, graph):
        root = graph.assume_root(Gaussian(1.0, 2.0))
        child = graph.assume_conditional(AffineGaussian(2.0, 0.0, 1.0), root)
        snap = graph.marginal_snapshot(child)
        assert snap.mu == pytest.approx(2.0)
        assert snap.var == pytest.approx(9.0)
        # snapshot must not change the node's state
        assert child.state is NodeState.INITIALIZED

    def test_initialized_snapshot_from_realized_anchor(self, graph):
        root = graph.assume_root(Gaussian(0.0, 1.0))
        graph.realize(root, 3.0)
        child = graph.assume_conditional(AffineGaussian(1.0, 1.0, 0.5), root)
        # child created under a realized parent collapses immediately,
        # so build the lazy case manually: initialize before realizing.
        root2 = graph.assume_root(Gaussian(0.0, 1.0))
        child2 = graph.assume_conditional(AffineGaussian(1.0, 1.0, 0.5), root2)
        graph.value(root2)
        snap = graph.marginal_snapshot(child2)
        assert snap.var == pytest.approx(0.5)
        assert snap.mu == pytest.approx(root2.value + 1.0)
        # the eager-collapse case for comparison
        assert graph.marginal_snapshot(child).var == pytest.approx(0.5)


class TestKalmanChainExactness:
    """Running an HMM through the raw graph equals the Kalman filter."""

    def test_chain_posterior_matches_kalman(self, graph):
        observations = [0.5, 1.2, 0.9, 2.0, 1.4]
        prev = None
        # oracle
        mu, var = 0.0, 100.0
        for t, obs in enumerate(observations):
            if prev is None:
                x = graph.assume_root(Gaussian(0.0, 100.0))
            else:
                x = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), prev)
                var = var + 1.0
            y = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), x)
            graph.observe(y, obs)
            gain = var / (var + 1.0)
            mu = mu + gain * (obs - mu)
            var = (1.0 - gain) * var
            post = graph.marginal_snapshot(x)
            assert post.mu == pytest.approx(mu)
            assert post.var == pytest.approx(var)
            prev = x
