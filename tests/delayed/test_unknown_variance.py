"""The unknown-variance Gaussian conjugacy (InverseGamma / Student-t)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.delayed import GaussianUnknownVariance, StreamingGraph, assume
from repro.delayed.node import NodeState
from repro.dists import InverseGamma, StudentT
from repro.errors import DistributionError
from repro.inference import infer
from repro.lang import gaussian, inverse_gamma
from repro.runtime import FunProbNode
from repro.symbolic import RVar


class TestInverseGamma:
    def test_log_pdf_matches_scipy(self):
        dist = InverseGamma(3.0, 2.0)
        for x in (0.1, 0.5, 1.0, 4.0):
            assert dist.log_pdf(x) == pytest.approx(
                stats.invgamma(3.0, scale=2.0).logpdf(x), rel=1e-10
            )

    def test_moments(self):
        dist = InverseGamma(4.0, 6.0)
        assert dist.mean() == pytest.approx(2.0)
        assert dist.variance() == pytest.approx(stats.invgamma(4.0, scale=6.0).var())

    def test_undefined_moments_raise(self):
        with pytest.raises(DistributionError):
            InverseGamma(0.5, 1.0).mean()
        with pytest.raises(DistributionError):
            InverseGamma(1.5, 1.0).variance()

    def test_conjugate_update(self):
        post = InverseGamma(2.0, 3.0).with_observation_sq(4.0)
        assert post.shape == 2.5
        assert post.scale == 5.0


class TestStudentT:
    def test_log_pdf_matches_scipy(self):
        dist = StudentT(df=5.0, loc=1.0, scale=2.0)
        for x in (-3.0, 0.0, 1.0, 4.0):
            assert dist.log_pdf(x) == pytest.approx(
                stats.t(5.0, loc=1.0, scale=2.0).logpdf(x), rel=1e-10
            )

    def test_moments(self):
        dist = StudentT(df=4.0, loc=2.0, scale=3.0)
        assert dist.mean() == 2.0
        assert dist.variance() == pytest.approx(9.0 * 4.0 / 2.0)

    def test_heavy_tail_moments_raise(self):
        with pytest.raises(DistributionError):
            StudentT(df=1.0).mean()
        with pytest.raises(DistributionError):
            StudentT(df=2.0).variance()


class TestConjugacy:
    def test_marginal_is_student_t(self):
        cond = GaussianUnknownVariance(mu=1.0)
        marginal = cond.marginalize(InverseGamma(3.0, 2.0))
        assert isinstance(marginal, StudentT)
        assert marginal.df == 6.0
        assert marginal.loc == 1.0
        # scale^2 = scale_param / shape
        assert marginal.scale == pytest.approx(math.sqrt(2.0 / 3.0))

    def test_marginal_matches_numerical_integration(self):
        cond = GaussianUnknownVariance(mu=0.0)
        prior = InverseGamma(3.0, 2.0)
        marginal = cond.marginalize(prior)
        # numerically integrate N(x; 0, s) over the prior on s
        svals = np.linspace(1e-3, 60.0, 200001)
        prior_pdf = np.exp([prior.log_pdf(s) for s in svals])
        for x in (0.0, 1.0, 2.5):
            like = np.exp(-0.5 * x * x / svals) / np.sqrt(2 * np.pi * svals)
            numeric = np.trapezoid(prior_pdf * like, svals)
            assert marginal.pdf(x) == pytest.approx(numeric, rel=1e-3)

    def test_posterior_update(self):
        cond = GaussianUnknownVariance(mu=1.0)
        post = cond.posterior(InverseGamma(2.0, 2.0), 3.0)  # residual 2
        assert post.shape == 2.5
        assert post.scale == 4.0

    def test_at_parent_value(self):
        dist = GaussianUnknownVariance(mu=0.5).at_parent_value(4.0)
        assert dist.mu == 0.5
        assert dist.var == 4.0


class TestStreamingVarianceLearning:
    def make_model(self, mu=0.0, a0=3.0, b0=3.0):
        def step(state, y, ctx):
            sigma2 = ctx.sample(inverse_gamma(a0, b0)) if state is None else state
            ctx.observe(gaussian(mu, sigma2), y)
            return sigma2, sigma2

        return FunProbNode(None, step)

    def test_assume_detects_conjugacy(self, rng):
        graph = StreamingGraph(rng=rng)
        s2 = RVar(assume(graph, InverseGamma(3.0, 3.0)))
        child = assume(graph, gaussian(0.0, s2))
        assert child.state is NodeState.INITIALIZED
        assert child.family == "gaussian"

    def test_sds_learns_noise_exactly(self, rng_factory):
        """Streaming variance learning: SDS equals the closed form."""
        true_sigma = 2.0
        rng = rng_factory(5)
        observations = [float(rng.normal(0.0, true_sigma)) for _ in range(50)]
        engine = infer(self.make_model(), n_particles=1, method="sds", seed=0)
        state = engine.init()
        shape, scale = 3.0, 3.0
        for y in observations:
            dist, state = engine.step(state, y)
            shape += 0.5
            scale += 0.5 * y * y
            assert dist.mean() == pytest.approx(scale / (shape - 1.0), rel=1e-9)
        # after 50 observations, the estimate approaches sigma^2 = 4
        assert dist.mean() == pytest.approx(true_sigma**2, rel=0.5)

    def test_symbolic_mean_and_variance_falls_back(self, rng):
        """Both parameters symbolic: no single-parent conjugacy; forced."""
        graph = StreamingGraph(rng=rng)
        from repro.dists import Gaussian

        mu_node = assume(graph, Gaussian(0.0, 1.0))
        s2_node = assume(graph, InverseGamma(3.0, 3.0))
        child = assume(graph, gaussian(RVar(mu_node), RVar(s2_node)))
        assert child.state is NodeState.MARGINALIZED  # root after forcing
        assert s2_node.state is NodeState.REALIZED
        assert mu_node.state is NodeState.REALIZED
