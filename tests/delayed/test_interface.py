"""assume / observe / value / distribution (Fig. 14, Section 5.3)."""

import numpy as np
import pytest

from repro.delayed import StreamingGraph, assume, lift_distribution, observe_dist, value_expr
from repro.delayed.node import NodeState
from repro.dists import Delta, Gaussian, MvGaussian, TupleDist
from repro.lang import bernoulli, beta, gaussian, mv_gaussian, poisson, gamma
from repro.symbolic import RVar, app


@pytest.fixture
def graph(rng):
    return StreamingGraph(rng=rng)


class TestAssumeConjugacy:
    def test_concrete_dist_becomes_root(self, graph):
        node = assume(graph, Gaussian(0.0, 1.0))
        assert node.state is NodeState.MARGINALIZED

    def test_affine_gaussian_detected(self, graph):
        x = RVar(assume(graph, Gaussian(0.0, 1.0)))
        child = assume(graph, gaussian(2.0 * x + 1.0, 0.5))
        assert child.state is NodeState.INITIALIZED
        assert child.cdistr.a == 2.0
        assert child.cdistr.b == 1.0

    def test_identity_gaussian_detected(self, graph):
        x = RVar(assume(graph, Gaussian(0.0, 1.0)))
        child = assume(graph, gaussian(x, 1.0))
        assert child.state is NodeState.INITIALIZED

    def test_beta_bernoulli_detected(self, graph):
        theta = RVar(assume(graph, __import__("repro.dists", fromlist=["Beta"]).Beta(1.0, 1.0)))
        child = assume(graph, bernoulli(theta))
        assert child.state is NodeState.INITIALIZED
        assert child.family == "bernoulli"

    def test_gamma_poisson_detected(self, graph):
        from repro.dists import Gamma

        lam = RVar(assume(graph, Gamma(2.0, 1.0)))
        child = assume(graph, poisson(lam))
        assert child.state is NodeState.INITIALIZED

    def test_mv_affine_detected(self, graph):
        z = RVar(assume(graph, MvGaussian(np.zeros(2), np.eye(2))))
        f = np.array([[1.0, 1.0], [0.0, 1.0]])
        child = assume(graph, mv_gaussian(app("matvec", f, z), np.eye(2) * 0.1))
        assert child.state is NodeState.INITIALIZED
        assert child.family == "mv_gaussian"

    def test_projection_detected(self, graph):
        z = RVar(assume(graph, MvGaussian(np.zeros(3), np.eye(3))))
        child = assume(graph, gaussian(z[0], 0.5))
        assert child.state is NodeState.INITIALIZED
        assert child.family == "gaussian"

    def test_nonconjugate_forces_realization(self, graph):
        x_node = assume(graph, Gaussian(0.0, 1.0))
        x = RVar(x_node)
        # quadratic mean: not affine, so x must be realized
        child = assume(graph, gaussian(x * x, 1.0))
        assert x_node.state is NodeState.REALIZED
        assert child.state is NodeState.MARGINALIZED

    def test_symbolic_variance_forces_realization(self, graph):
        x_node = assume(graph, Gaussian(1.0, 1.0))
        child = assume(graph, gaussian(0.0, app("abs", RVar(x_node)) + 0.5))
        assert x_node.state is NodeState.REALIZED
        assert child.state is NodeState.MARGINALIZED

    def test_bernoulli_of_transformed_beta_forces(self, graph):
        from repro.dists import Beta

        theta_node = assume(graph, Beta(2.0, 2.0))
        # p = theta / 2 is not the identity, so no conjugacy
        child = assume(graph, bernoulli(RVar(theta_node) / 2.0))
        assert theta_node.state is NodeState.REALIZED


class TestValueExpr:
    def test_concrete_passthrough(self, graph):
        assert value_expr(graph, 3.0) == 3.0
        assert value_expr(graph, (1.0, "a")) == (1.0, "a")

    def test_forces_variables(self, graph):
        node = assume(graph, Gaussian(0.0, 1.0))
        value = value_expr(graph, RVar(node) + 1.0)
        assert value == pytest.approx(node.value + 1.0)
        assert node.state is NodeState.REALIZED


class TestObserveDist:
    def test_returns_predictive_log_likelihood(self, graph):
        x = RVar(assume(graph, Gaussian(0.0, 100.0)))
        logw = observe_dist(graph, gaussian(x, 1.0), 3.0)
        assert logw == pytest.approx(Gaussian(0.0, 101.0).log_pdf(3.0))

    def test_concrete_observation_scores_directly(self, graph):
        logw = observe_dist(graph, Gaussian(0.0, 1.0), 0.5)
        assert logw == pytest.approx(Gaussian(0.0, 1.0).log_pdf(0.5))


class TestLiftDistribution:
    def test_concrete_lifts_to_delta(self, graph):
        dist = lift_distribution(graph, 4.2)
        assert isinstance(dist, Delta)

    def test_rvar_lifts_to_marginal(self, graph):
        node = assume(graph, Gaussian(1.0, 2.0))
        dist = lift_distribution(graph, RVar(node))
        assert dist.mu == 1.0
        assert dist.var == 2.0

    def test_affine_image_exact(self, graph):
        node = assume(graph, Gaussian(1.0, 2.0))
        dist = lift_distribution(graph, 3.0 * RVar(node) - 1.0)
        assert dist.mu == pytest.approx(2.0)
        assert dist.var == pytest.approx(18.0)

    def test_projection_of_vector_node(self, graph):
        node = assume(graph, MvGaussian([1.0, 2.0], np.diag([4.0, 9.0])))
        dist = lift_distribution(graph, RVar(node)[1])
        assert isinstance(dist, Gaussian)
        assert dist.mu == pytest.approx(2.0)
        assert dist.var == pytest.approx(9.0)

    def test_tuple_lifts_componentwise(self, graph):
        node = assume(graph, Gaussian(0.0, 1.0))
        dist = lift_distribution(graph, (RVar(node), 5.0))
        assert isinstance(dist, TupleDist)
        assert isinstance(dist.components[1], Delta)

    def test_lift_does_not_realize_affine(self, graph):
        node = assume(graph, Gaussian(0.0, 1.0))
        lift_distribution(graph, 2.0 * RVar(node))
        assert node.state is NodeState.MARGINALIZED

    def test_nonaffine_falls_back_to_forcing(self, graph):
        node = assume(graph, Gaussian(0.0, 1.0))
        x = RVar(node)
        dist = lift_distribution(graph, x * x)
        assert isinstance(dist, Delta)
        assert node.state is NodeState.REALIZED
