"""Fig. 3 vs Fig. 15: live-node counts along the HMM's execution."""

import pytest

from repro.delayed import DelayedGraph, StreamingGraph, graph_memory_words, reachable_nodes
from repro.delayed.conjugacy import AffineGaussian
from repro.dists import Gaussian


def hmm_step(graph, prev, obs):
    if prev is None:
        x = graph.assume_root(Gaussian(0.0, 100.0), name="x")
    else:
        x = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), prev, name="x")
    y = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), x, name="y")
    graph.observe(y, obs)
    return x


class TestFig3OriginalGraph:
    def test_live_set_grows_linearly(self, rng):
        graph = DelayedGraph(rng=rng)
        prev = None
        counts = []
        for t in range(10):
            prev = hmm_step(graph, prev, float(t))
            counts.append(len(reachable_nodes([prev])))
        # one marginalized node per step stays reachable
        assert counts == list(range(1, 11))

    def test_memory_words_grow(self, rng):
        graph = DelayedGraph(rng=rng)
        prev = None
        words = []
        for t in range(20):
            prev = hmm_step(graph, prev, float(t))
            words.append(graph_memory_words([prev]))
        assert words[-1] > 2 * words[4]


class TestFig15StreamingGraph:
    def test_live_set_constant(self, rng):
        graph = StreamingGraph(rng=rng)
        prev = None
        counts = []
        for t in range(10):
            prev = hmm_step(graph, prev, float(t))
            counts.append(len(reachable_nodes([prev])))
        assert max(counts) <= 2
        assert counts[2:] == counts[2:][:1] * len(counts[2:])

    def test_memory_words_bounded(self, rng):
        graph = StreamingGraph(rng=rng)
        prev = None
        words = []
        for t in range(50):
            prev = hmm_step(graph, prev, float(t))
            words.append(graph_memory_words([prev]))
        assert max(words[2:]) == min(words[2:])

    def test_node_states_match_fig15(self, rng):
        """After a step: x marginalized, y realized-pending (Fig. 15f)."""
        from repro.delayed.node import NodeState

        graph = StreamingGraph(rng=rng)
        x = hmm_step(graph, None, 1.0)
        assert x.state is NodeState.MARGINALIZED
        (y,) = x.children
        assert y.state is NodeState.REALIZED
        # the next step's fold collects y (Fig. 15g)
        x2 = hmm_step(graph, x, 2.0)
        assert y not in x.children
        assert x2.state is NodeState.MARGINALIZED
