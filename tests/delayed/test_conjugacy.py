"""Conjugacy relations: closed-form marginals and posteriors.

Each family is checked against an independent oracle: either a
hand-derived formula, scipy, or a numerical Bayes computation over a
grid.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import stats

from repro.delayed.conjugacy import (
    AffineGaussian,
    BetaBernoulli,
    BetaBinomial,
    DirichletCategorical,
    GammaPoisson,
    GaussianProjection,
    MvAffineGaussian,
)
from repro.dists import Beta, Dirichlet, Gamma, Gaussian, MvGaussian
from repro.errors import GraphError


class TestAffineGaussian:
    def test_marginalize(self):
        cond = AffineGaussian(2.0, 1.0, 0.5)
        marginal = cond.marginalize(Gaussian(3.0, 4.0))
        assert marginal.mu == pytest.approx(7.0)
        assert marginal.var == pytest.approx(16.5)

    def test_posterior_identity_observation(self):
        # y | x ~ N(x, 1), x ~ N(0, 100): scalar Kalman update
        cond = AffineGaussian(1.0, 0.0, 1.0)
        post = cond.posterior(Gaussian(0.0, 100.0), 4.0)
        oracle = Gaussian(0.0, 100.0).posterior_given_obs(4.0, 1.0)
        assert post.mu == pytest.approx(oracle.mu)
        assert post.var == pytest.approx(oracle.var)

    def test_posterior_vs_numerical_bayes(self):
        cond = AffineGaussian(1.5, -0.5, 2.0)
        prior = Gaussian(1.0, 3.0)
        obs = 2.5
        post = cond.posterior(prior, obs)
        # numerical posterior over a grid
        xs = np.linspace(-15, 17, 40001)
        log_post = np.array(
            [prior.log_pdf(x) + cond.at_parent_value(x).log_pdf(obs) for x in xs]
        )
        weights = np.exp(log_post - log_post.max())
        weights /= weights.sum()
        mean = float(np.dot(xs, weights))
        var = float(np.dot((xs - mean) ** 2, weights))
        assert post.mu == pytest.approx(mean, abs=1e-3)
        assert post.var == pytest.approx(var, rel=1e-3)

    def test_at_parent_value(self):
        cond = AffineGaussian(2.0, 1.0, 0.5)
        dist = cond.at_parent_value(3.0)
        assert dist.mu == 7.0
        assert dist.var == 0.5

    def test_invalid_variance(self):
        with pytest.raises(GraphError):
            AffineGaussian(1.0, 0.0, 0.0)

    def test_wrong_parent_type(self):
        with pytest.raises(GraphError):
            AffineGaussian(1.0, 0.0, 1.0).marginalize(Beta(1.0, 1.0))

    @given(
        a=st.floats(min_value=-5, max_value=5).filter(lambda v: abs(v) > 1e-2),
        b=st.floats(min_value=-5, max_value=5),
        var=st.floats(min_value=1e-2, max_value=10),
        mu0=st.floats(min_value=-5, max_value=5),
        var0=st.floats(min_value=1e-2, max_value=10),
        obs=st.floats(min_value=-10, max_value=10),
    )
    def test_posterior_variance_never_grows(self, a, b, var, mu0, var0, obs):
        cond = AffineGaussian(a, b, var)
        post = cond.posterior(Gaussian(mu0, var0), obs)
        assert post.var <= var0 + 1e-9

    @given(
        a=st.floats(min_value=-5, max_value=5).filter(lambda v: abs(v) > 1e-2),
        b=st.floats(min_value=-5, max_value=5),
        var=st.floats(min_value=1e-2, max_value=10),
        mu0=st.floats(min_value=-5, max_value=5),
        var0=st.floats(min_value=1e-2, max_value=10),
    )
    def test_marginal_consistency(self, a, b, var, mu0, var0):
        """Marginal moments match the law of total expectation/variance."""
        cond = AffineGaussian(a, b, var)
        marginal = cond.marginalize(Gaussian(mu0, var0))
        assert marginal.mu == pytest.approx(a * mu0 + b, rel=1e-9, abs=1e-9)
        assert marginal.var == pytest.approx(a * a * var0 + var, rel=1e-9)


class TestMvAffineGaussian:
    def test_matches_kalman_filter_update(self):
        # textbook Kalman: x' = F x + w, y = H x' + v
        f = np.array([[1.0, 1.0], [0.0, 1.0]])
        q = np.diag([0.1, 0.1])
        prior = MvGaussian([0.0, 1.0], np.diag([1.0, 1.0]))
        predict = MvAffineGaussian(f, np.zeros(2), q)
        predicted = predict.marginalize(prior)
        assert np.allclose(predicted.mu, f @ prior.mu)
        assert np.allclose(predicted.cov, f @ prior.cov @ f.T + q)

        h = np.array([[1.0, 0.0]])
        r = np.array([[0.5]])
        observe = MvAffineGaussian(h, np.zeros(1), r)
        post = observe.posterior(predicted, [1.3])
        # classic Kalman gain formula
        s = h @ predicted.cov @ h.T + r
        k = predicted.cov @ h.T @ np.linalg.inv(s)
        expected_mu = predicted.mu + (k @ ([1.3] - h @ predicted.mu))
        expected_cov = (np.eye(2) - k @ h) @ predicted.cov
        assert np.allclose(post.mu, expected_mu)
        assert np.allclose(post.cov, expected_cov)

    def test_at_parent_value(self):
        cond = MvAffineGaussian(np.eye(2), [1.0, 2.0], np.eye(2))
        dist = cond.at_parent_value([1.0, 1.0])
        assert np.allclose(dist.mu, [2.0, 3.0])

    def test_shape_validation(self):
        with pytest.raises(GraphError):
            MvAffineGaussian(np.zeros(2), np.zeros(2), np.eye(2))
        with pytest.raises(GraphError):
            MvAffineGaussian(np.eye(2), np.zeros(2), np.eye(3))


class TestGaussianProjection:
    def test_marginalize_is_scalar(self):
        parent = MvGaussian([1.0, 2.0], np.diag([4.0, 9.0]))
        cond = GaussianProjection([1.0, 0.0], 0.5, 1.0)
        marginal = cond.marginalize(parent)
        assert isinstance(marginal, Gaussian)
        assert marginal.mu == pytest.approx(1.5)
        assert marginal.var == pytest.approx(5.0)

    def test_posterior_updates_projected_component(self):
        parent = MvGaussian([0.0, 0.0], np.diag([100.0, 100.0]))
        cond = GaussianProjection([1.0, 0.0], 0.0, 1.0)
        post = cond.posterior(parent, 5.0)
        assert post.mu[0] == pytest.approx(5.0, abs=0.1)
        assert post.mu[1] == pytest.approx(0.0)  # uncorrelated component
        assert post.cov[0, 0] < 2.0
        assert post.cov[1, 1] == pytest.approx(100.0)


class TestBetaBernoulli:
    def test_marginal_is_predictive(self):
        marginal = BetaBernoulli().marginalize(Beta(3.0, 1.0))
        assert marginal.p == pytest.approx(0.75)

    def test_posterior_counts(self):
        post = BetaBernoulli().posterior(Beta(1.0, 1.0), True)
        assert (post.alpha, post.beta) == (2.0, 1.0)
        post = BetaBernoulli().posterior(Beta(1.0, 1.0), False)
        assert (post.alpha, post.beta) == (1.0, 2.0)

    def test_at_parent_value(self):
        assert BetaBernoulli().at_parent_value(0.3).p == pytest.approx(0.3)

    @given(
        alpha=st.floats(min_value=0.5, max_value=50),
        beta=st.floats(min_value=0.5, max_value=50),
        flips=st.lists(st.booleans(), min_size=0, max_size=30),
    )
    def test_sequential_equals_batch(self, alpha, beta, flips):
        cond = BetaBernoulli()
        current = Beta(alpha, beta)
        for flip in flips:
            current = cond.posterior(current, flip)
        heads = sum(flips)
        assert current.alpha == pytest.approx(alpha + heads)
        assert current.beta == pytest.approx(beta + len(flips) - heads)


class TestBetaBinomial:
    def test_marginal_matches_scipy(self):
        marginal = BetaBinomial(10).marginalize(Beta(2.0, 3.0))
        for k in range(11):
            expected = stats.betabinom(10, 2.0, 3.0).logpmf(k)
            assert marginal.log_pdf(k) == pytest.approx(expected, rel=1e-9)

    def test_posterior(self):
        post = BetaBinomial(10).posterior(Beta(1.0, 1.0), 7)
        assert (post.alpha, post.beta) == (8.0, 4.0)

    def test_marginal_moments(self):
        marginal = BetaBinomial(10).marginalize(Beta(2.0, 3.0))
        oracle = stats.betabinom(10, 2.0, 3.0)
        assert marginal.mean() == pytest.approx(oracle.mean())
        assert marginal.variance() == pytest.approx(oracle.var())


class TestGammaPoisson:
    def test_marginal_is_negative_binomial(self):
        marginal = GammaPoisson().marginalize(Gamma(3.0, 2.0))
        # scipy NB: n = shape, p = rate/(rate+1)
        oracle = stats.nbinom(3.0, 2.0 / 3.0)
        for k in range(15):
            assert marginal.log_pdf(k) == pytest.approx(oracle.logpmf(k), rel=1e-9)

    def test_posterior(self):
        post = GammaPoisson().posterior(Gamma(3.0, 2.0), 5)
        assert post.shape == 8.0
        assert post.rate == 3.0

    def test_at_parent_value(self):
        assert GammaPoisson().at_parent_value(4.0).lam == 4.0


class TestDirichletCategorical:
    def test_marginal_is_mean(self):
        marginal = DirichletCategorical().marginalize(Dirichlet([1.0, 3.0]))
        assert np.allclose(marginal.probs, [0.25, 0.75])

    def test_posterior_increments_count(self):
        post = DirichletCategorical().posterior(Dirichlet([1.0, 1.0, 1.0]), 2)
        assert np.allclose(post.alpha, [1.0, 1.0, 2.0])

    def test_at_parent_value(self):
        dist = DirichletCategorical().at_parent_value([0.2, 0.8])
        assert np.allclose(dist.probs, [0.2, 0.8])
