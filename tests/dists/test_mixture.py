"""Mixture and TupleDist: the SDS output representations."""

import math

import numpy as np
import pytest

from repro.dists import Delta, Empirical, Gaussian, Mixture, TupleDist
from repro.errors import DistributionError


class TestMixture:
    def test_mean_is_weighted_average(self):
        mix = Mixture([Gaussian(0.0, 1.0), Gaussian(10.0, 1.0)], [0.25, 0.75])
        assert mix.mean() == pytest.approx(7.5)

    def test_variance_law_of_total_variance(self):
        mix = Mixture([Gaussian(0.0, 1.0), Gaussian(4.0, 2.0)], [0.5, 0.5])
        # E[Var] + Var[E] = 1.5 + 4
        assert mix.variance() == pytest.approx(1.5 + 4.0)

    def test_log_pdf_logsumexp(self):
        mix = Mixture([Gaussian(0.0, 1.0), Gaussian(5.0, 1.0)], [0.5, 0.5])
        expected = math.log(
            0.5 * Gaussian(0.0, 1.0).pdf(1.0) + 0.5 * Gaussian(5.0, 1.0).pdf(1.0)
        )
        assert mix.log_pdf(1.0) == pytest.approx(expected, rel=1e-10)

    def test_single_component_equals_component(self):
        mix = Mixture([Gaussian(2.0, 3.0)])
        assert mix.mean() == pytest.approx(2.0)
        assert mix.variance() == pytest.approx(3.0)
        assert mix.log_pdf(2.5) == pytest.approx(Gaussian(2.0, 3.0).log_pdf(2.5))

    def test_delta_components(self):
        mix = Mixture([Delta(1.0), Delta(3.0)], [0.5, 0.5])
        assert mix.mean() == pytest.approx(2.0)
        assert mix.variance() == pytest.approx(1.0)

    def test_weights_normalized(self):
        mix = Mixture([Delta(0.0), Delta(1.0)], [1.0, 3.0])
        assert np.allclose(mix.weights, [0.25, 0.75])

    def test_invalid(self):
        with pytest.raises(DistributionError):
            Mixture([])
        with pytest.raises(DistributionError):
            Mixture([Delta(0.0)], weights=[0.0])
        with pytest.raises(DistributionError):
            Mixture([Delta(0.0), Delta(1.0)], weights=[1.0])

    def test_sampling_draws_from_components(self, rng):
        mix = Mixture([Gaussian(-100.0, 1.0), Gaussian(100.0, 1.0)], [0.5, 0.5])
        samples = np.array([mix.sample(rng) for _ in range(2000)])
        frac_right = np.mean(samples > 0)
        assert frac_right == pytest.approx(0.5, abs=0.05)


class TestTupleDist:
    def test_componentwise_moments(self):
        dist = TupleDist([Gaussian(1.0, 1.0), Delta(2.0)])
        assert dist.mean() == (1.0, 2.0)
        assert dist.variance() == (1.0, 0.0)

    def test_log_pdf_sums_components(self):
        dist = TupleDist([Gaussian(0.0, 1.0), Gaussian(0.0, 1.0)])
        expected = 2 * Gaussian(0.0, 1.0).log_pdf(0.5)
        assert dist.log_pdf((0.5, 0.5)) == pytest.approx(expected)

    def test_arity_mismatch(self):
        dist = TupleDist([Delta(0.0)])
        with pytest.raises(DistributionError):
            dist.log_pdf((0.0, 1.0))

    def test_sample_is_tuple(self, rng):
        dist = TupleDist([Delta("a"), Delta(1)])
        assert dist.sample(rng) == ("a", 1)

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            TupleDist([])

    def test_empirical_inside_tuple(self):
        dist = TupleDist([Empirical([1.0, 3.0]), Delta(0.0)])
        assert dist.mean()[0] == pytest.approx(2.0)


class TestNaNWeights:
    """NaN weights must become zero weight, loudly — `np.any(w < 0)` is
    silently False for NaN, so without the explicit check a NaN weight
    poisoned every downstream moment (PR 5 bugfix)."""

    def test_nan_weight_zeroed_with_warning(self):
        with pytest.warns(RuntimeWarning, match="NaN mixture weight"):
            dist = Mixture(
                [Gaussian(0.0, 1.0), Gaussian(10.0, 1.0)],
                weights=[1.0, float("nan")],
            )
        assert dist.weights.tolist() == [1.0, 0.0]
        assert dist.mean() == pytest.approx(0.0)

    def test_all_nan_weights_rejected(self):
        with pytest.warns(RuntimeWarning):
            with pytest.raises(DistributionError):
                Mixture(
                    [Delta(0.0), Delta(1.0)],
                    weights=[float("nan"), float("nan")],
                )

    def test_clean_weights_do_not_warn(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            dist = Mixture([Delta(0.0), Delta(1.0)], weights=[0.25, 0.75])
        assert dist.mean() == pytest.approx(0.75)
