"""Multivariate Gaussian: density, moments, affine images, degeneracy."""

import numpy as np
import pytest
from scipy import stats

from repro.dists import MvGaussian
from repro.errors import DistributionError


@pytest.fixture
def dist():
    mu = np.array([1.0, -2.0])
    cov = np.array([[2.0, 0.5], [0.5, 1.0]])
    return MvGaussian(mu, cov)


class TestDensity:
    def test_log_pdf_matches_scipy(self, dist):
        for point in ([0.0, 0.0], [1.0, -2.0], [3.0, 1.0]):
            expected = stats.multivariate_normal(dist.mu, dist.cov).logpdf(point)
            assert dist.log_pdf(point) == pytest.approx(expected, rel=1e-10)

    def test_wrong_dim_raises(self, dist):
        with pytest.raises(DistributionError):
            dist.log_pdf([1.0, 2.0, 3.0])


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(DistributionError):
            MvGaussian([0.0, 0.0], np.eye(3))

    def test_asymmetric_cov_rejected(self):
        with pytest.raises(DistributionError):
            MvGaussian([0.0, 0.0], np.array([[1.0, 0.5], [0.2, 1.0]]))

    def test_arrays_frozen(self, dist):
        with pytest.raises(ValueError):
            dist.mu[0] = 99.0


class TestMoments:
    def test_mean_cov(self, dist):
        assert np.allclose(dist.mean(), [1.0, -2.0])
        assert np.allclose(dist.variance(), [[2.0, 0.5], [0.5, 1.0]])

    def test_sampling_moments(self, dist, rng):
        samples = np.array([dist.sample(rng) for _ in range(20000)])
        assert np.allclose(samples.mean(axis=0), dist.mu, atol=0.05)
        assert np.allclose(np.cov(samples.T), dist.cov, atol=0.1)


class TestAffine:
    def test_affine_image(self, dist):
        a = np.array([[1.0, 1.0], [0.0, 2.0]])
        b = np.array([1.0, 0.0])
        image = dist.affine(a, b)
        assert np.allclose(image.mu, a @ dist.mu + b)
        assert np.allclose(image.cov, a @ dist.cov @ a.T)

    def test_degenerate_cov_log_pdf_finite_on_support(self):
        # rank-deficient covariance (deterministic second component)
        dist = MvGaussian([0.0, 1.0], np.diag([1.0, 0.0]))
        value = dist.log_pdf([0.5, 1.0])
        assert np.isfinite(value)


class TestMemory:
    def test_memory_words_scale_with_dim(self):
        small = MvGaussian(np.zeros(2), np.eye(2))
        large = MvGaussian(np.zeros(5), np.eye(5))
        assert large.memory_words() > small.memory_words()
