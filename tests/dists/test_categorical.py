"""Categorical, Dirichlet, and Empirical distributions."""

import math

import numpy as np
import pytest

from repro.dists import Categorical, Dirichlet, Empirical
from repro.errors import DistributionError


class TestCategorical:
    def test_normalizes_probs(self):
        dist = Categorical([2.0, 2.0, 4.0])
        assert np.allclose(dist.probs, [0.25, 0.25, 0.5])

    def test_log_pdf(self):
        dist = Categorical([0.2, 0.8])
        assert dist.log_pdf(1) == pytest.approx(math.log(0.8))
        assert dist.log_pdf(2) == -math.inf

    def test_zero_prob_category(self):
        dist = Categorical([0.0, 1.0])
        assert dist.log_pdf(0) == -math.inf

    def test_invalid(self):
        with pytest.raises(DistributionError):
            Categorical([])
        with pytest.raises(DistributionError):
            Categorical([-0.5, 1.5])
        with pytest.raises(DistributionError):
            Categorical([0.0, 0.0])

    def test_sampling_frequencies(self, rng):
        dist = Categorical([0.5, 0.3, 0.2])
        samples = [dist.sample(rng) for _ in range(10000)]
        counts = np.bincount(samples, minlength=3) / len(samples)
        assert np.allclose(counts, [0.5, 0.3, 0.2], atol=0.02)


class TestDirichlet:
    def test_mean(self):
        dist = Dirichlet([1.0, 2.0, 3.0])
        assert np.allclose(dist.mean(), [1 / 6, 2 / 6, 3 / 6])

    def test_with_count_conjugate_update(self):
        posterior = Dirichlet([1.0, 1.0]).with_count(0)
        assert np.allclose(posterior.alpha, [2.0, 1.0])

    def test_log_pdf_on_simplex(self):
        from scipy import stats

        dist = Dirichlet([2.0, 3.0, 4.0])
        x = np.array([0.2, 0.3, 0.5])
        assert dist.log_pdf(x) == pytest.approx(
            stats.dirichlet([2.0, 3.0, 4.0]).logpdf(x), rel=1e-10
        )

    def test_log_pdf_off_simplex(self):
        dist = Dirichlet([1.0, 1.0])
        assert dist.log_pdf([0.7, 0.7]) == -math.inf

    def test_invalid(self):
        with pytest.raises(DistributionError):
            Dirichlet([1.0])
        with pytest.raises(DistributionError):
            Dirichlet([1.0, 0.0])

    def test_samples_on_simplex(self, rng):
        dist = Dirichlet([5.0, 5.0, 5.0])
        for _ in range(50):
            s = dist.sample(rng)
            assert s.sum() == pytest.approx(1.0)
            assert np.all(s >= 0)


class TestEmpirical:
    def test_uniform_default_weights(self):
        dist = Empirical([1.0, 2.0, 3.0])
        assert np.allclose(dist.weights, [1 / 3] * 3)

    def test_weighted_mean_variance(self):
        dist = Empirical([0.0, 10.0], weights=[0.75, 0.25])
        assert dist.mean() == pytest.approx(2.5)
        assert dist.variance() == pytest.approx(0.75 * 2.5**2 + 0.25 * 7.5**2)

    def test_log_pdf_accumulates_duplicates(self):
        dist = Empirical([1, 1, 2], weights=[0.3, 0.3, 0.4])
        assert dist.log_pdf(1) == pytest.approx(math.log(0.6))

    def test_vector_support(self):
        dist = Empirical([np.array([1.0, 0.0]), np.array([0.0, 1.0])])
        mean = dist.mean()
        assert np.allclose(mean, [0.5, 0.5])

    def test_invalid(self):
        with pytest.raises(DistributionError):
            Empirical([])
        with pytest.raises(DistributionError):
            Empirical([1.0], weights=[0.0])
        with pytest.raises(DistributionError):
            Empirical([1.0, 2.0], weights=[1.0])

    def test_weights_renormalized(self):
        dist = Empirical([1, 2], weights=[2.0, 6.0])
        assert np.allclose(dist.weights, [0.25, 0.75])

    def test_sampling_respects_weights(self, rng):
        dist = Empirical(["a", "b"], weights=[0.9, 0.1])
        freq = np.mean([dist.sample(rng) == "a" for _ in range(5000)])
        assert freq == pytest.approx(0.9, abs=0.02)
