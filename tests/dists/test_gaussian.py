"""Gaussian distribution: density, moments, affine maps, conjugate update."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.dists import Gaussian
from repro.errors import DistributionError


class TestDensity:
    def test_log_pdf_matches_scipy(self):
        dist = Gaussian(1.5, 4.0)
        for x in (-3.0, 0.0, 1.5, 2.7, 10.0):
            expected = stats.norm(1.5, 2.0).logpdf(x)
            assert dist.log_pdf(x) == pytest.approx(expected, rel=1e-12)

    def test_pdf_is_exp_log_pdf(self):
        dist = Gaussian(0.0, 1.0)
        assert dist.pdf(0.3) == pytest.approx(math.exp(dist.log_pdf(0.3)))

    def test_density_integrates_to_one(self):
        dist = Gaussian(2.0, 0.5)
        xs = np.linspace(-10, 14, 20001)
        total = np.trapezoid([dist.pdf(x) for x in xs], xs)
        assert total == pytest.approx(1.0, abs=1e-6)


class TestMoments:
    def test_mean_variance(self):
        dist = Gaussian(-2.0, 9.0)
        assert dist.mean() == -2.0
        assert dist.variance() == 9.0
        assert dist.stddev() == 3.0

    def test_sampling_moments(self, rng):
        dist = Gaussian(5.0, 4.0)
        samples = np.array([dist.sample(rng) for _ in range(20000)])
        assert samples.mean() == pytest.approx(5.0, abs=0.1)
        assert samples.var() == pytest.approx(4.0, abs=0.2)


class TestValidation:
    def test_zero_variance_rejected(self):
        with pytest.raises(DistributionError):
            Gaussian(0.0, 0.0)

    def test_negative_variance_rejected(self):
        with pytest.raises(DistributionError):
            Gaussian(0.0, -1.0)

    def test_nan_variance_rejected(self):
        with pytest.raises(DistributionError):
            Gaussian(0.0, float("nan"))


class TestAffine:
    def test_affine_transform(self):
        dist = Gaussian(1.0, 2.0).affine(3.0, -1.0)
        assert dist.mu == pytest.approx(2.0)
        assert dist.var == pytest.approx(18.0)

    def test_affine_negative_scale(self):
        dist = Gaussian(1.0, 2.0).affine(-1.0, 0.0)
        assert dist.mu == -1.0
        assert dist.var == 2.0


class TestConjugateUpdate:
    def test_posterior_given_obs_matches_formula(self):
        prior = Gaussian(0.0, 100.0)
        post = prior.posterior_given_obs(4.0, 1.0)
        # precision-weighted mean
        expected_var = 1.0 / (1.0 / 100.0 + 1.0)
        expected_mu = expected_var * (0.0 / 100.0 + 4.0 / 1.0)
        assert post.mu == pytest.approx(expected_mu)
        assert post.var == pytest.approx(expected_var)

    def test_posterior_shrinks_variance(self):
        prior = Gaussian(0.0, 5.0)
        post = prior.posterior_given_obs(1.0, 2.0)
        assert post.var < prior.var


class TestEquality:
    def test_eq_and_hash(self):
        assert Gaussian(1.0, 2.0) == Gaussian(1.0, 2.0)
        assert Gaussian(1.0, 2.0) != Gaussian(1.0, 3.0)
        assert hash(Gaussian(1.0, 2.0)) == hash(Gaussian(1.0, 2.0))

    def test_repr_contains_params(self):
        assert "mu=1" in repr(Gaussian(1.0, 2.0))
