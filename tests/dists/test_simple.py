"""Uniform, Delta, Gamma, Poisson, and Exponential distributions."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.dists import Delta, Exponential, Gamma, Poisson, Uniform
from repro.errors import DistributionError


class TestUniform:
    def test_log_pdf(self):
        dist = Uniform(-1.0, 3.0)
        assert dist.log_pdf(0.0) == pytest.approx(math.log(0.25))
        assert dist.log_pdf(5.0) == -math.inf

    def test_moments(self):
        dist = Uniform(0.0, 6.0)
        assert dist.mean() == 3.0
        assert dist.variance() == 3.0

    def test_invalid_bounds(self):
        with pytest.raises(DistributionError):
            Uniform(2.0, 2.0)

    def test_sampling_range(self, rng):
        dist = Uniform(5.0, 6.0)
        assert all(5.0 <= dist.sample(rng) <= 6.0 for _ in range(100))


class TestDelta:
    def test_sample_returns_value(self, rng):
        assert Delta(42).sample(rng) == 42

    def test_log_pdf_indicator(self):
        dist = Delta(1.5)
        assert dist.log_pdf(1.5) == 0.0
        assert dist.log_pdf(1.6) == -math.inf

    def test_array_value(self, rng):
        value = np.array([1.0, 2.0])
        dist = Delta(value)
        assert np.array_equal(dist.sample(rng), value)
        assert dist.log_pdf(np.array([1.0, 2.0])) == 0.0
        assert dist.log_pdf(np.array([1.0, 3.0])) == -math.inf

    def test_moments(self):
        assert Delta(7.0).mean() == 7.0
        assert Delta(7.0).variance() == 0.0


class TestGamma:
    def test_log_pdf_matches_scipy(self):
        dist = Gamma(3.0, 2.0)  # shape 3, rate 2
        for x in (0.1, 1.0, 2.5):
            assert dist.log_pdf(x) == pytest.approx(
                stats.gamma(3.0, scale=0.5).logpdf(x), rel=1e-10
            )

    def test_out_of_support(self):
        assert Gamma(1.0, 1.0).log_pdf(-1.0) == -math.inf

    def test_moments(self):
        dist = Gamma(4.0, 2.0)
        assert dist.mean() == 2.0
        assert dist.variance() == 1.0

    def test_sampling_moments(self, rng):
        dist = Gamma(5.0, 1.0)
        samples = [dist.sample(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(5.0, abs=0.1)


class TestPoisson:
    def test_log_pdf_matches_scipy(self):
        dist = Poisson(3.5)
        for k in range(10):
            assert dist.log_pdf(k) == pytest.approx(
                stats.poisson(3.5).logpmf(k), rel=1e-10
            )

    def test_negative_count(self):
        assert Poisson(1.0).log_pdf(-1) == -math.inf

    def test_moments(self):
        dist = Poisson(2.5)
        assert dist.mean() == 2.5
        assert dist.variance() == 2.5


class TestExponential:
    def test_log_pdf_matches_scipy(self):
        dist = Exponential(0.5)
        for x in (0.1, 1.0, 5.0):
            assert dist.log_pdf(x) == pytest.approx(
                stats.expon(scale=2.0).logpdf(x), rel=1e-10
            )

    def test_out_of_support(self):
        assert Exponential(1.0).log_pdf(-0.1) == -math.inf

    def test_moments(self):
        dist = Exponential(4.0)
        assert dist.mean() == 0.25
        assert dist.variance() == 0.0625
