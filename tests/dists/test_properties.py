"""Property-based tests for the distribution library."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dists import (
    Bernoulli,
    Beta,
    Empirical,
    Gaussian,
    Mixture,
    Uniform,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestGaussianProperties:
    @given(mu=finite_floats, var=positive_floats, x=finite_floats)
    def test_log_pdf_finite_or_small(self, mu, var, x):
        value = Gaussian(mu, var).log_pdf(x)
        assert not math.isnan(value)

    @given(mu=finite_floats, var=positive_floats)
    def test_mode_is_mean(self, mu, var):
        dist = Gaussian(mu, var)
        at_mean = dist.log_pdf(mu)
        off_mean = dist.log_pdf(mu + math.sqrt(var))
        assert at_mean >= off_mean

    @given(
        mu=finite_floats,
        var=st.floats(min_value=1e-3, max_value=1e3),
        a=st.floats(min_value=-100, max_value=100).filter(lambda v: abs(v) > 1e-3),
        b=st.floats(min_value=-100, max_value=100),
    )
    def test_affine_composition(self, mu, var, a, b):
        direct = Gaussian(mu, var).affine(a, b)
        assert direct.mu == pytest.approx(a * mu + b, rel=1e-9, abs=1e-9)
        assert direct.var == pytest.approx(a * a * var, rel=1e-9)

    @given(
        prior_mu=st.floats(min_value=-100, max_value=100),
        prior_var=st.floats(min_value=1e-2, max_value=1e3),
        obs=st.floats(min_value=-100, max_value=100),
        obs_var=st.floats(min_value=1e-2, max_value=1e3),
    )
    def test_posterior_mean_between_prior_and_obs(
        self, prior_mu, prior_var, obs, obs_var
    ):
        post = Gaussian(prior_mu, prior_var).posterior_given_obs(obs, obs_var)
        lo, hi = min(prior_mu, obs), max(prior_mu, obs)
        assert lo - 1e-9 <= post.mu <= hi + 1e-9
        assert post.var <= prior_var + 1e-12


class TestBetaProperties:
    @given(
        alpha=st.floats(min_value=0.1, max_value=100),
        beta=st.floats(min_value=0.1, max_value=100),
        heads=st.integers(min_value=0, max_value=50),
        tails=st.integers(min_value=0, max_value=50),
    )
    def test_counts_shift_mean_toward_frequency(self, alpha, beta, heads, tails):
        prior = Beta(alpha, beta)
        post = prior.with_counts(heads, tails)
        assert post.alpha == alpha + heads
        assert post.beta == beta + tails
        if heads + tails > 0:
            freq = heads / (heads + tails)
            # posterior mean lies between prior mean and observed frequency
            lo = min(prior.mean(), freq) - 1e-9
            hi = max(prior.mean(), freq) + 1e-9
            assert lo <= post.mean() <= hi


class TestMixtureProperties:
    @given(
        mus=st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=5),
        x=st.floats(min_value=-100, max_value=100),
    )
    def test_mixture_density_bounded_by_max_component(self, mus, x):
        comps = [Gaussian(mu, 1.0) for mu in mus]
        mix = Mixture(comps)
        best = max(c.log_pdf(x) for c in comps)
        assert mix.log_pdf(x) <= best + 1e-9

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=1, max_size=10
        )
    )
    def test_empirical_mean_within_range(self, values):
        dist = Empirical(values)
        assert min(values) - 1e-9 <= dist.mean() <= max(values) + 1e-9


class TestSamplingProperties:
    @settings(max_examples=20)
    @given(p=st.floats(min_value=0.05, max_value=0.95), seed=st.integers(0, 2**16))
    def test_bernoulli_samples_are_bool(self, p, seed):
        rng = np.random.default_rng(seed)
        sample = Bernoulli(p).sample(rng)
        assert isinstance(sample, bool)

    @settings(max_examples=20)
    @given(
        lo=st.floats(min_value=-10, max_value=0),
        width=st.floats(min_value=0.1, max_value=10),
        seed=st.integers(0, 2**16),
    )
    def test_uniform_samples_in_range(self, lo, width, seed):
        rng = np.random.default_rng(seed)
        dist = Uniform(lo, lo + width)
        s = dist.sample(rng)
        assert lo <= s <= lo + width
