"""CDFs and interval probabilities (the robot's `probability` helper)."""

import pytest
from scipy import stats

from repro.dists import Delta, Empirical, Gaussian, Mixture, Uniform
from repro.dists.stats import cdf, prob_in_interval, probability
from repro.errors import DistributionError


class TestCdf:
    def test_gaussian_matches_scipy(self):
        dist = Gaussian(1.0, 4.0)
        for x in (-2.0, 0.0, 1.0, 3.5):
            assert cdf(dist, x) == pytest.approx(stats.norm(1.0, 2.0).cdf(x), rel=1e-10)

    def test_uniform(self):
        dist = Uniform(0.0, 2.0)
        assert cdf(dist, -1.0) == 0.0
        assert cdf(dist, 1.0) == 0.5
        assert cdf(dist, 3.0) == 1.0

    def test_delta_step(self):
        assert cdf(Delta(1.0), 0.9) == 0.0
        assert cdf(Delta(1.0), 1.0) == 1.0

    def test_empirical(self):
        dist = Empirical([1.0, 2.0, 3.0], weights=[0.2, 0.3, 0.5])
        assert cdf(dist, 2.0) == pytest.approx(0.5)

    def test_mixture(self):
        mix = Mixture([Gaussian(0.0, 1.0), Delta(5.0)], [0.5, 0.5])
        assert cdf(mix, 0.0) == pytest.approx(0.25)
        assert cdf(mix, 10.0) == pytest.approx(1.0)

    def test_unsupported_type(self):
        from repro.dists import TupleDist

        with pytest.raises(DistributionError):
            cdf(TupleDist([Delta(0.0)]), 0.0)


class TestIntervals:
    def test_prob_in_interval_gaussian(self):
        dist = Gaussian(0.0, 1.0)
        # ~68% within one standard deviation
        assert prob_in_interval(dist, -1.0, 1.0) == pytest.approx(0.6827, abs=1e-3)

    def test_bad_interval(self):
        with pytest.raises(DistributionError):
            prob_in_interval(Gaussian(0.0, 1.0), 1.0, -1.0)

    def test_probability_helper(self):
        dist = Gaussian(10.0, 0.01)
        assert probability(dist, 10.0, 0.5) > 0.99
        assert probability(dist, 0.0, 0.5) < 0.01
