"""Beta, Bernoulli, and Binomial distributions."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.dists import Bernoulli, Beta, Binomial
from repro.errors import DistributionError


class TestBeta:
    def test_log_pdf_matches_scipy(self):
        dist = Beta(2.5, 4.0)
        for x in (0.1, 0.3, 0.5, 0.9):
            assert dist.log_pdf(x) == pytest.approx(
                stats.beta(2.5, 4.0).logpdf(x), rel=1e-12
            )

    def test_out_of_support(self):
        dist = Beta(2.0, 2.0)
        assert dist.log_pdf(-0.1) == -math.inf
        assert dist.log_pdf(1.1) == -math.inf

    def test_moments(self):
        dist = Beta(3.0, 7.0)
        assert dist.mean() == pytest.approx(0.3)
        assert dist.variance() == pytest.approx(stats.beta(3, 7).var(), rel=1e-12)

    def test_with_counts_is_conjugate_update(self):
        posterior = Beta(1.0, 1.0).with_counts(3, 2)
        assert posterior.alpha == 4.0
        assert posterior.beta == 3.0

    def test_invalid_params(self):
        with pytest.raises(DistributionError):
            Beta(0.0, 1.0)
        with pytest.raises(DistributionError):
            Beta(1.0, -2.0)

    def test_sampling_in_unit_interval(self, rng):
        dist = Beta(100.0, 1000.0)
        samples = [dist.sample(rng) for _ in range(1000)]
        assert all(0.0 < s < 1.0 for s in samples)
        assert np.mean(samples) == pytest.approx(dist.mean(), abs=0.01)


class TestBernoulli:
    def test_log_pdf(self):
        dist = Bernoulli(0.3)
        assert dist.log_pdf(True) == pytest.approx(math.log(0.3))
        assert dist.log_pdf(False) == pytest.approx(math.log(0.7))

    def test_degenerate_probs(self):
        assert Bernoulli(0.0).log_pdf(True) == -math.inf
        assert Bernoulli(1.0).log_pdf(False) == -math.inf
        assert Bernoulli(1.0).log_pdf(True) == 0.0

    def test_moments(self):
        dist = Bernoulli(0.25)
        assert dist.mean() == 0.25
        assert dist.variance() == pytest.approx(0.1875)

    def test_sampling_frequency(self, rng):
        dist = Bernoulli(0.7)
        freq = np.mean([dist.sample(rng) for _ in range(10000)])
        assert freq == pytest.approx(0.7, abs=0.02)

    def test_invalid_prob(self):
        with pytest.raises(DistributionError):
            Bernoulli(1.5)
        with pytest.raises(DistributionError):
            Bernoulli(-0.1)


class TestBinomial:
    def test_log_pdf_matches_scipy(self):
        dist = Binomial(10, 0.4)
        for k in range(11):
            assert dist.log_pdf(k) == pytest.approx(
                stats.binom(10, 0.4).logpmf(k), rel=1e-10
            )

    def test_out_of_support(self):
        dist = Binomial(5, 0.5)
        assert dist.log_pdf(-1) == -math.inf
        assert dist.log_pdf(6) == -math.inf

    def test_edge_probabilities(self):
        assert Binomial(3, 0.0).log_pdf(0) == 0.0
        assert Binomial(3, 1.0).log_pdf(3) == 0.0

    def test_moments(self):
        dist = Binomial(20, 0.3)
        assert dist.mean() == pytest.approx(6.0)
        assert dist.variance() == pytest.approx(4.2)

    def test_invalid_n(self):
        with pytest.raises(DistributionError):
            Binomial(-1, 0.5)
