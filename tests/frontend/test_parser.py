"""Parser: surface syntax to kernel AST."""

import pytest

from repro.core.ast import (
    App,
    Arrow,
    Const,
    Eq,
    Infer,
    InitEq,
    Last,
    Observe,
    Op,
    Pair,
    PreE,
    Present,
    Reset,
    Sample,
    Var,
    Where,
)
from repro.frontend import ParseError, parse_expr, parse_program


class TestExpressions:
    def test_literals(self):
        assert parse_expr("1.5") == Const(1.5)
        assert parse_expr("true") == Const(True)
        assert parse_expr("()") == Const(())

    def test_precedence(self):
        expr = parse_expr("1. + 2. * 3.")
        assert expr == Op("add", (Const(1.0), Op("mul", (Const(2.0), Const(3.0)))))

    def test_arrow_binds_loosest(self):
        expr = parse_expr("0. -> x + 1.")
        assert isinstance(expr, Arrow)
        assert expr.first == Const(0.0)

    def test_arrow_right_associative(self):
        expr = parse_expr("1. -> 2. -> x")
        assert isinstance(expr.then, Arrow)

    def test_pre_unary(self):
        expr = parse_expr("pre x + 1.")
        assert expr == Op("add", (PreE(Var("x")), Const(1.0)))

    def test_last(self):
        assert parse_expr("last x") == Last(Var("x").name)

    def test_comparison(self):
        expr = parse_expr("x > 0.9")
        assert expr == Op("gt", (Var("x"), Const(0.9)))

    def test_tuples_nest_right(self):
        expr = parse_expr("(1., 2., 3.)")
        assert expr == Pair(Const(1.0), Pair(Const(2.0), Const(3.0)))

    def test_if_then_else(self):
        expr = parse_expr("if c then 1. else 2.")
        assert expr == Op("if", (Var("c"), Const(1.0), Const(2.0)))

    def test_present_and_reset(self):
        expr = parse_expr("present c then 1. else 2.")
        assert isinstance(expr, Present)
        expr = parse_expr("reset x every c")
        assert isinstance(expr, Reset)

    def test_operator_call(self):
        expr = parse_expr("gaussian (0., 1.)")
        assert expr == Op("gaussian", (Const(0.0), Const(1.0)))

    def test_probabilistic_operators(self):
        expr = parse_expr("sample (gaussian (0., 1.))")
        assert isinstance(expr, Sample)
        expr = parse_expr("observe (gaussian (x, 1.), y)")
        assert isinstance(expr, Observe)
        assert expr.value == Var("y")


class TestWhereBlocks:
    def test_equations(self):
        expr = parse_expr("x where rec x = 1. and y = x + 1.")
        assert isinstance(expr, Where)
        assert [e.name for e in expr.equations] == ["x", "y"]

    def test_init_equation(self):
        expr = parse_expr("x where rec init x = 0. and x = last x + 1.")
        inits = [e for e in expr.equations if isinstance(e, InitEq)]
        assert len(inits) == 1

    def test_unit_equation_gets_fresh_name(self):
        expr = parse_expr("x where rec x = 1. and () = observe (gaussian (x, 1.), y)")
        defs = [e for e in expr.equations if isinstance(e, Eq)]
        assert len(defs) == 2
        assert defs[1].name.startswith("_unit")


class TestPrograms:
    def test_node_declaration(self):
        prog = parse_program("let node f x = x + 1.")
        assert prog.decls[0].name == "f"
        assert prog.decls[0].param == ("x",)

    def test_multi_param(self):
        prog = parse_program("let node f (a, b) = a + b")
        assert prog.decls[0].param == ("a", "b")

    def test_node_application_vs_operator(self):
        prog = parse_program(
            "let node f x = x + 1.\nlet node g y = f (y) * 2."
        )
        body = prog.decls[1].body
        assert isinstance(body.args[0], App)

    def test_infer_syntax(self):
        prog = parse_program(
            "let node m y = sample (gaussian (0., 1.))\n"
            "let node main y = infer 500 m y"
        )
        body = prog.decls[1].body
        assert isinstance(body, Infer)
        assert body.particles == 500

    def test_infer_of_unknown_node_rejected(self):
        with pytest.raises(ParseError):
            parse_program("let node main y = infer 10 ghost y")

    def test_parse_error_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("let node f x = (1. + ")
        assert ":" in str(excinfo.value)


class TestEndToEnd:
    def test_parsed_counter_runs(self):
        from repro.core import load
        from repro.runtime import run

        prog = parse_program(
            "let node counter u = x where rec x = 0. -> pre x + 1."
        )
        outputs = run(load(prog).det_node("counter"), [None] * 4)
        assert outputs == [0.0, 1.0, 2.0, 3.0]

    def test_parsed_source_equals_dsl_build(self):
        from repro.dsl import arrow as d_arrow
        from repro.dsl import const, eq, node, pre as d_pre, program, var, where_

        parsed = parse_program(
            "let node n u = x where rec x = 0. -> pre x + 1."
        )
        built = program(node("n", "u", where_(
            var("x"),
            eq("x", d_arrow(const(0.0), d_pre(var("x")) + const(1.0))),
        )))
        assert parsed == built
