"""The `automaton` surface syntax (Fig. 5's task_bot shape)."""

import pytest

from repro.core import load
from repro.core.automata import AutomatonE
from repro.frontend import ParseError, parse_program
from repro.runtime import run


class TestParsing:
    def test_two_state_automaton(self):
        prog = parse_program("""
            let node m u =
              automaton
              | Go -> do 1. until (u > 0.5) then Task
              | Task -> do 2. done
        """)
        body = prog.decls[0].body
        assert isinstance(body, AutomatonE)
        assert [s.name for s in body.states] == ["Go", "Task"]
        assert body.states[0].transitions[0][1] == "Task"

    def test_multiple_transitions(self):
        prog = parse_program("""
            let node m u =
              automaton
              | A -> do 0. until (u > 1.) then B until (u < -1.) then C
              | B -> do 1. done
              | C -> do 2. done
        """)
        assert len(prog.decls[0].body.states[0].transitions) == 2

    def test_empty_automaton_rejected(self):
        with pytest.raises(ParseError):
            parse_program("let node m u = automaton")


class TestExecution:
    def test_guard_on_input(self):
        prog = parse_program("""
            let node m u =
              automaton
              | Low -> do 0. until (u > 10.) then High
              | High -> do 1. done
        """)
        outputs = run(load(prog).det_node("m"), [0.0, 20.0, 0.0, 0.0])
        assert outputs == [0.0, 0.0, 1.0, 1.0]

    def test_guard_on_mode_output(self):
        prog = parse_program("""
            let node m u =
              automaton
              | Count -> do (0. -> pre o + 1.) until (o >= 2.) then Stop
              | Stop -> do -1. done
        """)
        outputs = run(load(prog).det_node("m"), [None] * 5)
        assert outputs == [0.0, 1.0, 2.0, -1.0, -1.0]

    def test_stateful_bodies_reset_on_entry(self):
        prog = parse_program("""
            let node m u =
              automaton
              | A -> do (0. -> pre o + 1.) until (o >= 1.) then B
              | B -> do (10. -> pre o + 1.) until (o >= 11.) then A
        """)
        outputs = run(load(prog).det_node("m"), [None] * 8)
        assert outputs == [0.0, 1.0, 10.0, 11.0, 0.0, 1.0, 10.0, 11.0]
