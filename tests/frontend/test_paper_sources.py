"""The paper's Appendix B programs, parsed from concrete syntax and run.

The sources are the appendix code with two mechanical adaptations: the
explicit ``prob`` argument is dropped (our engines thread the
probabilistic context implicitly) and the engine/particle configuration
is chosen at the `infer` site.
"""

import pytest

from repro.core import Interpreter, check_program, load, prepare_program
from repro.frontend import parse_program
from repro.inference import infer

KALMAN_SRC = """
(* Appendix B.1 *)
let node delay_kalman yobs = xt where
  rec xt = sample (gaussian (100. * (0. -> 0.) + (0. -> pre xt), 1. -> 1.))
  and () = observe (gaussian (xt, 1.), yobs)
"""

# the appendix's (0., 100.) -> (pre xt, 1.) pairs an initial
# (mean, var) with the running one; written out explicitly here:
KALMAN_FULL_SRC = """
let node delay_kalman yobs = xt where
  rec mu = 0. -> pre xt
  and sigma2 = 100. -> 1.
  and xt = sample (gaussian (mu, sigma2))
  and () = observe (gaussian (xt, 1.), yobs)
"""

COIN_SRC = """
(* Appendix B.2 *)
let node coin yobs = xt where
  rec init xt = sample (beta (1., 1.))
  and () = observe (bernoulli (xt), yobs)
"""

MAIN_SRC = """
(* the main driver of Appendix B *)
let node main (tr, observed) = (est_mean, mse) where
  rec t = 1. -> pre t + 1.
  and x_d = infer 200 delay_kalman observed
  and est_mean = mean_float (x_d)
  and error = (est_mean - tr) * (est_mean - tr)
  and mse = total_error / t
  and total_error = error -> pre total_error + error
"""


class TestKalmanSource:
    def test_parses_and_kind_checks(self):
        prog = prepare_program(parse_program(KALMAN_FULL_SRC))
        assert check_program(prog)["delay_kalman"] == "P"

    def test_runs_exactly_under_sds(self):
        prog = parse_program(KALMAN_FULL_SRC)
        model = Interpreter(prog).prob_node("delay_kalman")
        engine = infer(model, n_particles=1, method="sds", seed=0)
        state = engine.init()
        mu, var = 0.0, 100.0
        for t, obs in enumerate([0.5, 1.5, 0.9, 2.0]):
            if t > 0:
                var += 1.0
            gain = var / (var + 1.0)
            mu = mu + gain * (obs - mu)
            var = (1.0 - gain) * var
            dist, state = engine.step(state, obs)
            assert dist.mean() == pytest.approx(mu, rel=1e-9)


class TestCoinSource:
    def test_runs_exactly_under_sds(self):
        prog = parse_program(COIN_SRC)
        model = load(prog).prob_node("coin")
        engine = infer(model, n_particles=1, method="sds", seed=0)
        state = engine.init()
        alpha, beta = 1.0, 1.0
        for flip in [True, False, True, True, False]:
            dist, state = engine.step(state, flip)
            alpha, beta = (alpha + 1, beta) if flip else (alpha, beta + 1)
            assert dist.mean() == pytest.approx(alpha / (alpha + beta), rel=1e-9)


class TestMainDriver:
    def test_full_driver_parses_and_runs(self):
        prog = parse_program(KALMAN_FULL_SRC + MAIN_SRC)
        module = load(prog)
        main = module.det_node("main")
        state = main.init()
        observations = [0.5, 1.5, 0.9]
        truths = [0.4, 1.4, 1.0]
        for truth, obs in zip(truths, observations):
            (est, mse), state = main.step(state, (truth, obs))
        assert mse >= 0.0
        assert abs(est - truths[-1]) < 2.0

    def test_mse_recursion_matches_tracker(self):
        """The driver's running-MSE equations equal MseTracker."""
        from repro.inference.metrics import MseTracker

        prog = parse_program(KALMAN_FULL_SRC + MAIN_SRC)
        main = load(prog).det_node("main")
        state = main.init()
        tracker = MseTracker()
        tracker_state = tracker.init()
        for truth, obs in [(0.0, 0.3), (0.5, 0.8), (1.0, 1.1)]:
            (est, mse), state = main.step(state, (truth, obs))
            expected, tracker_state = tracker.step(tracker_state, (est, truth))
            assert mse == pytest.approx(expected, rel=1e-12)
