"""Lexer for the concrete surface syntax."""

import pytest

from repro.frontend import LexError, tokenize


def kinds_and_texts(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestBasics:
    def test_keywords_vs_idents(self):
        tokens = kinds_and_texts("let node foo sample xt")
        assert tokens == [
            ("keyword", "let"),
            ("keyword", "node"),
            ("ident", "foo"),
            ("keyword", "sample"),
            ("ident", "xt"),
        ]

    def test_primed_identifiers(self):
        assert kinds_and_texts("x' x_1")[0] == ("ident", "x'")

    def test_numbers(self):
        tokens = kinds_and_texts("1 2.5 0. 1e3 2.5e-2")
        assert [t[0] for t in tokens] == ["number"] * 5
        assert [t[1] for t in tokens] == ["1", "2.5", "0.", "1e3", "2.5e-2"]

    def test_arrow_and_symbols(self):
        tokens = kinds_and_texts("x -> y <= z <> w")
        texts = [t[1] for t in tokens]
        assert texts == ["x", "->", "y", "<=", "z", "<>", "w"]

    def test_ocaml_float_operators_normalized(self):
        tokens = kinds_and_texts("a +. b *. c")
        assert [t[1] for t in tokens] == ["a", "+", "b", "*", "c"]


class TestComments:
    def test_simple_comment_skipped(self):
        assert kinds_and_texts("a (* hello *) b") == [
            ("ident", "a"),
            ("ident", "b"),
        ]

    def test_nested_comments(self):
        assert kinds_and_texts("a (* x (* y *) z *) b") == [
            ("ident", "a"),
            ("ident", "b"),
        ]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("a (* oops")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a # b")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].col == 1
        assert tokens[1].line == 2 and tokens[1].col == 3
