"""Lifted distribution constructors: concrete vs symbolic dispatch."""

import numpy as np
import pytest

from repro.dists import Bernoulli, Beta, Gaussian, InverseGamma, MvGaussian
from repro.lang import (
    SymDist,
    bernoulli,
    beta,
    gaussian,
    inverse_gamma,
    mv_gaussian,
)
from repro.symbolic import RVar


class FakeNode:
    family = "gaussian"


class TestConcreteDispatch:
    def test_concrete_params_build_distributions(self):
        assert isinstance(gaussian(0.0, 1.0), Gaussian)
        assert isinstance(beta(1.0, 1.0), Beta)
        assert isinstance(bernoulli(0.5), Bernoulli)
        assert isinstance(inverse_gamma(2.0, 2.0), InverseGamma)
        assert isinstance(mv_gaussian(np.zeros(2), np.eye(2)), MvGaussian)


class TestSymbolicDispatch:
    def test_symbolic_param_builds_symdist(self):
        x = RVar(FakeNode())
        dist = gaussian(x, 1.0)
        assert isinstance(dist, SymDist)
        assert dist.kind == "gaussian"
        assert dist.params[1] == 1.0

    def test_symbolic_anywhere_in_params(self):
        x = RVar(FakeNode())
        assert isinstance(gaussian(0.0, x), SymDist)
        assert isinstance(bernoulli(x), SymDist)
        assert isinstance(beta(x, 1.0), SymDist)

    def test_symdist_is_frozen(self):
        x = RVar(FakeNode())
        dist = gaussian(x, 1.0)
        with pytest.raises(Exception):
            dist.kind = "other"

    def test_expression_params(self):
        x = RVar(FakeNode())
        dist = gaussian(2.0 * x + 1.0, 0.5)
        assert isinstance(dist, SymDist)
