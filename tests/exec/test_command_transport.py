"""The bidirectional transport: command ring, zero-copy views, fallback.

Covers the parent-to-worker command ring (observations, exchange
plans, committed weights as shm descriptors), the zero-copy view mode
on the reply path, the transport byte counters, and the fallback
behaviour when a ring is undersized or disabled. The headline check:
a steady-state no-resample step on ``processes-persistent:N`` ships
zero pickled payload bytes in either direction.
"""

import numpy as np
import pytest

from repro.bench import KalmanModel, kalman_data
from repro.exec import StreamServer
from repro.exec.executor import PersistentProcessExecutor
from repro.exec.shm import (
    MIN_BYTES,
    ShmRing,
    TransportStats,
    materialize,
    measure_payload,
    shm_available,
)
from repro.inference import infer
from repro.obs.registry import MetricsRegistry, set_default_registry

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform has no shared memory"
)

DATA = kalman_data(10, seed=42, prior_var=1.0)


def _counter(snapshot, name, direction):
    return snapshot["counters"].get(f'{name}{{direction="{direction}"}}', 0.0)


class TestTransportStats:
    def test_pack_accounts_ring_and_inline_bytes(self):
        ring = ShmRing.create(1 << 12)
        try:
            stats = TransportStats()
            big = np.zeros(256)
            small = np.arange(3, dtype=float)
            assert small.nbytes < MIN_BYTES <= big.nbytes
            ring.pack((big, small), stats=stats)
            assert stats.shm_bytes == big.nbytes
            assert stats.pickled_bytes == small.nbytes
            assert stats.fallbacks == 0
        finally:
            ring.close()

    def test_pack_overflow_counts_fallback(self):
        ring = ShmRing.create(256)
        try:
            stats = TransportStats()
            big = np.zeros(1024)
            ring.pack(big, stats=stats)
            assert stats.fallbacks == 1
            assert stats.pickled_bytes == big.nbytes
            assert stats.shm_bytes == 0
        finally:
            ring.close()

    def test_unpack_detects_reply_fallback(self):
        """An inline array big enough to have parked counts as fallback
        at unpack time — how the parent sees a worker's overflow."""
        stats = TransportStats()
        big = np.zeros(1024)
        ring = ShmRing.create(1 << 14)
        try:
            ring.unpack(big, stats=stats)
            assert stats.fallbacks == 1
            assert stats.pickled_bytes == big.nbytes
        finally:
            ring.close()

    def test_measure_payload_walks_nested_and_leaves(self):
        from repro.vectorized import ChainOuts

        stats = TransportStats()
        outs = ChainOuts("gaussian", np.zeros(100), 0.5)
        measure_payload(
            {"a": [np.zeros(50), "tag"], "b": (outs, None)}, stats
        )
        assert stats.pickled_bytes == 50 * 8 + 100 * 8


class TestViewMode:
    def test_view_unpack_is_readonly_zero_copy(self):
        ring = ShmRing.create(1 << 14)
        try:
            arr = np.arange(1024, dtype=float)
            view = ring.unpack(ring.pack(arr), mode="view")
            assert not view.flags.writeable
            assert np.array_equal(view, arr)
            with pytest.raises(ValueError):
                view[0] = -1.0
            del view  # release the buffer before the ring goes away
        finally:
            ring.close()

    def test_view_aliases_ring_until_materialized(self):
        """A view sees the next message's bytes; a materialized copy
        does not — the invariant behind copy-before-next-send."""
        ring = ShmRing.create(1 << 14)
        try:
            first = np.full(512, 1.0)
            view = ring.unpack(ring.pack(first), mode="view")
            copy = materialize(view)
            assert copy.flags.writeable
            ring.pack(np.full(512, 2.0))  # ring rewinds, overwrites
            assert np.all(copy == 1.0)
            assert np.all(view == 2.0)
            del view
        finally:
            ring.close()

    def test_materialize_recurses_containers(self):
        ring = ShmRing.create(1 << 14)
        try:
            payload = {"w": np.ones(256), "k": [np.zeros(256), 3]}
            views = ring.unpack(ring.pack(payload), mode="view")
            out = materialize(views)
            assert out["w"].flags.writeable
            assert out["k"][0].flags.writeable
            assert out["k"][1] == 3
            del views
        finally:
            ring.close()

    def test_default_mode_still_copies(self):
        ring = ShmRing.create(1 << 14)
        try:
            out = ring.unpack(ring.pack(np.ones(256)))
            assert out.flags.writeable
        finally:
            ring.close()


class TestShmBytesKnob:
    def test_negative_shm_bytes_rejected(self):
        with pytest.raises(ValueError, match="shm_bytes"):
            PersistentProcessExecutor(workers=1, shm_bytes=-1)

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_BYTES", "0")
        executor = PersistentProcessExecutor(workers=1)
        assert executor.shm_bytes == 0
        executor.close()

    def test_explicit_arg_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_BYTES", "0")
        executor = PersistentProcessExecutor(workers=1, shm_bytes=4096)
        assert executor.shm_bytes == 4096
        executor.close()

    def test_zero_disables_both_rings(self):
        executor = PersistentProcessExecutor(workers=2, shm_bytes=0)
        try:
            engine = infer(
                KalmanModel(), n_particles=64, method="pf",
                backend="vectorized", seed=3, executor=executor,
            )
            state = engine.init()
            dist, state = engine.step(state, DATA.observations[0])
            assert np.isfinite(dist.mean())
            for slot in executor._slots:
                assert slot.ring is None and slot.cmd_ring is None
            state.release()
        finally:
            executor.close()


class TestZeroPickledSteadyState:
    def test_steady_state_step_ships_zero_pickled_payload_bytes(self):
        """The acceptance bar: with the command ring up and resampling
        off, one step moves every payload array over shared memory —
        the pickled-bytes counters stay at zero in both directions.

        ``shm_bytes`` is pinned so the assertion holds even when the
        surrounding CI run exports ``REPRO_SHM_BYTES=0``."""
        executor = PersistentProcessExecutor(
            workers=2,
            checkpoint_every=10_000,
            shm_bytes=PersistentProcessExecutor.DEFAULT_SHM_BYTES,
        )
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            engine = infer(
                KalmanModel(), n_particles=4096, method="pf",
                backend="vectorized", seed=7, executor=executor,
                resample_threshold=0.0,
            )
            state = engine.init()
            _, state = engine.step(state, DATA.observations[0])  # warm-up
            registry.reset()
            dist, state = engine.step(state, DATA.observations[1])
            assert np.isfinite(dist.mean())
            snap = registry.snapshot()
            for direction in ("cmd", "reply"):
                assert _counter(
                    snap, "repro_transport_pickled_bytes_total", direction
                ) == 0, direction
                assert _counter(
                    snap, "repro_shm_fallback_total", direction
                ) == 0, direction
            # the reply payloads (weights, outs) rode the ring
            assert _counter(
                snap, "repro_transport_shm_bytes_total", "reply"
            ) > 0
            state.release()
        finally:
            set_default_registry(previous)
            executor.close()

    def test_resample_step_ships_plan_over_command_ring(self):
        """Forcing a resample every step: the exchange plan arrays ride
        the command ring, so the cmd direction shows shm bytes."""
        executor = PersistentProcessExecutor(
            workers=2,
            shm_bytes=PersistentProcessExecutor.DEFAULT_SHM_BYTES,
        )
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            engine = infer(
                KalmanModel(), n_particles=4096, method="pf",
                backend="vectorized", seed=7, executor=executor,
                resample_threshold=1e9,
            )
            state = engine.init()
            _, state = engine.step(state, DATA.observations[0])
            registry.reset()
            _, state = engine.step(state, DATA.observations[1])
            snap = registry.snapshot()
            assert _counter(
                snap, "repro_transport_shm_bytes_total", "cmd"
            ) > 0
            state.release()
        finally:
            set_default_registry(previous)
            executor.close()


class TestRingExhaustionUnderSessions:
    def test_many_sessions_tiny_ring_bit_identical_with_fallback(self):
        """Many concurrent sessions share one persistent pool with a
        forced-small ring: payloads overflow, the fallback counter
        climbs, and every session still matches its serial run
        bit-for-bit."""
        executor = PersistentProcessExecutor(workers=2, shm_bytes=512)
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        server = StreamServer(executor=executor)
        try:
            n_sessions = 6
            for i in range(n_sessions):
                server.open(
                    KalmanModel(), session_id=f"s{i}", n_particles=96,
                    method="pf", backend="vectorized", seed=i,
                )
            # interleave submissions so sessions share ring wraparounds
            for y in DATA.observations:
                for i in range(n_sessions):
                    server.submit(f"s{i}", y)
            server.drain()

            snap = registry.snapshot()
            fallbacks = sum(
                value
                for key, value in snap["counters"].items()
                if key.startswith("repro_shm_fallback_total")
            )
            assert fallbacks > 0

            for i in range(n_sessions):
                serial = infer(
                    KalmanModel(), n_particles=96, method="pf",
                    backend="vectorized", seed=i, executor="serial",
                )
                s_state = serial.init()
                for y in DATA.observations:
                    s_dist, s_state = serial.step(s_state, y)
                dist = server.latest(f"s{i}")
                assert dist.mean() == s_dist.mean(), f"session s{i}"
        finally:
            set_default_registry(previous)
            for i in range(6):
                try:
                    server.close(f"s{i}")
                except Exception:
                    pass
            executor.close()

    def test_returned_distributions_survive_later_ticks(self):
        """A distribution handed to the caller must not alias ring
        memory: later steps repack the ring, and earlier outputs have
        to keep their bytes."""
        executor = PersistentProcessExecutor(workers=2)
        try:
            engine = infer(
                KalmanModel(), n_particles=512, method="pf",
                backend="vectorized", seed=11, executor=executor,
            )
            state = engine.init()
            dists, frozen = [], []
            for y in DATA.observations:
                dist, state = engine.step(state, y)
                dists.append(dist)
                frozen.append(dist.mean())
            for dist, mean in zip(dists, frozen):
                assert dist.mean() == mean
            state.release()
        finally:
            executor.close()
