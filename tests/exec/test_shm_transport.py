"""Shared-memory transport of per-step worker replies.

Unit tests of the :class:`~repro.exec.shm.ShmRing` pack/unpack protocol
plus end-to-end checks that the persistent executor produces the same
posterior with the ring enabled, disabled (``shm_bytes=0``), and
undersized (inline fallback for arrays that do not fit).
"""

import numpy as np
import pytest

from repro.bench import KalmanModel, kalman_data
from repro.exec.executor import PersistentProcessExecutor
from repro.exec.shm import MIN_BYTES, ShmBlock, ShmRing, shm_available
from repro.inference import infer

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform has no shared memory"
)

DATA = kalman_data(10, seed=42, prior_var=1.0)


class TestShmRing:
    def test_roundtrip_nested_structures(self):
        ring = ShmRing.create(1 << 16)
        payload = (
            np.arange(500, dtype=float),
            [np.ones((4, 8)), "tag", 7],
            {"w": np.linspace(0, 1, 64), "k": None},
        )
        try:
            packed = ring.pack(payload)
            assert isinstance(packed[0], ShmBlock)
            assert packed[1][1] == "tag" and packed[1][2] == 7
            out = ring.unpack(packed)
            assert np.array_equal(out[0], payload[0])
            assert np.array_equal(out[1][0], payload[1][0])
            assert np.array_equal(out[2]["w"], payload[2]["w"])
            assert out[2]["k"] is None
        finally:
            ring.close()

    def test_unpacked_arrays_are_private_copies(self):
        ring = ShmRing.create(1 << 12)
        try:
            first = ring.unpack(ring.pack(np.full(100, 1.0)))
            second = ring.unpack(ring.pack(np.full(100, 2.0)))
            # the second message reused the ring bytes; the first copy
            # must not have been disturbed
            assert np.all(first == 1.0) and np.all(second == 2.0)
        finally:
            ring.close()

    def test_small_arrays_stay_inline(self):
        ring = ShmRing.create(1 << 12)
        try:
            tiny = np.arange(3, dtype=float)  # under MIN_BYTES
            assert tiny.nbytes < MIN_BYTES
            packed = ring.pack((tiny,))
            assert isinstance(packed[0], np.ndarray)
        finally:
            ring.close()

    def test_overflow_falls_back_inline(self):
        ring = ShmRing.create(1 << 10)
        try:
            big = np.zeros(1 << 10)  # 8 KiB > 1 KiB ring
            packed = ring.pack((big, big))
            assert all(isinstance(p, np.ndarray) for p in packed)
            out = ring.unpack(packed)
            assert all(np.array_equal(o, big) for o in out)
        finally:
            ring.close()

    def test_mixed_fit_and_overflow(self):
        ring = ShmRing.create(4096 + 64)
        try:
            fits = np.zeros(512)      # 4 KiB: parks in the ring
            too_big = np.zeros(1024)  # 8 KiB: stays inline
            packed = ring.pack([fits, too_big])
            assert isinstance(packed[0], ShmBlock)
            assert isinstance(packed[1], np.ndarray)
        finally:
            ring.close()

    def test_disabled_ring_returns_none(self):
        assert ShmRing.create(0) is None
        assert ShmRing.attach(None) is None

    def test_registered_leaf_types_park_their_arrays(self):
        """ChainOuts — the chain engines' dominant reply payload — is a
        registered opaque leaf: its mean matrix rides the ring."""
        from repro.exec.shm import ShmLeaf
        from repro.vectorized import ChainOuts

        ring = ShmRing.create(1 << 14)
        try:
            outs = ChainOuts("gaussian", np.linspace(0, 1, 300), 0.5)
            packed = ring.pack((outs, np.zeros(200)))
            assert isinstance(packed[0], ShmLeaf)
            assert isinstance(packed[0].parts[1], ShmBlock)
            out = ring.unpack(packed)
            assert isinstance(out[0], ChainOuts)
            assert out[0].kind == "gaussian" and out[0].var == 0.5
            assert np.array_equal(out[0].mean, outs.mean)
        finally:
            ring.close()


class TestExecutorTransport:
    def _means(self, executor, n=3000, seed=3):
        engine = infer(
            KalmanModel(), n_particles=n, method="pf", backend="vectorized",
            seed=seed, executor=executor,
        )
        state = engine.init()
        means = []
        for y in DATA.observations:
            dist, state = engine.step(state, y)
            means.append(dist.mean())
        if hasattr(state, "release"):
            state.release()
        return np.asarray(means)

    def test_ring_and_pickle_paths_bit_identical(self):
        base = self._means("serial")
        variants = {
            "shm": PersistentProcessExecutor(workers=2),
            "pickle": PersistentProcessExecutor(workers=2, shm_bytes=0),
            "tiny": PersistentProcessExecutor(workers=2, shm_bytes=256),
        }
        try:
            for label, executor in variants.items():
                assert np.array_equal(base, self._means(executor)), label
        finally:
            for executor in variants.values():
                executor.close()

    def test_ring_survives_worker_revival(self):
        import signal
        import os

        executor = PersistentProcessExecutor(workers=2, checkpoint_every=3)
        try:
            engine = infer(
                KalmanModel(), n_particles=64, method="bds",
                backend="vectorized", seed=5, executor=executor,
            )
            state = engine.init()
            for y in DATA.observations[:4]:
                _, state = engine.step(state, y)
            os.kill(executor.worker_pids()[0], signal.SIGKILL)
            for y in DATA.observations[4:]:
                dist, state = engine.step(state, y)
            reference_engine = infer(
                KalmanModel(), n_particles=64, method="bds",
                backend="vectorized", seed=5, executor="serial",
            )
            ref_state = reference_engine.init()
            for y in DATA.observations:
                ref_dist, ref_state = reference_engine.step(ref_state, y)
            assert np.array_equal(ref_dist.values, dist.values)
            state.release()
        finally:
            executor.close()

    def test_scalar_engine_replies_pack_too(self):
        """Scalar shards: logw vectors pack, particle lists stay inline."""
        executor = PersistentProcessExecutor(workers=2)
        try:
            engine = infer(
                KalmanModel(), n_particles=40, method="pf", seed=1,
                executor=executor,
            )
            state = engine.init()
            for y in DATA.observations:
                dist, state = engine.step(state, y)
            serial = infer(
                KalmanModel(), n_particles=40, method="pf", seed=1,
                executor="serial",
            )
            s_state = serial.init()
            for y in DATA.observations:
                s_dist, s_state = serial.step(s_state, y)
            assert dist.mean() == pytest.approx(s_dist.mean())
            state.release()
        finally:
            executor.close()
