"""Worker-resident execution: equivalence, exchange plan, crash recovery.

The persistent executor's contract (ISSUE 3): shards stay resident in
long-lived workers, yet at a fixed seed the posterior is bit-for-bit
identical to the serial executor for any worker count — and a worker
that dies mid-stream is rebuilt from the coordinator's checkpoint and
oplog without changing a single bit of the result.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.bench.models import CoinModel, HmmModel, OutlierModel
from repro.errors import InferenceError
from repro.exec import (
    PersistentProcessExecutor,
    ResidentPopulation,
    build_exchange_plan,
    parse_executor,
)
from repro.inference import infer

OBSERVATIONS = (0.5, 1.0, -0.3, 2.0, 0.8, -1.1)


def posterior_means(executor, *, method="pf", backend="scalar", n_particles=12,
                    seed=3, model_cls=HmmModel, obs=OBSERVATIONS, **kwargs):
    engine = infer(
        model_cls(), n_particles=n_particles, method=method, seed=seed,
        backend=backend, executor=executor, **kwargs,
    )
    state = engine.init()
    means = []
    for y in obs:
        dist, state = engine.step(state, y)
        means.append(dist.mean())
    return means


class TestExchangePlan:
    def test_all_local_when_indices_stay_home(self):
        plans, requests = build_exchange_plan(np.array([0, 1, 2, 3]), [2, 2])
        assert plans == [[("local", 0), ("local", 1)],
                         [("local", 0), ("local", 1)]]
        assert requests == [{}, {}]

    def test_migrating_ancestors_become_imports(self):
        plans, requests = build_exchange_plan(np.array([0, 3, 3, 1]), [2, 2])
        assert plans[0] == [("local", 0), ("import", 1, 0)]
        assert requests[0] == {1: [1]}
        # shard 1's slots are indices [3, 1]: one local, one import
        assert plans[1] == [("local", 1), ("import", 0, 0)]
        assert requests[1] == {0: [1]}

    def test_repeated_ancestor_shipped_once(self):
        plans, requests = build_exchange_plan(np.array([3, 3, 3, 3]), [2, 2])
        assert plans[0] == [("import", 1, 0), ("import", 1, 0)]
        assert requests[0] == {1: [1]}
        assert plans[1] == [("local", 1), ("local", 1)]

    def test_unbalanced_sizes(self):
        plans, requests = build_exchange_plan(np.array([4, 0, 1, 2, 3]), [3, 2])
        assert plans[0] == [("import", 1, 0), ("local", 0), ("local", 1)]
        assert requests[0] == {1: [1]}
        assert plans[1] == [("import", 0, 0), ("local", 0)]
        assert requests[1] == {0: [2]}

    def test_wrong_index_count_rejected(self):
        with pytest.raises(InferenceError):
            build_exchange_plan(np.array([0, 1]), [2, 2])


class TestEquivalence:
    """serial vs processes-persistent:2, bit-for-bit (acceptance)."""

    @pytest.mark.parametrize("method", ["pf", "bds"])
    def test_scalar_matches_serial(self, method):
        assert posterior_means("processes-persistent:2", method=method) == \
            posterior_means("serial", method=method)

    @pytest.mark.parametrize("method", ["pf", "bds"])
    def test_vectorized_matches_serial(self, method):
        # bds has no vectorized engine: the auto fallback keeps the
        # executor config, so this also covers the fallback path.
        backend = "auto"
        assert posterior_means(
            "processes-persistent:2", method=method, backend=backend
        ) == posterior_means("serial", method=method, backend=backend)

    def test_sds_with_persistent_graphs_matches_serial(self):
        assert posterior_means("processes-persistent:2", method="sds") == \
            posterior_means("serial", method="sds")

    def test_vectorized_conjugate_sds_matches_serial(self):
        for model_cls, obs in (
            (OutlierModel, OBSERVATIONS),
            (CoinModel, (True, False, True, True)),
        ):
            kwargs = dict(method="sds", backend="vectorized",
                          model_cls=model_cls, obs=obs)
            assert posterior_means("processes-persistent:2", **kwargs) == \
                posterior_means("serial", **kwargs)

    def test_worker_count_is_pure_schedule(self):
        one = posterior_means("processes-persistent:1")
        two = posterior_means("processes-persistent:2")
        four = posterior_means(PersistentProcessExecutor(workers=4))
        assert one == two == four

    def test_duplicates_clone_mode_matches_serial(self):
        kwargs = dict(clone_on_resample="duplicates")
        assert posterior_means("processes-persistent:2", **kwargs) == \
            posterior_means("serial", **kwargs)

    def test_no_resample_commit_path_matches_serial(self):
        """resample_threshold=0 never resamples: the weights command."""
        kwargs = dict(resample_threshold=0.0)
        assert posterior_means("processes-persistent:2", **kwargs) == \
            posterior_means("serial", **kwargs)

    def test_multinomial_resampler_matches_serial(self):
        """Unsorted ancestor indices exercise heavy cross-shard traffic."""
        kwargs = dict(resampler="multinomial")
        assert posterior_means("processes-persistent:2", **kwargs) == \
            posterior_means("serial", **kwargs)


def _square(x):
    return x * x


def _big_roundtrip(blob):
    return blob + blob


class TestResidentState:
    def test_generic_map_shards_protocol(self):
        """The persistent executor still honours the Executor protocol."""
        executor = PersistentProcessExecutor(workers=2)
        try:
            assert executor.map_shards(_square, [3, 1, 2]) == [9, 1, 4]
        finally:
            executor.close()

    def test_map_shards_with_pipe_sized_messages(self):
        """Regression: tasks and results larger than the OS pipe buffer.

        With naive pipelining, a worker blocked sending a large reply
        while the coordinator blocked sending the next large command
        deadlocked; the one-in-flight pump must survive any size.
        """
        executor = PersistentProcessExecutor(workers=2)
        try:
            blobs = [bytes([i]) * 300_000 for i in range(6)]  # > 64KB pipes
            results = executor.map_shards(_big_roundtrip, blobs)
            assert results == [blob + blob for blob in blobs]
        finally:
            executor.close()

    def test_engine_state_is_a_handle(self):
        executor = PersistentProcessExecutor(workers=2)
        try:
            engine = infer(HmmModel(), n_particles=12, seed=0, executor=executor)
            state = engine.init()
            assert isinstance(state, ResidentPopulation)
            assert state.n_shards == engine.n_shards
            assert state.n_particles == 12
            _, state = engine.step(state, 0.5)
            assert isinstance(state, ResidentPopulation)
            assert engine.memory_words(state) > 0  # materializes a copy
        finally:
            executor.close()

    def test_release_frees_the_key(self):
        executor = PersistentProcessExecutor(workers=1)
        try:
            engine = infer(HmmModel(), n_particles=8, seed=0, executor=executor)
            state = engine.init()
            key = state.key
            assert key in executor._populations
            state.release()
            assert key not in executor._populations
            with pytest.raises(InferenceError):
                state.map_step(0.5)
        finally:
            executor.close()

    def test_last_stats_reflect_live_population(self):
        executor = PersistentProcessExecutor(workers=2)
        try:
            engine = infer(HmmModel(), n_particles=12, seed=1, executor=executor)
            state = engine.init()
            _, state = engine.step(state, 0.5)
            assert engine.last_stats is not None
            assert engine.last_stats.n_particles == 12
            assert np.isfinite(engine.last_stats.log_evidence)
        finally:
            executor.close()

    def test_spec_parsing_and_validation(self):
        executor = parse_executor("processes-persistent:3")
        assert isinstance(executor, PersistentProcessExecutor)
        assert executor.workers == 3
        assert executor.resident
        assert parse_executor("processes-persistent:3") is executor
        with pytest.raises(InferenceError):
            PersistentProcessExecutor(workers=0)
        with pytest.raises(InferenceError):
            PersistentProcessExecutor(workers=2, checkpoint_every=0)

    def test_worker_side_copy_pickles_as_shell(self):
        import pickle

        executor = PersistentProcessExecutor(workers=2)
        try:
            engine = infer(HmmModel(), n_particles=8, seed=0, executor=executor)
            engine.step(engine.init(), 0.5)  # force start + residents
            clone = pickle.loads(pickle.dumps(executor))
            assert clone.workers == 2
            assert clone._slots is None
            assert clone._populations == {}
        finally:
            executor.close()


class TestCrashRecovery:
    """A worker that dies mid-stream is rebuilt without changing results."""

    def _run_with_crash(self, method, crash_at, checkpoint_every, seed=3):
        executor = PersistentProcessExecutor(
            workers=2, checkpoint_every=checkpoint_every
        )
        try:
            engine = infer(
                HmmModel(), n_particles=12, method=method, seed=seed,
                executor=executor,
            )
            state = engine.init()
            means = []
            for i, y in enumerate(OBSERVATIONS):
                if i == crash_at:
                    os.kill(executor.worker_pids()[0], signal.SIGKILL)
                    time.sleep(0.1)
                dist, state = engine.step(state, y)
                means.append(dist.mean())
            return means
        finally:
            executor.close()

    @pytest.mark.parametrize("checkpoint_every", [1, 3, 100])
    def test_pf_recovers_bit_identical(self, checkpoint_every):
        serial = posterior_means("serial")
        assert self._run_with_crash("pf", 4, checkpoint_every) == serial

    def test_sds_recovers_bit_identical(self):
        """Graph-carrying particles replay exactly (checkpointed RNGs)."""
        serial = posterior_means("serial", method="sds")
        assert self._run_with_crash("sds", 3, 2) == serial

    def test_close_then_resume_is_bit_identical(self):
        """close() keeps checkpoints: a resident engine survives it."""
        serial = posterior_means("serial")
        executor = PersistentProcessExecutor(workers=2, checkpoint_every=2)
        try:
            engine = infer(
                HmmModel(), n_particles=12, seed=3, executor=executor
            )
            state = engine.init()
            means = []
            for i, y in enumerate(OBSERVATIONS):
                if i == 3:
                    executor.close()  # workers gone, checkpoints kept
                dist, state = engine.step(state, y)
                means.append(dist.mean())
            assert means == serial
        finally:
            executor.close()

    def test_worker_exception_propagates_without_revive(self):
        from repro.faults import FAULTS

        if FAULTS.enabled:
            # Under an injected chaos plan (CI chaos job) crash faults
            # may legitimately revive workers during this test's steps,
            # so pid stability is not a valid assertion there.
            pytest.skip("fault injection active: worker pids may change")
        executor = PersistentProcessExecutor(workers=2)
        try:
            engine = infer(HmmModel(), n_particles=8, seed=0, executor=executor)
            state = engine.init()
            pids = executor.worker_pids()
            with pytest.raises(InferenceError, match="persistent worker"):
                # an HMM observation must be a float; a string blows up
                # inside the worker and must come back as an error reply
                engine.step(state, "not-an-observation")
            assert executor.worker_pids() == pids  # no revive happened
        finally:
            executor.close()

    def test_failed_step_poisons_the_population(self):
        """A part-way-failed step leaves shards desynchronized, so the
        population must refuse further use instead of silently
        producing a wrong posterior."""
        executor = PersistentProcessExecutor(workers=2)
        try:
            engine = infer(HmmModel(), n_particles=8, seed=0, executor=executor)
            state = engine.init()
            with pytest.raises(InferenceError, match="persistent worker"):
                engine.step(state, "not-an-observation")
            with pytest.raises(InferenceError, match="inconsistent"):
                engine.step(state, 0.5)
            state.release()  # releasing a poisoned population still works
            # a fresh init() on the same executor recovers cleanly
            state = engine.init()
            dist, state = engine.step(state, 0.5)
            assert np.isfinite(dist.mean())
        finally:
            executor.close()
