"""The stream server: session multiplexing over one shared executor."""

import numpy as np
import pytest

from repro.bench.models import CoinModel, HmmModel
from repro.errors import InferenceError
from repro.exec import StreamServer
from repro.inference import infer


class TestSessions:
    def test_open_submit_drain_latest(self):
        server = StreamServer()
        sid = server.open(HmmModel(), n_particles=8, seed=0)
        server.submit_many(sid, [0.5, 1.0, 1.5])
        assert server.backlog == 3
        assert server.drain() == 3
        assert server.backlog == 0
        assert len(server.outputs(sid)) == 3
        assert np.isfinite(server.latest(sid).mean())

    def test_session_ids_unique(self):
        server = StreamServer()
        server.open(HmmModel(), session_id="alice", n_particles=2)
        with pytest.raises(InferenceError):
            server.open(HmmModel(), session_id="alice", n_particles=2)

    def test_unknown_session_rejected(self):
        server = StreamServer()
        with pytest.raises(InferenceError):
            server.submit("ghost", 1.0)

    def test_close_returns_outputs(self):
        server = StreamServer()
        sid = server.open(HmmModel(), n_particles=4, seed=1)
        server.submit(sid, 0.7)
        server.drain()
        outputs = server.close(sid)
        assert len(outputs) == 1
        assert len(server) == 0

    def test_mixed_models_and_methods(self):
        server = StreamServer()
        hmm = server.open(HmmModel(), n_particles=8, method="sds", seed=0)
        coin = server.open(
            CoinModel(), n_particles=4, method="sds", backend="vectorized", seed=0
        )
        server.submit_many(hmm, [0.5, 1.0])
        server.submit_many(coin, [True, True, False])
        server.drain()
        assert len(server.outputs(hmm)) == 2
        assert server.latest(coin).mean() == pytest.approx(3 / 5)


class TestScheduling:
    def test_round_robin_advances_every_ready_session(self):
        server = StreamServer(policy="round_robin")
        a = server.open(HmmModel(), n_particles=2, seed=0)
        b = server.open(HmmModel(), n_particles=2, seed=1)
        server.submit_many(a, [0.1, 0.2])
        server.submit(b, 0.3)
        assert server.tick() == 2  # both sessions step once
        assert server.tick() == 1  # only a has backlog left
        assert server.tick() == 0

    def test_as_ready_follows_arrival_order(self):
        server = StreamServer(policy="as_ready")
        a = server.open(HmmModel(), n_particles=2, seed=0)
        b = server.open(HmmModel(), n_particles=2, seed=1)
        server.submit(a, 0.1)
        server.submit(b, 0.2)
        server.submit(a, 0.3)
        assert server.tick() == 1
        assert server.stats()["per_session"][a]["steps"] == 1
        assert server.tick() == 1
        assert server.stats()["per_session"][b]["steps"] == 1
        server.drain()
        assert server.stats()["per_session"][a]["steps"] == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(InferenceError):
            StreamServer(policy="random")

    def test_stats_counters(self):
        server = StreamServer()
        sid = server.open(HmmModel(), n_particles=2, seed=0)
        server.submit_many(sid, [0.1, 0.2, 0.3])
        server.drain()
        stats = server.stats()
        assert stats["sessions"] == 1
        assert stats["processed"] == 3
        assert stats["backlog"] == 0


class TestDeterminism:
    def test_server_matches_standalone_engine(self):
        """A session is exactly an engine stream: same seed, same posterior."""
        observations = [0.5, 1.0, -0.3, 2.0]
        server = StreamServer(executor="threads:2")
        sid = server.open(HmmModel(), n_particles=12, seed=3)
        server.submit_many(sid, observations)
        server.drain()
        served = [d.mean() for d in server.outputs(sid)]

        engine = infer(HmmModel(), n_particles=12, seed=3, executor="threads:2")
        state = engine.init()
        standalone = []
        for y in observations:
            dist, state = engine.step(state, y)
            standalone.append(dist.mean())
        assert served == standalone

    def test_policies_do_not_change_posteriors(self):
        """Scheduling order is irrelevant to each session's results."""
        observations = {0: [0.5, 1.0], 1: [2.0, -1.0, 0.3]}

        def serve(policy):
            server = StreamServer(executor="serial", policy=policy)
            sids = {
                k: server.open(HmmModel(), n_particles=8, seed=k)
                for k in observations
            }
            for k, obs in observations.items():
                server.submit_many(sids[k], obs)
            server.drain()
            return {k: [d.mean() for d in server.outputs(sids[k])] for k in sids}

        assert serve("round_robin") == serve("as_ready")

    def test_sessions_share_server_executor(self):
        server = StreamServer(executor="threads:2")
        sid = server.open(HmmModel(), n_particles=8, seed=0)
        assert server._sessions[sid].engine.executor is server.executor

    def test_default_server_matches_plain_infer(self):
        """A default StreamServer() must not silently opt sessions into
        sharded mode: same seed, same posterior as infer(model, ...)."""
        observations = [0.5, 1.0, -0.3]
        server = StreamServer()
        sid = server.open(HmmModel(), n_particles=10, seed=7)
        assert not server._sessions[sid].engine.sharded
        server.submit_many(sid, observations)
        server.drain()
        served = [d.mean() for d in server.outputs(sid)]

        engine = infer(HmmModel(), n_particles=10, seed=7)
        state = engine.init()
        plain = []
        for y in observations:
            dist, state = engine.step(state, y)
            plain.append(dist.mean())
        assert served == plain


class TestPersistentPool:
    """Sessions share one persistent worker pool; closing releases shards."""

    def test_sessions_share_one_persistent_pool(self):
        from repro.exec import PersistentProcessExecutor

        executor = PersistentProcessExecutor(workers=2)
        try:
            server = StreamServer(executor=executor)
            alice = server.open(HmmModel(), n_particles=8, seed=0)
            bob = server.open(HmmModel(), n_particles=8, seed=1)
            assert len(executor._populations) == 2
            assert len(executor.worker_pids()) == 2  # one pool for both
            server.submit_many(alice, [0.5, 1.0])
            server.submit_many(bob, [0.1])
            server.drain()
            assert len(server.outputs(alice)) == 2
            assert len(server.outputs(bob)) == 1
            server.close(alice)
            assert len(executor._populations) == 1  # alice's shards freed
            server.shutdown()
            assert len(executor._populations) == 0
        finally:
            executor.close()

    def test_persistent_sessions_match_serial_sessions(self):
        from repro.exec import PersistentProcessExecutor

        observations = [0.5, 1.0, -0.3, 0.8]

        def serve(executor):
            server = StreamServer(executor=executor)
            sid = server.open(HmmModel(), n_particles=12, seed=4)
            server.submit_many(sid, observations)
            server.drain()
            means = [d.mean() for d in server.outputs(sid)]
            server.shutdown()
            return means

        executor = PersistentProcessExecutor(workers=2)
        try:
            assert serve(executor) == serve("serial")
        finally:
            executor.close()


class FailingAtStepModel:
    """A model that raises on its k-th step (any context)."""

    def __init__(self, k=2):
        self.k = k

    def init(self):
        return 0

    def step(self, state, inp, ctx):
        if state + 1 >= self.k:
            raise ValueError("sensor pipeline exploded")
        return float(state), state + 1


class TestFailingSessionReleasesShards:
    """PR 5 bugfix: a session whose step raises must not strand its
    worker-resident shards in the shared persistent executor."""

    def test_failing_session_evicted_and_shards_released(self):
        from repro.exec import PersistentProcessExecutor

        executor = PersistentProcessExecutor(workers=2)
        try:
            server = StreamServer(executor=executor)
            healthy = server.open(HmmModel(), n_particles=8, seed=0)
            doomed = server.open(FailingAtStepModel(k=2), n_particles=8, seed=1)
            assert len(executor._populations) == 2
            server.submit_many(doomed, [0.1, 0.2, 0.3])
            server.submit(healthy, 0.5)
            with pytest.raises(InferenceError):
                server.drain()
            # the failing session is gone and its shards are released
            assert len(executor._populations) == 1
            with pytest.raises(InferenceError):
                server.submit(doomed, 0.4)
            # the healthy session keeps serving on the same pool
            server.submit(healthy, 1.0)
            server.drain()
            assert len(server.outputs(healthy)) >= 1
            server.shutdown()
            assert len(executor._populations) == 0
        finally:
            executor.close()

    def test_failing_serial_session_evicted(self):
        server = StreamServer(executor="serial")
        doomed = server.open(FailingAtStepModel(k=1), n_particles=4, seed=0)
        server.submit(doomed, 0.1)
        with pytest.raises(ValueError):
            server.drain()
        assert len(server) == 0  # evicted, not stranded half-stepped
