"""The executor protocol: scheduling, specs, caching, pickling, lifecycle."""

import pickle

import pytest

from repro.errors import InferenceError
from repro.exec import (
    EXECUTORS,
    PersistentProcessExecutor,
    ProcessShardExecutor,
    SerialExecutor,
    ThreadShardExecutor,
    parse_executor,
    shard_bounds,
    shard_sizes,
    shutdown_executors,
    spawn_shard_rngs,
    split_sequence,
)
from repro.exec.executor import _INSTANCES


def _square(x):
    return x * x


class TestMapShards:
    def test_serial_preserves_order(self):
        assert SerialExecutor().map_shards(_square, [3, 1, 2]) == [9, 1, 4]

    def test_threads_preserve_order(self):
        with ThreadShardExecutor(workers=3) as executor:
            assert executor.map_shards(_square, list(range(10))) == [
                i * i for i in range(10)
            ]

    def test_processes_preserve_order(self):
        with ProcessShardExecutor(workers=2) as executor:
            assert executor.map_shards(_square, [5, 4, 3]) == [25, 16, 9]

    def test_pool_reused_after_close(self):
        executor = ThreadShardExecutor(workers=2)
        assert executor.map_shards(_square, [2]) == [4]
        executor.close()
        # a closed executor lazily re-creates its pool
        assert executor.map_shards(_square, [3]) == [9]
        executor.close()


class TestSpecs:
    def test_none_is_serial(self):
        assert isinstance(parse_executor(None), SerialExecutor)

    def test_instance_passes_through(self):
        executor = ThreadShardExecutor(workers=2)
        assert parse_executor(executor) is executor

    def test_named_specs(self):
        assert isinstance(parse_executor("serial"), SerialExecutor)
        assert parse_executor("threads:3").workers == 3
        assert isinstance(parse_executor("threads:3"), ThreadShardExecutor)
        assert isinstance(parse_executor("processes:2"), ProcessShardExecutor)

    def test_spec_instances_are_cached(self):
        assert parse_executor("threads:2") is parse_executor("threads:2")
        assert parse_executor("threads:2") is not parse_executor("threads:3")

    def test_registry_names(self):
        assert set(EXECUTORS) == {
            "serial", "threads", "processes", "processes-persistent",
        }

    def test_bad_specs_rejected(self):
        with pytest.raises(InferenceError):
            parse_executor("gpu")
        with pytest.raises(InferenceError):
            parse_executor("threads:lots")
        with pytest.raises(InferenceError):
            parse_executor("serial:2")
        with pytest.raises(InferenceError):
            parse_executor(42)

    def test_zero_workers_rejected(self):
        with pytest.raises(InferenceError):
            ThreadShardExecutor(workers=0)


class TestLifecycle:
    """shutdown_executors(): the spec cache must be releasable.

    Regression (ISSUE 3): the per-spec cache used to keep thread and
    process pools alive for the interpreter's lifetime with no way to
    release them, so sweeps and pytest runs accumulated worker
    processes.
    """

    def test_shutdown_clears_the_cache(self):
        executor = parse_executor("threads:2")
        assert "threads:2" in _INSTANCES
        shutdown_executors()
        assert _INSTANCES == {}
        # a fresh instance is built on next request
        assert parse_executor("threads:2") is not executor

    def test_shutdown_closes_pools(self):
        executor = parse_executor("threads:2")
        executor.map_shards(_square, [1])  # force pool creation
        shutdown_executors()
        assert executor._pool is None

    def test_shutdown_terminates_persistent_workers(self):
        executor = parse_executor("processes-persistent:2")
        pids = executor.worker_pids()
        assert len(pids) == 2
        shutdown_executors()
        assert executor._slots is None

    def test_closed_executor_recovers_on_next_use(self):
        executor = parse_executor("threads:2")
        shutdown_executors()
        assert executor.map_shards(_square, [3]) == [9]
        executor.close()

    def test_shutdown_is_idempotent(self):
        parse_executor("threads:2")
        shutdown_executors()
        shutdown_executors()
        assert _INSTANCES == {}


class TestPickling:
    def test_pooled_executor_pickles_without_pool(self):
        executor = ThreadShardExecutor(workers=2)
        executor.map_shards(_square, [1])  # force pool creation
        clone = pickle.loads(pickle.dumps(executor))
        assert clone.workers == 2
        assert clone._pool is None
        executor.close()


class TestPartitioning:
    def test_shard_sizes_balanced(self):
        assert shard_sizes(10, 4) == [3, 3, 2, 2]
        assert shard_sizes(8, 4) == [2, 2, 2, 2]
        assert shard_sizes(4, 4) == [1, 1, 1, 1]

    def test_shard_bounds_contiguous(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_too_many_shards_rejected(self):
        with pytest.raises(InferenceError):
            shard_sizes(2, 3)

    def test_split_sequence_round_trips(self):
        items = list(range(11))
        chunks = split_sequence(items, 4)
        assert [x for chunk in chunks for x in chunk] == items

    def test_spawn_rngs_deterministic_in_seed(self):
        a = spawn_shard_rngs(3, seed=7)
        b = spawn_shard_rngs(3, seed=7)
        for ra, rb in zip(a, b):
            assert ra.random() == rb.random()

    def test_spawn_rngs_independent_streams(self):
        rngs = spawn_shard_rngs(4, seed=0)
        draws = {rng.random() for rng in rngs}
        assert len(draws) == 4
