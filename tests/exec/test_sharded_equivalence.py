"""Sharded execution: any worker count reproduces the serial posterior.

The determinism contract of the exec layer (ISSUE 2 acceptance): with a
fixed seed and a fixed shard partition, the posterior is bit-for-bit
identical under the serial, thread, and process executors at any worker
count — on the scalar and the vectorized substrate alike.
"""

import numpy as np
import pytest

from repro.bench.models import CoinModel, HmmModel, OutlierModel
from repro.errors import InferenceError
from repro.exec import (
    DEFAULT_SHARDS,
    ProcessShardExecutor,
    SerialExecutor,
    ShardedPopulation,
)
from repro.inference import infer

OBSERVATIONS = (0.5, 1.0, -0.3, 2.0, 0.8, -1.1)


def posterior_means(executor, *, method="pf", backend="scalar", n_particles=12,
                    seed=3, model_cls=HmmModel, n_shards=None, obs=OBSERVATIONS):
    engine = infer(
        model_cls(), n_particles=n_particles, method=method, seed=seed,
        backend=backend, executor=executor, n_shards=n_shards,
    )
    state = engine.init()
    means = []
    for y in obs:
        dist, state = engine.step(state, y)
        means.append(dist.mean())
    return means


class TestScalarEquivalence:
    @pytest.mark.parametrize("executor", ["threads:2", "threads:4"])
    def test_pf_threads_match_serial(self, executor):
        assert posterior_means(executor) == posterior_means("serial")

    def test_pf_processes_match_serial(self):
        assert posterior_means("processes:2") == posterior_means("serial")

    def test_acceptance_process4_equals_serial_on_fig2_hmm(self):
        """ISSUE 2 acceptance: ProcessShardExecutor(workers=4) == SerialExecutor."""
        serial = posterior_means(SerialExecutor())
        processes = posterior_means(ProcessShardExecutor(workers=4))
        assert serial == processes

    @pytest.mark.parametrize("executor", ["threads:2", "processes:2"])
    def test_sds_matches_serial(self, executor):
        assert posterior_means(executor, method="sds") == posterior_means(
            "serial", method="sds"
        )

    def test_bds_threads_match_serial(self):
        assert posterior_means("threads:3", method="bds") == posterior_means(
            "serial", method="bds"
        )

    def test_importance_threads_match_serial(self):
        assert posterior_means("threads:2", method="importance") == posterior_means(
            "serial", method="importance"
        )

    def test_two_and_four_worker_schedules_identical(self):
        """Worker count is pure schedule: same shards, same posterior."""
        assert posterior_means("threads:2") == posterior_means("threads:4")


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("executor", ["threads:2", "threads:4", "processes:2"])
    def test_pf_matches_serial(self, executor):
        assert posterior_means(executor, backend="vectorized") == posterior_means(
            "serial", backend="vectorized"
        )

    def test_kalman_sds_matches_serial(self):
        assert posterior_means(
            "threads:4", method="sds", backend="vectorized"
        ) == posterior_means("serial", method="sds", backend="vectorized")

    def test_outlier_sds_matches_serial(self):
        kwargs = dict(method="sds", backend="vectorized", model_cls=OutlierModel)
        assert posterior_means("threads:3", **kwargs) == posterior_means(
            "serial", **kwargs
        )

    def test_coin_sds_matches_serial(self):
        kwargs = dict(
            method="sds", backend="vectorized", model_cls=CoinModel,
            obs=(True, False, True, True),
        )
        assert posterior_means("threads:2", **kwargs) == posterior_means(
            "serial", **kwargs
        )


class TestShardConfiguration:
    def test_explicit_executor_defaults_to_fixed_shards(self):
        engine = infer(HmmModel(), n_particles=12, executor="serial")
        assert engine.sharded
        assert engine.n_shards == DEFAULT_SHARDS
        assert isinstance(engine.init(), ShardedPopulation)

    def test_no_executor_keeps_sequential_population(self):
        engine = infer(HmmModel(), n_particles=12, seed=0)
        assert not engine.sharded
        assert isinstance(engine.init(), list)

    def test_n_shards_alone_enables_sharding(self):
        engine = infer(HmmModel(), n_particles=12, n_shards=3, seed=0)
        assert engine.sharded
        assert engine.init().n_shards == 3

    def test_shards_clamped_to_particles(self):
        engine = infer(HmmModel(), n_particles=2, executor="serial", seed=0)
        assert engine.n_shards == 2

    def test_zero_shards_rejected(self):
        with pytest.raises(InferenceError):
            infer(HmmModel(), n_particles=4, n_shards=0)

    def test_shard_count_changes_streams_not_law(self):
        """Different partitions draw different streams (both valid runs)."""
        two = posterior_means("serial", n_shards=2)
        four = posterior_means("serial", n_shards=4)
        assert two != four
        assert np.all(np.isfinite(two)) and np.all(np.isfinite(four))

    def test_sharded_seed_reproducible(self):
        assert posterior_means("threads:2", seed=11) == posterior_means(
            "threads:2", seed=11
        )
        assert posterior_means("threads:2", seed=11) != posterior_means(
            "threads:2", seed=12
        )

    def test_sharded_memory_words_positive(self):
        for backend in ("scalar", "vectorized"):
            engine = infer(
                HmmModel(), n_particles=8, seed=0, backend=backend,
                executor="serial",
            )
            state = engine.init()
            _, state = engine.step(state, 0.5)
            assert engine.memory_words(state) > 0

    def test_sharded_resample_threshold(self):
        """The barrier decision is global, so thresholds work sharded."""

        def run(executor):
            engine = infer(
                HmmModel(), n_particles=16, seed=5, executor=executor,
                resample_threshold=0.5,
            )
            state = engine.init()
            means = []
            for y in OBSERVATIONS:
                dist, state = engine.step(state, y)
                means.append(dist.mean())
            return means

        assert run("serial") == run("threads:2")

    def test_legacy_default_matches_pre_refactor_trace(self):
        """The executor plan with one implicit shard replays the classic
        sequential engine: this trace was recorded at the seed commit."""
        engine = infer(HmmModel(), n_particles=10, method="pf", seed=7)
        state = engine.init()
        means = []
        for y in (0.5, 1.0, 1.5):
            dist, state = engine.step(state, y)
            means.append(dist.mean())
        assert means == pytest.approx(
            [-0.07431347325072107, -0.1253667489399421, 0.23261039492768387]
        )


class TestBackendAutoFallback:
    def test_auto_uses_vectorized_when_available(self):
        from repro.vectorized import VectorizedBetaBernoulliSDS, VectorizedParticleFilter

        assert isinstance(
            infer(HmmModel(), method="pf", backend="auto"), VectorizedParticleFilter
        )
        assert isinstance(
            infer(CoinModel(), method="sds", backend="auto"),
            VectorizedBetaBernoulliSDS,
        )

    def test_auto_falls_back_to_scalar(self):
        from repro.bench.models import WalkModel
        from repro.inference import ParticleFilter, StreamingDelayedSampler

        assert isinstance(
            infer(WalkModel(), method="pf", backend="auto"), ParticleFilter
        )
        assert isinstance(
            infer(WalkModel(), method="sds", backend="auto"),
            StreamingDelayedSampler,
        )

    def test_auto_fallback_keeps_executor_config(self):
        from repro.bench.models import WalkModel

        engine = infer(
            WalkModel(), n_particles=8, method="pf", backend="auto",
            executor="threads:2", seed=0,
        )
        assert engine.sharded and engine.n_shards == DEFAULT_SHARDS
        state = engine.init()
        dist, _ = engine.step(state, None)
        assert np.isfinite(dist.mean())
