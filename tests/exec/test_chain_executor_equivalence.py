"""Executor equivalence of the array-native delayed-sampling engine.

The chain engine's batch state is a whole graph (a row-protocol leaf,
not a flat array), so these tests pin down that the executor layer —
slicing shards, merging results, worker-resident export/assemble —
reproduces the serial posterior **bit for bit** for every executor
spec, on both the scalar (Kalman) and multivariate (robot) chains and
in both bds and sds modes.
"""

import numpy as np
import pytest

from repro.bench import KalmanModel, RobotModel, kalman_data, robot_data
from repro.exec import shutdown_executors
from repro.inference import infer

KDATA = kalman_data(12, seed=42, prior_var=1.0, motion_var=1.0, obs_var=1.0)
RDATA = robot_data(10, seed=3)

EXECUTORS = ["threads:2", "processes-persistent:2"]


@pytest.fixture(scope="module", autouse=True)
def _release_pools():
    yield
    shutdown_executors()


def run_means(model, data, method, executor, n=12, seed=7):
    engine = infer(
        model(), n_particles=n, method=method, backend="vectorized",
        seed=seed, executor=executor,
    )
    state = engine.init()
    means = []
    for obs in data.observations:
        dist, state = engine.step(state, obs)
        means.append(dist.mean())
    return np.asarray(means)


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("method", ["bds", "sds"])
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_kalman(self, method, executor):
        base = run_means(KalmanModel, KDATA, method, "serial")
        other = run_means(KalmanModel, KDATA, method, executor)
        assert np.array_equal(base, other)

    @pytest.mark.parametrize("method", ["bds", "sds"])
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_robot(self, method, executor):
        base = run_means(RobotModel, RDATA, method, "serial")
        other = run_means(RobotModel, RDATA, method, executor)
        assert np.array_equal(base, other)


class TestResidentChainState:
    def test_persistent_stream_survives_resample_barriers(self):
        """Always-resample stresses export/assemble on graph payloads."""
        kwargs = dict(
            n_particles=8, method="bds", backend="vectorized", seed=1,
            resample_threshold=1.1,
        )
        serial = infer(KalmanModel(), executor="serial", **kwargs)
        resident = infer(
            KalmanModel(), executor="processes-persistent:2", **kwargs
        )
        s_state, r_state = serial.init(), resident.init()
        for y in KDATA.observations:
            s_dist, s_state = serial.step(s_state, y)
            r_dist, r_state = resident.step(r_state, y)
            assert np.array_equal(s_dist.values, r_dist.values)
        r_state.release()

    def test_materialized_state_matches_serial(self):
        engine = infer(
            RobotModel(), n_particles=6, method="sds", backend="vectorized",
            seed=2, executor="processes-persistent:2",
        )
        state = engine.init()
        for obs in RDATA.observations[:4]:
            _, state = engine.step(state, obs)
        population = state.materialize()
        rows = sum(batch.state.batch_rows() for batch in population.payloads())
        assert rows == 6
        state.release()
