"""The exception hierarchy: one catchable root, meaningful subtrees."""

import pytest

from repro.errors import (
    CausalityError,
    CompilationError,
    DistributionError,
    EvaluationError,
    GraphError,
    InferenceError,
    InitializationError,
    KindError,
    LanguageError,
    MuFRuntimeError,
    ReproError,
    ScopeError,
    SymbolicError,
    TypeCheckError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            KindError,
            TypeCheckError,
            CausalityError,
            InitializationError,
            ScopeError,
            CompilationError,
            MuFRuntimeError,
            SymbolicError,
            GraphError,
            InferenceError,
            DistributionError,
        ],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)

    def test_static_errors_are_language_errors(self):
        for error in (KindError, TypeCheckError, CausalityError, ScopeError):
            assert issubclass(error, LanguageError)

    def test_runtime_errors_are_evaluation_errors(self):
        for error in (MuFRuntimeError, GraphError, InferenceError):
            assert issubclass(error, EvaluationError)

    def test_one_handler_catches_everything(self):
        from repro.dists import Gaussian

        with pytest.raises(ReproError):
            Gaussian(0.0, -1.0)

    def test_frontend_errors_are_language_errors(self):
        from repro.frontend import LexError, ParseError

        assert issubclass(LexError, LanguageError)
        assert issubclass(ParseError, LanguageError)
