"""Probabilistic contexts: Fig. 13 vs Fig. 14 operator semantics."""

import math

import numpy as np
import pytest

from repro.delayed import StreamingGraph
from repro.dists import Gaussian
from repro.errors import InferenceError
from repro.inference.contexts import DelayedCtx, SamplingCtx
from repro.lang import gaussian
from repro.symbolic import RVar, is_symbolic


class TestSamplingCtx:
    def test_sample_draws_concrete(self, rng):
        ctx = SamplingCtx(rng)
        value = ctx.sample(Gaussian(0.0, 1.0))
        assert isinstance(value, float)

    def test_observe_accumulates_log_weight(self, rng):
        ctx = SamplingCtx(rng)
        ctx.observe(Gaussian(0.0, 1.0), 0.5)
        ctx.observe(Gaussian(0.0, 1.0), -0.5)
        expected = 2 * Gaussian(0.0, 1.0).log_pdf(0.5)
        assert ctx.log_weight == pytest.approx(expected)

    def test_factor_adds_log_score(self, rng):
        ctx = SamplingCtx(rng)
        ctx.factor(-1.5)
        ctx.factor(0.5)
        assert ctx.log_weight == pytest.approx(-1.0)

    def test_symbolic_dist_rejected(self, rng):
        ctx = SamplingCtx(rng)
        fake_symbolic = gaussian(RVar(object()), 1.0)
        with pytest.raises(InferenceError):
            ctx.sample(fake_symbolic)
        with pytest.raises(InferenceError):
            ctx.observe(fake_symbolic, 1.0)

    def test_value_passthrough_and_rejection(self, rng):
        ctx = SamplingCtx(rng)
        assert ctx.value(2.0) == 2.0
        with pytest.raises(InferenceError):
            ctx.value(RVar(object()))

    def test_non_distribution_rejected(self, rng):
        ctx = SamplingCtx(rng)
        with pytest.raises(InferenceError):
            ctx.sample("not a distribution")


class TestDelayedCtx:
    def test_sample_returns_symbolic(self, rng):
        ctx = DelayedCtx(StreamingGraph(rng=rng))
        x = ctx.sample(Gaussian(0.0, 1.0))
        assert is_symbolic(x)

    def test_observe_scores_predictive(self, rng):
        ctx = DelayedCtx(StreamingGraph(rng=rng))
        x = ctx.sample(Gaussian(0.0, 100.0))
        ctx.observe(gaussian(x, 1.0), 3.0)
        assert ctx.log_weight == pytest.approx(Gaussian(0.0, 101.0).log_pdf(3.0))

    def test_value_forces(self, rng):
        ctx = DelayedCtx(StreamingGraph(rng=rng))
        x = ctx.sample(Gaussian(0.0, 1.0))
        value = ctx.value(x)
        assert isinstance(value, float)
        assert ctx.value(x) == value  # stable after realization

    def test_factor_concrete_and_symbolic(self, rng):
        ctx = DelayedCtx(StreamingGraph(rng=rng))
        ctx.factor(-2.0)
        assert ctx.log_weight == pytest.approx(-2.0)
        x = ctx.sample(Gaussian(1.0, 0.0001))
        ctx.factor(x)  # symbolic score: forced to a concrete value
        assert ctx.log_weight == pytest.approx(-2.0 + 1.0, abs=0.1)

    def test_delayed_sampling_improves_over_eager(self, rng_factory):
        """Delaying through an observation matches the exact posterior."""
        ctx = DelayedCtx(StreamingGraph(rng=rng_factory(1)))
        x = ctx.sample(Gaussian(0.0, 100.0))
        ctx.observe(gaussian(x, 1.0), 4.0)
        post = ctx.value(x)
        # the realized value comes from the conditioned marginal, which
        # is concentrated near the observation
        assert abs(post - 4.0) < 5.0
