"""Resampling schemes and weight normalization."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InferenceError
from repro.inference.resampling import (
    RESAMPLERS,
    ess,
    multinomial_indices,
    normalize_log_weights,
    residual_indices,
    stratified_indices,
    systematic_indices,
)


class TestNormalizeLogWeights:
    def test_uniform_from_equal(self):
        weights = normalize_log_weights([-1.0, -1.0, -1.0])
        assert np.allclose(weights, [1 / 3] * 3)

    def test_shift_invariance(self):
        a = normalize_log_weights([0.0, -1.0, -2.0])
        b = normalize_log_weights([100.0, 99.0, 98.0])
        assert np.allclose(a, b)

    def test_all_neg_inf_falls_back_to_uniform(self):
        weights = normalize_log_weights([-math.inf, -math.inf])
        assert np.allclose(weights, [0.5, 0.5])

    def test_single_neg_inf_gets_zero(self):
        weights = normalize_log_weights([0.0, -math.inf])
        assert np.allclose(weights, [1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            normalize_log_weights([])

    def test_single_nan_zeroes_only_that_particle(self):
        """Regression: one NaN log-weight must not reset the population.

        ``normalize_log_weights([0.0, nan, 0.0])`` used to return
        all-uniform — silently discarding the two healthy particles and
        masking the broken kernel that produced the NaN.
        """
        with pytest.warns(RuntimeWarning, match="NaN log-weight"):
            weights = normalize_log_weights([0.0, math.nan, 0.0])
        assert np.allclose(weights, [0.5, 0.0, 0.5])

    def test_nan_among_finite_keeps_relative_weights(self):
        with pytest.warns(RuntimeWarning):
            weights = normalize_log_weights([math.log(3.0), math.nan, math.log(1.0)])
        assert np.allclose(weights, [0.75, 0.0, 0.25])

    def test_all_nan_falls_back_to_uniform(self):
        """Only a fully degenerate vector may reset to uniform."""
        with pytest.warns(RuntimeWarning):
            weights = normalize_log_weights([math.nan, math.nan])
        assert np.allclose(weights, [0.5, 0.5])

    def test_nan_and_neg_inf_mix(self):
        with pytest.warns(RuntimeWarning):
            weights = normalize_log_weights([math.nan, -math.inf, 0.0])
        assert np.allclose(weights, [0.0, 0.0, 1.0])

    @given(
        logw=st.lists(
            st.floats(min_value=-500, max_value=500, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_always_a_distribution(self, logw):
        weights = normalize_log_weights(logw)
        assert np.all(weights >= 0)
        assert weights.sum() == pytest.approx(1.0)


class TestEss:
    def test_uniform_weights_full_ess(self):
        assert ess([0.25] * 4) == pytest.approx(4.0)

    def test_degenerate_weights_ess_one(self):
        assert ess([1.0, 0.0, 0.0]) == pytest.approx(1.0)

    def test_zero_weights(self):
        assert ess([0.0, 0.0]) == 0.0


class TestIndices:
    @pytest.mark.parametrize("scheme", sorted(RESAMPLERS))
    def test_indices_in_range(self, scheme, rng):
        weights = normalize_log_weights([0.0, -1.0, -2.0, -0.5])
        indices = RESAMPLERS[scheme](weights, 10, rng)
        assert len(indices) == 10
        assert all(0 <= i < 4 for i in indices)

    @pytest.mark.parametrize(
        "fn",
        [systematic_indices, stratified_indices, multinomial_indices, residual_indices],
    )
    def test_degenerate_weight_selects_single(self, fn, rng):
        indices = fn([0.0, 1.0, 0.0], 8, rng)
        assert all(i == 1 for i in indices)

    def test_systematic_proportionality(self, rng):
        weights = np.array([0.5, 0.3, 0.2])
        counts = np.zeros(3)
        for _ in range(200):
            idx = systematic_indices(weights, 100, rng)
            counts += np.bincount(idx, minlength=3)
        freqs = counts / counts.sum()
        assert np.allclose(freqs, weights, atol=0.01)

    @given(seed=st.integers(0, 1000), n=st.integers(1, 64))
    def test_systematic_counts_are_within_one_of_expectation(self, seed, n):
        rng = np.random.default_rng(seed)
        weights = np.array([0.5, 0.5])
        idx = systematic_indices(weights, n, rng)
        count0 = int(np.sum(idx == 0))
        assert abs(count0 - n / 2) <= 1.0


class TestUnnormalizedWeights:
    """Regression: resamplers must normalize, not dump mass on the last particle.

    ``systematic_indices``/``stratified_indices`` used to assume
    normalized weights — the ``cumulative[-1] = 1.0`` round-off guard
    handed any missing mass to the last particle, so uniform-but-
    unnormalized ``[0.2, 0.2, 0.2]`` resampled to ``[1, 2, 2]`` instead
    of ``[0, 1, 2]``.
    """

    def test_systematic_uniform_unnormalized(self, rng):
        idx = systematic_indices([0.2, 0.2, 0.2], 3, rng)
        assert list(idx) == [0, 1, 2]

    @pytest.mark.parametrize("scheme", sorted(RESAMPLERS))
    def test_scaling_weights_changes_nothing(self, scheme, rng_factory):
        """Every scheme: w and c*w draw identical ancestor indices.

        Power-of-two scales make the internal normalization bit-exact,
        so the comparison can demand identical index vectors.
        """
        weights = np.array([0.5, 0.125, 0.25, 0.125])
        for scale in (0.25, 1.0, 8.0):
            a = RESAMPLERS[scheme](weights, 12, rng_factory(9))
            b = RESAMPLERS[scheme](weights * scale, 12, rng_factory(9))
            assert np.array_equal(a, b), (scheme, scale)

    @pytest.mark.parametrize("scheme", sorted(RESAMPLERS))
    def test_normalized_input_unchanged(self, scheme, rng_factory):
        """Already-normalized vectors keep their historical streams."""
        weights = normalize_log_weights([0.0, -1.0, -2.0, -0.5])
        a = RESAMPLERS[scheme](weights, 10, rng_factory(4))
        b = RESAMPLERS[scheme](list(weights), 10, rng_factory(4))
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("scheme", sorted(RESAMPLERS))
    def test_schemes_agree_on_proportions(self, scheme, rng):
        """Unnormalized weights keep every scheme unbiased."""
        weights = np.array([5.0, 3.0, 2.0])  # sums to 10, not 1
        counts = np.zeros(3)
        for _ in range(200):
            idx = RESAMPLERS[scheme](weights, 100, rng)
            counts += np.bincount(idx, minlength=3)
        assert np.allclose(counts / counts.sum(), weights / weights.sum(), atol=0.02)

    @pytest.mark.parametrize("scheme", sorted(RESAMPLERS))
    def test_degenerate_sums_rejected(self, scheme, rng):
        with pytest.raises(InferenceError):
            RESAMPLERS[scheme]([0.0, 0.0], 4, rng)
        with pytest.raises(InferenceError):
            RESAMPLERS[scheme]([], 4, rng)
        with pytest.raises(InferenceError):
            RESAMPLERS[scheme]([0.5, -0.5, 1.0], 4, rng)


class TestResidual:
    def test_registered(self):
        assert RESAMPLERS["residual"] is residual_indices

    def test_deterministic_part_guarantees_floor_copies(self, rng):
        weights = np.array([0.55, 0.25, 0.2])
        for _ in range(50):
            idx = residual_indices(weights, 10, rng)
            counts = np.bincount(idx, minlength=3)
            assert len(idx) == 10
            # every particle receives at least floor(n * w_i) copies
            assert np.all(counts >= np.floor(10 * weights).astype(int))

    def test_exact_multiples_need_no_random_remainder(self, rng):
        idx = residual_indices(np.array([0.25, 0.75]), 4, rng)
        assert np.array_equal(np.bincount(idx, minlength=2), [1, 3])

    def test_unbiased_frequencies(self, rng):
        weights = np.array([0.5, 0.3, 0.2])
        counts = np.zeros(3)
        for _ in range(200):
            idx = residual_indices(weights, 100, rng)
            counts += np.bincount(idx, minlength=3)
        assert np.allclose(counts / counts.sum(), weights, atol=0.01)

    @given(seed=st.integers(0, 500), n=st.integers(1, 64))
    def test_always_returns_n_valid_indices(self, seed, n):
        rng = np.random.default_rng(seed)
        weights = normalize_log_weights([0.0, -0.3, -2.0, -0.7])
        idx = residual_indices(weights, n, rng)
        assert len(idx) == n
        assert all(0 <= i < 4 for i in idx)
