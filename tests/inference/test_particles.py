"""Particle cloning: graph copies must be deep, consistent, independent."""

import numpy as np
import pytest

from repro.delayed import StreamingGraph, DelayedGraph, NodeState
from repro.delayed.conjugacy import AffineGaussian
from repro.dists import Gaussian
from repro.inference.particles import (
    Particle,
    clone_particle,
    clone_state_concrete,
    state_words,
)
from repro.symbolic import RVar


def build_chain(graph, length=5):
    prev = graph.assume_root(Gaussian(0.0, 100.0))
    for _ in range(length):
        node = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), prev)
        prev = node
    return prev


class TestCloneConcrete:
    def test_scalars_shared(self):
        particle = Particle(state=3.0, log_weight=-1.0)
        clone = clone_particle(particle)
        assert clone.state == 3.0
        assert clone.log_weight == -1.0

    def test_arrays_copied(self):
        arr = np.array([1.0, 2.0])
        clone = clone_particle(Particle(state=arr))
        clone.state[0] = 99.0
        assert arr[0] == 1.0

    def test_nested_structures(self):
        state = {"a": [1.0, (2.0, 3.0)]}
        clone = clone_state_concrete(state)
        clone["a"][0] = 5.0
        assert state["a"][0] == 1.0


class TestCloneGraph:
    @pytest.mark.parametrize("graph_cls", [DelayedGraph, StreamingGraph])
    def test_clone_is_independent(self, graph_cls, rng):
        graph = graph_cls(rng=rng)
        leaf = build_chain(graph)
        particle = Particle(state=RVar(leaf), graph=graph)
        clone = clone_particle(particle)
        # realizing in the clone must not affect the original
        clone_node = clone.state.node
        clone.graph.value(clone_node)
        assert clone_node.state is NodeState.REALIZED
        assert leaf.state is not NodeState.REALIZED

    def test_clone_preserves_pointers(self, rng):
        graph = DelayedGraph(rng=rng)
        root = graph.assume_root(Gaussian(0.0, 1.0))
        child = graph.assume_conditional(AffineGaussian(1.0, 0.0, 1.0), root)
        particle = Particle(state=(RVar(child), RVar(root)), graph=graph)
        clone = clone_particle(particle)
        cloned_child, cloned_root = clone.state[0].node, clone.state[1].node
        assert cloned_child.parent is cloned_root
        assert cloned_child in cloned_root.children
        assert cloned_child is not child

    def test_clone_shares_immutable_payloads(self, rng):
        graph = StreamingGraph(rng=rng)
        root = graph.assume_root(Gaussian(0.0, 1.0))
        clone = clone_particle(Particle(state=RVar(root), graph=graph))
        assert clone.state.node.marginal is root.marginal  # immutable share

    def test_long_chain_clone_no_recursion_error(self, rng):
        graph = DelayedGraph(rng=rng)
        leaf = build_chain(graph, length=5000)
        particle = Particle(state=RVar(leaf), graph=graph)
        clone = clone_particle(particle)  # must not hit the stack limit
        assert clone.state.node is not leaf

    def test_symbolic_expression_state_remapped(self, rng):
        graph = StreamingGraph(rng=rng)
        root = graph.assume_root(Gaussian(0.0, 1.0))
        expr = 2.0 * RVar(root) + 1.0
        clone = clone_particle(Particle(state=expr, graph=graph))
        from repro.symbolic import free_rvars

        (clone_rv,) = free_rvars(clone.state)
        assert clone_rv.node is not root

    def test_cloned_realized_node_lifts(self, rng):
        """Every DSNode slot — including the memoized snapshot — must be
        initialized on clone shells; lifting a cloned realized node used
        to raise AttributeError on the unset cache slot."""
        from repro.delayed.interface import lift_distribution

        graph = StreamingGraph(rng=rng)
        node = graph.assume_root(Gaussian(0.0, 1.0))
        graph.value(node)  # realize (and memoize the Dirac snapshot)
        clone = clone_particle(Particle(state=RVar(node), graph=graph))
        dist = lift_distribution(clone.graph, clone.state)
        assert dist.mean() == node.value


class TestStateWords:
    def test_scalars(self):
        assert state_words(1.0) == 1
        assert state_words(None) == 1

    def test_array_scales_with_size(self):
        assert state_words(np.zeros(10)) == 11

    def test_containers(self):
        assert state_words((1.0, 2.0)) == 3
        assert state_words({"a": 1.0}) == 2

    def test_rvar_counts_one_pointer(self):
        assert state_words(RVar(object())) == 1
