"""Engine construction, configuration, and streaming-node behaviour."""

import numpy as np
import pytest

from repro.bench.models import KalmanModel
from repro.dists import Empirical, Mixture
from repro.errors import InferenceError
from repro.inference import (
    ImportanceSampler,
    ParticleFilter,
    StreamingDelayedSampler,
    infer,
)
from repro.inference.infer import ENGINES


class TestInferFactory:
    def test_default_is_particle_filter(self):
        engine = infer(KalmanModel())
        assert isinstance(engine, ParticleFilter)

    def test_all_methods_constructible(self):
        for method in ("importance", "pf", "bds", "sds", "ds"):
            engine = infer(KalmanModel(), n_particles=2, method=method)
            assert engine.n_particles == 2

    def test_unknown_method_rejected(self):
        with pytest.raises(InferenceError):
            infer(KalmanModel(), method="gibbs")

    def test_method_aliases(self):
        assert ENGINES["particle_filter"] is ParticleFilter
        assert ENGINES["is"] is ImportanceSampler

    def test_zero_particles_rejected(self):
        with pytest.raises(InferenceError):
            infer(KalmanModel(), n_particles=0)

    def test_unknown_resampler_rejected(self):
        with pytest.raises(InferenceError):
            infer(KalmanModel(), resampler="bogus")


class TestEngineAsStreamNode:
    def test_step_returns_distribution_and_state(self):
        engine = infer(KalmanModel(), n_particles=4, method="pf", seed=0)
        state = engine.init()
        dist, state2 = engine.step(state, 1.0)
        assert isinstance(dist, Empirical)
        assert len(state2) == 4

    def test_sds_outputs_mixture(self):
        engine = infer(KalmanModel(), n_particles=4, method="sds", seed=0)
        state = engine.init()
        dist, _ = engine.step(state, 1.0)
        assert isinstance(dist, Mixture)

    def test_state_is_externalized(self):
        """Two interleaved executions from a shared prefix stay coherent."""
        engine = infer(KalmanModel(), n_particles=1, method="sds", seed=0)
        state = engine.init()
        dist_a, state_a = engine.step(state, 1.0)
        # branch: feed different observations to the same engine object
        dist_b1, _ = engine.step(state_a, 5.0)
        dist_b2, _ = engine.step(state_a, -5.0)
        assert dist_b1.mean() > dist_b2.mean()

    def test_seed_reproducibility(self):
        def run(seed):
            engine = infer(KalmanModel(), n_particles=10, method="pf", seed=seed)
            state = engine.init()
            means = []
            for obs in (0.5, 1.0, 1.5):
                dist, state = engine.step(state, obs)
                means.append(dist.mean())
            return means

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestResamplingConfig:
    def test_threshold_skips_resampling(self):
        # threshold 0: never resample (ESS is always > 0)
        engine = infer(
            KalmanModel(), n_particles=10, method="pf", seed=0,
            resample_threshold=0.0,
        )
        state = engine.init()
        for obs in (1.0, 2.0, 3.0):
            _, state = engine.step(state, obs)
        # without resampling, accumulated log-weights differ across particles
        weights = {round(p.log_weight, 6) for p in state}
        assert len(weights) > 1

    def test_always_resample_resets_weights(self):
        engine = infer(KalmanModel(), n_particles=10, method="pf", seed=0)
        state = engine.init()
        _, state = engine.step(state, 1.0)
        assert all(p.log_weight == 0.0 for p in state)

    @pytest.mark.parametrize("scheme", ["systematic", "stratified", "multinomial"])
    def test_all_resamplers_work(self, scheme):
        engine = infer(
            KalmanModel(), n_particles=8, method="pf", seed=0, resampler=scheme
        )
        state = engine.init()
        dist, _ = engine.step(state, 1.0)
        assert np.isfinite(dist.mean())


class TestSharedRng:
    def test_external_rng_accepted(self):
        rng = np.random.default_rng(0)
        engine = infer(KalmanModel(), n_particles=2, method="pf", rng=rng)
        assert engine.rng is rng
