"""Engine construction, configuration, and streaming-node behaviour."""

import numpy as np
import pytest

from repro.bench.models import KalmanModel
from repro.dists import Empirical, Mixture
from repro.errors import InferenceError
from repro.inference import (
    ImportanceSampler,
    ParticleFilter,
    StreamingDelayedSampler,
    infer,
)
from repro.inference.infer import ENGINES


class TestInferFactory:
    def test_default_is_particle_filter(self):
        engine = infer(KalmanModel())
        assert isinstance(engine, ParticleFilter)

    def test_all_methods_constructible(self):
        for method in ("importance", "pf", "bds", "sds", "ds"):
            engine = infer(KalmanModel(), n_particles=2, method=method)
            assert engine.n_particles == 2

    def test_unknown_method_rejected(self):
        with pytest.raises(InferenceError):
            infer(KalmanModel(), method="gibbs")

    def test_method_aliases(self):
        assert ENGINES["particle_filter"] is ParticleFilter
        assert ENGINES["is"] is ImportanceSampler

    def test_zero_particles_rejected(self):
        with pytest.raises(InferenceError):
            infer(KalmanModel(), n_particles=0)

    def test_unknown_resampler_rejected(self):
        with pytest.raises(InferenceError):
            infer(KalmanModel(), resampler="bogus")


class TestEngineAsStreamNode:
    def test_step_returns_distribution_and_state(self):
        engine = infer(KalmanModel(), n_particles=4, method="pf", seed=0)
        state = engine.init()
        dist, state2 = engine.step(state, 1.0)
        assert isinstance(dist, Empirical)
        assert len(state2) == 4

    def test_sds_outputs_mixture(self):
        engine = infer(KalmanModel(), n_particles=4, method="sds", seed=0)
        state = engine.init()
        dist, _ = engine.step(state, 1.0)
        assert isinstance(dist, Mixture)

    def test_state_is_externalized(self):
        """Two interleaved executions from a shared prefix stay coherent."""
        engine = infer(KalmanModel(), n_particles=1, method="sds", seed=0)
        state = engine.init()
        dist_a, state_a = engine.step(state, 1.0)
        # branch: feed different observations to the same engine object
        dist_b1, _ = engine.step(state_a, 5.0)
        dist_b2, _ = engine.step(state_a, -5.0)
        assert dist_b1.mean() > dist_b2.mean()

    def test_seed_reproducibility(self):
        def run(seed):
            engine = infer(KalmanModel(), n_particles=10, method="pf", seed=seed)
            state = engine.init()
            means = []
            for obs in (0.5, 1.0, 1.5):
                dist, state = engine.step(state, obs)
                means.append(dist.mean())
            return means

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestResamplingConfig:
    def test_threshold_skips_resampling(self):
        # threshold 0: never resample (ESS is always > 0)
        engine = infer(
            KalmanModel(), n_particles=10, method="pf", seed=0,
            resample_threshold=0.0,
        )
        state = engine.init()
        for obs in (1.0, 2.0, 3.0):
            _, state = engine.step(state, obs)
        # without resampling, accumulated log-weights differ across particles
        weights = {round(p.log_weight, 6) for p in state}
        assert len(weights) > 1

    def test_always_resample_resets_weights(self):
        engine = infer(KalmanModel(), n_particles=10, method="pf", seed=0)
        state = engine.init()
        _, state = engine.step(state, 1.0)
        assert all(p.log_weight == 0.0 for p in state)

    @pytest.mark.parametrize("scheme", ["systematic", "stratified", "multinomial"])
    def test_all_resamplers_work(self, scheme):
        engine = infer(
            KalmanModel(), n_particles=8, method="pf", seed=0, resampler=scheme
        )
        state = engine.init()
        dist, _ = engine.step(state, 1.0)
        assert np.isfinite(dist.mean())


class TestSharedRng:
    def test_external_rng_accepted(self):
        rng = np.random.default_rng(0)
        engine = infer(KalmanModel(), n_particles=2, method="pf", rng=rng)
        assert engine.rng is rng


class TestWeightDegeneracy:
    def test_all_neg_inf_weights_fall_back_to_uniform(self):
        """Every particle scoring zero likelihood must not kill the stream."""
        from repro import FunProbNode, gaussian

        def doomed_step(state, inp, ctx):
            x = ctx.sample(gaussian(0.0, 1.0))
            ctx.factor(float("-inf"))
            return x, x

        engine = infer(FunProbNode(None, doomed_step), n_particles=5, method="pf", seed=0)
        dist, state = engine.step(engine.init(), None)
        assert np.allclose(dist.weights, 0.2)
        assert np.isfinite(dist.mean())
        assert engine.last_stats.log_evidence == -np.inf
        # and the run continues on the next step
        dist2, _ = engine.step(state, None)
        assert np.isfinite(dist2.mean())

    def test_high_ess_skips_resampling(self):
        """Equal weights give ESS = n, above any fractional threshold."""
        from repro import FunProbNode, gaussian

        def flat_step(state, inp, ctx):
            x = ctx.sample(gaussian(0.0, 1.0))
            ctx.factor(-1.0)  # identical weight for every particle
            return x, x

        engine = infer(
            FunProbNode(None, flat_step), n_particles=8, method="pf", seed=0,
            resample_threshold=0.5,
        )
        state = engine.init()
        for _ in range(3):
            _, state = engine.step(state, None)
        # never resampled: the per-step factors accumulated in the weights
        assert all(p.log_weight == pytest.approx(-3.0) for p in state)
        assert engine.last_stats.ess == pytest.approx(8.0)


class TestCloneOnResample:
    def test_invalid_value_rejected(self):
        with pytest.raises(InferenceError):
            infer(KalmanModel(), clone_on_resample="sometimes")

    def test_duplicates_shares_first_occurrence(self):
        """The first pick of a particle reuses it; later picks are clones."""
        from repro.inference import Particle

        engine = infer(
            KalmanModel(), n_particles=4, method="pf", seed=0,
            clone_on_resample="duplicates",
        )
        particles = [Particle(state=[float(i)], graph=None, log_weight=0.0) for i in range(4)]
        resampled = engine._resample(particles, np.array([0.0, 1.0, 0.0, 0.0]))
        assert sum(1 for p in resampled if p is particles[1]) == 1
        clones = [p for p in resampled if p is not particles[1]]
        assert len(clones) == 3
        for clone in clones:
            assert clone.state == [1.0]
            assert clone.state is not particles[1].state

    def test_all_clones_every_selection(self):
        from repro.inference import Particle

        engine = infer(KalmanModel(), n_particles=4, method="pf", seed=0)
        particles = [Particle(state=[float(i)], graph=None, log_weight=0.0) for i in range(4)]
        resampled = engine._resample(particles, np.array([0.0, 1.0, 0.0, 0.0]))
        assert all(p is not particles[1] for p in resampled)
        assert all(p.state == [1.0] for p in resampled)
