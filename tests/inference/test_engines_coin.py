"""Inference engines on the Coin benchmark (Appendix B.2).

SDS maintains the exact Beta posterior; BDS loses the conjugacy after
the first step (the Beta node is forced at the end of step 1) and from
then on behaves like a particle filter — the Section 6.2 observation.
"""

import numpy as np
import pytest

from repro.bench.data import coin_data
from repro.bench.models import CoinModel
from repro.inference import infer


@pytest.fixture(scope="module")
def data():
    return coin_data(100, seed=9)


def beta_posterior_means(observations, alpha=1.0, beta=1.0):
    means = []
    for obs in observations:
        if obs:
            alpha += 1.0
        else:
            beta += 1.0
        means.append(alpha / (alpha + beta))
    return means


class TestSdsExactness:
    def test_single_particle_exact_posterior(self, data):
        engine = infer(CoinModel(), n_particles=1, method="sds", seed=0)
        state = engine.init()
        for obs, expected in zip(data.observations, beta_posterior_means(data.observations)):
            dist, state = engine.step(state, obs)
            assert dist.mean() == pytest.approx(expected, rel=1e-12)

    def test_posterior_variance_matches_beta(self, data):
        engine = infer(CoinModel(), n_particles=1, method="sds", seed=0)
        state = engine.init()
        alpha, beta = 1.0, 1.0
        for obs in data.observations:
            dist, state = engine.step(state, obs)
            alpha, beta = (alpha + 1, beta) if obs else (alpha, beta + 1)
            total = alpha + beta
            expected_var = alpha * beta / (total * total * (total + 1.0))
            assert dist.variance() == pytest.approx(expected_var, rel=1e-9)


class TestBdsDegeneratesToPf:
    def test_bds_not_exact_after_first_step(self, data):
        engine = infer(CoinModel(), n_particles=5, method="bds", seed=3)
        state = engine.init()
        exact = beta_posterior_means(data.observations)
        errors = []
        for obs, expected in zip(data.observations, exact):
            dist, state = engine.step(state, obs)
            errors.append(abs(dist.mean() - expected))
        # with only 5 particles, BDS cannot track the exact posterior
        assert max(errors[1:]) > 0.01

    def test_bds_first_step_exploits_conjugacy(self, data):
        """At step 1 the observation conditions the Beta before forcing."""
        exact_first = beta_posterior_means(data.observations)[0]
        means = []
        for seed in range(200):
            engine = infer(CoinModel(), n_particles=1, method="bds", seed=seed)
            state = engine.init()
            dist, state = engine.step(state, data.observations[0])
            means.append(dist.mean())
        # the forced samples are drawn from the conditioned Beta, whose
        # mean is the exact posterior mean
        assert np.mean(means) == pytest.approx(exact_first, abs=0.05)


class TestPfConvergence:
    def test_pf_estimates_improve_with_particles(self, data):
        exact = beta_posterior_means(data.observations)[-1]

        def final_error(particles, seed):
            engine = infer(CoinModel(), n_particles=particles, method="pf", seed=seed)
            state = engine.init()
            for obs in data.observations:
                dist, state = engine.step(state, obs)
            return abs(dist.mean() - exact)

        small = np.median([final_error(2, s) for s in range(10)])
        large = np.median([final_error(200, s) for s in range(10)])
        assert large < small
