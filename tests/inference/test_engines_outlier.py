"""Inference engines on the Outlier benchmark (Appendix B.3).

Under SDS this model is a Rao-Blackwellized particle filter: the
outlier indicator is sampled, the position chain and outlier rate stay
symbolic. The paper's finding (Section 6.2): "all algorithms are
unreliable below about 80 particles"; above that they are comparable,
with PF showing the worst error tails — the tests below assert exactly
that, at 100 particles.
"""

import numpy as np
import pytest

from repro.bench.data import outlier_data
from repro.bench.models import OutlierModel
from repro.inference import infer
from repro.inference.metrics import mse_of_run


@pytest.fixture(scope="module")
def data():
    return outlier_data(60, seed=13)


def run_means(method, particles, data, seed):
    engine = infer(OutlierModel(), n_particles=particles, method=method, seed=seed)
    state = engine.init()
    means = []
    for obs in data.observations:
        dist, state = engine.step(state, obs)
        means.append(dist.mean())
    return means


class TestAllEnginesRun:
    @pytest.mark.parametrize("method", ["pf", "bds", "sds", "ds"])
    def test_tracks_truth_at_100_particles(self, method, data):
        mses = [
            mse_of_run(run_means(method, 100, data, seed), data.truths)
            for seed in range(3)
        ]
        # healthy runs track far more tightly than the prior spread (100)
        assert np.median(mses) < 5.0


class TestRaoBlackwellization:
    def test_sds_median_not_worse_than_pf(self, data):
        sds_runs = [
            mse_of_run(run_means("sds", 100, data, s), data.truths) for s in range(5)
        ]
        pf_runs = [
            mse_of_run(run_means("pf", 100, data, s), data.truths) for s in range(5)
        ]
        assert np.median(sds_runs) <= np.median(pf_runs) * 1.1

    def test_sds_equals_ds_inference(self, data):
        """Same graph semantics: SDS and DS give identical posteriors."""
        sds = run_means("sds", 50, data, seed=1)
        ds = run_means("ds", 50, data, seed=1)
        assert np.allclose(sds, ds)

    def test_outlier_rate_stays_symbolic_under_sds(self, data):
        """The Beta node must not be realized by sampling the indicator."""
        from repro.delayed.node import NodeState

        engine = infer(OutlierModel(), n_particles=1, method="sds", seed=0)
        state = engine.init()
        for obs in data.observations[:10]:
            _, state = engine.step(state, obs)
        particle = state[0]
        _, outlier_prob = particle.state
        beta_node = outlier_prob.node
        assert beta_node.state is NodeState.MARGINALIZED
        # conditioned by the sampled indicators: counts moved from (100, 1000)
        post = particle.graph.posterior_marginal(beta_node)
        assert post.alpha + post.beta == pytest.approx(1100.0 + 10.0)


class TestLowParticleUnreliability:
    def test_low_particle_runs_have_heavy_tails(self, data):
        """The paper: unreliable below ~80 particles (wide 10/90 spread).

        With few particles, a missed outlier flag can poison a whole run;
        the *spread* across seeds at 10 particles must dwarf the spread
        at 100 particles.
        """
        low = [
            mse_of_run(run_means("sds", 10, data, s), data.truths)
            for s in range(8)
        ]
        high = [
            mse_of_run(run_means("sds", 100, data, s), data.truths)
            for s in range(8)
        ]
        assert max(high) - min(high) < max(low) - min(low) + 1.0
        assert np.median(high) <= np.median(low)
