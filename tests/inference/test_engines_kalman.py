"""Inference engines on the Kalman benchmark: exactness and convergence.

The key reproduction facts (Section 6.2):

* SDS with a single particle equals the closed-form Kalman filter,
* BDS exploits within-step conjugacy and beats PF at equal particles,
* PF converges toward the exact posterior as particles grow.
"""

import numpy as np
import pytest

from repro.bench.data import kalman_data
from repro.bench.models import KalmanModel
from repro.dists import Gaussian
from repro.inference import infer
from repro.inference.metrics import mse_of_run


def kalman_oracle(observations, prior_mean=0.0, prior_var=100.0,
                  motion_var=1.0, obs_var=1.0):
    """Closed-form Kalman filter posteriors (mean, var) per step."""
    posts = []
    mu, var = prior_mean, prior_var
    for t, obs in enumerate(observations):
        if t > 0:
            var = var + motion_var
        gain = var / (var + obs_var)
        mu = mu + gain * (obs - mu)
        var = (1.0 - gain) * var
        posts.append(Gaussian(mu, var))
    return posts


@pytest.fixture(scope="module")
def data():
    return kalman_data(40, seed=5)


class TestSdsExactness:
    def test_single_particle_matches_kalman_filter(self, data):
        engine = infer(KalmanModel(), n_particles=1, method="sds", seed=0)
        state = engine.init()
        for obs, oracle in zip(data.observations, kalman_oracle(data.observations)):
            dist, state = engine.step(state, obs)
            assert dist.mean() == pytest.approx(oracle.mu, rel=1e-9, abs=1e-9)
            assert dist.variance() == pytest.approx(oracle.var, rel=1e-9)

    def test_many_particles_all_exact(self, data):
        engine = infer(KalmanModel(), n_particles=20, method="sds", seed=1)
        state = engine.init()
        oracle = kalman_oracle(data.observations)
        for obs, expected in zip(data.observations, oracle):
            dist, state = engine.step(state, obs)
            assert dist.mean() == pytest.approx(expected.mu, abs=1e-9)

    def test_ds_equals_sds(self, data):
        """The original delayed sampler computes identical posteriors."""
        sds = infer(KalmanModel(), n_particles=1, method="sds", seed=0)
        ds = infer(KalmanModel(), n_particles=1, method="ds", seed=0)
        s1, s2 = sds.init(), ds.init()
        for obs in data.observations:
            d1, s1 = sds.step(s1, obs)
            d2, s2 = ds.step(s2, obs)
            assert d1.mean() == pytest.approx(d2.mean(), abs=1e-9)
            assert d1.variance() == pytest.approx(d2.variance(), abs=1e-9)


class TestAccuracyOrdering:
    def test_pf_converges_with_particles(self, data):
        mses = {}
        for particles in (2, 200):
            runs = [
                mse_of_run(
                    _run_means("pf", particles, data, seed), data.truths
                )
                for seed in range(5)
            ]
            mses[particles] = np.median(runs)
        assert mses[200] < mses[2]

    def test_bds_beats_pf_at_low_particles(self, data):
        pf_runs = [
            mse_of_run(_run_means("pf", 3, data, seed), data.truths)
            for seed in range(10)
        ]
        bds_runs = [
            mse_of_run(_run_means("bds", 3, data, seed), data.truths)
            for seed in range(10)
        ]
        assert np.median(bds_runs) < np.median(pf_runs)

    def test_sds_at_least_as_good_as_pf(self, data):
        sds = mse_of_run(_run_means("sds", 1, data, 0), data.truths)
        pf_runs = [
            mse_of_run(_run_means("pf", 10, data, seed), data.truths)
            for seed in range(10)
        ]
        assert sds <= np.median(pf_runs) * 1.05


class TestImportanceSampler:
    def test_runs_but_weights_degenerate(self, data):
        from repro.inference.resampling import ess, normalize_log_weights

        engine = infer(KalmanModel(), n_particles=50, method="importance", seed=0)
        state = engine.init()
        for obs in data.observations[:20]:
            _, state = engine.step(state, obs)
        weights = normalize_log_weights([p.log_weight for p in state])
        # after 20 steps without resampling the ESS collapses
        assert ess(weights) < 5.0


def _run_means(method, particles, data, seed):
    engine = infer(KalmanModel(), n_particles=particles, method=method, seed=seed)
    state = engine.init()
    means = []
    for obs in data.observations:
        dist, state = engine.step(state, obs)
        means.append(dist.mean())
    return means
