"""Engine diagnostics: ESS and log-evidence.

The strongest check: SDS with a single particle on a conjugate model
computes the *exact* log marginal likelihood of the observations,
verifiable against the Kalman filter's predictive decomposition
``log p(y_1..y_T) = sum_t log p(y_t | y_1..y_(t-1))``.
"""

import math

import numpy as np
import pytest

from repro.bench.data import coin_data, kalman_data
from repro.bench.models import CoinModel, KalmanModel
from repro.dists import Gaussian
from repro.inference import infer
from repro.inference.diagnostics import (
    DiagnosticsLog,
    StepStats,
    step_stats_from_log_weights,
)


class TestStepStats:
    def test_uniform_weights(self):
        stats = step_stats_from_log_weights([math.log(0.5)] * 4)
        assert stats.log_evidence == pytest.approx(math.log(0.5))
        assert stats.ess == pytest.approx(4.0)
        assert stats.ess_fraction == pytest.approx(1.0)

    def test_degenerate_weights(self):
        stats = step_stats_from_log_weights([0.0, -math.inf, -math.inf])
        assert stats.ess == pytest.approx(1.0)
        assert stats.log_evidence == pytest.approx(math.log(1.0 / 3.0))

    def test_all_zero_likelihood(self):
        stats = step_stats_from_log_weights([-math.inf, -math.inf])
        assert stats.log_evidence == -math.inf


class TestDiagnosticsLog:
    def test_accumulates(self):
        log = DiagnosticsLog()
        log.record(StepStats(-1.0, 2.0, 4))
        log.record(StepStats(-2.0, 4.0, 4))
        assert len(log) == 2
        assert log.total_log_evidence == pytest.approx(-3.0)
        assert log.min_ess_fraction == pytest.approx(0.5)

    def test_none_ignored(self):
        log = DiagnosticsLog()
        log.record(None)
        assert len(log) == 0
        assert log.min_ess_fraction == 1.0


def kalman_log_marginal(observations, prior_mean=0.0, prior_var=100.0,
                        motion_var=1.0, obs_var=1.0):
    """Exact log p(y_1..y_T) by the predictive decomposition."""
    total = 0.0
    mu, var = prior_mean, prior_var
    for t, obs in enumerate(observations):
        if t > 0:
            var += motion_var
        total += Gaussian(mu, var + obs_var).log_pdf(obs)
        gain = var / (var + obs_var)
        mu = mu + gain * (obs - mu)
        var = (1.0 - gain) * var
    return total


class TestExactEvidence:
    def test_sds_kalman_log_evidence_exact(self):
        data = kalman_data(25, seed=3)
        engine = infer(KalmanModel(), n_particles=1, method="sds", seed=0)
        state = engine.init()
        log = DiagnosticsLog()
        for obs in data.observations:
            _, state = engine.step(state, obs)
            log.record(engine.last_stats)
        exact = kalman_log_marginal(data.observations)
        assert log.total_log_evidence == pytest.approx(exact, rel=1e-9)

    def test_sds_coin_log_evidence_exact(self):
        data = coin_data(30, seed=4)
        engine = infer(CoinModel(), n_particles=1, method="sds", seed=0)
        state = engine.init()
        log = DiagnosticsLog()
        alpha, beta = 1.0, 1.0
        exact = 0.0
        for obs in data.observations:
            predictive = alpha / (alpha + beta)
            exact += math.log(predictive if obs else 1.0 - predictive)
            alpha, beta = (alpha + 1, beta) if obs else (alpha, beta + 1)
            _, state = engine.step(state, obs)
            log.record(engine.last_stats)
        assert log.total_log_evidence == pytest.approx(exact, rel=1e-9)

    def test_pf_evidence_consistent_with_exact(self):
        """PF's evidence estimate is unbiased: many particles get close."""
        data = kalman_data(15, seed=6)
        exact = kalman_log_marginal(data.observations)
        estimates = []
        for seed in range(5):
            engine = infer(KalmanModel(), n_particles=500, method="pf", seed=seed)
            state = engine.init()
            log = DiagnosticsLog()
            for obs in data.observations:
                _, state = engine.step(state, obs)
                log.record(engine.last_stats)
            estimates.append(log.total_log_evidence)
        assert np.median(estimates) == pytest.approx(exact, abs=1.0)


class TestLivePopulationSize:
    def test_stats_stamp_live_weight_count(self):
        """StepStats carries the live weight-vector length, not the
        engine's configured particle count, so ESS fractions stay
        correct for engines whose population size varies."""
        engine = infer(KalmanModel(), n_particles=10, method="pf", seed=0)
        engine._record_stats(np.zeros(4), np.zeros(4), np.full(4, 0.25))
        assert engine.last_stats.n_particles == 4
        assert engine.last_stats.ess_fraction == pytest.approx(1.0)

    def test_engine_step_stamps_population_size(self):
        engine = infer(KalmanModel(), n_particles=7, method="pf", seed=0)
        _, _ = engine.step(engine.init(), 0.5)
        assert engine.last_stats.n_particles == 7


class TestEssTracking:
    def test_sds_single_particle_full_ess(self):
        data = kalman_data(5, seed=1)
        engine = infer(KalmanModel(), n_particles=1, method="sds", seed=0)
        state = engine.init()
        for obs in data.observations:
            _, state = engine.step(state, obs)
            assert engine.last_stats.ess == pytest.approx(1.0)

    def test_pf_ess_between_one_and_n(self):
        data = kalman_data(10, seed=2)
        engine = infer(KalmanModel(), n_particles=20, method="pf", seed=0)
        state = engine.init()
        for obs in data.observations:
            _, state = engine.step(state, obs)
            assert 1.0 <= engine.last_stats.ess <= 20.0
