"""Memory behaviour of the engines (Section 6.3, Fig. 4 / Fig. 19).

PF, BDS, and SDS run in bounded memory; the original DS grows linearly
on models that allocate a variable per step (Kalman, Outlier) and stays
flat on the Coin. Includes the Section 5.3 pathologies where even SDS
grows, and the `value`-forcing mitigation.
"""

import numpy as np
import pytest

from repro.bench.data import coin_data, kalman_data, outlier_data
from repro.bench.models import (
    BoundedWalkModel,
    CoinModel,
    HmmInitModel,
    KalmanModel,
    OutlierModel,
    WalkModel,
)
from repro.inference import infer


def memory_series(model, observations, method, particles=3, seed=0):
    engine = infer(model, n_particles=particles, method=method, seed=seed)
    state = engine.init()
    series = []
    for obs in observations:
        _, state = engine.step(state, obs)
        series.append(engine.memory_words(state))
    return series


def is_bounded(series, settle=5):
    tail = series[settle:]
    return max(tail) == min(tail)


def grows_linearly(series, settle=5):
    tail = series[settle:]
    half = len(tail) // 2
    return np.mean(tail[half:]) > 1.5 * np.mean(tail[:half])


STEPS = 60


class TestKalmanMemory:
    @pytest.fixture(scope="class")
    def observations(self):
        return kalman_data(STEPS, seed=1).observations

    @pytest.mark.parametrize("method", ["pf", "bds", "sds"])
    def test_bounded(self, method, observations):
        assert is_bounded(memory_series(KalmanModel(), observations, method))

    def test_ds_grows(self, observations):
        assert grows_linearly(memory_series(KalmanModel(), observations, "ds"))

    def test_sds_well_below_ds(self, observations):
        sds = memory_series(KalmanModel(), observations, "sds")
        ds = memory_series(KalmanModel(), observations, "ds")
        assert ds[-1] > 5 * sds[-1]


class TestCoinMemory:
    def test_ds_constant_on_coin(self):
        """Only one sample at the first step: the DS graph stays flat."""
        observations = coin_data(STEPS, seed=2).observations
        series = memory_series(CoinModel(), observations, "ds")
        assert is_bounded(series)

    @pytest.mark.parametrize("method", ["pf", "bds", "sds"])
    def test_others_bounded(self, method):
        observations = coin_data(STEPS, seed=2).observations
        assert is_bounded(memory_series(CoinModel(), observations, method))


class TestOutlierMemory:
    def test_sds_stable_ds_grows(self):
        """SDS memory fluctuates (runs of outlier flags leave short
        initialized chains) but does not trend upward; DS grows without
        bound. Uses enough particles for a healthy run (Section 6.2)."""
        observations = outlier_data(STEPS, seed=3).observations
        sds = memory_series(OutlierModel(), observations, "sds", particles=30)
        ds = memory_series(OutlierModel(), observations, "ds", particles=30)
        assert not grows_linearly(sds)
        assert grows_linearly(ds)
        assert ds[-1] > 3 * sds[-1]


class TestSection53Pathologies:
    def test_walk_grows_even_under_sds(self):
        """Unobserved chains keep backward pointers (initialized nodes)."""
        series = memory_series(WalkModel(), [None] * STEPS, "sds", particles=1)
        assert grows_linearly(series)

    def test_bounded_walk_mitigation(self):
        """Forcing `value(pre (pre x))` bounds the chain (Section 5.3)."""
        series = memory_series(BoundedWalkModel(), [None] * STEPS, "sds", particles=1)
        assert is_bounded(series)

    def test_hmm_init_grows_under_sds(self):
        """A live reference to the initial node anchors the whole chain."""
        observations = kalman_data(STEPS, seed=4).observations
        series = memory_series(HmmInitModel(), observations, "sds", particles=1)
        assert grows_linearly(series)

    def test_bds_bounds_even_the_pathologies(self):
        observations = kalman_data(STEPS, seed=4).observations
        assert is_bounded(
            memory_series(HmmInitModel(), observations, "bds", particles=1)
        )
        assert is_bounded(
            memory_series(WalkModel(), [None] * STEPS, "bds", particles=1)
        )
