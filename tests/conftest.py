"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic generator; tests must not rely on global state."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory for independent deterministic generators."""

    def make(seed: int = 0) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make
