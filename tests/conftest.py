"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.exec.executor import shutdown_executors


@pytest.fixture(scope="session", autouse=True)
def _release_executor_pools():
    """Tear down spec-cached executor pools after the test session.

    Without this, every ``"threads:N"`` / ``"processes:N"`` /
    ``"processes-persistent:N"`` spec touched by a test keeps its
    worker pool alive until interpreter exit.
    """
    yield
    shutdown_executors()


@pytest.fixture
def rng():
    """A deterministic generator; tests must not rely on global state."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory for independent deterministic generators."""

    def make(seed: int = 0) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make
