"""The node protocol: function wrappers and state threading."""

import pytest

from repro.inference.contexts import SamplingCtx
from repro.lang import gaussian
from repro.runtime import FunNode, FunProbNode, NodeInstance, run


class TestFunNode:
    def test_wraps_step_function(self):
        node = FunNode(0, lambda s, x: (s + x, s + x))
        assert run(node, [1, 2, 3]) == [1, 3, 6]

    def test_init_value_fresh_per_call(self):
        node = FunNode(0, lambda s, x: (s, s + 1))
        a, b = node.init(), node.init()
        assert a == b == 0

    def test_state_externalized(self):
        node = FunNode(0, lambda s, x: (s, s + 1))
        state = node.init()
        out1, state1 = node.step(state, None)
        out2, _ = node.step(state, None)  # same input state: same output
        assert out1 == out2


class TestFunProbNode:
    def test_threads_context(self, rng):
        def step(state, inp, ctx):
            x = ctx.sample(gaussian(0.0, 1.0))
            ctx.factor(-0.5)
            return x, state

        node = FunProbNode(None, step)
        ctx = SamplingCtx(rng)
        value, _ = node.step(node.init(), None, ctx)
        assert isinstance(value, float)
        assert ctx.log_weight == -0.5


class TestNodeInstance:
    def test_owns_state(self):
        inst = NodeInstance(FunNode(10, lambda s, x: (s, s + 1)))
        assert [inst.step(), inst.step(), inst.step()] == [10, 11, 12]

    def test_two_instances_independent(self):
        node = FunNode(0, lambda s, x: (s, s + 1))
        a, b = NodeInstance(node), NodeInstance(node)
        a.step()
        a.step()
        assert b.step() == 0
