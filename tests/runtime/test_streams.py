"""Stream drivers and combinators."""

import pytest

from repro.runtime import (
    FunNode,
    NodeInstance,
    constant,
    feedback,
    iterate,
    lift,
    parallel,
    run,
    run_n,
    serial,
)
from repro.runtime.stdlib import Counter, Pre


class TestDrivers:
    def test_run_collects_outputs(self):
        assert run(lift(lambda x: x * 2), [1, 2, 3]) == [2, 4, 6]

    def test_run_n_constant_input(self):
        assert run_n(Counter(), 3) == [0, 1, 2]

    def test_iterate_is_lazy(self):
        gen = iterate(Counter(), iter([None] * 100))
        assert next(gen) == 0
        assert next(gen) == 1


class TestCombinators:
    def test_constant(self):
        assert run(constant(7), [None, None]) == [7, 7]

    def test_serial_composition(self):
        node = serial(lift(lambda x: x + 1), lift(lambda x: x * 10))
        assert run(node, [1, 2]) == [20, 30]

    def test_serial_threads_state(self):
        node = serial(Counter(), Pre(-1))
        assert run(node, [None] * 3) == [-1, 0, 1]

    def test_parallel_composition(self):
        node = parallel(lift(lambda x: x + 1), Counter())
        assert run(node, [(10, None), (20, None)]) == [(11, 0), (21, 1)]

    def test_feedback_unit_delay(self):
        # out = inp + previous out
        adder = FunNode(None, lambda s, pair: (pair[0] + pair[1], s))
        node = feedback(adder, initial=0)
        assert run(node, [1, 1, 1, 1]) == [1, 2, 3, 4]


class TestNodeInstance:
    def test_imperative_wrapper(self):
        inst = NodeInstance(Counter())
        assert inst.step() == 0
        assert inst.step() == 1

    def test_reset(self):
        inst = NodeInstance(Counter())
        inst.step()
        inst.step()
        inst.reset()
        assert inst.step() == 0
