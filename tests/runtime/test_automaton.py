"""Hierarchical automata: weak transitions, entry reset."""

import pytest

from repro.errors import InferenceError
from repro.runtime import Automaton, AutoState, FunNode, run
from repro.runtime.stdlib import Counter


def counting_state(name, transitions=()):
    return AutoState(name, Counter(), list(transitions))


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            Automaton([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(InferenceError):
            Automaton([counting_state("a"), counting_state("a")])

    def test_unknown_target_rejected(self):
        with pytest.raises(InferenceError):
            Automaton([counting_state("a", [(lambda o: True, "missing")])])


class TestExecution:
    def test_stays_without_transition(self):
        auto = Automaton([counting_state("only")])
        assert run(auto, [None] * 3) == [0, 1, 2]

    def test_weak_transition_takes_effect_next_instant(self):
        # leave `a` when its counter reaches 1; `b` counts afresh
        auto = Automaton([
            counting_state("a", [(lambda out: out >= 1, "b")]),
            counting_state("b"),
        ])
        outputs = run(auto, [None] * 4)
        # a emits 0, 1 (guard fires on 1), then b starts from 0
        assert outputs == [0, 1, 0, 1]

    def test_entry_resets_target_state(self):
        # ping-pong between two counting states
        auto = Automaton([
            counting_state("a", [(lambda out: out >= 0, "b")]),
            counting_state("b", [(lambda out: out >= 0, "a")]),
        ])
        outputs = run(auto, [None] * 4)
        assert outputs == [0, 0, 0, 0]  # always freshly reset

    def test_first_true_guard_wins(self):
        auto = Automaton([
            counting_state("a", [
                (lambda out: True, "b"),
                (lambda out: True, "c"),
            ]),
            counting_state("b"),
            counting_state("c"),
        ])
        state = auto.init()
        _, state = auto.step(state, None)
        assert auto.mode_of(state) == "b"

    def test_go_task_shape(self):
        """The Fig. 5 pattern: switch modes on a confidence condition."""
        go = AutoState(
            "Go",
            FunNode(None, lambda s, conf: (("go-cmd", conf), s)),
            [(lambda out: out[1] > 0.9, "Task")],
        )
        task = AutoState(
            "Task", FunNode(None, lambda s, conf: (("task-cmd", conf), s))
        )
        auto = Automaton([go, task])
        confidences = [0.2, 0.5, 0.95, 0.99]
        outputs = run(auto, confidences)
        assert [o[0] for o in outputs] == ["go-cmd", "go-cmd", "go-cmd", "task-cmd"]
