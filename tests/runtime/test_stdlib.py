"""Standard synchronous blocks."""

import pytest

from repro.runtime import (
    Counter,
    Deriv,
    Edge,
    Fby,
    Integr,
    Pid,
    Pre,
    SampleHold,
    run,
)


class TestPre:
    def test_delays_by_one(self):
        assert run(Pre(0.0), [1.0, 2.0, 3.0]) == [0.0, 1.0, 2.0]

    def test_fby_alias(self):
        assert Fby is Pre


class TestIntegr:
    def test_backward_euler(self):
        # x0 = 1; xn = x(n-1) + x'n * h
        assert run(Integr(1.0, h=0.5), [2.0, 2.0, 2.0]) == [1.0, 2.0, 3.0]

    def test_zero_derivative_holds(self):
        assert run(Integr(5.0), [0.0, 0.0]) == [5.0, 5.0]

    def test_double_integration_is_quadratic(self):
        from repro.runtime import serial

        node = serial(Integr(0.0), Integr(0.0))
        outputs = run(node, [1.0] * 5)
        assert outputs == [0.0, 1.0, 3.0, 6.0, 10.0]


class TestDeriv:
    def test_backward_difference(self):
        assert run(Deriv(h=1.0), [0.0, 2.0, 6.0]) == [0.0, 2.0, 4.0]

    def test_inverse_of_integr(self):
        from repro.runtime import serial

        node = serial(Integr(0.0), Deriv())
        outputs = run(node, [3.0, 3.0, 3.0])
        assert outputs[1:] == [3.0, 3.0]


class TestCounterEdge:
    def test_counter(self):
        assert run(Counter(), [None] * 4) == [0, 1, 2, 3]

    def test_edge_detects_rising_only(self):
        inputs = [False, True, True, False, True]
        assert run(Edge(), inputs) == [False, True, False, False, True]


class TestSampleHold:
    def test_holds_last_present(self):
        inputs = [None, 1.0, None, None, 2.0, None]
        assert run(SampleHold(0.0), inputs) == [0.0, 1.0, 1.0, 1.0, 2.0, 2.0]


class TestPid:
    def test_pure_proportional(self):
        pid = Pid(kp=2.0)
        assert run(pid, [1.0, 0.5, 0.0]) == [2.0, 1.0, 0.0]

    def test_integral_accumulates(self):
        pid = Pid(kp=0.0, ki=1.0, h=1.0)
        assert run(pid, [1.0, 1.0, 1.0]) == [1.0, 2.0, 3.0]

    def test_derivative_reacts_to_change(self):
        pid = Pid(kp=0.0, kd=1.0, h=1.0)
        outputs = run(pid, [0.0, 1.0, 1.0])
        assert outputs == [0.0, 1.0, 0.0]

    def test_closed_loop_converges(self):
        """A PID around a unit-delay plant settles at the setpoint."""
        pid = Pid(kp=0.5, ki=0.2)
        state = pid.init()
        position = 0.0
        for _ in range(100):
            cmd, state = pid.step(state, 10.0 - position)
            position += cmd
        assert position == pytest.approx(10.0, abs=0.1)
