"""Analysis-first backend routing and registration verification."""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.routing import (
    analysis_for,
    clear_analysis_cache,
    consult_for_backend,
)
from repro.bench.models import (
    KalmanModel,
    OutlierModel,
    WalkModel,
)
from repro.inference import infer
from repro.inference.engine import StreamingDelayedSampler
from repro.lang import gaussian
from repro.obs import metrics_snapshot
from repro.runtime.node import ProbCtx, ProbNode
from repro.vectorized import VectorizedGaussianChainSDS
from repro.vectorized.models import (
    BDS_ENGINES,
    DS_GRAPH_ADAPTERS,
    SDS_ENGINES,
    register_ds_graph_model,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _lockstep_model_cls():
    spec = importlib.util.spec_from_file_location(
        "lockstep_model_fixture_routing", FIXTURES / "lockstep_model.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.LockstepBranchModel


class TestConsultForBackend:
    def test_chain_model_approved(self):
        analysis, decision = consult_for_backend(KalmanModel(), "sds")
        assert decision is True
        assert analysis.verdict == "batchable"

    def test_adapted_registration_judged_through_adapter(self):
        """The raw Outlier model is conclusively unbatchable, but its
        registration carries the GraphOutlierModel rewrite — routing
        must judge what the engine actually runs."""
        analysis, decision = consult_for_backend(OutlierModel(), "bds")
        assert decision is True
        assert analysis.batchable

    def test_unbounded_model_gets_no_volunteer(self):
        analysis, decision = consult_for_backend(WalkModel(), "sds")
        assert decision is None
        assert analysis.verdict == "batchable_unbounded"

    def test_lockstep_violation_rejected(self):
        analysis, decision = consult_for_backend(_lockstep_model_cls()(), "sds")
        assert decision is False
        assert analysis.verdict == "unbatchable"

    def test_pf_is_a_registry_question(self):
        _, decision = consult_for_backend(KalmanModel(), "pf")
        assert decision is None

    def test_verdict_metric_recorded(self):
        def count():
            return sum(
                v
                for k, v in metrics_snapshot()["counters"].items()
                if k.startswith("repro_analysis_verdicts_total")
            )

        before = count()
        consult_for_backend(KalmanModel(), "sds")
        assert count() == before + 1


class TestAutoBackend:
    def test_unbatchable_model_goes_straight_to_scalar(self):
        engine = infer(
            _lockstep_model_cls()(), n_particles=4, method="sds", backend="auto"
        )
        assert isinstance(engine, StreamingDelayedSampler)

    def test_batchable_unregistered_model_gets_graph_engine(self):
        """Conclusively batchable + bounded but never registered: auto
        constructs the generic graph engine instead of probing."""

        class FreshChainModel(ProbNode):
            def init(self):
                return None

            def step(self, state, yobs, ctx: ProbCtx):
                if state is None:
                    xt = ctx.sample(gaussian(0.0, 100.0))
                else:
                    xt = ctx.sample(gaussian(0.8 * state, 1.0))
                ctx.observe(gaussian(xt, 1.0), yobs)
                return xt, xt

        assert FreshChainModel not in SDS_ENGINES
        engine = infer(
            FreshChainModel(), n_particles=4, method="sds", backend="auto", seed=0
        )
        assert isinstance(engine, VectorizedGaussianChainSDS)
        dist, _ = engine.step(engine.init(), 0.5)
        assert np.isfinite(dist.mean())

    def test_vectorized_backend_unchanged_by_analysis(self):
        """backend="vectorized" keeps its registry-only contract: an
        unregistered model falls back to scalar, no auto-construction."""

        class UnregisteredChain(ProbNode):
            def init(self):
                return None

            def step(self, state, yobs, ctx: ProbCtx):
                xt = ctx.sample(gaussian(0.0, 1.0))
                ctx.observe(gaussian(xt, 1.0), yobs)
                return xt, xt

        engine = infer(
            UnregisteredChain(), n_particles=4, method="sds", backend="vectorized"
        )
        assert isinstance(engine, StreamingDelayedSampler)


class TestAnalysisCache:
    def test_same_configuration_shares_analysis(self):
        clear_analysis_cache()
        a1 = analysis_for(KalmanModel())
        a2 = analysis_for(KalmanModel())
        assert a1 is a2

    def test_different_configuration_recomputed(self):
        clear_analysis_cache()
        a1 = analysis_for(KalmanModel())
        a2 = analysis_for(KalmanModel(prior_mean=5.0))
        assert a1 is not a2


class TestRegistrationVerification:
    def test_unbatchable_registration_warns_but_registers(self):
        cls = _lockstep_model_cls()
        try:
            with pytest.warns(RuntimeWarning, match="conclusively unbatchable"):
                register_ds_graph_model(cls)
            assert cls in BDS_ENGINES and cls in SDS_ENGINES
        finally:
            BDS_ENGINES.pop(cls, None)
            SDS_ENGINES.pop(cls, None)
            DS_GRAPH_ADAPTERS.pop(cls, None)

    def test_clean_registration_does_not_warn(self, recwarn):
        class CleanChain(ProbNode):
            def init(self):
                return None

            def step(self, state, yobs, ctx: ProbCtx):
                xt = ctx.sample(gaussian(0.0, 1.0))
                ctx.observe(gaussian(xt, 1.0), yobs)
                return xt, xt

        try:
            register_ds_graph_model(CleanChain)
            assert not [w for w in recwarn if w.category is RuntimeWarning]
        finally:
            BDS_ENGINES.pop(CleanChain, None)
            SDS_ENGINES.pop(CleanChain, None)
            DS_GRAPH_ADAPTERS.pop(CleanChain, None)

    def test_registration_is_atomic(self, monkeypatch):
        """A failure mid-registration rolls every registry back."""
        import repro.vectorized.models as models_mod

        class DoomedModel(ProbNode):
            def init(self):
                return None

            def step(self, state, yobs, ctx: ProbCtx):
                xt = ctx.sample(gaussian(0.0, 1.0))
                ctx.observe(gaussian(xt, 1.0), yobs)
                return xt, xt

        def boom(model_cls, factory):
            raise RuntimeError("registry exploded")

        monkeypatch.setattr(models_mod, "register_sds_engine", boom)
        with pytest.raises(RuntimeError, match="registry exploded"):
            register_ds_graph_model(DoomedModel, verify=False)
        assert DoomedModel not in BDS_ENGINES
        assert DoomedModel not in SDS_ENGINES
        assert DoomedModel not in DS_GRAPH_ADAPTERS

    def test_adapter_recorded_for_routing(self):
        assert OutlierModel in DS_GRAPH_ADAPTERS


class TestProbeFailureAtomicity:
    """Satellite bugfix: probes report, they never raise — so a
    probe-then-register block cannot be aborted halfway."""

    def test_batched_probe_failure_is_structured(self):
        from repro.delayed.detect import probe_ds_structure

        class SecondInitRaises(ProbNode):
            """Scalar probe succeeds; the batched smoke run (which calls
            ``init`` a second time) dies with an exception outside the
            old catch list."""

            def __init__(self):
                self.inits = 0

            def init(self):
                self.inits += 1
                if self.inits > 1:
                    raise RuntimeError("persistent handle already consumed")
                return None

            def step(self, state, yobs, ctx: ProbCtx):
                # beta/bernoulli families force the batched smoke run
                from repro.lang import bernoulli, beta

                p = ctx.sample(beta(1.0, 1.0))
                ctx.observe(bernoulli(p), yobs)
                return p, None

        report = probe_ds_structure(SecondInitRaises(), [True, False])
        assert not report.is_batchable
        assert "stage=init" in report.reason
        assert "RuntimeError" in report.reason

    def test_batched_probe_step_failure_tags_the_step(self):
        from repro.delayed.detect import _run_batched_probe

        class StepRaises(ProbNode):
            def init(self):
                return None

            def step(self, state, yobs, ctx: ProbCtx):
                raise AttributeError("no such kernel")

        reason = _run_batched_probe(StepRaises(), [0.1, 0.2], seed=0, n=3)
        assert "stage=step index=0" in reason
        assert "AttributeError" in reason

    def test_scalar_probe_never_raises(self):
        from repro.delayed.detect import probe_gaussian_chain

        class InitRaises(ProbNode):
            def init(self):
                raise AttributeError("bad handle")

            def step(self, state, yobs, ctx: ProbCtx):
                return 0.0, None

        report = probe_gaussian_chain(InitRaises(), [0.1])
        assert not report.is_chain
        assert "stage=init" in report.reason
