"""A committed lockstep-violation fixture for the Python frontend.

The model forces a per-particle value (``ctx.value``) and branches on
it — the scalar delayed samplers run it fine, but the batched backend
cannot keep all particles on one code path. The static analysis flags
the branch as REP002 (lockstep-branch) and reports the model
conclusively unbatchable.
"""

from repro.lang import bernoulli, gaussian
from repro.runtime.node import ProbCtx, ProbNode


class LockstepBranchModel(ProbNode):
    """x_t with a per-particle regime switch on a forced coin flip."""

    def init(self):
        return None

    def step(self, state, yobs, ctx: ProbCtx):
        if state is None:
            xt = ctx.sample(gaussian(0.0, 100.0))
        else:
            xt = ctx.sample(gaussian(state, 1.0))
        hot = ctx.value(ctx.sample(bernoulli(0.3)))
        if hot:
            ctx.observe(gaussian(xt, 10.0), yobs)
        else:
            ctx.observe(gaussian(xt, 0.1), yobs)
        return xt, xt
