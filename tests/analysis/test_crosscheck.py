"""Static analysis vs. the empirical probe, model by model.

The cross-validation harness of the analysis PR: for every registered
bench model the ahead-of-time verdict must agree with
:func:`repro.delayed.detect.probe_ds_structure` (family set, shape,
batchable flag), and every model the analysis proves bounded+batchable
must run 50 steps on the batched backend without a single
``repro_scalar_fallback_total`` increment.
"""

import numpy as np
import pytest

from repro.analysis import analyze_model
from repro.bench.models import (
    BoundedWalkModel,
    CoinModel,
    DirichletCategoricalModel,
    HmmInitModel,
    HmmModel,
    KalmanModel,
    MixedFragmentModel,
    OutlierModel,
    PoissonCountModel,
    WalkModel,
)
from repro.bench.robot import RobotModel
from repro.delayed.detect import probe_ds_structure
from repro.inference import infer
from repro.obs import metrics_snapshot
from repro.vectorized.models import GraphOutlierModel

# (model factory, probe inputs covering init + steady-state instants)
BENCH_MODELS = [
    ("kalman", KalmanModel, [0.5, -0.2, 1.1]),
    ("hmm", HmmModel, [0.1, 0.2]),
    ("coin", CoinModel, [True, False]),
    ("outlier", OutlierModel, [0.5, 0.7]),
    (
        "graph_outlier",
        lambda: GraphOutlierModel(OutlierModel()),
        [0.5, 0.7],
    ),
    ("hmm_init", HmmInitModel, [0.1, 0.2, 0.3]),
    ("walk", WalkModel, [None, None]),
    ("bounded_walk", BoundedWalkModel, [None, None, None]),
    ("poisson_count", PoissonCountModel, [3, 1, 4]),
    ("dirichlet_categorical", DirichletCategoricalModel, [0, 2, 1]),
    ("mixed_none", lambda: MixedFragmentModel(realize="none"), [(1, 2, 0, 3)] * 2),
    ("mixed_one", lambda: MixedFragmentModel(realize="one"), [(1, 2, 0, 3)] * 2),
    ("mixed_all", lambda: MixedFragmentModel(realize="all"), [(1, 2, 0, 3)] * 2),
    ("robot", RobotModel, [(0.0, 0.0, 0.0), (0.1, None, 0.0)]),
]


@pytest.mark.parametrize(
    "name,factory,inputs", BENCH_MODELS, ids=[m[0] for m in BENCH_MODELS]
)
class TestAnalysisAgreesWithProbe:
    def test_conclusive_on_every_bench_model(self, name, factory, inputs):
        """The acceptance bar: the analysis sees through 100% of the
        registered bench models — no probe fallback needed."""
        analysis = analyze_model(factory())
        assert analysis.conclusive, analysis.reason

    def test_batchable_flag_matches(self, name, factory, inputs):
        analysis = analyze_model(factory())
        probe = probe_ds_structure(factory(), inputs)
        assert analysis.is_batchable == probe.is_batchable, (
            f"{name}: analysis says batchable={analysis.is_batchable}, "
            f"probe says {probe.is_batchable} ({probe.reason})"
        )

    def test_family_set_matches(self, name, factory, inputs):
        analysis = analyze_model(factory())
        probe = probe_ds_structure(factory(), inputs)
        assert analysis.families == probe.families, (
            f"{name}: analysis families {sorted(analysis.families)} != "
            f"probe families {sorted(probe.families)}"
        )

    def test_shape_matches(self, name, factory, inputs):
        analysis = analyze_model(factory())
        probe = probe_ds_structure(factory(), inputs)
        assert analysis.shape == probe.shape, (
            f"{name}: analysis shape {analysis.shape!r} != probe "
            f"shape {probe.shape!r}"
        )


class TestMemoryVerdicts:
    """Boundedness is the analysis's own territory — the probe cannot
    see it (a growing graph still *runs*)."""

    def test_pathologies_flagged_unbounded(self):
        for model in (HmmInitModel(), WalkModel()):
            analysis = analyze_model(model)
            assert analysis.conclusive and not analysis.bounded

    def test_mitigation_and_chains_bounded(self):
        for model in (BoundedWalkModel(), KalmanModel(), HmmModel(), RobotModel()):
            analysis = analyze_model(model)
            assert analysis.conclusive and analysis.bounded


def _fallback_count() -> float:
    return sum(
        v
        for k, v in metrics_snapshot()["counters"].items()
        if k.startswith("repro_scalar_fallback_total")
    )


def _step_input(rng, name):
    if name in ("poisson_count",):
        return int(rng.integers(0, 6))
    if name in ("dirichlet_categorical",):
        return int(rng.integers(0, 3))
    if name.startswith("mixed"):
        return tuple(int(c) for c in rng.integers(0, 6, size=4))
    if name == "coin":
        return bool(rng.integers(0, 2))
    if name == "robot":
        gps = float(rng.normal()) if rng.integers(0, 2) else None
        return (float(rng.normal()), gps, 0.0)
    return float(rng.normal())


@pytest.mark.parametrize("method", ["sds", "bds"])
def test_bounded_verdict_models_never_fall_back(method):
    """50 steps under ``backend="auto"`` for every model whose verdict
    is bounded+batchable: the batched engine must hold — zero
    ``repro_scalar_fallback_total`` increments."""
    rng = np.random.default_rng(7)
    for name, factory, _ in BENCH_MODELS:
        model = factory()
        analysis = analyze_model(model)
        if not (analysis.conclusive and analysis.batchable and analysis.bounded):
            continue
        engine = infer(model, n_particles=8, method=method, backend="auto", seed=3)
        before = _fallback_count()
        state = engine.init()
        for _ in range(50):
            _, state = engine.step(state, _step_input(rng, name))
        after = _fallback_count()
        assert after == before, (
            f"{name} ({method}): {after - before} scalar fallback(s) in a "
            f"50-step run despite a bounded+batchable static verdict"
        )
