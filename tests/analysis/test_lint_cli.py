"""The ``repro.analysis.lint`` API and the ``replint`` CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.lint import (
    extract_surface_sources,
    lint_bench_models,
    lint_path,
    lint_paths,
    lint_report,
    lint_source,
)

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]


def codes(diags):
    return {d.code for d in diags}


class TestLintAPI:
    def test_lint_source_surface_program(self):
        diags = lint_source((FIXTURES / "unbounded_walk.zls").read_text())
        assert "REP001" in codes(diags)

    def test_lint_path_zls(self):
        diags = lint_path(str(FIXTURES / "nonconjugate.zls"))
        assert "REP003" in codes(diags)
        assert all(d.site.file.endswith("nonconjugate.zls") for d in diags)

    def test_lint_paths_aggregates(self):
        diags = lint_paths(
            [
                str(FIXTURES / "unbounded_walk.zls"),
                str(FIXTURES / "symbolic_branch.zls"),
            ]
        )
        assert {"REP001", "REP009"} <= codes(diags)

    def test_lint_py_file_extracts_surface_strings(self):
        diags = lint_path(str(REPO / "examples" / "surface_language.py"))
        # the example's HMM is clean — extraction ran, found no problems
        assert diags == []

    def test_extract_surface_sources(self):
        src = (REPO / "examples" / "surface_language.py").read_text()
        found = extract_surface_sources(src)
        assert len(found) == 1
        assert "let node hmm" in found[0][1]

    def test_extract_ignores_non_programs(self):
        assert extract_surface_sources("x = 'let node but not a program'") == []
        assert extract_surface_sources("not python {{{") == []

    def test_lint_bench_models_covers_the_bench(self):
        results = lint_bench_models()
        assert "KalmanModel" in results and "RobotModel" in results
        assert all(a.conclusive for a in results.values())

    def test_lint_report_structure(self):
        report = lint_report(paths=[str(FIXTURES / "unbounded_walk.zls")])
        assert report["tool"] == "replint"
        assert report["summary"]["errors"] >= 1
        assert report["files"][0]["path"].endswith("unbounded_walk.zls")
        assert any(d["code"] == "REP001" for d in report["diagnostics"])


class TestCLI:
    def test_errors_exit_1(self, capsys):
        rc = main([str(FIXTURES / "unbounded_walk.zls")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REP001" in out and "unbounded-memory" in out

    def test_warnings_exit_0_without_strict(self, capsys):
        rc = main([str(FIXTURES / "nonconjugate.zls")])
        assert rc == 0
        assert "REP003" in capsys.readouterr().out

    def test_strict_promotes_warnings(self):
        rc = main([str(FIXTURES / "nonconjugate.zls"), "--strict"])
        assert rc == 1

    def test_json_format(self, capsys):
        rc = main([str(FIXTURES / "symbolic_branch.zls"), "--format=json"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["errors"] >= 1
        assert any(d["code"] == "REP009" for d in doc["diagnostics"])

    def test_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        rc = main(
            [
                str(FIXTURES / "unbounded_walk.zls"),
                "--format=json",
                "--output",
                str(out_file),
            ]
        )
        assert rc == 1
        doc = json.loads(out_file.read_text())
        assert doc["summary"]["errors"] >= 1
        assert capsys.readouterr().out == ""

    def test_bench_models_flag(self, capsys):
        rc = main(["--bench-models", "--format=json"])
        doc = json.loads(capsys.readouterr().out)
        names = {m["model"] for m in doc["bench_models"]}
        assert "KalmanModel" in names and "OutlierModel" in names
        # the bench ships the Section-5.3 memory pathologies on purpose
        assert rc == 1
        assert any(d["code"] == "REP001" for d in doc["diagnostics"])
        assert any(d["code"] == "REP002" for d in doc["diagnostics"])

    def test_nothing_to_lint_exit_2(self, capsys):
        assert main([]) == 2

    def test_missing_file_exit_2(self, capsys):
        assert main([str(FIXTURES / "does_not_exist.zls")]) == 2

    def test_acceptance_fixture_triptych(self, capsys):
        """replint flags one unbounded-memory, one non-conjugate-edge,
        and one lockstep-violating program (REP009, the kernel-level
        lockstep break) — the committed acceptance fixtures."""
        rc = main(
            [
                str(FIXTURES / "unbounded_walk.zls"),
                str(FIXTURES / "nonconjugate.zls"),
                str(FIXTURES / "symbolic_branch.zls"),
                "--format=json",
            ]
        )
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        found = {d["code"] for d in doc["diagnostics"]}
        assert {"REP001", "REP003", "REP009"} <= found
