"""The kernel-AST frontend: surface programs, fixtures, muF terms."""

from pathlib import Path

from repro.analysis import (
    DANGLING_RV,
    NONCONJUGATE_EDGE,
    SYMBOLIC_BRANCH,
    UNBOUNDED_MEMORY,
    UNUSED_OBSERVE,
    analyze_muf_term,
    analyze_node,
    analyze_program,
    lint_program,
)
from repro.frontend import parse_program

FIXTURES = Path(__file__).parent / "fixtures"

HMM = """
let node hmm y = x where
  rec mu = 0. -> pre x
  and sigma2 = 100. -> 1.
  and x = sample (gaussian (mu, sigma2))
  and () = observe (gaussian (x, 1.), y)
"""


def _analyze_fixture(name):
    source = (FIXTURES / name).read_text()
    return analyze_program(parse_program(source), file=name)


def codes(analysis):
    return {d.code for d in analysis.diagnostics}


class TestSurfacePrograms:
    def test_hmm_is_a_bounded_batchable_chain(self):
        result = analyze_program(parse_program(HMM))
        a = result["hmm"]
        assert a.conclusive and a.batchable and a.bounded
        assert a.families == frozenset({"gaussian"})
        assert a.shape == "chain"

    def test_only_probabilistic_nodes_analyzed(self):
        """Deterministic drivers — including ones *running* inference —
        have no delayed-sampling structure to analyze."""
        source = HMM + """
let node main y = m where
  rec d = infer 10 hmm y
  and m = mean_float (d)
"""
        result = analyze_program(parse_program(source))
        assert set(result) == {"hmm"}

    def test_analyze_node_by_name(self):
        a = analyze_node(parse_program(HMM), "hmm")
        assert a.conclusive and a.batchable
        assert a.name == "hmm"

    def test_lint_program_flattens_diagnostics(self):
        source = (FIXTURES / "unbounded_walk.zls").read_text()
        diags = lint_program(parse_program(source))
        assert any(d.code == UNBOUNDED_MEMORY for d in diags)


class TestCommittedFixtures:
    """The acceptance fixtures: one unbounded-memory, one
    non-conjugate-edge, one lockstep-violating surface program."""

    def test_unbounded_walk_flags_rep001(self):
        result = _analyze_fixture("unbounded_walk.zls")
        a = result["walk"]
        assert a.conclusive and not a.bounded
        assert UNBOUNDED_MEMORY in codes(a)
        diag = next(d for d in a.diagnostics if d.code == UNBOUNDED_MEMORY)
        assert diag.severity == "error"
        assert "'x'" in diag.message

    def test_nonconjugate_observation_flags_rep003(self):
        result = _analyze_fixture("nonconjugate.zls")
        a = result["squared"]
        assert NONCONJUGATE_EDGE in codes(a)
        # a non-conjugate edge costs a realization but stays batchable
        assert a.conclusive and a.batchable
        assert a.forced >= 1

    def test_symbolic_branch_flags_rep009(self):
        result = _analyze_fixture("symbolic_branch.zls")
        a = result["flip"]
        assert SYMBOLIC_BRANCH in codes(a)
        assert a.conclusive and not a.batchable
        errors = [d for d in a.diagnostics if d.severity == "error"]
        assert all(d.code == SYMBOLIC_BRANCH for d in errors) and errors


class TestSmallDiagnostics:
    def test_unused_observe(self):
        source = """
let node blind y = x where
  rec x = sample (gaussian (0. -> pre x, 1.))
  and () = observe (gaussian (0., 1.), y)
  and () = observe (gaussian (x, 1.), y)
"""
        a = analyze_program(parse_program(source))["blind"]
        assert UNUSED_OBSERVE in codes(a)

    def test_dangling_rv(self):
        source = """
let node dead y = x where
  rec unused = sample (gaussian (0., 1.))
  and x = sample (gaussian (0., 1.))
  and () = observe (gaussian (x, 1.), y)
"""
        a = analyze_program(parse_program(source))["dead"]
        assert DANGLING_RV in codes(a)


class TestMuF:
    def test_structural_pass_only(self):
        from repro.core.muf import MConst, MLet, MOp, MSample, MVar, PVar

        term = MLet(
            PVar("x"),
            MSample(MOp("gaussian", (MConst(0.0), MConst(1.0)))),
            MVar("x"),
        )
        a = analyze_muf_term(term, "m")
        assert not a.conclusive
        assert "structural" in a.reason
        assert "gaussian" in a.families
