"""The Python-frontend abstract interpreter: verdicts and diagnostics."""

import importlib.util
from pathlib import Path

import pytest

from repro.analysis import (
    DANGLING_RV,
    LOCKSTEP_BRANCH,
    NONCONJUGATE_EDGE,
    UNBOUNDED_MEMORY,
    analyze_model,
)
from repro.bench.models import (
    BoundedWalkModel,
    CoinModel,
    DirichletCategoricalModel,
    HmmInitModel,
    HmmModel,
    KalmanModel,
    MixedFragmentModel,
    OutlierModel,
    WalkModel,
)
from repro.bench.robot import RobotModel
from repro.lang import gaussian
from repro.runtime.node import ProbCtx, ProbNode
from repro.vectorized.models import GraphOutlierModel

FIXTURES = Path(__file__).parent / "fixtures"


def _load_fixture_module():
    spec = importlib.util.spec_from_file_location(
        "lockstep_model_fixture", FIXTURES / "lockstep_model.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def codes(analysis):
    return {d.code for d in analysis.diagnostics}


class TestChainVerdicts:
    def test_kalman(self):
        a = analyze_model(KalmanModel())
        assert a.conclusive and a.batchable and a.bounded
        assert a.families == frozenset({"gaussian"})
        assert a.shape == "chain" and a.forced == 0
        assert a.verdict == "batchable"

    def test_hmm(self):
        a = analyze_model(HmmModel())
        assert a.conclusive and a.batchable and a.bounded

    def test_robot_multivariate_projection_chain(self):
        a = analyze_model(RobotModel())
        assert a.conclusive and a.batchable and a.bounded
        assert a.families == frozenset({"gaussian", "mv_gaussian"})
        assert a.shape == "chain"

    def test_coin(self):
        a = analyze_model(CoinModel())
        assert a.conclusive and a.batchable and a.bounded
        assert a.families == frozenset({"beta", "bernoulli"})


class TestLockstepAndTrees:
    def test_raw_outlier_is_conclusively_unbatchable(self):
        a = analyze_model(OutlierModel())
        assert a.conclusive and not a.batchable
        assert LOCKSTEP_BRANCH in codes(a)
        assert a.verdict == "unbatchable"

    def test_outlier_lockstep_site_points_at_the_branch(self):
        a = analyze_model(OutlierModel())
        diag = next(d for d in a.diagnostics if d.code == LOCKSTEP_BRANCH)
        assert diag.site.file.endswith("models.py")
        assert diag.site.line > 0

    def test_graph_outlier_adapter_is_batchable_tree(self):
        a = analyze_model(GraphOutlierModel(OutlierModel()))
        assert a.conclusive and a.batchable and a.bounded
        assert a.shape == "tree"
        assert a.forced == 1
        assert {"gaussian", "beta", "bernoulli"} <= a.families

    def test_committed_lockstep_fixture(self):
        module = _load_fixture_module()
        a = analyze_model(module.LockstepBranchModel())
        assert a.conclusive and not a.batchable
        assert codes(a) == {LOCKSTEP_BRANCH}


class TestMemoryVerdicts:
    def test_hmm_init_unbounded_with_anchor_named(self):
        a = analyze_model(HmmInitModel())
        assert a.conclusive and a.batchable and not a.bounded
        assert a.verdict == "batchable_unbounded"
        diag = next(d for d in a.diagnostics if d.code == UNBOUNDED_MEMORY)
        assert "'i'" in diag.message
        assert diag.severity == "error"

    def test_walk_unbounded(self):
        a = analyze_model(WalkModel())
        assert a.conclusive and not a.bounded
        assert UNBOUNDED_MEMORY in codes(a)

    def test_bounded_walk_is_the_mitigation(self):
        a = analyze_model(BoundedWalkModel())
        assert a.conclusive and a.batchable and a.bounded
        assert a.forced >= 1
        assert UNBOUNDED_MEMORY not in codes(a)


class TestRealizeAndContinue:
    @pytest.mark.parametrize(
        "realize,forced", [("none", 0), ("one", 1), ("all", 4)]
    )
    def test_mixed_fragment_forced_counts(self, realize, forced):
        a = analyze_model(MixedFragmentModel(realize=realize))
        assert a.conclusive and a.batchable and a.bounded
        assert a.forced == forced
        if forced:
            assert NONCONJUGATE_EDGE in codes(a)
            assert len(a.realize_sites) >= 1
        else:
            assert NONCONJUGATE_EDGE not in codes(a)

    def test_realize_sites_are_nonconjugate_edges(self):
        a = analyze_model(MixedFragmentModel(realize="one"))
        assert all(e.kind == "nonconjugate" for e in a.realize_sites)


class TestStepGraph:
    def test_kalman_graph_has_sample_and_observe(self):
        a = analyze_model(KalmanModel())
        kinds = {n.kind for n in a.step_graph.nodes}
        assert "sample" in kinds and "observe" in kinds
        assert any(e.kind == "affine" and e.conjugate for e in a.step_graph.edges)

    def test_graph_outlier_edge_classification(self):
        a = analyze_model(GraphOutlierModel(OutlierModel()))
        kinds = {e.kind for e in a.step_graph.edges}
        assert "affine" in kinds
        assert "beta_bernoulli" in kinds


class TestInconclusive:
    def test_opaque_model_reports_why(self):
        # a step without retrievable source
        namespace = {}
        exec(
            "def step(self, state, inp, ctx):\n    return 0.0, None\n",
            namespace,
        )

        class BuiltFromExec(ProbNode):
            step = namespace["step"]

            def init(self):
                return None

        a = analyze_model(BuiltFromExec())
        assert not a.conclusive
        assert a.reason
        assert a.verdict == "inconclusive"

    def test_unknown_call_on_rv_is_inconclusive(self):
        def mystery(x):
            return x

        class MysteryModel(ProbNode):
            def init(self):
                return None

            def step(self, state, inp, ctx: ProbCtx):
                xt = ctx.sample(gaussian(0.0, 1.0))
                ctx.observe(gaussian(mystery(xt), 1.0), inp)
                return xt, None

        a = analyze_model(MysteryModel())
        assert not a.conclusive

    def test_dangling_sample_flagged(self):
        class DanglingModel(ProbNode):
            def init(self):
                return None

            def step(self, state, inp, ctx: ProbCtx):
                ctx.sample(gaussian(0.0, 1.0))
                xt = ctx.sample(gaussian(0.0, 1.0))
                ctx.observe(gaussian(xt, 1.0), inp)
                return xt, None

        a = analyze_model(DanglingModel())
        assert a.conclusive
        assert DANGLING_RV in codes(a)
