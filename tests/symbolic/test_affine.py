"""Affine-form extraction: the conjugacy detector's front end."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.symbolic import RVar, app, extract_affine


class FakeNode:
    def __init__(self, name="x", dim=None):
        self.name = name
        self.dim = dim


class TestScalarAffine:
    def test_identity(self):
        node = FakeNode()
        form = extract_affine(RVar(node))
        assert form.rv is node
        assert form.coeff == 1.0
        assert form.const == 0.0
        assert form.is_identity()

    def test_constant(self):
        form = extract_affine(3.5)
        assert form.is_constant()
        assert form.const == 3.5

    def test_linear_combination(self):
        node = FakeNode()
        x = RVar(node)
        form = extract_affine(2.0 * x + 3.0)
        assert form.rv is node
        assert form.coeff == 2.0
        assert form.const == 3.0

    def test_nested_arithmetic(self):
        node = FakeNode()
        x = RVar(node)
        form = extract_affine((x + 1.0) * 2.0 - x)
        assert form.rv is node
        assert form.coeff == pytest.approx(1.0)
        assert form.const == pytest.approx(2.0)

    def test_division_by_constant(self):
        node = FakeNode()
        x = RVar(node)
        form = extract_affine((x + 2.0) / 4.0)
        assert form.coeff == pytest.approx(0.25)
        assert form.const == pytest.approx(0.5)

    def test_negation(self):
        node = FakeNode()
        form = extract_affine(-(RVar(node) + 1.0))
        assert form.coeff == -1.0
        assert form.const == -1.0

    def test_coefficients_cancel_to_constant(self):
        node = FakeNode()
        x = RVar(node)
        form = extract_affine(x - x + 5.0)
        assert form.is_constant()
        assert form.const == 5.0


class TestNonAffine:
    def test_product_of_variables(self):
        x, y = RVar(FakeNode("x")), RVar(FakeNode("y"))
        assert extract_affine(x * y) is None
        assert extract_affine(x * x) is None

    def test_two_distinct_variables(self):
        x, y = RVar(FakeNode("x")), RVar(FakeNode("y"))
        assert extract_affine(x + y) is None

    def test_division_by_variable(self):
        x = RVar(FakeNode("x"))
        assert extract_affine(1.0 / x) is None

    def test_nonlinear_op(self):
        x = RVar(FakeNode("x"))
        assert extract_affine(app("exp", x)) is None

    def test_same_variable_twice_is_affine(self):
        node = FakeNode()
        x = RVar(node)
        form = extract_affine(x + x)
        assert form.rv is node
        assert form.coeff == 2.0


class TestVectorAffine:
    def test_matvec(self):
        node = FakeNode("z", dim=2)
        z = RVar(node)
        m = np.array([[1.0, 2.0], [0.0, 1.0]])
        form = extract_affine(app("matvec", m, z))
        assert form.rv is node
        assert np.allclose(form.coeff, m)

    def test_matvec_plus_vector(self):
        node = FakeNode("z", dim=2)
        z = RVar(node)
        m = np.eye(2)
        b = np.array([1.0, -1.0])
        form = extract_affine(app("add", app("matvec", m, z), b))
        assert np.allclose(form.coeff, m)
        assert np.allclose(form.const, b)

    def test_getitem_one_hot(self):
        node = FakeNode("z", dim=3)
        z = RVar(node)
        form = extract_affine(z[1])
        assert np.allclose(form.coeff, [0.0, 1.0, 0.0])

    def test_getitem_after_matvec(self):
        node = FakeNode("z", dim=2)
        z = RVar(node)
        m = np.array([[2.0, 0.0], [0.0, 3.0]])
        form = extract_affine(app("matvec", m, z)[1])
        assert np.allclose(form.coeff, [0.0, 3.0])

    def test_getitem_without_dim_fails(self):
        node = FakeNode("z", dim=None)
        assert extract_affine(RVar(node)[0]) is None

    def test_symbolic_matrix_not_affine(self):
        z = RVar(FakeNode("z", dim=2))
        w = RVar(FakeNode("w", dim=2))
        assert extract_affine(app("matvec", z, w)) is None


class TestAffineRoundtrip:
    """Property: evaluating the tree equals applying the extracted form."""

    @given(
        a=st.floats(min_value=-50, max_value=50, allow_nan=False),
        b=st.floats(min_value=-50, max_value=50, allow_nan=False),
        c=st.floats(min_value=-50, max_value=50, allow_nan=False),
        value=st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
    def test_scalar_roundtrip(self, a, b, c, value):
        from repro.symbolic import eval_expr

        node = FakeNode()
        x = RVar(node)
        expr = a * x + b + c * x
        form = extract_affine(expr)
        assert form is not None
        direct = eval_expr(expr, lambda n: value)
        via_form = (form.coeff * value + form.const) if form.rv else form.const
        assert direct == pytest.approx(via_form, rel=1e-9, abs=1e-9)
