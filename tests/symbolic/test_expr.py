"""Symbolic expression trees: overloading, folding, traversal, evaluation."""

import numpy as np
import pytest

from repro.errors import SymbolicError
from repro.symbolic import (
    App,
    RVar,
    app,
    eval_expr,
    free_rvars,
    is_symbolic,
    map_structure,
)


class FakeNode:
    """Stand-in for a graph node."""

    def __init__(self, name):
        self.name = name


class TestConstantFolding:
    def test_concrete_args_fold(self):
        assert app("add", 1.0, 2.0) == 3.0
        assert app("mul", 3.0, 4.0) == 12.0
        assert app("neg", 5.0) == -5.0

    def test_symbolic_arg_builds_node(self):
        x = RVar(FakeNode("x"))
        expr = app("add", x, 1.0)
        assert isinstance(expr, App)
        assert expr.op == "add"

    def test_unknown_op_rejected(self):
        with pytest.raises(SymbolicError):
            app("frobnicate", 1.0, 2.0)


class TestOperatorOverloading:
    def test_arithmetic_builds_trees(self):
        x = RVar(FakeNode("x"))
        for expr in (x + 1, 1 + x, x - 1, 1 - x, x * 2, 2 * x, x / 2, 2 / x, -x):
            assert isinstance(expr, App)

    def test_getitem(self):
        x = RVar(FakeNode("x"))
        expr = x[0]
        assert isinstance(expr, App)
        assert expr.op == "getitem"

    def test_bool_raises(self):
        x = RVar(FakeNode("x"))
        with pytest.raises(SymbolicError):
            bool(x)
        with pytest.raises(SymbolicError):
            if x + 1:  # noqa: B015 — the point is that this raises
                pass


class TestIsSymbolic:
    def test_concrete_values(self):
        assert not is_symbolic(1.0)
        assert not is_symbolic("a")
        assert not is_symbolic((1.0, 2.0))
        assert not is_symbolic(np.zeros(3))

    def test_symbolic_values(self):
        x = RVar(FakeNode("x"))
        assert is_symbolic(x)
        assert is_symbolic(x + 1)
        assert is_symbolic((1.0, x))
        assert is_symbolic({"key": x})
        assert is_symbolic([1.0, (2.0, x)])


class TestFreeRVars:
    def test_collects_and_dedups(self):
        node_a, node_b = FakeNode("a"), FakeNode("b")
        x, y = RVar(node_a), RVar(node_b)
        expr = (x + y) * x
        found = free_rvars(expr)
        assert {rv.node for rv in found} == {node_a, node_b}

    def test_containers(self):
        node = FakeNode("a")
        found = free_rvars({"k": [(RVar(node), 1.0)]})
        assert [rv.node for rv in found] == [node]

    def test_concrete_empty(self):
        assert free_rvars((1.0, [2.0])) == []


class TestEvalExpr:
    def test_evaluates_tree(self):
        node = FakeNode("x")
        x = RVar(node)
        expr = (x + 1.0) * 2.0
        assert eval_expr(expr, lambda n: 3.0) == 8.0

    def test_matvec_and_getitem(self):
        node = FakeNode("z")
        z = RVar(node)
        m = np.array([[1.0, 1.0], [0.0, 1.0]])
        expr = app("getitem", app("matvec", m, z), 0)
        value = eval_expr(expr, lambda n: np.array([2.0, 3.0]))
        assert value == pytest.approx(5.0)

    def test_containers(self):
        node = FakeNode("x")
        result = eval_expr((RVar(node), [1.0, RVar(node)]), lambda n: 7.0)
        assert result == (7.0, [1.0, 7.0])


class TestMapStructure:
    def test_rebuilds_containers(self):
        node = FakeNode("x")
        x = RVar(node)
        result = map_structure((x, [1.0, {"k": x}]), lambda e: "HIT")
        assert result == ("HIT", [1.0, {"k": "HIT"}])

    def test_whole_expressions_passed(self):
        node = FakeNode("x")
        expr = RVar(node) + 1.0
        seen = []
        map_structure((expr,), lambda e: seen.append(e))
        assert seen == [expr]
