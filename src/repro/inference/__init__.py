"""Streaming inference: engines, contexts, resampling, metrics."""

from repro.inference.contexts import DelayedCtx, SamplingCtx
from repro.inference.engine import (
    BoundedDelayedSampler,
    ImportanceSampler,
    InferenceEngine,
    OriginalDelayedSampler,
    ParticleFilter,
    StreamingDelayedSampler,
)
from repro.inference.infer import BACKENDS, ENGINES, infer
from repro.inference.metrics import MseTracker, dist_mean, mse_of_run
from repro.inference.particles import Particle, clone_particle, state_words
from repro.inference.resampling import (
    RESAMPLERS,
    ess,
    multinomial_indices,
    normalize_log_weights,
    residual_indices,
    stratified_indices,
    systematic_indices,
)

__all__ = [
    "infer",
    "ENGINES",
    "BACKENDS",
    "InferenceEngine",
    "ImportanceSampler",
    "ParticleFilter",
    "BoundedDelayedSampler",
    "StreamingDelayedSampler",
    "OriginalDelayedSampler",
    "SamplingCtx",
    "DelayedCtx",
    "Particle",
    "clone_particle",
    "state_words",
    "normalize_log_weights",
    "ess",
    "systematic_indices",
    "stratified_indices",
    "multinomial_indices",
    "residual_indices",
    "RESAMPLERS",
    "dist_mean",
    "MseTracker",
    "mse_of_run",
]
