"""Particle representation and cloning.

The compilation of Section 4 externalizes the transition-function state,
which "makes it possible to clone a particle during its execution by
duplicating the state" (Section 5.1). For the delayed samplers a
particle's state additionally references random variables in a graph, so
cloning must copy the *reachable portion of the graph* and remap the
references consistently.

Cloning is iterative (no recursion), so the arbitrarily long marginal
chains of the original DS implementation cannot overflow the stack; its
cost is proportional to the number of live nodes — the mechanism behind
the DS latency growth of Fig. 18.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.delayed.graph import BaseGraph, reachable_nodes
from repro.delayed.node import DSNode
from repro.symbolic import App, RVar, SymExpr, free_rvars

__all__ = ["Particle", "clone_particle", "clone_state_concrete", "state_words"]


@dataclass
class Particle:
    """One particle: model state, optional graph, and a log-weight."""

    state: Any
    graph: Optional[BaseGraph] = None
    log_weight: float = 0.0


def _clone_node_shells(nodes) -> Dict[int, DSNode]:
    """First pass: shallow node copies sharing immutable payloads."""
    mapping: Dict[int, DSNode] = {}
    for node in nodes:
        clone = DSNode.__new__(DSNode)
        clone.uid = node.uid
        clone.name = node.name
        clone.state = node.state
        clone.family = node.family
        clone.cdistr = node.cdistr  # immutable, shared
        clone.marginal = node.marginal  # immutable, shared
        clone.value = node.value
        clone.folded = node.folded
        clone.snapshot_cache = node.snapshot_cache  # immutable, shared
        clone.parent = None
        clone.children = []
        clone.marginal_child = None
        mapping[id(node)] = clone
    return mapping


def _fix_pointers(nodes, mapping: Dict[int, DSNode]) -> None:
    """Second pass: remap pointer fields into the cloned node set."""
    for node in nodes:
        clone = mapping[id(node)]
        if node.parent is not None:
            clone.parent = mapping.get(id(node.parent))
        if node.marginal_child is not None:
            clone.marginal_child = mapping.get(id(node.marginal_child))
        clone.children = [
            mapping[id(c)] for c in node.children if id(c) in mapping
        ]


def _remap_value(value: Any, mapping: Dict[int, DSNode]) -> Any:
    """Rebuild a state value, remapping RVar references into the clone."""
    if isinstance(value, RVar):
        replacement = mapping.get(id(value.node))
        if replacement is None:
            return value
        return RVar(replacement)
    if isinstance(value, App):
        return App(value.op, tuple(_remap_value(a, mapping) for a in value.args))
    if isinstance(value, tuple):
        return tuple(_remap_value(v, mapping) for v in value)
    if isinstance(value, list):
        return [_remap_value(v, mapping) for v in value]
    if isinstance(value, dict):
        return {k: _remap_value(v, mapping) for k, v in value.items()}
    return value


def clone_particle(particle: Particle) -> Particle:
    """Deep-copy a particle: graph nodes, references, and model state."""
    graph = particle.graph
    if graph is None:
        return Particle(
            state=clone_state_concrete(particle.state),
            graph=None,
            log_weight=particle.log_weight,
        )
    roots = [rv.node for rv in free_rvars(particle.state)]
    nodes = reachable_nodes(roots)
    mapping = _clone_node_shells(nodes)
    _fix_pointers(nodes, mapping)
    new_graph = copy.copy(graph)  # shares the rng; counters copied by value
    new_state = _remap_value(particle.state, mapping)
    return Particle(state=new_state, graph=new_graph, log_weight=particle.log_weight)


def clone_state_concrete(state: Any) -> Any:
    """Copy a fully concrete model state (no graph references)."""
    if isinstance(state, (int, float, bool, str, bytes, type(None))):
        return state
    return copy.deepcopy(state)


def state_words(value: Any) -> int:
    """Abstract heap words occupied by a model-state value.

    Scalars count 1, arrays their size, containers the sum of their
    elements plus a header, symbolic expressions the size of their tree
    (graph nodes are counted separately by the graph census).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return 1
    if isinstance(value, SymExpr):
        if isinstance(value, App):
            return 1 + sum(state_words(a) for a in value.args)
        return 1  # RVar: one pointer word; the node is counted by the census
    if hasattr(value, "size") and hasattr(value, "ndim"):  # ndarray
        return 1 + int(value.size)
    if isinstance(value, (tuple, list)):
        return 1 + sum(state_words(v) for v in value)
    if isinstance(value, dict):
        return 1 + sum(state_words(v) for v in value.values())
    return 2
