"""The ``infer`` operator: engine construction by name.

``infer particles model`` in ProbZelus returns a stream of distributions;
here :func:`infer` returns the corresponding :class:`InferenceEngine`
(itself a deterministic stream node). The default method is the particle
filter, matching the paper's default operational semantics; the delayed
samplers are selected by name.

``backend`` selects the execution substrate: ``"scalar"`` (the
reference engines, one Python object per particle), ``"vectorized"``
(the structure-of-arrays engines of :mod:`repro.vectorized`, which
advance the whole particle population per array operation), or
``"auto"``. With ``"vectorized"`` or ``"auto"`` the scalar engine is
used automatically when the model/method pair has no vectorized
equivalent, so the parameter never changes *what* is computed — only
how fast.

``executor`` selects where the step runs (:mod:`repro.exec`):
``"serial"``, ``"threads:N"``, ``"processes:N"``,
``"processes-persistent:N"`` (worker-resident shards: the population
stays loaded in long-lived worker processes and only commands cross
the process boundary per step), or an
:class:`~repro.exec.executor.Executor` instance. Requesting one — or
passing ``n_shards`` — partitions the particle population into
deterministic shards with independent RNG substreams, so the posterior
is bit-for-bit identical for every executor and worker count at a
fixed seed. This knob, too, never changes *what* is computed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import InferenceError
from repro.exec.executor import Executor
from repro.inference.engine import (
    BoundedDelayedSampler,
    ImportanceSampler,
    InferenceEngine,
    OriginalDelayedSampler,
    ParticleFilter,
    StreamingDelayedSampler,
)
from repro.runtime.node import ProbNode

__all__ = ["infer", "ENGINES", "BACKENDS"]

ENGINES = {
    "importance": ImportanceSampler,
    "is": ImportanceSampler,
    "pf": ParticleFilter,
    "particle_filter": ParticleFilter,
    "bds": BoundedDelayedSampler,
    "sds": StreamingDelayedSampler,
    "ds": OriginalDelayedSampler,
}

BACKENDS = ("scalar", "vectorized", "auto")


def infer(
    model: ProbNode,
    n_particles: int = 100,
    method: str = "pf",
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    backend: str = "scalar",
    executor: Union[None, str, Executor] = None,
    n_shards: Optional[int] = None,
    diagnostics: Union[bool, "DiagnosticsLog"] = False,
    **kwargs,
) -> InferenceEngine:
    """Build an inference engine for ``model``.

    ``method`` is one of ``"pf"`` (particle filter, the default),
    ``"importance"``, ``"bds"``, ``"sds"``, or ``"ds"``. ``backend`` is
    ``"scalar"`` (default), ``"vectorized"``, or ``"auto"``; the
    vectorized backends fall back to the scalar engine when the
    model/method pair is not vectorizable. ``executor`` selects the
    execution layer (``"serial"``, ``"threads:N"``, ``"processes:N"``,
    ``"processes-persistent:N"``, or an Executor instance) and
    ``n_shards`` the deterministic shard count; either switches the
    engine to a sharded population whose results are identical for
    every worker count. ``diagnostics=True`` attaches a
    :class:`~repro.inference.diagnostics.DiagnosticsLog` to the engine
    (``engine.diagnostics``), recording one
    :class:`~repro.inference.diagnostics.StepStats` per step — the same
    stream on every backend/executor combination, including across a
    mid-stream scalar fallback (pass an existing log to share it).
    Additional keyword arguments are forwarded to the engine
    constructor (``resampler``, ``resample_threshold``,
    ``clone_on_resample``).
    """
    key = method.lower()
    if key not in ENGINES:
        raise InferenceError(
            f"unknown inference method {method!r}; choose from {sorted(set(ENGINES))}"
        )
    if backend not in BACKENDS:
        raise InferenceError(
            f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
        )
    kwargs = dict(
        kwargs, executor=executor, n_shards=n_shards, diagnostics=diagnostics
    )
    decision = None
    if backend == "auto":
        # Analysis first: the static verdict decides whether the
        # vectorized registries are even worth consulting. The runtime
        # probe and the mid-stream scalar fallback remain as
        # confirmation for models the analysis cannot see through.
        from repro.analysis.routing import consult_for_backend

        _, decision = consult_for_backend(model, key)
        if decision is False:
            return ENGINES[key](
                model, n_particles=n_particles, seed=seed, rng=rng, **kwargs
            )
    if backend in ("vectorized", "auto"):
        # Imported lazily: repro.vectorized depends on the scalar
        # engines, so a module-level import here would be circular.
        from repro.vectorized.engine import make_vectorized_engine

        engine = make_vectorized_engine(
            key, model, n_particles=n_particles, seed=seed, rng=rng, **kwargs
        )
        if engine is not None:
            return engine
        if decision is True and key in ("sds", "bds"):
            # Conclusively batchable but unregistered: build the generic
            # graph engine directly. Construction failures fall through
            # to the scalar engine (the analysis was optimistic about a
            # shape the graph runtime does not cover yet).
            from repro.vectorized.engine import VectorizedGaussianChainSDS

            try:
                return VectorizedGaussianChainSDS(
                    model,
                    mode=key,
                    n_particles=n_particles,
                    seed=seed,
                    rng=rng,
                    **kwargs,
                )
            except Exception:
                pass
    return ENGINES[key](model, n_particles=n_particles, seed=seed, rng=rng, **kwargs)
