"""The ``infer`` operator: engine construction by name.

``infer particles model`` in ProbZelus returns a stream of distributions;
here :func:`infer` returns the corresponding :class:`InferenceEngine`
(itself a deterministic stream node). The default method is the particle
filter, matching the paper's default operational semantics; the delayed
samplers are selected by name.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InferenceError
from repro.inference.engine import (
    BoundedDelayedSampler,
    ImportanceSampler,
    InferenceEngine,
    OriginalDelayedSampler,
    ParticleFilter,
    StreamingDelayedSampler,
)
from repro.runtime.node import ProbNode

__all__ = ["infer", "ENGINES"]

ENGINES = {
    "importance": ImportanceSampler,
    "is": ImportanceSampler,
    "pf": ParticleFilter,
    "particle_filter": ParticleFilter,
    "bds": BoundedDelayedSampler,
    "sds": StreamingDelayedSampler,
    "ds": OriginalDelayedSampler,
}


def infer(
    model: ProbNode,
    n_particles: int = 100,
    method: str = "pf",
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> InferenceEngine:
    """Build an inference engine for ``model``.

    ``method`` is one of ``"pf"`` (particle filter, the default),
    ``"importance"``, ``"bds"``, ``"sds"``, or ``"ds"``. Additional
    keyword arguments are forwarded to the engine constructor
    (``resampler``, ``resample_threshold``).
    """
    key = method.lower()
    if key not in ENGINES:
        raise InferenceError(
            f"unknown inference method {method!r}; choose from {sorted(set(ENGINES))}"
        )
    return ENGINES[key](model, n_particles=n_particles, seed=seed, rng=rng, **kwargs)
