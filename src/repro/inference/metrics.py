"""Error metrics and observers for evaluating inference output.

The paper's benchmarks report the mean squared error over time between
the latent truth and the posterior expectation (Section 6.1); the
``main`` driver of Appendix B is reproduced here as :class:`MseTracker`,
a deterministic node that folds the running MSE exactly like the
ProbZelus code::

    let rec total_error = error -> (pre total_error) +. error in
    let mse = total_error /. t
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

from repro.dists import Distribution
from repro.runtime.node import Node

__all__ = ["dist_mean", "MseTracker", "mse_of_run"]


def dist_mean(dist: Distribution) -> Any:
    """Posterior mean of an inference output distribution."""
    return dist.mean()


class MseTracker(Node):
    """Running mean squared error between estimates and ground truth.

    Input is a ``(estimate, truth)`` pair per step; output is the MSE
    over all steps so far.
    """

    def init(self) -> Tuple[float, int]:
        return 0.0, 0

    def step(self, state: Tuple[float, int], inp: Tuple[Any, Any]):
        total_error, t = state
        estimate, truth = inp
        diff = np.asarray(estimate, dtype=float) - np.asarray(truth, dtype=float)
        total_error = total_error + float(np.sum(diff * diff))
        t += 1
        return total_error / t, (total_error, t)


def mse_of_run(estimates, truths) -> float:
    """Final running MSE of two equal-length sequences."""
    tracker = MseTracker()
    state = tracker.init()
    mse = 0.0
    for estimate, truth in zip(estimates, truths):
        mse, state = tracker.step(state, (estimate, truth))
    return mse
