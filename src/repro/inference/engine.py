"""Streaming inference engines.

``infer`` turns a probabilistic node into a deterministic stream node
whose output at each step is the *distribution* of the model's outputs
given all observations so far (Section 3.3). Every engine here
implements exactly that shape — :class:`InferenceEngine` is itself a
:class:`~repro.runtime.node.Node`, so inference runs in lock step with
deterministic nodes and its results can feed controllers
("inference-in-the-loop", Section 2.4).

Engines:

* :class:`ImportanceSampler` — Fig. 13: weights accumulate forever and
  are never reset; impractical for reactive programs (the paper's
  motivation for resampling) but the simplest semantics.
* :class:`ParticleFilter` — importance sampling + resampling at every
  step (Section 5.1).
* :class:`BoundedDelayedSampler` (BDS) — delayed sampling within a step,
  forced realization at the end of each step (Section 5.2).
* :class:`StreamingDelayedSampler` (SDS) — delayed sampling with the
  pointer-minimal graph maintained across steps (Section 5.3).
* :class:`OriginalDelayedSampler` (DS) — the Murray et al. graph
  maintained across steps; the baseline whose memory and latency grow
  with time (Section 6.3).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from repro.delayed.graph import DelayedGraph, graph_memory_words
from repro.delayed.interface import lift_distribution, value_expr
from repro.delayed.streaming import StreamingGraph
from repro.dists import Distribution, Empirical, Mixture
from repro.errors import InferenceError
from repro.inference.contexts import DelayedCtx, SamplingCtx
from repro.inference.diagnostics import StepStats
from repro.inference.particles import (
    Particle,
    clone_particle,
    clone_state_concrete,
    state_words,
)
from repro.inference.resampling import RESAMPLERS, ess, normalize_log_weights
from repro.runtime.node import Node, ProbNode
from repro.symbolic import free_rvars

__all__ = [
    "InferenceEngine",
    "ImportanceSampler",
    "ParticleFilter",
    "BoundedDelayedSampler",
    "StreamingDelayedSampler",
    "OriginalDelayedSampler",
]


class InferenceEngine(Node):
    """Base class: a deterministic node wrapping a probabilistic model.

    State is the particle list; ``step`` advances every particle one
    synchronous instant and returns the posterior distribution over the
    model's output.

    ``resampler`` selects the scheme used when resampling triggers:
    ``"systematic"`` (the default), ``"stratified"``, ``"multinomial"``,
    or ``"residual"`` (deterministic copies of ``floor(n*w_i)`` per
    particle, multinomial on the fractional remainder).
    """

    #: graph class for delayed engines; None for concrete sampling.
    graph_cls = None
    #: keep the graph in the particle state between steps.
    persistent_graph = False
    #: force symbolic values to concrete ones at the end of each step.
    force_step_end = False
    #: resample after every step.
    resample = True

    def __init__(
        self,
        model: ProbNode,
        n_particles: int = 100,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        resampler: str = "systematic",
        resample_threshold: Optional[float] = None,
        clone_on_resample: str = "all",
    ):
        if n_particles < 1:
            raise InferenceError("need at least one particle")
        if resampler not in RESAMPLERS:
            raise InferenceError(
                f"unknown resampler {resampler!r}; choose from {sorted(RESAMPLERS)}"
            )
        if clone_on_resample not in ("all", "duplicates"):
            raise InferenceError(
                "clone_on_resample must be 'all' or 'duplicates', "
                f"got {clone_on_resample!r}"
            )
        self.model = model
        self.n_particles = int(n_particles)
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.resampler = RESAMPLERS[resampler]
        self.resample_threshold = resample_threshold
        self.clone_on_resample = clone_on_resample
        #: diagnostics of the most recent step (StepStats or None)
        self.last_stats = None

    # ------------------------------------------------------------------
    def init(self) -> List[Particle]:
        particles = []
        for _ in range(self.n_particles):
            graph = self._fresh_graph() if self.persistent_graph else None
            particles.append(Particle(self.model.init(), graph, 0.0))
        return particles

    def step(self, particles: List[Particle], inp: Any) -> Tuple[Distribution, List[Particle]]:
        outs: List[Any] = []
        log_weights: List[float] = []
        step_log_weights: List[float] = []
        stepped: List[Particle] = []
        for particle in particles:
            out, new_particle, step_logw = self._step_particle(particle, inp)
            outs.append(out)
            log_weights.append(new_particle.log_weight + step_logw)
            step_log_weights.append(step_logw)
            stepped.append(new_particle)
        weights = normalize_log_weights(log_weights)
        self._record_stats(
            [p.log_weight for p in stepped], step_log_weights, weights
        )
        output = self._output_distribution(outs, weights)
        if self.resample and self._should_resample(weights):
            stepped = self._resample(stepped, weights)
        else:
            for particle, logw in zip(stepped, log_weights):
                particle.log_weight = logw
        return output, stepped

    def _record_stats(self, prev_log_weights, step_log_weights, weights) -> None:
        """Update :attr:`last_stats` with this step's diagnostics.

        The incremental evidence is the previous-weight-weighted mean of
        the step likelihoods: ``log sum_i prev_w_i * exp(step_logw_i)``
        (with uniform previous weights after a resample, this is the
        classic ``log mean w``).
        """
        prev_w = normalize_log_weights(prev_log_weights)
        step_logw = np.asarray(step_log_weights, dtype=float)
        with np.errstate(divide="ignore"):
            combined = np.log(prev_w) + step_logw
        top = combined.max()
        if np.isneginf(top) or np.isnan(top):
            evidence = float("-inf")
        else:
            evidence = float(top + np.log(np.sum(np.exp(combined - top))))
        self.last_stats = StepStats(evidence, ess(weights), self.n_particles)

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _fresh_graph(self):
        return self.graph_cls(rng=self.rng)

    def _step_particle(self, particle: Particle, inp: Any):
        raise NotImplementedError

    def _output_distribution(self, outs: List[Any], weights) -> Distribution:
        return Empirical(outs, weights)

    # ------------------------------------------------------------------
    def _should_resample(self, weights) -> bool:
        if self.resample_threshold is None:
            return True
        return ess(weights) < self.resample_threshold * self.n_particles

    def _resample(self, particles: List[Particle], weights) -> List[Particle]:
        """Resample: selected particles are duplicated by cloning state.

        With ``clone_on_resample="all"`` (the default) every selected
        particle is cloned, so the per-step resampling cost is
        proportional to the total live state — the cost model of the
        paper's runtime, where each step copies/garbage-collects the
        particles' heap. ``"duplicates"`` clones only the second and
        later occurrences of a particle (a sharing optimization that
        changes no results, only the latency profile).
        """
        indices = self.resampler(weights, self.n_particles, self.rng)
        clone_all = self.clone_on_resample == "all"
        used = set()
        resampled: List[Particle] = []
        for idx in indices:
            idx = int(idx)
            source = particles[idx]
            if clone_all or idx in used:
                new_particle = clone_particle(source)
            else:
                used.add(idx)
                new_particle = source
            new_particle.log_weight = 0.0
            resampled.append(new_particle)
        return resampled

    # ------------------------------------------------------------------
    def memory_words(self, particles: List[Particle]) -> int:
        """Ideal memory: live abstract words held by the particle set.

        This is the reproduction of the paper's live-heap-words metric
        (Section 6.3): model state plus every graph node reachable from
        it through the pointers the graph implementation retains.
        """
        total = 0
        for particle in particles:
            total += state_words(particle.state) + 2
            if particle.graph is not None:
                roots = [rv.node for rv in free_rvars(particle.state)]
                total += graph_memory_words(roots)
        return total


class ImportanceSampler(InferenceEngine):
    """Pure importance sampling: no resampling, weights accumulate.

    As the paper notes, "the probability of each individual path quickly
    collapses to 0 after a few steps", which is why the particle filter
    exists; this engine is the semantic baseline.
    """

    resample = False

    def _step_particle(self, particle: Particle, inp: Any):
        ctx = SamplingCtx(self.rng)
        out, new_state = self.model.step(particle.state, inp, ctx)
        return out, Particle(new_state, None, particle.log_weight), ctx.log_weight


class ParticleFilter(InferenceEngine):
    """Bootstrap particle filter: sampling semantics + resampling."""

    def _step_particle(self, particle: Particle, inp: Any):
        ctx = SamplingCtx(self.rng)
        out, new_state = self.model.step(particle.state, inp, ctx)
        return out, Particle(new_state, None, particle.log_weight), ctx.log_weight


class BoundedDelayedSampler(InferenceEngine):
    """Bounded delayed sampling (BDS, Section 5.2).

    Each step runs under a fresh graph, so conjugacy *within* the step is
    exploited (the HMM's observation conditions the position before it
    is sampled), and every symbolic value is forced at the end of the
    instant — the graph never survives a step, so memory is bounded by
    the per-step variable count for any model.
    """

    graph_cls = StreamingGraph
    persistent_graph = False
    force_step_end = True

    def _step_particle(self, particle: Particle, inp: Any):
        graph = self._fresh_graph()
        ctx = DelayedCtx(graph)
        out, new_state = self.model.step(particle.state, inp, ctx)
        # End of the instant: delay expires, every symbolic term is
        # realized so nothing references the step's graph afterwards.
        out = value_expr(graph, out)
        new_state = value_expr(graph, new_state)
        return out, Particle(new_state, None, particle.log_weight), ctx.log_weight


class _PersistentDelayedEngine(InferenceEngine):
    """Shared implementation of SDS and DS (graph kept across steps)."""

    persistent_graph = True

    def _step_particle(self, particle: Particle, inp: Any):
        ctx = DelayedCtx(particle.graph)
        out, new_state = self.model.step(particle.state, inp, ctx)
        out_dist = lift_distribution(particle.graph, out)
        new_particle = Particle(new_state, particle.graph, particle.log_weight)
        return out_dist, new_particle, ctx.log_weight

    def _output_distribution(self, outs: List[Any], weights) -> Distribution:
        return Mixture(outs, weights)


class StreamingDelayedSampler(_PersistentDelayedEngine):
    """Streaming delayed sampling (SDS, Section 5.3).

    The pointer-minimal graph persists across steps: conjugacy chains
    spanning time steps stay exact (e.g. the full Kalman posterior), and
    nodes the program no longer references become unreachable, keeping
    memory constant for state-space models.
    """

    graph_cls = StreamingGraph


class OriginalDelayedSampler(_PersistentDelayedEngine):
    """Original delayed sampling (DS) maintained across steps.

    Identical inference results to SDS, but the graph keeps backward
    pointers between marginalized nodes, so the live graph — and with it
    per-step clone cost — grows linearly with time (Fig. 18, Fig. 19).
    """

    graph_cls = DelayedGraph
