"""Streaming inference engines.

``infer`` turns a probabilistic node into a deterministic stream node
whose output at each step is the *distribution* of the model's outputs
given all observations so far (Section 3.3). Every engine here
implements exactly that shape — :class:`InferenceEngine` is itself a
:class:`~repro.runtime.node.Node`, so inference runs in lock step with
deterministic nodes and its results can feed controllers
("inference-in-the-loop", Section 2.4).

Engines:

* :class:`ImportanceSampler` — Fig. 13: weights accumulate forever and
  are never reset; impractical for reactive programs (the paper's
  motivation for resampling) but the simplest semantics.
* :class:`ParticleFilter` — importance sampling + resampling at every
  step (Section 5.1).
* :class:`BoundedDelayedSampler` (BDS) — delayed sampling within a step,
  forced realization at the end of each step (Section 5.2).
* :class:`StreamingDelayedSampler` (SDS) — delayed sampling with the
  pointer-minimal graph maintained across steps (Section 5.3).
* :class:`OriginalDelayedSampler` (DS) — the Murray et al. graph
  maintained across steps; the baseline whose memory and latency grow
  with time (Section 6.3).

Execution runs through the pluggable layer of :mod:`repro.exec`: one
step is a map over population shards (each with its own RNG substream),
a global weight merge, and a resample barrier. By default the
population is a single shard driven by the engine's own generator —
bit-for-bit the classic sequential semantics. Passing ``executor=``
(or ``n_shards=``) partitions the population into deterministic shards
whose results are identical for any worker count.
"""

from __future__ import annotations

import warnings
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.delayed.graph import DelayedGraph, graph_memory_words
from repro.delayed.interface import lift_distribution, value_expr
from repro.delayed.streaming import StreamingGraph
from repro.dists import Distribution, Empirical, Mixture
from repro.errors import InferenceError
from repro.exec.executor import (
    Executor,
    ProcessShardExecutor,
    SerialExecutor,
    parse_executor,
)
from repro.exec.shm import materialize
from repro.exec.supervision import RestartBudgetExhausted
from repro.obs.registry import count_event
from repro.exec.population import (
    DEFAULT_SHARDS,
    ResidentPopulation,
    ShardResult,
    ShardedPopulation,
    map_step,
    spawn_shard_rngs,
    split_sequence,
)
from repro.inference.contexts import DelayedCtx, SamplingCtx
from repro.inference.diagnostics import DiagnosticsLog, StepStats
from repro.inference.particles import (
    Particle,
    clone_particle,
    clone_state_concrete,
    state_words,
)
from repro.inference.resampling import RESAMPLERS, ess, normalize_log_weights
from repro.obs.spans import TELEMETRY
from repro.runtime.node import Node, ProbNode
from repro.symbolic import free_rvars

__all__ = [
    "InferenceEngine",
    "ImportanceSampler",
    "ParticleFilter",
    "BoundedDelayedSampler",
    "StreamingDelayedSampler",
    "OriginalDelayedSampler",
]


class InferenceEngine(Node):
    """Base class: a deterministic node wrapping a probabilistic model.

    State is the particle population; ``step`` advances every particle
    one synchronous instant and returns the posterior distribution over
    the model's output.

    ``resampler`` selects the scheme used when resampling triggers:
    ``"systematic"`` (the default), ``"stratified"``, ``"multinomial"``,
    or ``"residual"`` (deterministic copies of ``floor(n*w_i)`` per
    particle, multinomial on the fractional remainder).

    ``executor`` selects where the per-shard work of a step runs
    (``"serial"``, ``"threads:N"``, ``"processes:N"``,
    ``"processes-persistent:N"``, or an
    :class:`~repro.exec.executor.Executor` instance). Requesting an
    executor — or passing ``n_shards`` — switches the engine state from
    a plain particle list to a :class:`ShardedPopulation` whose shard
    count and per-shard RNG substreams are fixed independently of the
    executor, so every executor and worker count produces the same
    posterior bit-for-bit at a fixed seed. With a *resident* executor
    the state is instead a :class:`ResidentPopulation` handle — same
    partition, same substreams, but the payloads live in the executor's
    workers and the step is driven by commands. Without either knob the
    population is one shard on the engine's own generator: exactly the
    classic sequential behaviour.
    """

    #: graph class for delayed engines; None for concrete sampling.
    graph_cls = None
    #: keep the graph in the particle state between steps.
    persistent_graph = False
    #: force symbolic values to concrete ones at the end of each step.
    force_step_end = False
    #: resample after every step.
    resample = True

    def __init__(
        self,
        model: ProbNode,
        n_particles: int = 100,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        resampler: str = "systematic",
        resample_threshold: Optional[float] = None,
        clone_on_resample: str = "all",
        executor: Union[None, str, Executor] = None,
        n_shards: Optional[int] = None,
        diagnostics: Union[bool, DiagnosticsLog] = False,
    ):
        if n_particles < 1:
            raise InferenceError("need at least one particle")
        if resampler not in RESAMPLERS:
            raise InferenceError(
                f"unknown resampler {resampler!r}; choose from {sorted(RESAMPLERS)}"
            )
        if clone_on_resample not in ("all", "duplicates"):
            raise InferenceError(
                "clone_on_resample must be 'all' or 'duplicates', "
                f"got {clone_on_resample!r}"
            )
        self.model = model
        self.n_particles = int(n_particles)
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.resampler = RESAMPLERS[resampler]
        self.resample_threshold = resample_threshold
        self.clone_on_resample = clone_on_resample
        # Sharded-execution configuration: an explicit executor or shard
        # count opts into the deterministic shard plan; the default is
        # the single-stream sequential population.
        self.executor = parse_executor(executor)
        self.sharded = executor is not None or n_shards is not None
        if n_shards is None:
            n_shards = DEFAULT_SHARDS if self.sharded else 1
        if int(n_shards) < 1:
            raise InferenceError("need at least one shard")
        self.n_shards = min(int(n_shards), self.n_particles)
        self._seed = seed
        #: diagnostics of the most recent step (StepStats or None)
        self.last_stats = None
        # Diagnostics collection: True builds a fresh log, an existing
        # DiagnosticsLog is shared (how the scalar-fallback migration
        # keeps one uninterrupted StepStats stream per infer() call).
        if diagnostics is True:
            self.diagnostics: Optional[DiagnosticsLog] = DiagnosticsLog()
        elif isinstance(diagnostics, DiagnosticsLog):
            self.diagnostics = diagnostics
        else:
            self.diagnostics = None

    # ------------------------------------------------------------------
    def init(self) -> Union[List[Particle], ShardedPopulation, ResidentPopulation]:
        particles = []
        for _ in range(self.n_particles):
            graph = self._fresh_graph() if self.persistent_graph else None
            particles.append(Particle(self.model.init(), graph, 0.0))
        if not self.sharded:
            return particles
        rngs = spawn_shard_rngs(self.n_shards, seed=self._seed, rng=self.rng)
        population = ShardedPopulation.build(
            split_sequence(particles, self.n_shards), rngs
        )
        if self.executor.resident:
            return ResidentPopulation.create(self.executor, self, population.shards)
        return population

    def step(
        self, state: Union[List[Particle], ShardedPopulation], inp: Any
    ) -> Tuple[Distribution, Union[List[Particle], ShardedPopulation]]:
        if isinstance(state, ResidentPopulation):
            return self._step_resident(state, inp)
        sharded = isinstance(state, ShardedPopulation)
        if sharded:
            population = state
        else:
            # Single shard on the engine's own generator: the executor
            # plan degenerates to the classic sequential step.
            population = ShardedPopulation.build([list(state)], [self.rng])
        timer = TELEMETRY.step_timer()
        results, population = self._map_population(population, inp)
        timer.mark("model_eval")
        outs = [out for result in results for out in result.outs]
        stepped = [p for result in results for p in result.payload]
        step_logw = np.concatenate([r.step_log_weights for r in results])
        prev_logw = np.concatenate([r.prev_log_weights for r in results])
        log_weights = prev_logw + step_logw
        weights = normalize_log_weights(log_weights)
        self._record_stats(prev_logw, step_logw, weights)
        output = self._output_distribution(outs, weights)
        timer.mark("weight_merge")
        if self.resample and self._should_resample(weights):
            stepped = self._resample(stepped, weights)
            timer.mark("resample")
        else:
            for particle, logw in zip(stepped, log_weights):
                particle.log_weight = float(logw)
            timer.mark("weight_commit")
        timer.total("step")
        if not sharded:
            return output, stepped
        return output, population.with_payloads(
            split_sequence(stepped, population.n_shards)
        )

    def step_shard(
        self, particles: List[Particle], rng: np.random.Generator, inp: Any
    ) -> ShardResult:
        """Map phase for one shard: advance its particles under ``rng``.

        Runs wherever the executor schedules it (inline, a thread, a
        worker process); touches only the shard's particles and its own
        generator, which is what makes the schedule irrelevant to the
        result.
        """
        outs: List[Any] = []
        stepped: List[Particle] = []
        step_logws: List[float] = []
        prev_logws: List[float] = []
        for particle in particles:
            out, new_particle, step_logw = self._step_particle(particle, inp, rng)
            outs.append(out)
            prev_logws.append(new_particle.log_weight)
            step_logws.append(step_logw)
            stepped.append(new_particle)
        return ShardResult(
            outs=outs,
            payload=stepped,
            step_log_weights=np.asarray(step_logws, dtype=float),
            prev_log_weights=np.asarray(prev_logws, dtype=float),
            rng=rng,
        )

    # ------------------------------------------------------------------
    # worker-resident execution (PersistentProcessExecutor)
    # ------------------------------------------------------------------
    def _map_population(
        self, population: ShardedPopulation, inp: Any
    ) -> Tuple[List[ShardResult], ShardedPopulation]:
        """Map the step over shards; second ladder rung on pool death.

        ``map_step`` on a :class:`ProcessShardExecutor` ships the whole
        shard each way and mutates no coordinator state, so when the
        pool itself dies (:class:`BrokenProcessPool` — workers OOM-killed
        or reaped) the identical map can simply be re-run serially:
        same shards, same substreams, bit-identical results. The engine
        drops to :class:`SerialExecutor` permanently for this stream.
        """
        try:
            return map_step(self.executor, self, population, inp)
        except BrokenProcessPool:
            if not isinstance(self.executor, ProcessShardExecutor):
                raise
            count_event(
                "repro_executor_degradations_total",
                {"from": "processes", "to": "serial"},
            )
            warnings.warn(
                "process pool died mid-stream; continuing serially "
                "(results are unchanged — shard partition and RNG "
                "substreams are executor-independent)",
                RuntimeWarning,
                stacklevel=3,
            )
            try:
                self.executor.close()
            except Exception:
                pass
            self.executor = SerialExecutor()
            return map_step(self.executor, self, population, inp)

    def _step_resident(
        self, population: ResidentPopulation, inp: Any
    ) -> Tuple[Distribution, ResidentPopulation]:
        """Supervised resident step: degrade off the pool if it fails.

        Wraps :meth:`_step_resident_plan` with the first rung of the
        executor-degradation ladder. Everything the plan mutates
        coordinator-side before the commit barrier — the engine RNG
        (ancestor draws) and the diagnostics log — is snapshotted here,
        so when the persistent pool exhausts its restart budget
        mid-step the step can be re-run from scratch on the next rung
        with bit-identical results.
        """
        executor = population.executor
        recoverable = hasattr(executor, "recover_population")
        if recoverable:
            rng_state = self.rng.bit_generator.state
            diag_mark = (
                len(self.diagnostics.steps)
                if self.diagnostics is not None
                else None
            )
        try:
            return self._step_resident_plan(population, inp)
        except RestartBudgetExhausted as exc:
            if not recoverable:
                raise
            state = self._degrade_resident(
                population, rng_state, diag_mark, exc
            )
            return self.step(state, inp)

    def _degrade_resident(
        self,
        population: ResidentPopulation,
        rng_state: Any,
        diag_mark: Optional[int],
        exc: RestartBudgetExhausted,
    ) -> ShardedPopulation:
        """Restart-budget exhausted: leave the persistent pool.

        Reassembles the population coordinator-side from the executor's
        checkpoints + oplogs (no worker involved), rewinds the engine
        RNG and diagnostics to the pre-step snapshot, and switches this
        engine to ``processes:N`` — same shard partition, same
        substreams, so the stream continues bit-identically. The shared
        persistent executor itself is left alone (other engines may
        still hold healthy populations on other slots).
        """
        executor = population.executor
        shards = executor.recover_population(population.key)
        population.release()
        self.rng.bit_generator.state = rng_state
        if diag_mark is not None:
            del self.diagnostics.steps[diag_mark:]
        count_event(
            "repro_executor_degradations_total",
            {"from": "processes-persistent", "to": "processes"},
        )
        warnings.warn(
            f"persistent executor exhausted its restart budget ({exc}); "
            "population recovered from checkpoints, continuing on a "
            "per-step process pool (results are unchanged)",
            RuntimeWarning,
            stacklevel=4,
        )
        self.executor = ProcessShardExecutor(getattr(executor, "workers", None))
        return ShardedPopulation(shards)

    def _step_resident_plan(
        self, population: ResidentPopulation, inp: Any
    ) -> Tuple[Distribution, ResidentPopulation]:
        """One step as commands against resident shard handles.

        The same plan as the materialized path — map the step, merge
        the weight vectors, resample at a global barrier — but the
        shard payloads never leave their workers: the map phase returns
        only outputs and weight vectors, the barrier ships only the
        global ancestor indices plus the migrating particles (or, when
        resampling does not trigger, nothing at all).
        """
        timer = TELEMETRY.step_timer()
        summaries = population.map_step(inp, trace=TELEMETRY.enabled)
        if TELEMETRY.enabled:
            # Worker-side spans piggybacked on the step replies: fold
            # them into the coordinator's registry at the merge point.
            for summary in summaries:
                if summary.spans:
                    TELEMETRY.recorder.record_shipped(summary.spans)
        timer.mark("model_eval")
        outs = self._merge_shard_outs([s.outs for s in summaries])
        step_logw = np.concatenate([s.step_log_weights for s in summaries])
        prev_logw = np.concatenate([s.prev_log_weights for s in summaries])
        weights = normalize_log_weights(prev_logw + step_logw)
        self._record_stats(prev_logw, step_logw, weights)
        output = self._output_distribution(outs, weights)
        timer.mark("weight_merge")
        if self.resample and self._should_resample(weights):
            # Barrier: ancestor indices from the engine-level generator
            # in the coordinator — identical under every executor.
            indices = np.asarray(self.resampler(weights, self.n_particles, self.rng))
            population.resample(indices)
            timer.mark("resample")
        else:
            population.commit_weights()
            timer.mark("weight_commit")
        timer.total("step")
        return output, population

    def _merge_shard_outs(self, chunks: List[Any]) -> Any:
        """Concatenate per-shard step outputs in shard order.

        Resident-mode outs may arrive as read-only views into a worker's
        reply ring (zero-copy transport); the merged outs escape the
        step inside the output distribution, so any such view is copied
        out here — the one place a reply reference outlives the step.
        """
        return [materialize(out) for chunk in chunks for out in chunk]

    def shard_export(
        self, payload: List[Particle], indices: Sequence[int]
    ) -> List[Particle]:
        """Worker-side: the particles another shard needs at the barrier.

        Exports travel through the coordinator as pickled messages, so
        the receiving shard always gets private copies — a migrated
        particle never aliases its source.
        """
        return [payload[int(i)] for i in indices]

    def shard_assemble(
        self,
        payload: List[Particle],
        plan: Sequence[tuple],
        imports: Dict[int, List[Particle]],
    ) -> List[Particle]:
        """Worker-side: rebuild one shard from the barrier exchange plan.

        ``plan`` entries are ``("local", index)`` or ``("import",
        source, row)``; the selection replays the serial re-scatter
        exactly. Cloning follows ``clone_on_resample``, with one
        economy: an import's first use *is* its clone (the pickle copy),
        so only repeated uses clone again.
        """
        clone_all = self.clone_on_resample == "all"
        used = set()
        rebuilt: List[Particle] = []
        for entry in plan:
            if entry[0] == "local":
                source = payload[entry[1]]
                needs_clone = clone_all or entry in used
            else:
                source = imports[entry[1]][entry[2]]
                needs_clone = entry in used
            used.add(entry)
            particle = clone_particle(source) if needs_clone else source
            particle.log_weight = 0.0
            rebuilt.append(particle)
        return rebuilt

    def shard_commit_weights(
        self, payload: List[Particle], log_weights: np.ndarray
    ) -> List[Particle]:
        """Worker-side: fold the step's log-weights into the particles."""
        for particle, logw in zip(payload, log_weights):
            particle.log_weight = float(logw)
        return payload

    def _record_stats(self, prev_log_weights, step_log_weights, weights) -> None:
        """Update :attr:`last_stats` with this step's diagnostics.

        The incremental evidence is the previous-weight-weighted mean of
        the step likelihoods: ``log sum_i prev_w_i * exp(step_logw_i)``
        (with uniform previous weights after a resample, this is the
        classic ``log mean w``).
        """
        prev_w = normalize_log_weights(prev_log_weights)
        step_logw = np.asarray(step_log_weights, dtype=float)
        with np.errstate(divide="ignore"):
            combined = np.log(prev_w) + step_logw
        top = combined.max()
        if np.isneginf(top) or np.isnan(top):
            evidence = float("-inf")
        else:
            evidence = float(top + np.log(np.sum(np.exp(combined - top))))
        self.last_stats = StepStats(evidence, ess(weights), int(weights.size))
        if self.diagnostics is not None:
            self.diagnostics.record(self.last_stats)

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _fresh_graph(self, rng: Optional[np.random.Generator] = None):
        return self.graph_cls(rng=self.rng if rng is None else rng)

    def _step_particle(self, particle: Particle, inp: Any, rng: np.random.Generator):
        raise NotImplementedError

    def _output_distribution(self, outs: List[Any], weights) -> Distribution:
        return Empirical(outs, weights)

    # ------------------------------------------------------------------
    def _should_resample(self, weights) -> bool:
        if self.resample_threshold is None:
            return True
        return ess(weights) < self.resample_threshold * self.n_particles

    def _resample(self, particles: List[Particle], weights) -> List[Particle]:
        """Resample: selected particles are duplicated by cloning state.

        With ``clone_on_resample="all"`` (the default) every selected
        particle is cloned, so the per-step resampling cost is
        proportional to the total live state — the cost model of the
        paper's runtime, where each step copies/garbage-collects the
        particles' heap. ``"duplicates"`` clones only the second and
        later occurrences of a particle (a sharing optimization that
        changes no results, only the latency profile).

        This is the barrier of the sharded plan: ancestor indices come
        from the engine-level generator in the coordinating process, so
        the selection is identical under every executor.
        """
        indices = self.resampler(weights, self.n_particles, self.rng)
        clone_all = self.clone_on_resample == "all"
        used = set()
        resampled: List[Particle] = []
        for idx in indices:
            idx = int(idx)
            source = particles[idx]
            if clone_all or idx in used:
                new_particle = clone_particle(source)
            else:
                used.add(idx)
                new_particle = source
            new_particle.log_weight = 0.0
            resampled.append(new_particle)
        return resampled

    # ------------------------------------------------------------------
    def memory_words(
        self, state: Union[List[Particle], ShardedPopulation]
    ) -> int:
        """Ideal memory: live abstract words held by the particle set.

        This is the reproduction of the paper's live-heap-words metric
        (Section 6.3): model state plus every graph node reachable from
        it through the pointers the graph implementation retains.
        """
        if isinstance(state, ResidentPopulation):
            state = state.materialize()
        if isinstance(state, ShardedPopulation):
            particles = [p for chunk in state.payloads() for p in chunk]
        else:
            particles = state
        total = 0
        for particle in particles:
            total += state_words(particle.state) + 2
            if particle.graph is not None:
                roots = [rv.node for rv in free_rvars(particle.state)]
                total += graph_memory_words(roots)
        return total


class ImportanceSampler(InferenceEngine):
    """Pure importance sampling: no resampling, weights accumulate.

    As the paper notes, "the probability of each individual path quickly
    collapses to 0 after a few steps", which is why the particle filter
    exists; this engine is the semantic baseline.
    """

    resample = False

    def _step_particle(self, particle: Particle, inp: Any, rng: np.random.Generator):
        ctx = SamplingCtx(rng)
        out, new_state = self.model.step(particle.state, inp, ctx)
        return out, Particle(new_state, None, particle.log_weight), ctx.log_weight


class ParticleFilter(InferenceEngine):
    """Bootstrap particle filter: sampling semantics + resampling."""

    def _step_particle(self, particle: Particle, inp: Any, rng: np.random.Generator):
        ctx = SamplingCtx(rng)
        out, new_state = self.model.step(particle.state, inp, ctx)
        return out, Particle(new_state, None, particle.log_weight), ctx.log_weight


class BoundedDelayedSampler(InferenceEngine):
    """Bounded delayed sampling (BDS, Section 5.2).

    Each step runs under a fresh graph, so conjugacy *within* the step is
    exploited (the HMM's observation conditions the position before it
    is sampled), and every symbolic value is forced at the end of the
    instant — the graph never survives a step, so memory is bounded by
    the per-step variable count for any model.
    """

    graph_cls = StreamingGraph
    persistent_graph = False
    force_step_end = True

    def _step_particle(self, particle: Particle, inp: Any, rng: np.random.Generator):
        graph = self._fresh_graph(rng)
        ctx = DelayedCtx(graph)
        out, new_state = self.model.step(particle.state, inp, ctx)
        # End of the instant: delay expires, every symbolic term is
        # realized so nothing references the step's graph afterwards.
        out = value_expr(graph, out)
        new_state = value_expr(graph, new_state)
        return out, Particle(new_state, None, particle.log_weight), ctx.log_weight


class _PersistentDelayedEngine(InferenceEngine):
    """Shared implementation of SDS and DS (graph kept across steps)."""

    persistent_graph = True

    def _step_particle(self, particle: Particle, inp: Any, rng: np.random.Generator):
        # The graph samples with whatever generator it references; bind
        # it to the shard substream so realizations drawn inside this
        # step are shard-deterministic (particles may have migrated here
        # from another shard at the last resample barrier).
        particle.graph.rng = rng
        ctx = DelayedCtx(particle.graph)
        out, new_state = self.model.step(particle.state, inp, ctx)
        out_dist = lift_distribution(particle.graph, out)
        new_particle = Particle(new_state, particle.graph, particle.log_weight)
        return out_dist, new_particle, ctx.log_weight

    def _output_distribution(self, outs: List[Any], weights) -> Distribution:
        return Mixture(outs, weights)


class StreamingDelayedSampler(_PersistentDelayedEngine):
    """Streaming delayed sampling (SDS, Section 5.3).

    The pointer-minimal graph persists across steps: conjugacy chains
    spanning time steps stay exact (e.g. the full Kalman posterior), and
    nodes the program no longer references become unreachable, keeping
    memory constant for state-space models.
    """

    graph_cls = StreamingGraph


class OriginalDelayedSampler(_PersistentDelayedEngine):
    """Original delayed sampling (DS) maintained across steps.

    Identical inference results to SDS, but the graph keeps backward
    pointers between marginalized nodes, so the live graph — and with it
    per-step clone cost — grows linearly with time (Fig. 18, Fig. 19).
    """

    graph_cls = DelayedGraph
