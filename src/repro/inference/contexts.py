"""Probabilistic operator contexts.

Each inference engine gives the probabilistic operators their semantics
by handing the model a :class:`~repro.runtime.node.ProbCtx`:

* :class:`SamplingCtx` — the importance-sampler semantics of Fig. 13:
  ``sample`` draws, ``observe``/``factor`` update the log-weight. Used by
  both the importance sampler and the particle filter.
* :class:`DelayedCtx` — the delayed-sampling semantics of Fig. 14:
  ``sample`` adds a variable to the graph and returns a symbolic
  reference; ``observe`` conditions the graph analytically and scores
  with the *marginal* likelihood; ``value`` forces realization.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.delayed.graph import BaseGraph
from repro.delayed.interface import assume, observe_dist, value_expr
from repro.dists import Distribution
from repro.errors import InferenceError
from repro.lang.lifted import SymDist
from repro.runtime.node import ProbCtx
from repro.symbolic import RVar, is_symbolic

__all__ = ["SamplingCtx", "DelayedCtx"]


class SamplingCtx(ProbCtx):
    """Concrete sampling semantics (importance sampler / particle filter)."""

    __slots__ = ("rng", "log_weight")

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self.log_weight = 0.0

    def sample(self, dist: Any) -> Any:
        if isinstance(dist, SymDist):
            raise InferenceError(
                "a symbolic distribution reached the sampling context; "
                "sampling contexts only run fully concrete models"
            )
        if not isinstance(dist, Distribution):
            raise InferenceError(f"sample expects a distribution, got {dist!r}")
        return dist.sample(self.rng)

    def observe(self, dist: Any, value: Any) -> None:
        if isinstance(dist, SymDist):
            raise InferenceError(
                "a symbolic distribution reached the sampling context"
            )
        self.log_weight += dist.log_pdf(value)

    def factor(self, log_score: float) -> None:
        self.log_weight += float(log_score)

    def value(self, expr: Any) -> Any:
        if is_symbolic(expr):
            raise InferenceError("symbolic value in a concrete sampling context")
        return expr


class DelayedCtx(ProbCtx):
    """Delayed-sampling semantics against a graph (DS, BDS, and SDS)."""

    __slots__ = ("graph", "log_weight", "_counter")

    def __init__(self, graph: BaseGraph):
        self.graph = graph
        self.log_weight = 0.0
        self._counter = 0

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def sample(self, dist: Any) -> Any:
        node = assume(self.graph, dist, name=self._fresh_name("x"))
        return RVar(node)

    def observe(self, dist: Any, value: Any) -> None:
        self.log_weight += observe_dist(
            self.graph, dist, value, name=self._fresh_name("y")
        )

    def factor(self, log_score: float) -> None:
        self.log_weight += float(value_expr(self.graph, log_score))

    def value(self, expr: Any) -> Any:
        return value_expr(self.graph, expr)
