"""Resampling schemes and weight utilities for particle methods.

The particle filter "periodically re-samples the set of particles"
(Section 5.1); systematic resampling is the default, with multinomial,
stratified, and residual variants for completeness. Log-weight
normalization is shared by every engine.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from repro.errors import InferenceError
from repro.obs.registry import count_event

__all__ = [
    "normalize_log_weights",
    "ess",
    "systematic_indices",
    "stratified_indices",
    "multinomial_indices",
    "residual_indices",
    "RESAMPLERS",
]


def normalize_log_weights(log_weights: Sequence[float]) -> np.ndarray:
    """Normalized linear weights from log weights.

    A ``NaN`` log-weight (a broken kernel scored one particle) is
    treated as ``-inf`` for that particle alone — zero weight, with a
    :class:`RuntimeWarning` so the breakage is visible — never as a
    reason to reset the whole population. Degenerate inputs (all
    ``-inf``: every particle scored zero likelihood) fall back to
    uniform weights rather than dying, which is what a streaming filter
    must do to keep running.
    """
    logw = np.asarray(log_weights, dtype=float)
    if logw.size == 0:
        raise InferenceError("cannot normalize an empty weight vector")
    nan_mask = np.isnan(logw)
    if nan_mask.any():
        # The warning tells an interactive user once; the counter tells
        # a long-running deployment how often.
        count_event("repro_nan_log_weights_total", amount=int(nan_mask.sum()))
        warnings.warn(
            f"{int(nan_mask.sum())} NaN log-weight(s) treated as -inf "
            "(zero weight); check the model/kernel that produced them",
            RuntimeWarning,
            stacklevel=2,
        )
        logw = np.where(nan_mask, -np.inf, logw)
    top = logw.max()
    if np.isneginf(top):
        return np.full(logw.size, 1.0 / logw.size)
    w = np.exp(logw - top)
    total = w.sum()
    if not total > 0:
        return np.full(logw.size, 1.0 / logw.size)
    return w / total


def _normalized_weights(weights: Sequence[float]) -> np.ndarray:
    """The weight vector every resampler actually draws from.

    The resamplers' cumulative-sum machinery assumes the weights sum to
    one; historically only ``residual_indices`` normalized internally,
    so an unnormalized vector silently dumped its missing mass on the
    last particle. Normalizing here makes all four schemes agree. An
    already-normalized vector (within round-off of the log-weight
    pipeline) passes through untouched so existing seeded streams are
    preserved bit-for-bit.
    """
    w = np.asarray(weights, dtype=float)
    if w.size == 0:
        raise InferenceError("cannot resample from an empty weight vector")
    if np.any(w < 0):
        raise InferenceError("resampling weights must be non-negative")
    total = float(w.sum())
    if not np.isfinite(total) or total <= 0.0:
        raise InferenceError(
            "resampling weights must have a positive finite sum, "
            f"got {total!r}"
        )
    if abs(total - 1.0) > 1e-9:
        w = w / total
    return w


def ess(weights: Sequence[float]) -> float:
    """Effective sample size ``1 / sum(w_i^2)`` of normalized weights."""
    w = np.asarray(weights, dtype=float)
    denom = float(np.sum(w * w))
    if denom <= 0.0:
        return 0.0
    return 1.0 / denom


def systematic_indices(
    weights: Sequence[float], n: int, rng: np.random.Generator
) -> np.ndarray:
    """Systematic resampling: one uniform offset, ``n`` evenly spaced picks."""
    w = _normalized_weights(weights)
    positions = (rng.random() + np.arange(n)) / n
    cumulative = np.cumsum(w)
    cumulative[-1] = 1.0  # guard against round-off
    return np.searchsorted(cumulative, positions).astype(int)


def stratified_indices(
    weights: Sequence[float], n: int, rng: np.random.Generator
) -> np.ndarray:
    """Stratified resampling: one uniform draw per stratum."""
    w = _normalized_weights(weights)
    positions = (rng.random(n) + np.arange(n)) / n
    cumulative = np.cumsum(w)
    cumulative[-1] = 1.0
    return np.searchsorted(cumulative, positions).astype(int)


def multinomial_indices(
    weights: Sequence[float], n: int, rng: np.random.Generator
) -> np.ndarray:
    """Plain multinomial resampling."""
    w = _normalized_weights(weights)
    return rng.choice(w.size, size=n, p=w).astype(int)


def residual_indices(
    weights: Sequence[float], n: int, rng: np.random.Generator
) -> np.ndarray:
    """Residual resampling: deterministic copies, multinomial remainder.

    Each particle ``i`` is first copied ``floor(n * w_i)`` times; the
    ``n - sum floor(n * w_i)`` remaining slots are drawn multinomially
    from the fractional residuals. The deterministic part removes most
    of the multinomial variance while remaining unbiased.
    """
    w = _normalized_weights(weights)
    expected = n * w
    copies = np.floor(expected).astype(int)
    deterministic = np.repeat(np.arange(w.size), copies)
    remainder = n - int(copies.sum())
    if remainder == 0:
        return deterministic
    residuals = expected - copies
    total = residuals.sum()
    if total > 0:
        extra = rng.choice(w.size, size=remainder, p=residuals / total)
    else:
        extra = rng.choice(w.size, size=remainder, p=w)  # w exact multiples of 1/n
    return np.concatenate([deterministic, extra]).astype(int)


RESAMPLERS = {
    "systematic": systematic_indices,
    "stratified": stratified_indices,
    "multinomial": multinomial_indices,
    "residual": residual_indices,
}
