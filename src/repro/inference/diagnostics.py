"""Inference diagnostics: effective sample size and log-evidence.

Streaming filters need observability: :class:`StepStats` captures, for
every synchronous step, the effective sample size before resampling and
the step's incremental log-evidence

    log Z_t = log ( (1/N) * sum_i w_i )

whose running sum estimates the log marginal likelihood
``log p(y_1..y_t)`` of the observations under the model. For the
delayed samplers this estimate is Rao-Blackwellized; with SDS on a
fully conjugate model (Kalman, Coin) a *single particle* computes the
exact marginal likelihood — a strong correctness check used by the
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.inference.resampling import ess as ess_of

__all__ = ["StepStats", "DiagnosticsLog", "step_stats_from_log_weights"]


@dataclass(frozen=True)
class StepStats:
    """Diagnostics of one inference step."""

    #: incremental log-evidence log( mean_i exp(logw_i) )
    log_evidence: float
    #: effective sample size of the normalized weights, in [1, N]
    ess: float
    #: number of particles
    n_particles: int

    @property
    def ess_fraction(self) -> float:
        """ESS as a fraction of the particle count."""
        return self.ess / self.n_particles


def step_stats_from_log_weights(log_weights: Sequence[float]) -> StepStats:
    """Compute :class:`StepStats` from a step's raw log-weights."""
    logw = np.asarray(log_weights, dtype=float)
    top = logw.max()
    if np.isneginf(top) or np.isnan(top):
        return StepStats(float("-inf"), float(logw.size), int(logw.size))
    w = np.exp(logw - top)
    total = w.sum()
    log_evidence = float(top + np.log(total / logw.size))
    normalized = w / total
    return StepStats(log_evidence, ess_of(normalized), int(logw.size))


class DiagnosticsLog:
    """Accumulates per-step diagnostics of an engine run."""

    def __init__(self):
        self.steps: List[StepStats] = []

    def record(self, stats: Optional[StepStats]) -> None:
        if stats is not None:
            self.steps.append(stats)

    @property
    def total_log_evidence(self) -> float:
        """Estimate of ``log p(y_1..y_T)``: the sum of step evidences."""
        return float(sum(s.log_evidence for s in self.steps))

    @property
    def min_ess_fraction(self) -> float:
        """The worst weight degeneracy seen across the run."""
        if not self.steps:
            return 1.0
        return min(s.ess_fraction for s in self.steps)

    def __len__(self) -> int:
        return len(self.steps)
