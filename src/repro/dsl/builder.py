"""Ergonomic builders for kernel programs.

A thin layer over :mod:`repro.core.ast` that makes embedded programs read
close to the paper's concrete syntax. The Section-2 HMM::

    let node hmm y = x where
      rec x = sample (gaussian (0 -> pre x, speed_x))
      and () = observe (gaussian (x, noise_x), y)

becomes::

    hmm = node("hmm", "y", where_(
        var("x"),
        eq("x", sample(gaussian(arrow(const(0.0), pre(var("x"))), const(speed_x)))),
        eq("_", observe(gaussian(var("x"), const(noise_x)), var("y"))),
    ))

Build a :func:`program` from node declarations, then ``load`` it
(compile to muF) or interpret it co-iteratively.
"""

from __future__ import annotations

from typing import Any, Union

from repro.core.ast import (
    App,
    Arrow,
    Const,
    Eq,
    Equation,
    Expr,
    Factor,
    Fby,
    Infer,
    InitEq,
    Last,
    NodeDecl,
    Observe,
    Op,
    Pair,
    PreE,
    Present,
    Program,
    Reset,
    Sample,
    Var,
    Where,
)

__all__ = [
    "const",
    "var",
    "last",
    "pair",
    "op",
    "app",
    "where_",
    "eq",
    "init",
    "present",
    "reset",
    "arrow",
    "pre",
    "fby",
    "if_",
    "sample",
    "observe",
    "factor",
    "infer_",
    "gaussian",
    "mv_gaussian",
    "beta",
    "bernoulli",
    "uniform",
    "mean_float",
    "automaton_",
    "state_",
    "node",
    "program",
]

ExprLike = Union[Expr, int, float, bool]


def _e(value: ExprLike) -> Expr:
    """Coerce Python literals into constants."""
    if isinstance(value, Expr):
        return value
    return Const(value)


def const(value: Any) -> Const:
    """A constant expression."""
    return Const(value)


def var(name: str) -> Var:
    """A variable reference."""
    return Var(name)


def last(name: str) -> Last:
    """``last x``."""
    return Last(name)


def pair(first: ExprLike, second: ExprLike) -> Pair:
    """``(e1, e2)``."""
    return Pair(_e(first), _e(second))


def op(name: str, *args: ExprLike) -> Op:
    """External operator application."""
    return Op(name, tuple(_e(a) for a in args))


def app(func: str, *args: ExprLike) -> App:
    """Node application; multiple arguments nest into right pairs."""
    if not args:
        arg: Expr = Const(())
    elif len(args) == 1:
        arg = _e(args[0])
    else:
        arg = _e(args[-1])
        for a in reversed(args[:-1]):
            arg = Pair(_e(a), arg)
    return App(func, arg)


def where_(body: ExprLike, *equations: Equation) -> Where:
    """``e where rec E and ...``."""
    return Where(_e(body), tuple(equations))


def eq(name: str, expr: ExprLike) -> Eq:
    """Equation ``x = e``."""
    return Eq(name, _e(expr))


def init(name: str, value: Any) -> InitEq:
    """Initialization ``init x = c``."""
    return InitEq(name, Const(value))


def present(cond: ExprLike, then_branch: ExprLike, else_branch: ExprLike) -> Present:
    """``present c -> e1 else e2``."""
    return Present(_e(cond), _e(then_branch), _e(else_branch))


def reset(body: ExprLike, every: ExprLike) -> Reset:
    """``reset e1 every e2``."""
    return Reset(_e(body), _e(every))


def arrow(first: ExprLike, then: ExprLike) -> Arrow:
    """Initialization operator ``e1 -> e2``."""
    return Arrow(_e(first), _e(then))


def pre(expr: ExprLike) -> PreE:
    """Unit delay ``pre e``."""
    return PreE(_e(expr))


def fby(first: ExprLike, then: ExprLike) -> Fby:
    """``e1 fby e2``."""
    return Fby(_e(first), _e(then))


def if_(cond: ExprLike, then_branch: ExprLike, else_branch: ExprLike) -> Op:
    """Strict conditional (an external operator, paper footnote 3)."""
    return Op("if", (_e(cond), _e(then_branch), _e(else_branch)))


def sample(dist: ExprLike) -> Sample:
    """``sample(e)``."""
    return Sample(_e(dist))


def observe(dist: ExprLike, value: ExprLike) -> Observe:
    """``observe(e1, e2)``."""
    return Observe(_e(dist), _e(value))


def factor(score: ExprLike) -> Factor:
    """``factor(e)``."""
    return Factor(_e(score))


def infer_(
    body: ExprLike, particles: int = 100, method: str = "pf", seed: Any = None
) -> Infer:
    """``infer(e)`` with engine configuration."""
    return Infer(_e(body), particles, method, seed)


def gaussian(mu: ExprLike, variance: ExprLike) -> Op:
    """``gaussian(mu, var)`` distribution constructor."""
    return op("gaussian", mu, variance)


def mv_gaussian(mu: ExprLike, cov: ExprLike) -> Op:
    """``mv_gaussian(mu, cov)`` distribution constructor."""
    return op("mv_gaussian", mu, cov)


def beta(alpha: ExprLike, b: ExprLike) -> Op:
    """``beta(alpha, beta)`` distribution constructor."""
    return op("beta", alpha, b)


def bernoulli(p: ExprLike) -> Op:
    """``bernoulli(p)`` distribution constructor."""
    return op("bernoulli", p)


def uniform(lo: ExprLike, hi: ExprLike) -> Op:
    """``uniform(lo, hi)`` distribution constructor."""
    return op("uniform", lo, hi)


def mean_float(dist: ExprLike) -> Op:
    """``mean_float(d)``: posterior mean of a float distribution."""
    return op("mean_float", dist)


def automaton_(*states, out_name: str = "o"):
    """A hierarchical automaton expression (first state is initial)."""
    from repro.core.automata import AutomatonE

    return AutomatonE(tuple(states), out_name=out_name)


def state_(name: str, body: ExprLike, *transitions) -> "AutoStateE":
    """One automaton mode: ``state_("Go", body, (cond, "Task"), ...)``."""
    from repro.core.automata import AutoStateE

    return AutoStateE(
        name, _e(body), tuple((_e(c), target) for c, target in transitions)
    )


def node(name: str, params: Union[str, tuple], body: Expr) -> NodeDecl:
    """``let node name params = body``."""
    if isinstance(params, str):
        params = (params,)
    return NodeDecl(name, tuple(params), body)


def program(*decls: NodeDecl) -> Program:
    """A program from node declarations (dependency order)."""
    return Program(tuple(decls))
