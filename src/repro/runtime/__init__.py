"""Synchronous stream runtime: nodes, drivers, stdlib blocks, automata."""

from repro.runtime.automaton import Automaton, AutoState
from repro.runtime.node import (
    FunNode,
    FunProbNode,
    Node,
    NodeInstance,
    ProbCtx,
    ProbNode,
)
from repro.runtime.stdlib import (
    Counter,
    Deriv,
    Edge,
    Fby,
    Integr,
    Pid,
    Pre,
    SampleHold,
)
from repro.runtime.streams import (
    constant,
    feedback,
    iterate,
    lift,
    parallel,
    run,
    run_n,
    serial,
)

__all__ = [
    "Node",
    "ProbNode",
    "ProbCtx",
    "FunNode",
    "FunProbNode",
    "NodeInstance",
    "run",
    "run_n",
    "iterate",
    "lift",
    "constant",
    "serial",
    "parallel",
    "feedback",
    "Pre",
    "Fby",
    "Integr",
    "Deriv",
    "Counter",
    "Edge",
    "SampleHold",
    "Pid",
    "Automaton",
    "AutoState",
]
