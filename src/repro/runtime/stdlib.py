"""Standard synchronous blocks.

The control-engineering vocabulary of Lustre/Zelus programs, implemented
as :class:`~repro.runtime.node.Node` values: unit delays, initialization,
integrators (the paper's very first example), counters, edge detectors,
and a PID controller for the robot example.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.runtime.node import FunNode, Node

__all__ = [
    "Pre",
    "Fby",
    "Integr",
    "Deriv",
    "Counter",
    "Edge",
    "SampleHold",
    "Pid",
]


class Pre(Node):
    """Initialized unit delay: emits ``init_value`` then the previous input.

    Equivalent to ``init_value fby x`` = ``init_value -> pre x``.
    """

    def __init__(self, init_value: Any):
        self._init_value = init_value

    def init(self) -> Any:
        return self._init_value

    def step(self, state: Any, inp: Any) -> Tuple[Any, Any]:
        return state, inp


# ``fby`` ("followed by") is the classic name for the initialized delay.
Fby = Pre


class Integr(Node):
    """Backward Euler integrator (the paper's introductory example).

    ``x0 = xo; xn = x(n-1) + x'n * h``. Input is the derivative stream;
    ``xo`` is the initial value and ``h`` the step size.
    """

    def __init__(self, xo: float, h: float = 1.0):
        self.xo = float(xo)
        self.h = float(h)

    def init(self) -> Any:
        return None  # None marks the very first instant

    def step(self, state: Any, derivative: float) -> Tuple[float, Any]:
        if state is None:
            out = self.xo
        else:
            out = state + float(derivative) * self.h
        return out, out


class Deriv(Node):
    """Backward difference: ``(x_n - x_(n-1)) / h``; 0 at the first instant."""

    def __init__(self, h: float = 1.0):
        self.h = float(h)

    def init(self) -> Any:
        return None

    def step(self, state: Any, inp: float) -> Tuple[float, Any]:
        if state is None:
            out = 0.0
        else:
            out = (float(inp) - state) / self.h
        return out, float(inp)


class Counter(Node):
    """Counts the instants: 0, 1, 2, ..."""

    def init(self) -> int:
        return 0

    def step(self, state: int, inp: Any) -> Tuple[int, int]:
        return state, state + 1


class Edge(Node):
    """Rising-edge detector on a boolean stream (true on false->true)."""

    def init(self) -> bool:
        return False

    def step(self, state: bool, inp: bool) -> Tuple[bool, bool]:
        inp = bool(inp)
        return inp and not state, inp


class SampleHold(Node):
    """Holds the last present value of an optional stream.

    Input is ``None`` (absent) or a value (present); output is the last
    present value, starting from ``initial``. This models the paper's
    ``present gps(p_obs) -> ...`` signal handling at the runtime level.
    """

    def __init__(self, initial: Any):
        self._initial = initial

    def init(self) -> Any:
        return self._initial

    def step(self, state: Any, inp: Any) -> Tuple[Any, Any]:
        held = state if inp is None else inp
        return held, held


class Pid(Node):
    """Discrete PID controller.

    Input is the error signal; output is the command. The classic block
    the paper's introduction cites as "very well adapted" to synchronous
    dataflow.
    """

    def __init__(self, kp: float, ki: float = 0.0, kd: float = 0.0, h: float = 1.0):
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self.h = float(h)

    def init(self) -> Tuple[float, Any]:
        return 0.0, None  # (integral, previous error)

    def step(self, state: Tuple[float, Any], error: float):
        integral, prev_error = state
        error = float(error)
        integral = integral + error * self.h
        derivative = 0.0 if prev_error is None else (error - prev_error) / self.h
        command = self.kp * error + self.ki * integral + self.kd * derivative
        return command, (integral, error)
