"""Hierarchical automata as a runtime combinator.

Zelus' ``automaton`` construct (Section 2.4, Fig. 5) is compiled away to
``present`` and ``reset`` (Colaço et al. 2006). At the runtime level we
provide the equivalent combinator directly: a mode machine whose states
carry nodes, with *weak* transitions (``until c then S``: the body runs
this instant, the transition takes effect next instant) and entry-reset
of the target state's node.

The robot example's ``Go``/``Task`` controller (Fig. 5) is built on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import InferenceError
from repro.runtime.node import Node

__all__ = ["AutoState", "Automaton"]


@dataclass
class AutoState:
    """One automaton mode.

    ``body`` is the node active in this mode. ``transitions`` is an
    ordered list of ``(condition, target)`` pairs; ``condition`` is
    evaluated on the mode's output each instant (weak preemption). The
    first true condition wins.
    """

    name: str
    body: Node
    transitions: List[Tuple[Callable[[Any], bool], str]] = field(default_factory=list)


class Automaton(Node):
    """A mode machine over :class:`AutoState` values.

    State is ``(mode_name, mode_state)``; entering a mode (including
    re-entry) resets the mode's node state, which is the ``reset ...
    every`` semantics of the kernel encoding.
    """

    def __init__(self, states: List[AutoState]):
        if not states:
            raise InferenceError("automaton needs at least one state")
        self.states: Dict[str, AutoState] = {}
        for st in states:
            if st.name in self.states:
                raise InferenceError(f"duplicate automaton state {st.name!r}")
            self.states[st.name] = st
        for st in states:
            for _, target in st.transitions:
                if target not in self.states:
                    raise InferenceError(
                        f"transition from {st.name!r} targets unknown state {target!r}"
                    )
        self.initial = states[0].name

    def init(self) -> Tuple[str, Any]:
        return self.initial, self.states[self.initial].body.init()

    def step(self, state: Tuple[str, Any], inp: Any):
        mode_name, mode_state = state
        mode = self.states[mode_name]
        out, mode_state = mode.body.step(mode_state, inp)
        # Weak transitions: the body ran this instant; a satisfied guard
        # switches (and resets) the target for the *next* instant.
        for condition, target in mode.transitions:
            if condition(out):
                return out, (target, self.states[target].body.init())
        return out, (mode_name, mode_state)

    def mode_of(self, state: Tuple[str, Any]) -> str:
        """Current mode name of an automaton state (for observers)."""
        return state[0]
