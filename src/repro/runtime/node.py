"""Stream node protocol: the co-iterative transition-function interface.

The paper compiles every expression to a pair (initial state, transition
function) — ``CoNode(T, T', S) = S x (S -> T -> T' x S)`` (Section 3.3).
This module fixes that interface for Python:

* :class:`Node` — a deterministic stream function,
* :class:`ProbNode` — a probabilistic stream function whose transition
  additionally threads a :class:`ProbCtx` providing ``sample`` /
  ``observe`` / ``factor`` / ``value``,
* :class:`ProbCtx` — the operator protocol each inference engine
  implements (the operational semantics of the probabilistic operators
  is engine-specific: Fig. 13 for the importance sampler, Fig. 14 for
  the delayed samplers).

State is externalized exactly as in the compiled form (Section 5.1):
``step`` receives the previous state and returns the next one, which is
what allows an inference engine to clone a particle mid-execution by
duplicating its state.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Tuple

__all__ = ["Node", "ProbNode", "ProbCtx", "FunNode", "FunProbNode", "NodeInstance"]


class Node(abc.ABC):
    """A deterministic stream function (the paper's ``node`` of kind D)."""

    @abc.abstractmethod
    def init(self) -> Any:
        """Initial state."""

    @abc.abstractmethod
    def step(self, state: Any, inp: Any) -> Tuple[Any, Any]:
        """One synchronous step: ``(output, next_state)``."""

    def instance(self) -> "NodeInstance":
        """A stateful handle that threads the state automatically."""
        return NodeInstance(self)


class ProbNode(abc.ABC):
    """A probabilistic stream function (kind P): a model for ``infer``."""

    @abc.abstractmethod
    def init(self) -> Any:
        """Initial state."""

    @abc.abstractmethod
    def step(self, state: Any, inp: Any, ctx: "ProbCtx") -> Tuple[Any, Any]:
        """One synchronous step under a probabilistic context."""


class ProbCtx(abc.ABC):
    """Operator protocol given to probabilistic transition functions.

    Engines provide concrete semantics: a particle-filter context draws
    values and accumulates log-weights; a delayed-sampling context builds
    symbolic terms against a graph.
    """

    @abc.abstractmethod
    def sample(self, dist: Any) -> Any:
        """Draw from a distribution (possibly returning a symbolic value)."""

    @abc.abstractmethod
    def observe(self, dist: Any, value: Any) -> None:
        """Condition the execution on ``value`` being drawn from ``dist``."""

    @abc.abstractmethod
    def factor(self, log_score: float) -> None:
        """Multiply the execution's weight by ``exp(log_score)``."""

    @abc.abstractmethod
    def value(self, expr: Any) -> Any:
        """Force a (possibly symbolic) value to a concrete one.

        Exposed to the programmer, per Section 5.3, to bound the symbolic
        graph by force-realizing trailing variables.
        """


class FunNode(Node):
    """Deterministic node built from an initial state and a step function."""

    def __init__(self, init_state: Any, step_fn: Callable[[Any, Any], Tuple[Any, Any]]):
        self._init_state = init_state
        self._step_fn = step_fn

    def init(self) -> Any:
        return self._init_state

    def step(self, state: Any, inp: Any) -> Tuple[Any, Any]:
        return self._step_fn(state, inp)


class FunProbNode(ProbNode):
    """Probabilistic node built from an initial state and a step function."""

    def __init__(
        self,
        init_state: Any,
        step_fn: Callable[[Any, Any, ProbCtx], Tuple[Any, Any]],
    ):
        self._init_state = init_state
        self._step_fn = step_fn

    def init(self) -> Any:
        return self._init_state

    def step(self, state: Any, inp: Any, ctx: ProbCtx) -> Tuple[Any, Any]:
        return self._step_fn(state, inp, ctx)


class NodeInstance:
    """Imperative wrapper around a :class:`Node` that owns its state."""

    def __init__(self, node: Node):
        self.node = node
        self.state = node.init()

    def step(self, inp: Any = None) -> Any:
        out, self.state = self.node.step(self.state, inp)
        return out

    def reset(self) -> None:
        """Re-initialize the node's state (the ``reset`` construct)."""
        self.state = self.node.init()
