"""Stream drivers and combinators over :class:`~repro.runtime.node.Node`.

Utilities for running synchronous nodes over finite prefixes of their
(conceptually infinite) input streams, plus the classic dataflow
combinators — serial/parallel composition, feedback, lifting — that the
examples use to assemble controllers.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.runtime.node import FunNode, Node

__all__ = [
    "run",
    "run_n",
    "iterate",
    "lift",
    "constant",
    "serial",
    "parallel",
    "feedback",
]


def run(node: Node, inputs: Iterable[Any]) -> List[Any]:
    """Run ``node`` over ``inputs`` and collect the outputs."""
    state = node.init()
    outputs: List[Any] = []
    for inp in inputs:
        out, state = node.step(state, inp)
        outputs.append(out)
    return outputs


def run_n(node: Node, steps: int, inp: Any = None) -> List[Any]:
    """Run ``node`` for ``steps`` steps with a constant (default unit) input."""
    return run(node, [inp] * steps)


def iterate(node: Node, inputs: Iterable[Any]):
    """Generator form of :func:`run` for unbounded streams."""
    state = node.init()
    for inp in inputs:
        out, state = node.step(state, inp)
        yield out


def lift(fn: Callable[[Any], Any]) -> Node:
    """Stateless node applying ``fn`` pointwise (a combinational block)."""
    return FunNode(None, lambda state, inp: (fn(inp), state))


def constant(value: Any) -> Node:
    """Node emitting ``value`` at every step."""
    return FunNode(None, lambda state, inp: (value, state))


def serial(first: Node, second: Node) -> Node:
    """Serial composition: the output of ``first`` feeds ``second``."""

    def step(state: Tuple[Any, Any], inp: Any) -> Tuple[Any, Tuple[Any, Any]]:
        s1, s2 = state
        mid, s1 = first.step(s1, inp)
        out, s2 = second.step(s2, mid)
        return out, (s1, s2)

    return FunNode((first.init(), second.init()), step)


def parallel(left: Node, right: Node) -> Node:
    """Parallel composition over paired inputs, producing paired outputs."""

    def step(state: Tuple[Any, Any], inp: Tuple[Any, Any]):
        s1, s2 = state
        in1, in2 = inp
        out1, s1 = left.step(s1, in1)
        out2, s2 = right.step(s2, in2)
        return (out1, out2), (s1, s2)

    return FunNode((left.init(), right.init()), step)


def feedback(node: Node, initial: Any) -> Node:
    """Close a feedback loop with a unit delay.

    ``node`` maps ``(inp, fed_back)`` pairs to outputs; the output of the
    previous step (starting from ``initial``) is fed back as the second
    component. This is the ``rec``/``pre`` pattern of the paper's robot
    controller, where the previous command feeds the motion model.
    """

    def step(state: Tuple[Any, Any], inp: Any):
        inner_state, prev_out = state
        out, inner_state = node.step(inner_state, (inp, prev_out))
        return out, (inner_state, out)

    return FunNode((node.init(), initial), step)
