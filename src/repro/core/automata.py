"""Hierarchical automata as a language construct (Section 2.4 / 3.1).

The paper: "hierarchical automata can be re-written using ``present``
and ``reset`` [Colaço et al. 2006]". This module provides the surface
construct — :class:`AutomatonE`, a mode machine whose states carry
expressions and *weak* transitions (``until c then S``) — and the
rewrite into the kernel.

Encoding for an automaton with states ``S0 .. S(N-1)``::

    out where rec
      init st = 0.
      and cur  = last st                      (active mode this instant)
      and prev = -1. fby cur                  (mode of previous instant)
      and res  = present (cur = 0.) then branch_0
                 else present (cur = 1.) then branch_1
                 else ... branch_{N-1}
      and st   = snd res
      and out  = fst res

    branch_i = reset
                 ((o, next) where rec
                    o    = body_i
                    next = if c_i1 then t_i1 else ... else i.)
               every (cur = i. and prev <> i.)

The ``reset ... every`` on mode (re-)entry gives each mode a fresh
state; transitions are weak — the guard is evaluated on the *current*
instant's output (bound to ``out_name`` inside the guard's scope) and
the switch takes effect at the next instant, exactly like the runtime
combinator in :mod:`repro.runtime.automaton` and the paper's
``until ... then`` in Fig. 5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Tuple

from repro.core.ast import (
    App,
    Arrow,
    Const,
    Eq,
    Expr,
    Factor,
    Fby,
    Infer,
    InitEq,
    Last,
    NodeDecl,
    Observe,
    Op,
    Pair,
    PreE,
    Present,
    Program,
    Reset,
    Sample,
    Var,
    Where,
)
from repro.errors import LanguageError

__all__ = ["AutoStateE", "AutomatonE", "expand_automata", "expand_program"]

_fresh_counter = itertools.count()


def _fresh(prefix: str) -> str:
    return f"_{prefix}{next(_fresh_counter)}"


@dataclass(frozen=True)
class AutoStateE:
    """One automaton mode: a name, a body expression, weak transitions.

    Each transition is ``(condition, target_name)``; the condition may
    reference the mode's output through the automaton's ``out_name``.
    """

    name: str
    body: Expr
    transitions: Tuple[Tuple[Expr, str], ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class AutomatonE(Expr):
    """A mode machine expression. The first state is initial.

    ``out_name`` is the variable the guards use to refer to the active
    mode's output value (default ``"o"``).
    """

    states: Tuple[AutoStateE, ...]
    out_name: str = "o"


def _index_of(states: Tuple[AutoStateE, ...]) -> dict:
    index = {}
    for i, state in enumerate(states):
        if state.name in index:
            raise LanguageError(f"duplicate automaton state {state.name!r}")
        index[state.name] = float(i)
    return index


def _expand_automaton(expr: AutomatonE) -> Expr:
    """Rewrite one automaton into kernel + sugar constructs."""
    if not expr.states:
        raise LanguageError("automaton needs at least one state")
    index = _index_of(expr.states)
    for state in expr.states:
        for _, target in state.transitions:
            if target not in index:
                raise LanguageError(
                    f"transition from {state.name!r} targets unknown state "
                    f"{target!r}"
                )

    st = _fresh("st")
    cur = _fresh("cur")
    prev = _fresh("prev")
    res = _fresh("res")

    def branch(i: int, state: AutoStateE) -> Expr:
        # next-state expression: first true guard wins, else stay.
        next_expr: Expr = Const(float(i))
        for cond, target in reversed(state.transitions):
            next_expr = Op(
                "if", (expand_automata(cond), Const(index[target]), next_expr)
            )
        body = Where(
            Pair(Var(expr.out_name), Var("_next")),
            (
                Eq(expr.out_name, expand_automata(state.body)),
                Eq("_next", next_expr),
            ),
        )
        entering = Op(
            "and",
            (
                Op("eq", (Var(cur), Const(float(i)))),
                Op("ne", (Var(prev), Const(float(i)))),
            ),
        )
        return Reset(body, entering)

    # present cascade over the mode index
    cascade: Expr = branch(len(expr.states) - 1, expr.states[-1])
    for i in range(len(expr.states) - 2, -1, -1):
        cascade = Present(
            Op("eq", (Var(cur), Const(float(i)))),
            branch(i, expr.states[i]),
            cascade,
        )

    return Where(
        Op("fst", (Var(res),)),
        (
            InitEq(st, Const(0.0)),
            Eq(cur, Last(st)),
            Eq(prev, Fby(Const(-1.0), Var(cur))),
            Eq(res, cascade),
            Eq(st, Op("snd", (Var(res),))),
        ),
    )


def expand_automata(expr: Expr) -> Expr:
    """Recursively rewrite every automaton in ``expr``."""
    if isinstance(expr, AutomatonE):
        return _expand_automaton(expr)
    if isinstance(expr, Pair):
        return Pair(expand_automata(expr.first), expand_automata(expr.second))
    if isinstance(expr, Op):
        return Op(expr.name, tuple(expand_automata(a) for a in expr.args))
    if isinstance(expr, App):
        return App(expr.func, expand_automata(expr.arg))
    if isinstance(expr, Where):
        equations = tuple(
            eq if isinstance(eq, InitEq) else Eq(eq.name, expand_automata(eq.expr))
            for eq in expr.equations
        )
        return Where(expand_automata(expr.body), equations)
    if isinstance(expr, Present):
        return Present(
            expand_automata(expr.cond),
            expand_automata(expr.then_branch),
            expand_automata(expr.else_branch),
        )
    if isinstance(expr, Reset):
        return Reset(expand_automata(expr.body), expand_automata(expr.every))
    if isinstance(expr, Sample):
        return Sample(expand_automata(expr.dist))
    if isinstance(expr, Observe):
        return Observe(expand_automata(expr.dist), expand_automata(expr.value))
    if isinstance(expr, Factor):
        return Factor(expand_automata(expr.score))
    if isinstance(expr, Infer):
        return Infer(
            expand_automata(expr.body), expr.particles, expr.method, expr.seed
        )
    if isinstance(expr, Arrow):
        return Arrow(expand_automata(expr.first), expand_automata(expr.then))
    if isinstance(expr, PreE):
        return PreE(expand_automata(expr.expr))
    if isinstance(expr, Fby):
        return Fby(expand_automata(expr.first), expand_automata(expr.then))
    return expr


def expand_program(program: Program) -> Program:
    """Rewrite the automata of every node in a program."""
    return Program(
        tuple(
            NodeDecl(d.name, d.param, expand_automata(d.body))
            for d in program.decls
        )
    )
