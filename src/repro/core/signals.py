"""Optional signals and the binding form of ``present`` (Fig. 5).

The robot example conditions on GPS fixes only when they arrive::

    present gps(p_obs) -> observe(gaussian(p, p_noise), p_obs) else ()

A *signal* is a stream of optional values — ``None`` when absent, the
payload when present. The binding ``present`` tests for presence and
binds the payload in the then-branch. It is pure sugar::

    present_signal(s, "x", e1, e2)
      ==  present is_present(s) -> (e1 where rec x = get(s)) else e2

built on two external operators registered here: ``is_present`` and
``get`` (which raises on an absent signal — unreachable under the
encoding).
"""

from __future__ import annotations

from typing import Any

from repro.core.ast import Const, Eq, Expr, Last, Op, Present, Var, Where
from repro.core.ops import register
from repro.errors import EvaluationError, LanguageError

__all__ = ["present_signal", "ABSENT"]

#: the absent signal value
ABSENT = None


def _is_present(value: Any) -> bool:
    return value is not None


def _get(value: Any) -> Any:
    if value is None:
        raise EvaluationError("get() of an absent signal")
    return value


register("is_present", _is_present)
register("get", _get)


def present_signal(signal: Expr, binder: str, then_branch: Expr, else_branch: Expr) -> Expr:
    """``present signal(binder) -> then_branch else else_branch``.

    ``signal`` must be a variable (or ``last``/constant): the encoding
    duplicates the signal expression in the condition and the binding,
    so a stateful signal expression would advance its state twice.
    """
    if not isinstance(signal, (Var, Last, Const)):
        raise LanguageError(
            "the signal of a binding present must be a variable; "
            "name the signal with an equation first"
        )
    bound_then = Where(then_branch, (Eq(binder, Op("get", (signal,))),))
    return Present(Op("is_present", (signal,)), bound_then, else_branch)
