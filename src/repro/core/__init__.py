"""The language core: kernel AST, static analyses, semantics, compiler."""

from repro.core.ast import (
    App,
    Arrow,
    Const,
    Eq,
    Equation,
    Expr,
    Factor,
    Fby,
    Infer,
    InitEq,
    Last,
    NodeDecl,
    Observe,
    Op,
    Pair,
    PreE,
    Present,
    Program,
    Reset,
    Sample,
    Var,
    Where,
)
from repro.core.automata import AutomatonE, AutoStateE, expand_automata
from repro.core.coiter import Interpreter
from repro.core.compiled import CompiledModule, load
from repro.core.compiler import Compiler, compile_program, prepare_program
from repro.core.kinds import D, P, check_program, kind_of_expr
from repro.core.muf import MuFProgram, eval_program, pretty
from repro.core.rewrites import desugar_expr, desugar_node, desugar_program
from repro.core.signals import ABSENT, present_signal
from repro.core.scheduling import (
    check_initialization,
    instantaneous_reads,
    schedule_equations,
    schedule_node,
)
from repro.core.types import check_types

__all__ = [
    # AST
    "Expr",
    "Const",
    "Var",
    "Pair",
    "Op",
    "App",
    "Last",
    "Where",
    "Present",
    "Reset",
    "Sample",
    "Observe",
    "Factor",
    "Infer",
    "Arrow",
    "PreE",
    "Fby",
    "Equation",
    "Eq",
    "InitEq",
    "NodeDecl",
    "Program",
    # analyses
    "D",
    "P",
    "check_program",
    "kind_of_expr",
    "check_types",
    "instantaneous_reads",
    "schedule_equations",
    "schedule_node",
    "check_initialization",
    # signals
    "present_signal",
    "ABSENT",
    # automata
    "AutomatonE",
    "AutoStateE",
    "expand_automata",
    # transformations
    "desugar_expr",
    "desugar_node",
    "desugar_program",
    "prepare_program",
    "compile_program",
    "Compiler",
    # semantics
    "Interpreter",
    "MuFProgram",
    "eval_program",
    "pretty",
    "CompiledModule",
    "load",
]
