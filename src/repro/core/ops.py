"""External operator table for the language.

The kernel treats arithmetic, comparisons, ``if``, distribution
constructors, and distribution accessors as *external operators*
(Section 3.1; footnote 3 for ``if``). This module is the single
registry both the co-iterative interpreter and the muF evaluator use.

Operators receive already-evaluated arguments, which may be symbolic
under delayed sampling — the lifted implementations from
:mod:`repro.symbolic` and :mod:`repro.lang` handle both.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import numpy as np

from repro.errors import EvaluationError
from repro.lang import lifted
from repro.symbolic import app as sym_app
from repro.symbolic import is_symbolic

__all__ = ["OPS", "apply_op", "register"]


def _if_op(cond: Any, then_val: Any, else_val: Any) -> Any:
    # `if` is strict: both branches are already evaluated; the condition
    # must be concrete (delayed-sampling contexts force it upstream).
    if is_symbolic(cond):
        raise EvaluationError(
            "the condition of `if` must be concrete; force it with value()"
        )
    return then_val if cond else else_val


def _mean(dist: Any) -> Any:
    return dist.mean()


def _variance(dist: Any) -> Any:
    return dist.variance()


def _lifted_binop(name: str) -> Callable:
    return lambda a, b: sym_app(name, a, b)


def _lifted_unop(name: str) -> Callable:
    return lambda a: sym_app(name, a)


def _concrete_cmp(fn: Callable, name: str) -> Callable:
    def op(a: Any, b: Any) -> Any:
        if is_symbolic(a) or is_symbolic(b):
            raise EvaluationError(
                f"comparison {name!r} needs concrete operands; force with value()"
            )
        return fn(a, b)

    return op


OPS: Dict[str, Callable] = {
    # arithmetic — symbolic-aware (builds App nodes when needed)
    "add": _lifted_binop("add"),
    "sub": _lifted_binop("sub"),
    "mul": _lifted_binop("mul"),
    "div": _lifted_binop("div"),
    "neg": _lifted_unop("neg"),
    "matvec": _lifted_binop("matvec"),
    "getitem": _lifted_binop("getitem"),
    "exp": _lifted_unop("exp"),
    "log": _lifted_unop("log"),
    "abs": _lifted_unop("abs"),
    # comparisons & logic — concrete only
    "gt": _concrete_cmp(lambda a, b: a > b, "gt"),
    "lt": _concrete_cmp(lambda a, b: a < b, "lt"),
    "ge": _concrete_cmp(lambda a, b: a >= b, "ge"),
    "le": _concrete_cmp(lambda a, b: a <= b, "le"),
    "eq": _concrete_cmp(lambda a, b: a == b, "eq"),
    "ne": _concrete_cmp(lambda a, b: a != b, "ne"),
    "and": _concrete_cmp(lambda a, b: bool(a) and bool(b), "and"),
    "or": _concrete_cmp(lambda a, b: bool(a) or bool(b), "or"),
    "not": lambda a: not a,
    "if": _if_op,
    # pairs
    "fst": lambda p: p[0],
    "snd": lambda p: p[1],
    # distribution constructors (lifted: symbolic parameters allowed)
    "gaussian": lifted.gaussian,
    "mv_gaussian": lifted.mv_gaussian,
    "beta": lifted.beta,
    "bernoulli": lifted.bernoulli,
    "binomial": lifted.binomial,
    "gamma": lifted.gamma,
    "poisson": lifted.poisson,
    "exponential": lifted.exponential,
    "uniform": lifted.uniform,
    "delta": lifted.delta,
    # distribution accessors (the paper's driver uses mean_float)
    "mean": _mean,
    "mean_float": lambda d: float(_mean(d)),
    "variance": _variance,
    # math helpers
    "sqrt": lambda a: float(np.sqrt(a)),
    "min": lambda a, b: min(a, b),
    "max": lambda a, b: max(a, b),
}


def register(name: str, fn: Callable) -> None:
    """Register a new external operator (visible to all evaluators)."""
    OPS[name] = fn


def apply_op(name: str, args: tuple) -> Any:
    """Apply operator ``name`` to evaluated arguments."""
    fn = OPS.get(name)
    if fn is None:
        raise EvaluationError(f"unknown external operator {name!r}")
    return fn(*args)
