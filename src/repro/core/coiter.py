"""Co-iterative reference semantics of the kernel (Fig. 8 / Fig. 9).

A direct interpreter over the (prepared) kernel AST, following the
paper's semantic equations: every expression denotes an initial state
and a transition function; states are the nested tuples of Fig. 8.

Probabilistic operators take their operational meaning from the ambient
:class:`~repro.runtime.node.ProbCtx` — the sampling reading of the
measure semantics (Fig. 13/14). This interpreter is the oracle for the
semantics-preservation theorem (Theorem 4.2): on deterministic programs
it must agree exactly with the evaluation of the compiled muF term, and
on probabilistic programs the two must agree as samplers (same
distributions given the same random stream shape).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.ast import (
    App,
    Const,
    Eq,
    Expr,
    Factor,
    Infer,
    InitEq,
    Last,
    NodeDecl,
    Observe,
    Op,
    Pair,
    Present,
    Program,
    Reset,
    Sample,
    SURFACE_ONLY,
    Var,
    Where,
)
from repro.core.compiler import prepare_program
from repro.core.kinds import check_program
from repro.core.ops import apply_op
from repro.errors import EvaluationError, ScopeError
from repro.runtime.node import Node, ProbCtx, ProbNode
from repro.symbolic import is_symbolic

__all__ = ["Interpreter", "InterpretedProbNode", "InterpretedDetNode"]


class _InferInitMarker:
    """Pre-first-step state of an infer site (Dirac on the initial state)."""

    __slots__ = ("body_state",)

    def __init__(self, body_state: Any):
        self.body_state = body_state


class _EnvModel(ProbNode):
    """Adapter: an expression under the current environment as a model."""

    def __init__(self, interpreter: "Interpreter", body: Expr, initial_state: Any):
        self.interpreter = interpreter
        self.body = body
        self.initial_state = initial_state
        self.current_env: Dict[str, Any] = {}

    def init(self) -> Any:
        return self.initial_state

    def step(self, state: Any, inp: Any, ctx: ProbCtx) -> Tuple[Any, Any]:
        return self.interpreter.eval(self.body, self.current_env, state, ctx)


class Interpreter:
    """Co-iterative interpreter for a prepared kernel program."""

    def __init__(self, program: Program, prepared: bool = False):
        if not prepared:
            program = prepare_program(program)
        self.program = program
        self.kinds = check_program(program)
        self._decls: Dict[str, NodeDecl] = {d.name: d for d in program.decls}
        # one inference engine per infer site (keyed by AST identity)
        self._engines: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    # initial states (the ⟦e⟧i of Fig. 8)
    # ------------------------------------------------------------------
    def init_state(self, expr: Expr) -> Any:
        if isinstance(expr, SURFACE_ONLY):
            raise EvaluationError("surface sugar reached the interpreter")
        if isinstance(expr, (Const, Var, Last)):
            return ()
        if isinstance(expr, Pair):
            return (self.init_state(expr.first), self.init_state(expr.second))
        if isinstance(expr, Op):
            return tuple(self.init_state(a) for a in expr.args)
        if isinstance(expr, App):
            decl = self._decl(expr.func)
            return (self.init_state(expr.arg), self.init_state(decl.body))
        if isinstance(expr, Where):
            inits = [eq for eq in expr.equations if isinstance(eq, InitEq)]
            defs = [eq for eq in expr.equations if isinstance(eq, Eq)]
            return (
                tuple(init.value.value for init in inits),
                tuple(self.init_state(eq.expr) for eq in defs),
                self.init_state(expr.body),
            )
        if isinstance(expr, Present):
            return (
                self.init_state(expr.cond),
                self.init_state(expr.then_branch),
                self.init_state(expr.else_branch),
            )
        if isinstance(expr, Reset):
            return (
                self.init_state(expr.body),
                self.init_state(expr.body),
                self.init_state(expr.every),
            )
        if isinstance(expr, Sample):
            return self.init_state(expr.dist)
        if isinstance(expr, Observe):
            return (self.init_state(expr.dist), self.init_state(expr.value))
        if isinstance(expr, Factor):
            return self.init_state(expr.score)
        if isinstance(expr, Infer):
            return _InferInitMarker(self.init_state(expr.body))
        raise EvaluationError(f"cannot initialize {type(expr).__name__}")

    # ------------------------------------------------------------------
    # transition functions (the ⟦e⟧s of Fig. 8 / Fig. 9)
    # ------------------------------------------------------------------
    def eval(
        self,
        expr: Expr,
        env: Dict[str, Any],
        state: Any,
        ctx: Optional[ProbCtx],
    ) -> Tuple[Any, Any]:
        if isinstance(expr, Const):
            return expr.value, state
        if isinstance(expr, Var):
            if expr.name not in env:
                raise ScopeError(f"unbound variable {expr.name!r}")
            return env[expr.name], state
        if isinstance(expr, Last):
            key = f"{expr.name}_last"
            if key not in env:
                raise ScopeError(f"last {expr.name!r} read outside its block")
            return env[key], state
        if isinstance(expr, Pair):
            s1, s2 = state
            v1, s1 = self.eval(expr.first, env, s1, ctx)
            v2, s2 = self.eval(expr.second, env, s2, ctx)
            return (v1, v2), (s1, s2)
        if isinstance(expr, Op):
            values = []
            next_states = []
            for arg, sub in zip(expr.args, state):
                v, sub = self.eval(arg, env, sub, ctx)
                values.append(v)
                next_states.append(sub)
            return apply_op(expr.name, tuple(values)), tuple(next_states)
        if isinstance(expr, App):
            decl = self._decl(expr.func)
            s_arg, s_node = state
            v_arg, s_arg = self.eval(expr.arg, env, s_arg, ctx)
            node_env = self._bind_params(decl, v_arg)
            v, s_node = self.eval(decl.body, node_env, s_node, ctx)
            return v, (s_arg, s_node)
        if isinstance(expr, Where):
            return self._eval_where(expr, env, state, ctx)
        if isinstance(expr, Present):
            s, s1, s2 = state
            cond, s = self.eval(expr.cond, env, s, ctx)
            if is_symbolic(cond) and ctx is not None:
                cond = ctx.value(cond)
            if cond:
                v1, s1 = self.eval(expr.then_branch, env, s1, ctx)
                return v1, (s, s1, s2)
            v2, s2 = self.eval(expr.else_branch, env, s2, ctx)
            return v2, (s, s1, s2)
        if isinstance(expr, Reset):
            s0, s1, s2 = state
            every, s2 = self.eval(expr.every, env, s2, ctx)
            chosen = s0 if every else s1
            v1, s1 = self.eval(expr.body, env, chosen, ctx)
            return v1, (s0, s1, s2)
        if isinstance(expr, Sample):
            if ctx is None:
                raise EvaluationError("sample evaluated in a deterministic context")
            dist, state = self.eval(expr.dist, env, state, ctx)
            return ctx.sample(dist), state
        if isinstance(expr, Observe):
            if ctx is None:
                raise EvaluationError("observe evaluated in a deterministic context")
            s1, s2 = state
            dist, s1 = self.eval(expr.dist, env, s1, ctx)
            value, s2 = self.eval(expr.value, env, s2, ctx)
            ctx.observe(dist, value)
            return (), (s1, s2)
        if isinstance(expr, Factor):
            if ctx is None:
                raise EvaluationError("factor evaluated in a deterministic context")
            score, state = self.eval(expr.score, env, state, ctx)
            ctx.factor(score)
            return (), state
        if isinstance(expr, Infer):
            return self._eval_infer(expr, env, state)
        raise EvaluationError(f"cannot evaluate {type(expr).__name__}")

    # ------------------------------------------------------------------
    def _eval_where(self, expr: Where, env, state, ctx):
        inits = [eq for eq in expr.equations if isinstance(eq, InitEq)]
        defs = [eq for eq in expr.equations if isinstance(eq, Eq)]
        mems, eq_states, body_state = state
        scope = dict(env)
        for init, mem in zip(inits, mems):
            scope[f"{init.name}_last"] = mem
        next_eq_states = []
        for eq, sub in zip(defs, eq_states):
            value, sub = self.eval(eq.expr, scope, sub, ctx)
            scope[eq.name] = value
            next_eq_states.append(sub)
        body_value, body_state = self.eval(expr.body, scope, body_state, ctx)
        next_mems = tuple(scope[init.name] for init in inits)
        return body_value, (next_mems, tuple(next_eq_states), body_state)

    def _eval_infer(self, expr: Infer, env, state):
        from repro.inference.infer import infer as make_engine

        key = id(expr)
        if key not in self._engines:
            model = _EnvModel(self, expr.body, self.init_state(expr.body))
            self._engines[key] = make_engine(
                model,
                n_particles=expr.particles,
                method=expr.method,
                seed=expr.seed,
            )
        engine = self._engines[key]
        if isinstance(state, _InferInitMarker):
            state = engine.init()
        engine.model.current_env = env
        dist, state = engine.step(state, None)
        return dist, state

    # ------------------------------------------------------------------
    def _decl(self, name: str) -> NodeDecl:
        if name not in self._decls:
            raise ScopeError(f"application of undeclared node {name!r}")
        return self._decls[name]

    def _bind_params(self, decl: NodeDecl, value: Any) -> Dict[str, Any]:
        env: Dict[str, Any] = {}
        params = decl.param
        # nested right pairs, matching the compiler's input convention
        cursor = value
        for param in params[:-1]:
            env[param] = cursor[0]
            cursor = cursor[1]
        env[params[-1]] = cursor
        return env

    # ------------------------------------------------------------------
    def det_node(self, name: str) -> "InterpretedDetNode":
        """A deterministic node, interpreted directly."""
        return InterpretedDetNode(self, self._decl(name))

    def prob_node(self, name: str) -> "InterpretedProbNode":
        """A node as a probabilistic model for the inference engines."""
        return InterpretedProbNode(self, self._decl(name))


class InterpretedDetNode(Node):
    """Deterministic stream node backed by the interpreter."""

    def __init__(self, interpreter: Interpreter, decl: NodeDecl):
        self.interpreter = interpreter
        self.decl = decl

    def init(self) -> Any:
        return self.interpreter.init_state(self.decl.body)

    def step(self, state: Any, inp: Any) -> Tuple[Any, Any]:
        env = self.interpreter._bind_params(self.decl, inp)
        return self.interpreter.eval(self.decl.body, env, state, None)


class InterpretedProbNode(ProbNode):
    """Probabilistic stream node backed by the interpreter."""

    def __init__(self, interpreter: Interpreter, decl: NodeDecl):
        self.interpreter = interpreter
        self.decl = decl

    def init(self) -> Any:
        return self.interpreter.init_state(self.decl.body)

    def step(self, state: Any, inp: Any, ctx: ProbCtx) -> Tuple[Any, Any]:
        env = self.interpreter._bind_params(self.decl, inp)
        return self.interpreter.eval(self.decl.body, env, state, ctx)
