"""muF: the first-order functional probabilistic core calculus (Fig. 10).

::

    d ::= let f = e | d d
    e ::= c | x | (e, e) | op(e) | e(e)
        | if e then e else e | let p = e in e | fun p -> e
        | sample(e) | observe(e, e) | factor(e) | infer((fun x -> e), e)
    p ::= x | (p, p)

The evaluator gives deterministic terms their classic strict semantics;
probabilistic operators dispatch through a
:class:`~repro.runtime.node.ProbCtx`, so the same compiled term runs
under the importance sampler, the particle filter, or any delayed
sampler — the engine choice *is* the semantics of ``infer``
(Section 5).

``infer`` is "tailored for ProbZelus and always takes two arguments: a
transition function ... and a distribution of states": here the
distribution of states is the inference engine's particle set, threaded
as the deterministic state of the compiled ``infer`` expression.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.ops import apply_op
from repro.errors import MuFRuntimeError
from repro.runtime.node import ProbCtx, ProbNode

__all__ = [
    "MTerm",
    "MConst",
    "MVar",
    "MTuple",
    "MOp",
    "MApp",
    "MIf",
    "MLet",
    "MFun",
    "MSample",
    "MObserve",
    "MFactor",
    "MInfer",
    "MInferInit",
    "Pat",
    "PVar",
    "PTuple",
    "Closure",
    "MuFProgram",
    "MLetDef",
    "eval_term",
    "eval_program",
    "pretty",
]


# ----------------------------------------------------------------------
# patterns
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Pat:
    """Base class of patterns."""


@dataclass(frozen=True)
class PVar(Pat):
    name: str


@dataclass(frozen=True)
class PTuple(Pat):
    elems: Tuple[Pat, ...]


def bind_pattern(pat: Pat, value: Any, env: Dict[str, Any]) -> Dict[str, Any]:
    """Extend ``env`` with the bindings of ``pat`` matched against ``value``."""
    if isinstance(pat, PVar):
        new_env = dict(env)
        new_env[pat.name] = value
        return new_env
    if isinstance(pat, PTuple):
        if not isinstance(value, tuple) or len(value) != len(pat.elems):
            raise MuFRuntimeError(
                f"pattern arity mismatch: {pat!r} against {value!r}"
            )
        for sub_pat, sub_val in zip(pat.elems, value):
            env = bind_pattern(sub_pat, sub_val, env)
        return env
    raise MuFRuntimeError(f"unknown pattern {pat!r}")


# ----------------------------------------------------------------------
# terms
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MTerm:
    """Base class of muF terms."""


@dataclass(frozen=True)
class MConst(MTerm):
    value: Any


@dataclass(frozen=True)
class MVar(MTerm):
    name: str


@dataclass(frozen=True)
class MTuple(MTerm):
    elems: Tuple[MTerm, ...]


@dataclass(frozen=True)
class MOp(MTerm):
    name: str
    args: Tuple[MTerm, ...]


@dataclass(frozen=True)
class MApp(MTerm):
    func: MTerm
    arg: MTerm


@dataclass(frozen=True)
class MIf(MTerm):
    cond: MTerm
    then_branch: MTerm
    else_branch: MTerm


@dataclass(frozen=True)
class MLet(MTerm):
    pat: Pat
    bound: MTerm
    body: MTerm


@dataclass(frozen=True)
class MFun(MTerm):
    pat: Pat
    body: MTerm


@dataclass(frozen=True)
class MSample(MTerm):
    dist: MTerm


@dataclass(frozen=True)
class MObserve(MTerm):
    dist: MTerm
    value: MTerm


@dataclass(frozen=True)
class MFactor(MTerm):
    score: MTerm


_infer_site_counter = itertools.count()


@dataclass(frozen=True)
class MInfer(MTerm):
    """``infer(fun x -> e, sigma)`` with engine configuration.

    ``site`` identifies the syntactic infer site so the evaluator can
    keep one engine instance (and its random stream) per site.
    """

    transition: MTerm
    state: MTerm
    particles: int = 100
    method: str = "pf"
    seed: Any = None
    site: int = field(default_factory=lambda: next(_infer_site_counter))


@dataclass(frozen=True)
class MInferInit(MTerm):
    """Allocation of an ``infer`` site's state: wraps the body's A()."""

    body_init: MTerm
    site: int


class _InferInitValue:
    """Runtime marker: the pre-first-step state of an infer site."""

    __slots__ = ("body_state",)

    def __init__(self, body_state: Any):
        self.body_state = body_state

    def __repr__(self) -> str:
        return f"_InferInitValue({self.body_state!r})"


class Closure:
    """A muF function value."""

    __slots__ = ("pat", "body", "env")

    def __init__(self, pat: Pat, body: MTerm, env: Dict[str, Any]):
        self.pat = pat
        self.body = body
        self.env = env

    def __call__(self, value: Any, ctx: Optional[ProbCtx] = None) -> Any:
        return eval_term(self.body, bind_pattern(self.pat, value, self.env), ctx)

    def __repr__(self) -> str:
        return f"Closure({self.pat!r})"


class _ClosureModel(ProbNode):
    """Adapter: a muF transition closure as a :class:`ProbNode`.

    The closure is refreshed every step (it captures the step's
    environment, in particular the current input of the enclosing node),
    so the adapter holds it in a mutable slot written by the evaluator
    just before the engine steps.
    """

    def __init__(self, initial_state: Any):
        self.initial_state = initial_state
        self.current_closure: Optional[Closure] = None

    def init(self) -> Any:
        return self.initial_state

    def step(self, state: Any, inp: Any, ctx: ProbCtx) -> Tuple[Any, Any]:
        if self.current_closure is None:
            raise MuFRuntimeError("infer engine stepped without a transition closure")
        result = self.current_closure(state, ctx)
        if not (isinstance(result, tuple) and len(result) == 2):
            raise MuFRuntimeError(
                "an infer transition must return a (value, state) pair"
            )
        return result


#: engine instances per infer site (keyed by (site, id(engine_registry)))
class _EngineRegistry:
    """Per-evaluation registry of inference engines, one per infer site."""

    def __init__(self):
        self.engines: Dict[int, Any] = {}

    def engine_for(self, term: MInfer, initial_state: Any):
        from repro.inference.infer import infer as make_engine

        if term.site not in self.engines:
            model = _ClosureModel(initial_state)
            self.engines[term.site] = make_engine(
                model,
                n_particles=term.particles,
                method=term.method,
                seed=term.seed,
            )
        return self.engines[term.site]


_GLOBAL_REGISTRY_KEY = "__engines__"


def eval_term(term: MTerm, env: Dict[str, Any], ctx: Optional[ProbCtx] = None) -> Any:
    """Evaluate a muF term.

    ``ctx`` carries the probabilistic semantics; ``None`` means a
    deterministic context in which ``sample``/``observe``/``factor``
    raise.
    """
    if isinstance(term, MConst):
        return term.value
    if isinstance(term, MVar):
        if term.name not in env:
            raise MuFRuntimeError(f"unbound muF variable {term.name!r}")
        return env[term.name]
    if isinstance(term, MTuple):
        return tuple(eval_term(e, env, ctx) for e in term.elems)
    if isinstance(term, MOp):
        args = tuple(eval_term(a, env, ctx) for a in term.args)
        return apply_op(term.name, args)
    if isinstance(term, MApp):
        func = eval_term(term.func, env, ctx)
        arg = eval_term(term.arg, env, ctx)
        if not isinstance(func, Closure):
            raise MuFRuntimeError(f"application of a non-function: {func!r}")
        return func(arg, ctx)
    if isinstance(term, MIf):
        cond = eval_term(term.cond, env, ctx)
        if ctx is not None and hasattr(ctx, "value"):
            cond = ctx.value(cond) if _is_symbolic(cond) else cond
        if cond:
            return eval_term(term.then_branch, env, ctx)
        return eval_term(term.else_branch, env, ctx)
    if isinstance(term, MLet):
        bound = eval_term(term.bound, env, ctx)
        return eval_term(term.body, bind_pattern(term.pat, bound, env), ctx)
    if isinstance(term, MFun):
        return Closure(term.pat, term.body, env)
    if isinstance(term, MSample):
        if ctx is None:
            raise MuFRuntimeError("sample outside of a probabilistic context")
        return ctx.sample(eval_term(term.dist, env, ctx))
    if isinstance(term, MObserve):
        if ctx is None:
            raise MuFRuntimeError("observe outside of a probabilistic context")
        dist = eval_term(term.dist, env, ctx)
        value = eval_term(term.value, env, ctx)
        ctx.observe(dist, value)
        return ()
    if isinstance(term, MFactor):
        if ctx is None:
            raise MuFRuntimeError("factor outside of a probabilistic context")
        ctx.factor(eval_term(term.score, env, ctx))
        return ()
    if isinstance(term, MInferInit):
        return _InferInitValue(eval_term(term.body_init, env, ctx))
    if isinstance(term, MInfer):
        closure = eval_term(term.transition, env, ctx)
        sigma = eval_term(term.state, env, ctx)
        registry = env.get(_GLOBAL_REGISTRY_KEY)
        if registry is None:
            raise MuFRuntimeError(
                "infer requires an engine registry; evaluate through eval_program "
                "or provide one under the __engines__ key"
            )
        if isinstance(sigma, _InferInitValue):
            engine = registry.engine_for(term, sigma.body_state)
            sigma = engine.init()
        else:
            engine = registry.engine_for(term, None)
        engine.model.current_closure = closure
        dist, sigma_next = engine.step(sigma, None)
        return dist, sigma_next
    raise MuFRuntimeError(f"unknown muF term {term!r}")


def _is_symbolic(value: Any) -> bool:
    from repro.symbolic import is_symbolic

    return is_symbolic(value)


# ----------------------------------------------------------------------
# programs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MLetDef:
    """Top-level definition ``let f = e``."""

    name: str
    term: MTerm


@dataclass(frozen=True)
class MuFProgram:
    """A sequence of top-level definitions."""

    defs: Tuple[MLetDef, ...]


def eval_program(
    program: MuFProgram, ctx: Optional[ProbCtx] = None
) -> Dict[str, Any]:
    """Evaluate all definitions; returns the final global environment."""
    env: Dict[str, Any] = {_GLOBAL_REGISTRY_KEY: _EngineRegistry()}
    for definition in program.defs:
        env[definition.name] = eval_term(definition.term, env, ctx)
    return env


# ----------------------------------------------------------------------
# pretty printer
# ----------------------------------------------------------------------

def pretty(term: MTerm, indent: int = 0) -> str:
    """Human-readable rendering of a muF term (for docs and debugging)."""
    pad = "  " * indent
    if isinstance(term, MConst):
        return f"{term.value!r}"
    if isinstance(term, MVar):
        return term.name
    if isinstance(term, MTuple):
        return "(" + ", ".join(pretty(e, indent) for e in term.elems) + ")"
    if isinstance(term, MOp):
        return f"{term.name}(" + ", ".join(pretty(a, indent) for a in term.args) + ")"
    if isinstance(term, MApp):
        return f"{pretty(term.func, indent)}({pretty(term.arg, indent)})"
    if isinstance(term, MIf):
        return (
            f"if {pretty(term.cond, indent)} "
            f"then {pretty(term.then_branch, indent)} "
            f"else {pretty(term.else_branch, indent)}"
        )
    if isinstance(term, MLet):
        return (
            f"let {pretty_pat(term.pat)} = {pretty(term.bound, indent)} in\n"
            f"{pad}{pretty(term.body, indent)}"
        )
    if isinstance(term, MFun):
        return f"fun {pretty_pat(term.pat)} ->\n{pad}  {pretty(term.body, indent + 1)}"
    if isinstance(term, MSample):
        return f"sample({pretty(term.dist, indent)})"
    if isinstance(term, MObserve):
        return f"observe({pretty(term.dist, indent)}, {pretty(term.value, indent)})"
    if isinstance(term, MFactor):
        return f"factor({pretty(term.score, indent)})"
    if isinstance(term, MInfer):
        return (
            f"infer[{term.method},{term.particles}]"
            f"({pretty(term.transition, indent)}, {pretty(term.state, indent)})"
        )
    if isinstance(term, MInferInit):
        return f"infer_init({pretty(term.body_init, indent)})"
    return repr(term)


def pretty_pat(pat: Pat) -> str:
    if isinstance(pat, PVar):
        return pat.name
    if isinstance(pat, PTuple):
        return "(" + ", ".join(pretty_pat(p) for p in pat.elems) + ")"
    return repr(pat)
