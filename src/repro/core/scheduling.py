"""Equation scheduling and causality analysis (Section 3.1).

The compiler "reorders the equations according to their dependencies":
initializations first, and an equation ``x = e`` before any equation
whose expression reads ``x`` *instantaneously* (i.e., not under a
``last``). Programs whose instantaneous dependencies are cyclic cannot
be scheduled and are rejected (:class:`~repro.errors.CausalityError`),
mirroring the Zelus causality analysis.

Also implements the paper's normalization: every initialized variable
must be defined by a subsequent equation (``init x = c`` without a
defining ``x = e`` gets the implicit ``x = last x``), and the
initialization analysis that every ``last x`` has a reachable ``init``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.ast import (
    App,
    Arrow,
    Const,
    Eq,
    Equation,
    Expr,
    Factor,
    Fby,
    Infer,
    InitEq,
    Last,
    NodeDecl,
    Observe,
    Op,
    Pair,
    PreE,
    Present,
    Reset,
    Sample,
    Var,
    Where,
)
from repro.errors import CausalityError, InitializationError

__all__ = [
    "instantaneous_reads",
    "last_reads",
    "schedule_equations",
    "schedule_expr",
    "schedule_node",
    "check_initialization",
]


def _children(expr: Expr) -> Tuple[Expr, ...]:
    """Immediate sub-expressions of ``expr``."""
    if isinstance(expr, Pair):
        return (expr.first, expr.second)
    if isinstance(expr, Op):
        return expr.args
    if isinstance(expr, App):
        return (expr.arg,)
    if isinstance(expr, Present):
        return (expr.cond, expr.then_branch, expr.else_branch)
    if isinstance(expr, Reset):
        return (expr.body, expr.every)
    if isinstance(expr, Sample):
        return (expr.dist,)
    if isinstance(expr, Observe):
        return (expr.dist, expr.value)
    if isinstance(expr, Factor):
        return (expr.score,)
    if isinstance(expr, Infer):
        return (expr.body,)
    if isinstance(expr, Arrow):
        return (expr.first, expr.then)
    if isinstance(expr, PreE):
        return (expr.expr,)
    if isinstance(expr, Fby):
        return (expr.first, expr.then)
    return ()


def instantaneous_reads(expr: Expr) -> Set[str]:
    """Variables read by ``expr`` in the current instant.

    ``last x`` is not an instantaneous read. A nested ``where`` shadows
    the names it defines. ``pre e`` delays its argument, so nothing
    inside it is an instantaneous read (matters only before desugaring).
    """
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, (Last, Const)):
        return set()
    if isinstance(expr, (PreE, Fby)):
        # pre e / the delayed side of fby read e only at the previous
        # instant; fby's first operand is read at the first instant only,
        # which is still "this" instant for scheduling purposes.
        if isinstance(expr, Fby):
            return instantaneous_reads(expr.first)
        return set()
    if isinstance(expr, Arrow):
        return instantaneous_reads(expr.first) | instantaneous_reads(expr.then)
    if isinstance(expr, Where):
        bound = {eq.name for eq in expr.equations if isinstance(eq, Eq)}
        bound |= {eq.name for eq in expr.equations if isinstance(eq, InitEq)}
        inner: Set[str] = instantaneous_reads(expr.body)
        for eq in expr.equations:
            if isinstance(eq, Eq):
                inner |= instantaneous_reads(eq.expr)
        return inner - bound
    reads: Set[str] = set()
    for child in _children(expr):
        reads |= instantaneous_reads(child)
    return reads


def last_reads(expr: Expr) -> Set[str]:
    """Variables read through ``last`` anywhere in ``expr`` (same scope)."""
    if isinstance(expr, Last):
        return {expr.name}
    if isinstance(expr, Where):
        bound = {eq.name for eq in expr.equations if isinstance(eq, (Eq, InitEq))}
        inner: Set[str] = last_reads(expr.body)
        for eq in expr.equations:
            if isinstance(eq, Eq):
                inner |= last_reads(eq.expr)
        return inner - bound
    reads: Set[str] = set()
    for child in _children(expr):
        reads |= last_reads(child)
    return reads


def schedule_equations(equations: Tuple[Equation, ...]) -> Tuple[Equation, ...]:
    """Order equations: inits first, then a topological order of the rest.

    Raises :class:`CausalityError` if the instantaneous-dependency graph
    has a cycle. The sort is stable: among independent equations the
    source order is preserved.
    """
    inits = [eq for eq in equations if isinstance(eq, InitEq)]
    defs = [eq for eq in equations if isinstance(eq, Eq)]

    # Normalization: init x = c with no defining equation for x gets the
    # implicit x = last x (Section 3.1).
    defined = {eq.name for eq in defs}
    for init_eq in inits:
        if init_eq.name not in defined:
            defs.append(Eq(init_eq.name, Last(init_eq.name)))
            defined.add(init_eq.name)

    seen_names: Set[str] = set()
    for eq in defs:
        if eq.name in seen_names:
            raise CausalityError(f"variable {eq.name!r} is defined twice")
        seen_names.add(eq.name)

    local = {eq.name for eq in defs}
    deps: Dict[str, Set[str]] = {
        eq.name: instantaneous_reads(eq.expr) & local for eq in defs
    }
    ordered: List[Eq] = []
    placed: Set[str] = set()
    pending = list(defs)
    while pending:
        progressed = False
        remaining: List[Eq] = []
        for eq in pending:
            if deps[eq.name] <= placed:
                ordered.append(eq)
                placed.add(eq.name)
                progressed = True
            else:
                remaining.append(eq)
        if not progressed:
            cycle = ", ".join(sorted(eq.name for eq in remaining))
            raise CausalityError(
                f"instantaneous dependency cycle among equations: {cycle}"
            )
        pending = remaining
    return tuple(inits) + tuple(ordered)


def schedule_expr(expr: Expr) -> Expr:
    """Recursively schedule every ``where`` block in ``expr``."""
    if isinstance(expr, Where):
        equations = tuple(
            eq if isinstance(eq, InitEq) else Eq(eq.name, schedule_expr(eq.expr))
            for eq in expr.equations
        )
        return Where(schedule_expr(expr.body), schedule_equations(equations))
    if isinstance(expr, Pair):
        return Pair(schedule_expr(expr.first), schedule_expr(expr.second))
    if isinstance(expr, Op):
        return Op(expr.name, tuple(schedule_expr(a) for a in expr.args))
    if isinstance(expr, App):
        return App(expr.func, schedule_expr(expr.arg))
    if isinstance(expr, Present):
        return Present(
            schedule_expr(expr.cond),
            schedule_expr(expr.then_branch),
            schedule_expr(expr.else_branch),
        )
    if isinstance(expr, Reset):
        return Reset(schedule_expr(expr.body), schedule_expr(expr.every))
    if isinstance(expr, Sample):
        return Sample(schedule_expr(expr.dist))
    if isinstance(expr, Observe):
        return Observe(schedule_expr(expr.dist), schedule_expr(expr.value))
    if isinstance(expr, Factor):
        return Factor(schedule_expr(expr.score))
    if isinstance(expr, Infer):
        return Infer(
            schedule_expr(expr.body), expr.particles, expr.method, expr.seed
        )
    if isinstance(expr, Arrow):
        return Arrow(schedule_expr(expr.first), schedule_expr(expr.then))
    if isinstance(expr, PreE):
        return PreE(schedule_expr(expr.expr))
    if isinstance(expr, Fby):
        return Fby(schedule_expr(expr.first), schedule_expr(expr.then))
    return expr


def schedule_node(decl: NodeDecl) -> NodeDecl:
    """Schedule every ``where`` block of a node's body."""
    return NodeDecl(decl.name, decl.param, schedule_expr(decl.body))


def check_initialization(expr: Expr, initialized: Set[str] = None) -> None:
    """Verify that every ``last x`` has an ``init x`` in scope.

    ``initialized`` carries the init-equations of enclosing blocks.
    """
    if initialized is None:
        initialized = set()
    if isinstance(expr, Last):
        if expr.name not in initialized:
            raise InitializationError(
                f"last {expr.name!r} used without an init equation in scope"
            )
        return
    if isinstance(expr, Where):
        inner = initialized | {
            eq.name for eq in expr.equations if isinstance(eq, InitEq)
        }
        check_initialization(expr.body, inner)
        for eq in expr.equations:
            if isinstance(eq, Eq):
                check_initialization(eq.expr, inner)
        return
    for child in _children(expr):
        check_initialization(child, initialized)
