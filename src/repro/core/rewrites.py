"""Source-to-source rewrites: eliminating ``->``, ``pre``, and ``fby``.

Section 3.1 shows the transformation on the running example::

    x = 0 -> pre x + 1

becomes::

    x where rec init fst = true and init x = 0
      and fst = false and x = if last fst then 0 else last x + 1

The general scheme implemented here, applied per ``where`` block:

* ``e1 fby e2``  ==>  ``e1 -> pre e2``
* ``pre e``      ==>  ``last p`` plus equations ``init p = 0`` and
  ``p = e`` for a fresh ``p`` (the init value is irrelevant: the
  initialization analysis requires a ``->`` to guard the first instant),
* ``e1 -> e2``   ==>  ``if last fst then e1 else e2`` plus the shared
  per-block equations ``init fst = true`` and ``fst = false``.

Expressions outside any ``where`` (e.g. a bare node body) are wrapped in
one so the auxiliary equations have a home.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

from repro.core.ast import (
    App,
    Arrow,
    Const,
    Eq,
    Equation,
    Expr,
    Factor,
    Fby,
    Infer,
    InitEq,
    Last,
    NodeDecl,
    Observe,
    Op,
    Pair,
    PreE,
    Present,
    Program,
    Reset,
    Sample,
    SURFACE_ONLY,
    Var,
    Where,
)

__all__ = ["desugar_expr", "desugar_node", "desugar_program", "has_surface_sugar"]

_fresh_counter = itertools.count()


def _fresh(prefix: str) -> str:
    return f"_{prefix}{next(_fresh_counter)}"


def has_surface_sugar(expr: Expr) -> bool:
    """True if ``expr`` still contains ``->``, ``pre``, or ``fby``."""
    if isinstance(expr, SURFACE_ONLY):
        return True
    if isinstance(expr, Pair):
        return has_surface_sugar(expr.first) or has_surface_sugar(expr.second)
    if isinstance(expr, Op):
        return any(has_surface_sugar(a) for a in expr.args)
    if isinstance(expr, App):
        return has_surface_sugar(expr.arg)
    if isinstance(expr, Where):
        if has_surface_sugar(expr.body):
            return True
        return any(
            isinstance(eq, Eq) and has_surface_sugar(eq.expr) for eq in expr.equations
        )
    if isinstance(expr, Present):
        return (
            has_surface_sugar(expr.cond)
            or has_surface_sugar(expr.then_branch)
            or has_surface_sugar(expr.else_branch)
        )
    if isinstance(expr, Reset):
        return has_surface_sugar(expr.body) or has_surface_sugar(expr.every)
    if isinstance(expr, Sample):
        return has_surface_sugar(expr.dist)
    if isinstance(expr, Observe):
        return has_surface_sugar(expr.dist) or has_surface_sugar(expr.value)
    if isinstance(expr, Factor):
        return has_surface_sugar(expr.score)
    if isinstance(expr, Infer):
        return has_surface_sugar(expr.body)
    return False


class _BlockRewriter:
    """Rewrites the expressions of one ``where`` block.

    Auxiliary equations produced by the rewrite are collected and
    appended to the block. The ``fst`` flag equations are shared by all
    the arrows of the block.
    """

    def __init__(self):
        self.extra: List[Equation] = []
        self._fst_name = None

    def _fst(self) -> str:
        if self._fst_name is None:
            self._fst_name = _fresh("fst")
            self.extra.append(InitEq(self._fst_name, Const(True)))
            self.extra.append(Eq(self._fst_name, Const(False)))
        return self._fst_name

    def rewrite(self, expr: Expr) -> Expr:
        if isinstance(expr, Fby):
            return self.rewrite(Arrow(expr.first, PreE(expr.then)))
        if isinstance(expr, PreE):
            name = _fresh("pre")
            inner = self.rewrite(expr.expr)
            self.extra.append(InitEq(name, Const(0.0)))
            self.extra.append(Eq(name, inner))
            return Last(name)
        if isinstance(expr, Arrow):
            first = self.rewrite(expr.first)
            then = self.rewrite(expr.then)
            return Op("if", (Last(self._fst()), first, then))
        if isinstance(expr, Pair):
            return Pair(self.rewrite(expr.first), self.rewrite(expr.second))
        if isinstance(expr, Op):
            return Op(expr.name, tuple(self.rewrite(a) for a in expr.args))
        if isinstance(expr, App):
            return App(expr.func, self.rewrite(expr.arg))
        if isinstance(expr, Present):
            return Present(
                self.rewrite(expr.cond),
                self.rewrite(expr.then_branch),
                self.rewrite(expr.else_branch),
            )
        if isinstance(expr, Reset):
            return Reset(self.rewrite(expr.body), self.rewrite(expr.every))
        if isinstance(expr, Sample):
            return Sample(self.rewrite(expr.dist))
        if isinstance(expr, Observe):
            return Observe(self.rewrite(expr.dist), self.rewrite(expr.value))
        if isinstance(expr, Factor):
            return Factor(self.rewrite(expr.score))
        if isinstance(expr, Infer):
            return Infer(
                desugar_expr(expr.body), expr.particles, expr.method, expr.seed
            )
        if isinstance(expr, Where):
            return desugar_expr(expr)  # nested block: its own rewriter
        return expr


def desugar_expr(expr: Expr) -> Expr:
    """Eliminate all surface sugar from ``expr``.

    Sugar appearing outside any ``where`` causes the expression to be
    wrapped in one, giving the auxiliary equations a block to live in.
    """
    if isinstance(expr, Where):
        rewriter = _BlockRewriter()
        body = rewriter.rewrite(expr.body)
        equations: Tuple[Equation, ...] = tuple(
            eq if isinstance(eq, InitEq) else Eq(eq.name, rewriter.rewrite(eq.expr))
            for eq in expr.equations
        )
        return Where(body, equations + tuple(rewriter.extra))
    if has_surface_sugar(expr):
        return desugar_expr(Where(expr, ()))
    rewriter = _BlockRewriter()
    result = rewriter.rewrite(expr)
    assert not rewriter.extra, "sugar-free rewrite must not add equations"
    return result


def desugar_node(decl: NodeDecl) -> NodeDecl:
    """Desugar a node declaration's body."""
    return NodeDecl(decl.name, decl.param, desugar_expr(decl.body))


def desugar_program(program: Program) -> Program:
    """Desugar every node of a program."""
    return Program(tuple(desugar_node(d) for d in program.decls))
