"""Adapters exposing compiled muF nodes as runtime stream nodes.

:func:`load` compiles (if necessary) and evaluates a kernel program's
muF image, returning a :class:`CompiledModule` from which individual
nodes can be instantiated either as deterministic
:class:`~repro.runtime.node.Node` values or as probabilistic
:class:`~repro.runtime.node.ProbNode` models for the inference engines.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.ast import Program
from repro.core.compiler import compile_program, prepare_program
from repro.core.kinds import D, check_program
from repro.core.muf import Closure, MuFProgram, eval_program
from repro.errors import CompilationError, ScopeError
from repro.runtime.node import Node, ProbCtx, ProbNode

__all__ = ["CompiledDetNode", "CompiledProbNode", "CompiledModule", "load"]


class CompiledDetNode(Node):
    """A compiled deterministic node (kind D)."""

    def __init__(self, init_value: Any, step_closure: Closure):
        self._init_value = init_value
        self._step = step_closure

    def init(self) -> Any:
        return self._init_value

    def step(self, state: Any, inp: Any) -> Tuple[Any, Any]:
        value, next_state = self._step((state, inp), None)
        return value, next_state


class CompiledProbNode(ProbNode):
    """A compiled probabilistic node (kind P): a model for ``infer``."""

    def __init__(self, init_value: Any, step_closure: Closure):
        self._init_value = init_value
        self._step = step_closure

    def init(self) -> Any:
        return self._init_value

    def step(self, state: Any, inp: Any, ctx: ProbCtx) -> Tuple[Any, Any]:
        value, next_state = self._step((state, inp), ctx)
        return value, next_state


class CompiledModule:
    """The evaluated muF image of a program: a namespace of nodes."""

    def __init__(self, env: Dict[str, Any], kinds: Dict[str, str]):
        self._env = env
        self._kinds = kinds

    def node_names(self):
        """Names of the nodes defined by the program."""
        return sorted(self._kinds)

    def kind(self, name: str) -> str:
        return self._kinds[name]

    def det_node(self, name: str) -> CompiledDetNode:
        """Instantiate a deterministic node."""
        self._check(name)
        if self._kinds[name] != D:
            raise CompilationError(
                f"node {name!r} is probabilistic; use prob_node() and infer"
            )
        return CompiledDetNode(self._env[f"{name}_init"], self._env[f"{name}_step"])

    def prob_node(self, name: str) -> CompiledProbNode:
        """Instantiate a node as a probabilistic model (D lifts to P)."""
        self._check(name)
        return CompiledProbNode(self._env[f"{name}_init"], self._env[f"{name}_step"])

    def _check(self, name: str) -> None:
        if name not in self._kinds:
            raise ScopeError(f"program defines no node {name!r}")


def load(program: Program, muf_program: Optional[MuFProgram] = None) -> CompiledModule:
    """Prepare, compile, and evaluate a program into a module.

    ``muf_program`` can be supplied to reuse an existing compilation.
    """
    prepared = prepare_program(program)
    kinds = check_program(prepared)
    if muf_program is None:
        muf_program = compile_program(prepared, prepared=True)
    env = eval_program(muf_program)
    return CompiledModule(env, kinds)
