"""Deterministic/probabilistic kind system (Fig. 7).

Every expression is assigned kind ``D`` (deterministic) or ``P``
(probabilistic). The rules enforce, in particular:

* ``sample``/``observe``/``factor`` are probabilistic and their
  arguments must be deterministic,
* node application ``f(e)`` takes a deterministic argument and has the
  kind of the node,
* ``infer`` is deterministic and its body must be probabilistic (after
  lifting via the sub-typing rule ``D <= P``),
* probabilistic expressions only exist under an ``infer``.

The checker computes the *minimal* kind bottom-up (sub-typing lifts
``D`` to ``P`` implicitly) and raises :class:`~repro.errors.KindError`
on violations.
"""

from __future__ import annotations

from typing import Dict

from repro.core.ast import (
    App,
    Arrow,
    Const,
    Eq,
    Equation,
    Expr,
    Factor,
    Fby,
    Infer,
    InitEq,
    Last,
    NodeDecl,
    Observe,
    Op,
    Pair,
    PreE,
    Present,
    Program,
    Reset,
    Sample,
    Var,
    Where,
)
from repro.errors import KindError, ScopeError

__all__ = ["D", "P", "kind_of_expr", "kind_of_node", "check_program"]

D = "D"
P = "P"


def _join(*kinds: str) -> str:
    """Least upper bound under D <= P."""
    return P if P in kinds else D


def _require_deterministic(kind: str, what: str) -> None:
    if kind != D:
        raise KindError(f"{what} must be deterministic (kind D), found kind P")


def kind_of_expr(expr: Expr, env: Dict[str, str]) -> str:
    """Minimal kind of ``expr`` in node-kind environment ``env``."""
    if isinstance(expr, (Const, Var, Last)):
        return D
    if isinstance(expr, Pair):
        return _join(kind_of_expr(expr.first, env), kind_of_expr(expr.second, env))
    if isinstance(expr, Op):
        return _join(*(kind_of_expr(a, env) for a in expr.args)) if expr.args else D
    if isinstance(expr, App):
        if expr.func not in env:
            raise ScopeError(f"application of undeclared node {expr.func!r}")
        _require_deterministic(
            kind_of_expr(expr.arg, env), f"the argument of node {expr.func!r}"
        )
        return env[expr.func]
    if isinstance(expr, Where):
        body_kind = kind_of_expr(expr.body, env)
        eq_kind = _join(*(kind_of_equation(e, env) for e in expr.equations)) if expr.equations else D
        return _join(body_kind, eq_kind)
    if isinstance(expr, Present):
        return _join(
            kind_of_expr(expr.cond, env),
            kind_of_expr(expr.then_branch, env),
            kind_of_expr(expr.else_branch, env),
        )
    if isinstance(expr, Reset):
        return _join(kind_of_expr(expr.body, env), kind_of_expr(expr.every, env))
    if isinstance(expr, Sample):
        _require_deterministic(kind_of_expr(expr.dist, env), "the argument of sample")
        return P
    if isinstance(expr, Observe):
        _require_deterministic(kind_of_expr(expr.dist, env), "the distribution of observe")
        _require_deterministic(kind_of_expr(expr.value, env), "the value of observe")
        return P
    if isinstance(expr, Factor):
        _require_deterministic(kind_of_expr(expr.score, env), "the argument of factor")
        return P
    if isinstance(expr, Infer):
        # the body is probabilistic; D lifts to P by sub-typing, so any
        # kind is acceptable here, and the result is deterministic.
        kind_of_expr(expr.body, env)
        return D
    if isinstance(expr, Arrow):
        return _join(kind_of_expr(expr.first, env), kind_of_expr(expr.then, env))
    if isinstance(expr, PreE):
        # `pre` delays a deterministic stream
        _require_deterministic(kind_of_expr(expr.expr, env), "the argument of pre")
        return D
    if isinstance(expr, Fby):
        return _join(kind_of_expr(expr.first, env), kind_of_expr(expr.then, env))
    raise KindError(f"unknown expression {type(expr).__name__}")


def kind_of_equation(equation: Equation, env: Dict[str, str]) -> str:
    """Kind of an equation: the kind of its defining expression."""
    if isinstance(equation, Eq):
        return kind_of_expr(equation.expr, env)
    if isinstance(equation, InitEq):
        return D  # init x = c with c a constant
    raise KindError(f"unknown equation {type(equation).__name__}")


def kind_of_node(decl: NodeDecl, env: Dict[str, str]) -> str:
    """Kind of a node declaration (the kind of its body)."""
    return kind_of_expr(decl.body, env)


def check_program(program: Program) -> Dict[str, str]:
    """Kind-check a whole program; returns the node-kind environment.

    Also enforces the global invariant that probabilistic nodes are only
    *applied* inside ``infer`` or inside other probabilistic nodes —
    which the rules above guarantee compositionally, since ``f(e)``
    propagates ``P`` upward and only ``infer`` discharges it.
    """
    env: Dict[str, str] = {}
    for decl in program.decls:
        env[decl.name] = kind_of_node(decl, env)
    return env
