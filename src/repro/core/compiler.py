"""Compilation of the ProbZelus kernel to muF (Fig. 11 / Fig. 20 / Fig. 21).

Each expression compiles to a muF function of type ``S -> T x S``
(:func:`compile_expr`, the paper's ``C``); its initial state is built by
the allocation function (:func:`alloc_expr`, the paper's ``A``). A node
declaration yields two muF definitions, ``f_step`` and ``f_init``.

The compilation is the same for deterministic and probabilistic
expressions (Lemma 4.1: kinds are preserved); the probabilistic
operators become muF's ``sample``/``observe``/``factor``, and ``infer``
becomes the two-argument muF ``infer`` threading the distribution of
states.

Deviation from the figure: our ``op`` and node parameters are n-ary, so
the state of ``op(e1, ..., en)`` is the tuple of the argument states
(the figure's unary case is the ``n = 1`` instance).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from repro.core.ast import (
    App,
    Const,
    Eq,
    Expr,
    Factor,
    Infer,
    InitEq,
    Last,
    NodeDecl,
    Observe,
    Op,
    Pair,
    Present,
    Program,
    Reset,
    Sample,
    SURFACE_ONLY,
    Var,
    Where,
)
from repro.core.kinds import check_program
from repro.core.muf import (
    MApp,
    MConst,
    MFactor,
    MFun,
    MIf,
    MInfer,
    MInferInit,
    MLet,
    MLetDef,
    MObserve,
    MOp,
    MSample,
    MTerm,
    MTuple,
    MuFProgram,
    MVar,
    Pat,
    PTuple,
    PVar,
)
from repro.core.rewrites import desugar_program
from repro.core.scheduling import check_initialization, schedule_node
from repro.errors import CompilationError

__all__ = ["Compiler", "compile_program", "prepare_program"]

_name_counter = itertools.count()


def _fresh(prefix: str) -> str:
    return f"_{prefix}{next(_name_counter)}"


def _let_pair(value_name: str, state_name: str, bound: MTerm, body: MTerm) -> MTerm:
    """``let (v, s) = bound in body``."""
    return MLet(PTuple((PVar(value_name), PVar(state_name))), bound, body)


def _param_pattern(params: Tuple[str, ...]) -> Pat:
    """Input pattern of a node: nested right pairs, matching ``Pair`` values.

    A node ``let node f (a, b, c) = e`` is applied as
    ``f (a, (b, c))`` — pairs nest to the right, as in the kernel where
    tuples are built from binary pairs.
    """
    if len(params) == 1:
        return PVar(params[0])
    head, tail = params[0], params[1:]
    return PTuple((PVar(head), _param_pattern(tail)))


def prepare_program(program: Program) -> Program:
    """Front end: expand automata, desugar, schedule, and check a program."""
    from repro.core.automata import expand_program

    program = expand_program(program)
    program = desugar_program(program)
    program = Program(tuple(schedule_node(d) for d in program.decls))
    check_program(program)
    for decl in program.decls:
        check_initialization(decl.body)
    return program


class Compiler:
    """Compiles a prepared (desugared, scheduled) program to muF."""

    def __init__(self, program: Program):
        self.program = program
        # One infer site id per Infer AST occurrence, shared by C and A.
        self._infer_sites: Dict[int, int] = {}
        self._site_counter = itertools.count(10_000)

    # ------------------------------------------------------------------
    def compile(self) -> MuFProgram:
        defs: List[MLetDef] = []
        for decl in self.program.decls:
            defs.append(MLetDef(f"{decl.name}_init", self.alloc_expr(decl.body)))
            defs.append(MLetDef(f"{decl.name}_step", self._compile_decl(decl)))
        return MuFProgram(tuple(defs))

    def _compile_decl(self, decl: NodeDecl) -> MTerm:
        # f_step = fun (s, x) -> C(e)(s)
        state_name = _fresh("s")
        param_pat = _param_pattern(decl.param)
        body = MApp(self.compile_expr(decl.body), MVar(state_name))
        return MFun(PTuple((PVar(state_name), param_pat)), body)

    def _infer_site(self, expr: Infer) -> int:
        key = id(expr)
        if key not in self._infer_sites:
            self._infer_sites[key] = next(self._site_counter)
        return self._infer_sites[key]

    # ------------------------------------------------------------------
    # C(e): Fig. 20
    # ------------------------------------------------------------------
    def compile_expr(self, expr: Expr) -> MTerm:
        if isinstance(expr, SURFACE_ONLY):
            raise CompilationError(
                f"surface construct {type(expr).__name__} reached the compiler; "
                "run prepare_program first"
            )
        if isinstance(expr, Const):
            s = _fresh("s")
            return MFun(PVar(s), MTuple((MConst(expr.value), MVar(s))))
        if isinstance(expr, Var):
            s = _fresh("s")
            return MFun(PVar(s), MTuple((MVar(expr.name), MVar(s))))
        if isinstance(expr, Last):
            s = _fresh("s")
            return MFun(PVar(s), MTuple((MVar(f"{expr.name}_last"), MVar(s))))
        if isinstance(expr, Pair):
            return self._compile_nary(
                (expr.first, expr.second),
                lambda vals: MTuple(tuple(vals)),
            )
        if isinstance(expr, Op):
            return self._compile_nary(
                expr.args, lambda vals: MOp(expr.name, tuple(vals))
            )
        if isinstance(expr, App):
            return self._compile_app(expr)
        if isinstance(expr, Where):
            return self._compile_where(expr)
        if isinstance(expr, Present):
            return self._compile_present(expr)
        if isinstance(expr, Reset):
            return self._compile_reset(expr)
        if isinstance(expr, Sample):
            s, mu, s2, v = _fresh("s"), _fresh("mu"), _fresh("s"), _fresh("v")
            return MFun(
                PVar(s),
                _let_pair(
                    mu,
                    s2,
                    MApp(self.compile_expr(expr.dist), MVar(s)),
                    MLet(
                        PVar(v),
                        MSample(MVar(mu)),
                        MTuple((MVar(v), MVar(s2))),
                    ),
                ),
            )
        if isinstance(expr, Observe):
            s1, s2 = _fresh("s"), _fresh("s")
            v1, s1p = _fresh("v"), _fresh("s")
            v2, s2p = _fresh("v"), _fresh("s")
            return MFun(
                PTuple((PVar(s1), PVar(s2))),
                _let_pair(
                    v1,
                    s1p,
                    MApp(self.compile_expr(expr.dist), MVar(s1)),
                    _let_pair(
                        v2,
                        s2p,
                        MApp(self.compile_expr(expr.value), MVar(s2)),
                        MLet(
                            PVar(_fresh("u")),
                            MObserve(MVar(v1), MVar(v2)),
                            MTuple((MConst(()), MTuple((MVar(s1p), MVar(s2p))))),
                        ),
                    ),
                ),
            )
        if isinstance(expr, Factor):
            s, v, sp = _fresh("s"), _fresh("v"), _fresh("s")
            return MFun(
                PVar(s),
                _let_pair(
                    v,
                    sp,
                    MApp(self.compile_expr(expr.score), MVar(s)),
                    MLet(
                        PVar(_fresh("u")),
                        MFactor(MVar(v)),
                        MTuple((MConst(()), MVar(sp))),
                    ),
                ),
            )
        if isinstance(expr, Infer):
            sigma = _fresh("sigma")
            site = self._infer_site(expr)
            return MFun(
                PVar(sigma),
                MInfer(
                    self.compile_expr(expr.body),
                    MVar(sigma),
                    particles=expr.particles,
                    method=expr.method,
                    seed=expr.seed,
                    site=site,
                ),
            )
        raise CompilationError(f"cannot compile {type(expr).__name__}")

    def _compile_nary(self, args: Tuple[Expr, ...], make_value) -> MTerm:
        """Shared shape for pairs and operator applications."""
        state_names = [_fresh("s") for _ in args]
        value_names = [_fresh("v") for _ in args]
        next_names = [_fresh("s") for _ in args]
        result: MTerm = MTuple(
            (
                make_value([MVar(v) for v in value_names]),
                MTuple(tuple(MVar(n) for n in next_names)),
            )
        )
        for arg, s, v, n in reversed(list(zip(args, state_names, value_names, next_names))):
            result = _let_pair(v, n, MApp(self.compile_expr(arg), MVar(s)), result)
        return MFun(PTuple(tuple(PVar(s) for s in state_names)), result)

    def _compile_app(self, expr: App) -> MTerm:
        s1, s2 = _fresh("s"), _fresh("s")
        v1, s1p = _fresh("v"), _fresh("s")
        v2, s2p = _fresh("v"), _fresh("s")
        return MFun(
            PTuple((PVar(s1), PVar(s2))),
            _let_pair(
                v1,
                s1p,
                MApp(self.compile_expr(expr.arg), MVar(s1)),
                _let_pair(
                    v2,
                    s2p,
                    MApp(MVar(f"{expr.func}_step"), MTuple((MVar(s2), MVar(v1)))),
                    MTuple((MVar(v2), MTuple((MVar(s1p), MVar(s2p))))),
                ),
            ),
        )

    def _compile_where(self, expr: Where) -> MTerm:
        inits = [eq for eq in expr.equations if isinstance(eq, InitEq)]
        defs = [eq for eq in expr.equations if isinstance(eq, Eq)]
        mem_names = [_fresh("m") for _ in inits]
        eq_state_names = [_fresh("s") for _ in defs]
        body_state = _fresh("s")
        body_value, body_next = _fresh("v"), _fresh("s")
        eq_next_names = [_fresh("s") for _ in defs]

        # innermost: the result tuple
        result: MTerm = MTuple(
            (
                MVar(body_value),
                MTuple(
                    (
                        MTuple(tuple(MVar(init.name) for init in inits)),
                        MTuple(tuple(MVar(n) for n in eq_next_names)),
                        MVar(body_next),
                    )
                ),
            )
        )
        # let (v, s') = C(body)(s) in result
        result = _let_pair(
            body_value,
            body_next,
            MApp(self.compile_expr(expr.body), MVar(body_state)),
            result,
        )
        # equations, innermost-last
        for eq, s_name, n_name in reversed(list(zip(defs, eq_state_names, eq_next_names))):
            v_name = _fresh("v")
            result = _let_pair(
                v_name,
                n_name,
                MApp(self.compile_expr(eq.expr), MVar(s_name)),
                MLet(PVar(eq.name), MVar(v_name), result),
            )
        # x_last bindings from the memory slots
        for init, m_name in reversed(list(zip(inits, mem_names))):
            result = MLet(PVar(f"{init.name}_last"), MVar(m_name), result)
        pattern = PTuple(
            (
                PTuple(tuple(PVar(m) for m in mem_names)),
                PTuple(tuple(PVar(s) for s in eq_state_names)),
                PVar(body_state),
            )
        )
        return MFun(pattern, result)

    def _compile_present(self, expr: Present) -> MTerm:
        s, s1, s2 = _fresh("s"), _fresh("s"), _fresh("s")
        v, sp = _fresh("v"), _fresh("s")
        v1, s1p = _fresh("v"), _fresh("s")
        v2, s2p = _fresh("v"), _fresh("s")
        then_branch = _let_pair(
            v1,
            s1p,
            MApp(self.compile_expr(expr.then_branch), MVar(s1)),
            MTuple((MVar(v1), MTuple((MVar(sp), MVar(s1p), MVar(s2))))),
        )
        else_branch = _let_pair(
            v2,
            s2p,
            MApp(self.compile_expr(expr.else_branch), MVar(s2)),
            MTuple((MVar(v2), MTuple((MVar(sp), MVar(s1), MVar(s2p))))),
        )
        return MFun(
            PTuple((PVar(s), PVar(s1), PVar(s2))),
            _let_pair(
                v,
                sp,
                MApp(self.compile_expr(expr.cond), MVar(s)),
                MIf(MVar(v), then_branch, else_branch),
            ),
        )

    def _compile_reset(self, expr: Reset) -> MTerm:
        s0, s1, s2 = _fresh("s"), _fresh("s"), _fresh("s")
        v2, s2p = _fresh("v"), _fresh("s")
        v1, s1p = _fresh("v"), _fresh("s")
        return MFun(
            PTuple((PVar(s0), PVar(s1), PVar(s2))),
            _let_pair(
                v2,
                s2p,
                MApp(self.compile_expr(expr.every), MVar(s2)),
                _let_pair(
                    v1,
                    s1p,
                    MApp(
                        self.compile_expr(expr.body),
                        MOp("if", (MVar(v2), MVar(s0), MVar(s1))),
                    ),
                    MTuple((MVar(v1), MTuple((MVar(s0), MVar(s1p), MVar(s2p))))),
                ),
            ),
        )

    # ------------------------------------------------------------------
    # A(e): Fig. 21
    # ------------------------------------------------------------------
    def alloc_expr(self, expr: Expr) -> MTerm:
        if isinstance(expr, (Const, Var, Last)):
            return MConst(())
        if isinstance(expr, Pair):
            return MTuple((self.alloc_expr(expr.first), self.alloc_expr(expr.second)))
        if isinstance(expr, Op):
            return MTuple(tuple(self.alloc_expr(a) for a in expr.args))
        if isinstance(expr, App):
            return MTuple((self.alloc_expr(expr.arg), MVar(f"{expr.func}_init")))
        if isinstance(expr, Where):
            inits = [eq for eq in expr.equations if isinstance(eq, InitEq)]
            defs = [eq for eq in expr.equations if isinstance(eq, Eq)]
            return MTuple(
                (
                    MTuple(tuple(MConst(init.value.value) for init in inits)),
                    MTuple(tuple(self.alloc_expr(eq.expr) for eq in defs)),
                    self.alloc_expr(expr.body),
                )
            )
        if isinstance(expr, Present):
            return MTuple(
                (
                    self.alloc_expr(expr.cond),
                    self.alloc_expr(expr.then_branch),
                    self.alloc_expr(expr.else_branch),
                )
            )
        if isinstance(expr, Reset):
            return MTuple(
                (
                    self.alloc_expr(expr.body),
                    self.alloc_expr(expr.body),
                    self.alloc_expr(expr.every),
                )
            )
        if isinstance(expr, Sample):
            return self.alloc_expr(expr.dist)
        if isinstance(expr, Observe):
            return MTuple((self.alloc_expr(expr.dist), self.alloc_expr(expr.value)))
        if isinstance(expr, Factor):
            return self.alloc_expr(expr.score)
        if isinstance(expr, Infer):
            return MInferInit(self.alloc_expr(expr.body), self._infer_site(expr))
        raise CompilationError(f"cannot allocate {type(expr).__name__}")


def compile_program(program: Program, prepared: bool = False) -> MuFProgram:
    """Front end + compilation: a muF program ready for evaluation."""
    if not prepared:
        program = prepare_program(program)
    return Compiler(program).compile()
