"""Abstract syntax of the ProbZelus kernel (Fig. 6) plus surface sugar.

The kernel grammar::

    d ::= let node f x = e | d d
    e ::= c | x | (e,e) | op(e) | f(e) | last x | e where rec E
        | present e -> e else e | reset e every e
        | sample(e) | observe(e,e) | factor(e) | infer(e)
    E ::= x = e | init x = c | E and E

Surface constructs (``e1 -> e2``, ``pre e``, ``e1 fby e2``) are also
represented here and eliminated by :mod:`repro.core.rewrites` via the
source-to-source transformation of Section 3.1.

All nodes are immutable dataclasses; expressions support ``+ - * /``
operator overloading for convenience when building programs from Python
(see :mod:`repro.dsl`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Pair",
    "Op",
    "App",
    "Last",
    "Where",
    "Present",
    "Reset",
    "Sample",
    "Observe",
    "Factor",
    "Infer",
    "Arrow",
    "PreE",
    "Fby",
    "Equation",
    "Eq",
    "InitEq",
    "NodeDecl",
    "Program",
    "KERNEL_ONLY",
    "SURFACE_ONLY",
]


@dataclass(frozen=True)
class Expr:
    """Base class of expressions."""

    def __add__(self, other):
        return Op("add", (self, _expr(other)))

    def __radd__(self, other):
        return Op("add", (_expr(other), self))

    def __sub__(self, other):
        return Op("sub", (self, _expr(other)))

    def __rsub__(self, other):
        return Op("sub", (_expr(other), self))

    def __mul__(self, other):
        return Op("mul", (self, _expr(other)))

    def __rmul__(self, other):
        return Op("mul", (_expr(other), self))

    def __truediv__(self, other):
        return Op("div", (self, _expr(other)))

    def __rtruediv__(self, other):
        return Op("div", (_expr(other), self))

    def __neg__(self):
        return Op("neg", (self,))

    def __gt__(self, other):
        return Op("gt", (self, _expr(other)))

    def __lt__(self, other):
        return Op("lt", (self, _expr(other)))

    def __ge__(self, other):
        return Op("ge", (self, _expr(other)))

    def __le__(self, other):
        return Op("le", (self, _expr(other)))


def _expr(value: Any) -> Expr:
    """Coerce a Python constant into an expression."""
    if isinstance(value, Expr):
        return value
    return Const(value)


@dataclass(frozen=True)
class Const(Expr):
    """A constant ``c``."""

    value: Any


@dataclass(frozen=True)
class Var(Expr):
    """A variable occurrence ``x``."""

    name: str


@dataclass(frozen=True)
class Pair(Expr):
    """A pair ``(e1, e2)``."""

    first: Expr
    second: Expr


@dataclass(frozen=True)
class Op(Expr):
    """External operator application ``op(e, ...)``.

    Arithmetic, comparisons, ``if`` (the paper treats ``if`` as an
    external operator, footnote 3), distribution constructors, and any
    operator registered in :mod:`repro.core.ops`.
    """

    name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class App(Expr):
    """Node application ``f(e)``."""

    func: str
    arg: Expr


@dataclass(frozen=True)
class Last(Expr):
    """``last x`` — the value of ``x`` at the previous step."""

    name: str


@dataclass(frozen=True)
class Equation:
    """Base class of equations."""


@dataclass(frozen=True)
class Eq(Equation):
    """Simple equation ``x = e``."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class InitEq(Equation):
    """Initialization ``init x = c`` (``c`` must be a constant)."""

    name: str
    value: Const


@dataclass(frozen=True)
class Where(Expr):
    """Locally recursive definitions ``e where rec E``."""

    body: Expr
    equations: Tuple[Equation, ...]


@dataclass(frozen=True)
class Present(Expr):
    """Activation condition ``present e -> e1 else e2``.

    Unlike ``if``, only the selected branch executes this instant.
    """

    cond: Expr
    then_branch: Expr
    else_branch: Expr


@dataclass(frozen=True)
class Reset(Expr):
    """``reset e1 every e2``: re-initialize ``e1``'s state when ``e2`` holds."""

    body: Expr
    every: Expr


@dataclass(frozen=True)
class Sample(Expr):
    """``sample(e)``: draw from the distribution ``e`` (probabilistic)."""

    dist: Expr


@dataclass(frozen=True)
class Observe(Expr):
    """``observe(e1, e2)``: condition on ``e2`` drawn from ``e1``."""

    dist: Expr
    value: Expr


@dataclass(frozen=True)
class Factor(Expr):
    """``factor(e)``: weight the execution by ``exp(e)``."""

    score: Expr


@dataclass(frozen=True)
class Infer(Expr):
    """``infer(e)``: distribution of a probabilistic expression's values.

    ``particles`` and ``method`` configure the inference engine, as the
    surface syntax ``infer 1000 hmm y`` configures the particle count.
    """

    body: Expr
    particles: int = 100
    method: str = "pf"
    seed: Any = None


# ----------------------------------------------------------------------
# surface sugar, eliminated by rewrites
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Arrow(Expr):
    """Initialization operator ``e1 -> e2``: ``e1`` at the first instant."""

    first: Expr
    then: Expr


@dataclass(frozen=True)
class PreE(Expr):
    """Uninitialized unit delay ``pre e``."""

    expr: Expr


@dataclass(frozen=True)
class Fby(Expr):
    """Initialized delay ``e1 fby e2`` = ``e1 -> pre e2``."""

    first: Expr
    then: Expr


@dataclass(frozen=True)
class NodeDecl:
    """``let node f x = e``. ``param`` may be a tuple of names."""

    name: str
    param: Tuple[str, ...]
    body: Expr


@dataclass(frozen=True)
class Program:
    """A sequence of node declarations."""

    decls: Tuple[NodeDecl, ...] = field(default_factory=tuple)

    def decl(self, name: str) -> NodeDecl:
        for d in self.decls:
            if d.name == name:
                return d
        raise KeyError(name)


#: expression classes allowed after desugaring
KERNEL_ONLY = (
    Const,
    Var,
    Pair,
    Op,
    App,
    Last,
    Where,
    Present,
    Reset,
    Sample,
    Observe,
    Factor,
    Infer,
)

#: surface classes that must be eliminated before compilation
SURFACE_ONLY = (Arrow, PreE, Fby)
