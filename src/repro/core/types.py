"""Data-type analysis (Section 3.2).

A small monomorphic type system with unification covering the kernel:

* base types ``float``, ``bool``, ``int``, ``unit``, ``vec`` (numeric
  vectors), pairs, and the distribution type constructor ``T dist``,
* the probabilistic rules of Section 3.2::

      e : T dist |- sample(e) : T
      e1 : T dist, e2 : T |- observe(e1, e2) : unit
      e : float |- factor(e) : unit
      e : T |- infer(e) : T dist

Node signatures are inferred (fresh type variables for parameters,
unified against the body). The checker raises
:class:`~repro.errors.TypeCheckError` on inconsistencies and returns the
inferred signatures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.ast import (
    App,
    Arrow,
    Const,
    Eq,
    Expr,
    Factor,
    Fby,
    Infer,
    InitEq,
    Last,
    NodeDecl,
    Observe,
    Op,
    Pair,
    PreE,
    Present,
    Program,
    Reset,
    Sample,
    Var,
    Where,
)
from repro.errors import ScopeError, TypeCheckError

__all__ = [
    "Type",
    "TCon",
    "TPair",
    "TDist",
    "TVar",
    "FLOAT",
    "BOOL",
    "INT",
    "UNIT",
    "VEC",
    "TypeChecker",
    "check_types",
]


@dataclass(frozen=True)
class Type:
    """Base class of types."""


@dataclass(frozen=True)
class TCon(Type):
    """Base type constructor (float, bool, int, unit, vec)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TPair(Type):
    first: Type
    second: Type

    def __repr__(self) -> str:
        return f"({self.first!r} * {self.second!r})"


@dataclass(frozen=True)
class TDist(Type):
    elem: Type

    def __repr__(self) -> str:
        return f"{self.elem!r} dist"


@dataclass(frozen=True)
class TVar(Type):
    uid: int

    def __repr__(self) -> str:
        return f"'t{self.uid}"


FLOAT = TCon("float")
BOOL = TCon("bool")
INT = TCon("int")
UNIT = TCon("unit")
VEC = TCon("vec")

_tvar_counter = itertools.count()


def fresh_tvar() -> TVar:
    return TVar(next(_tvar_counter))


#: operator signatures: name -> (argument types, result type); called with
#: fresh instantiation where type variables appear.
def _op_signatures() -> Dict[str, Tuple[Tuple[Type, ...], Type]]:
    a = fresh_tvar()
    return {
        "add": ((FLOAT, FLOAT), FLOAT),
        "sub": ((FLOAT, FLOAT), FLOAT),
        "mul": ((FLOAT, FLOAT), FLOAT),
        "div": ((FLOAT, FLOAT), FLOAT),
        "neg": ((FLOAT,), FLOAT),
        "exp": ((FLOAT,), FLOAT),
        "log": ((FLOAT,), FLOAT),
        "abs": ((FLOAT,), FLOAT),
        "sqrt": ((FLOAT,), FLOAT),
        "min": ((FLOAT, FLOAT), FLOAT),
        "max": ((FLOAT, FLOAT), FLOAT),
        "gt": ((FLOAT, FLOAT), BOOL),
        "lt": ((FLOAT, FLOAT), BOOL),
        "ge": ((FLOAT, FLOAT), BOOL),
        "le": ((FLOAT, FLOAT), BOOL),
        "eq": ((a, a), BOOL),
        "ne": ((a, a), BOOL),
        "and": ((BOOL, BOOL), BOOL),
        "or": ((BOOL, BOOL), BOOL),
        "not": ((BOOL,), BOOL),
        "matvec": ((VEC, VEC), VEC),
        "getitem": ((VEC, INT), FLOAT),
        "gaussian": ((FLOAT, FLOAT), TDist(FLOAT)),
        "mv_gaussian": ((VEC, VEC), TDist(VEC)),
        "beta": ((FLOAT, FLOAT), TDist(FLOAT)),
        "bernoulli": ((FLOAT,), TDist(BOOL)),
        "binomial": ((INT, FLOAT), TDist(INT)),
        "gamma": ((FLOAT, FLOAT), TDist(FLOAT)),
        "poisson": ((FLOAT,), TDist(INT)),
        "exponential": ((FLOAT,), TDist(FLOAT)),
        "uniform": ((FLOAT, FLOAT), TDist(FLOAT)),
        "mean": ((TDist(a),), a),
        "mean_float": ((TDist(FLOAT),), FLOAT),
        "variance": ((TDist(FLOAT),), FLOAT),
    }


class TypeChecker:
    """Unification-based type checker for kernel (and surface) programs."""

    def __init__(self):
        self.subst: Dict[int, Type] = {}

    # -- unification ----------------------------------------------------
    def resolve(self, t: Type) -> Type:
        while isinstance(t, TVar) and t.uid in self.subst:
            t = self.subst[t.uid]
        return t

    def deep_resolve(self, t: Type) -> Type:
        """Resolve through constructors (pairs, dist)."""
        t = self.resolve(t)
        if isinstance(t, TPair):
            return TPair(self.deep_resolve(t.first), self.deep_resolve(t.second))
        if isinstance(t, TDist):
            return TDist(self.deep_resolve(t.elem))
        return t

    def _occurs(self, var: TVar, t: Type) -> bool:
        t = self.resolve(t)
        if isinstance(t, TVar):
            return t.uid == var.uid
        if isinstance(t, TPair):
            return self._occurs(var, t.first) or self._occurs(var, t.second)
        if isinstance(t, TDist):
            return self._occurs(var, t.elem)
        return False

    def unify(self, t1: Type, t2: Type, where: str = "") -> None:
        t1, t2 = self.resolve(t1), self.resolve(t2)
        if isinstance(t1, TVar):
            if isinstance(t2, TVar) and t1.uid == t2.uid:
                return
            if self._occurs(t1, t2):
                raise TypeCheckError(f"occurs check failed {t1!r} ~ {t2!r} {where}")
            self.subst[t1.uid] = t2
            return
        if isinstance(t2, TVar):
            self.unify(t2, t1, where)
            return
        if isinstance(t1, TCon) and isinstance(t2, TCon):
            if t1.name != t2.name:
                # int is promoted to float in arithmetic positions
                if {t1.name, t2.name} == {"int", "float"}:
                    return
                raise TypeCheckError(f"type mismatch {t1!r} vs {t2!r} {where}")
            return
        if isinstance(t1, TPair) and isinstance(t2, TPair):
            self.unify(t1.first, t2.first, where)
            self.unify(t1.second, t2.second, where)
            return
        if isinstance(t1, TDist) and isinstance(t2, TDist):
            self.unify(t1.elem, t2.elem, where)
            return
        raise TypeCheckError(f"type mismatch {t1!r} vs {t2!r} {where}")

    # -- typing ----------------------------------------------------------
    def type_const(self, value: Any) -> Type:
        if isinstance(value, bool):
            return BOOL
        if isinstance(value, int):
            return INT
        if isinstance(value, float):
            return FLOAT
        if value == () or value is None:
            return UNIT
        if isinstance(value, tuple) and len(value) == 2:
            return TPair(self.type_const(value[0]), self.type_const(value[1]))
        if hasattr(value, "ndim"):
            return VEC
        return fresh_tvar()

    def type_expr(
        self,
        expr: Expr,
        env: Dict[str, Type],
        nodes: Dict[str, Tuple[Type, Type]],
    ) -> Type:
        if isinstance(expr, Const):
            return self.type_const(expr.value)
        if isinstance(expr, Var):
            if expr.name not in env:
                raise ScopeError(f"unbound variable {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, Last):
            if expr.name not in env:
                raise ScopeError(f"last of unbound variable {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, Pair):
            return TPair(
                self.type_expr(expr.first, env, nodes),
                self.type_expr(expr.second, env, nodes),
            )
        if isinstance(expr, Op):
            return self._type_op(expr, env, nodes)
        if isinstance(expr, App):
            if expr.func not in nodes:
                raise ScopeError(f"application of undeclared node {expr.func!r}")
            param_t, result_t = nodes[expr.func]
            arg_t = self.type_expr(expr.arg, env, nodes)
            self.unify(param_t, arg_t, f"in application of {expr.func!r}")
            return result_t
        if isinstance(expr, Where):
            scope = dict(env)
            inits = [eq for eq in expr.equations if isinstance(eq, InitEq)]
            defs = [eq for eq in expr.equations if isinstance(eq, Eq)]
            for eq in defs:
                scope.setdefault(eq.name, fresh_tvar())
            for init in inits:
                scope.setdefault(init.name, fresh_tvar())
                self.unify(
                    scope[init.name],
                    self.type_const(init.value.value),
                    f"in init {init.name!r}",
                )
            for eq in defs:
                self.unify(
                    scope[eq.name],
                    self.type_expr(eq.expr, scope, nodes),
                    f"in equation {eq.name!r}",
                )
            return self.type_expr(expr.body, scope, nodes)
        if isinstance(expr, Present):
            cond_t = self.type_expr(expr.cond, env, nodes)
            self.unify(cond_t, BOOL, "in present condition")
            t1 = self.type_expr(expr.then_branch, env, nodes)
            t2 = self.type_expr(expr.else_branch, env, nodes)
            self.unify(t1, t2, "in present branches")
            return t1
        if isinstance(expr, Reset):
            every_t = self.type_expr(expr.every, env, nodes)
            self.unify(every_t, BOOL, "in reset condition")
            return self.type_expr(expr.body, env, nodes)
        if isinstance(expr, Sample):
            dist_t = self.type_expr(expr.dist, env, nodes)
            elem = fresh_tvar()
            self.unify(dist_t, TDist(elem), "in sample")
            return elem
        if isinstance(expr, Observe):
            dist_t = self.type_expr(expr.dist, env, nodes)
            value_t = self.type_expr(expr.value, env, nodes)
            self.unify(dist_t, TDist(value_t), "in observe")
            return UNIT
        if isinstance(expr, Factor):
            self.unify(
                self.type_expr(expr.score, env, nodes), FLOAT, "in factor"
            )
            return UNIT
        if isinstance(expr, Infer):
            return TDist(self.type_expr(expr.body, env, nodes))
        if isinstance(expr, Arrow):
            t1 = self.type_expr(expr.first, env, nodes)
            t2 = self.type_expr(expr.then, env, nodes)
            self.unify(t1, t2, "in ->")
            return t1
        if isinstance(expr, PreE):
            return self.type_expr(expr.expr, env, nodes)
        if isinstance(expr, Fby):
            t1 = self.type_expr(expr.first, env, nodes)
            t2 = self.type_expr(expr.then, env, nodes)
            self.unify(t1, t2, "in fby")
            return t1
        raise TypeCheckError(f"cannot type {type(expr).__name__}")

    def _type_op(self, expr: Op, env, nodes) -> Type:
        if expr.name == "if":
            cond_t = self.type_expr(expr.args[0], env, nodes)
            self.unify(cond_t, BOOL, "in if condition")
            t1 = self.type_expr(expr.args[1], env, nodes)
            t2 = self.type_expr(expr.args[2], env, nodes)
            self.unify(t1, t2, "in if branches")
            return t1
        if expr.name == "fst":
            pair_t = self.type_expr(expr.args[0], env, nodes)
            first, second = fresh_tvar(), fresh_tvar()
            self.unify(pair_t, TPair(first, second), "in fst")
            return first
        if expr.name == "snd":
            pair_t = self.type_expr(expr.args[0], env, nodes)
            first, second = fresh_tvar(), fresh_tvar()
            self.unify(pair_t, TPair(first, second), "in snd")
            return second
        signatures = _op_signatures()
        if expr.name not in signatures:
            # unknown external operator: fresh result, arguments unchecked
            for arg in expr.args:
                self.type_expr(arg, env, nodes)
            return fresh_tvar()
        arg_types, result_t = signatures[expr.name]
        if len(arg_types) != len(expr.args):
            raise TypeCheckError(
                f"operator {expr.name!r} expects {len(arg_types)} arguments, "
                f"got {len(expr.args)}"
            )
        for arg, expected in zip(expr.args, arg_types):
            actual = self.type_expr(arg, env, nodes)
            self.unify(actual, expected, f"in operator {expr.name!r}")
        return result_t

    def type_node(
        self, decl: NodeDecl, nodes: Dict[str, Tuple[Type, Type]]
    ) -> Tuple[Type, Type]:
        env: Dict[str, Type] = {p: fresh_tvar() for p in decl.param}
        if len(decl.param) == 1:
            param_t: Type = env[decl.param[0]]
        else:
            param_t = env[decl.param[-1]]
            for p in reversed(decl.param[:-1]):
                param_t = TPair(env[p], param_t)
        body_t = self.type_expr(decl.body, env, nodes)
        return param_t, body_t


def check_types(program: Program) -> Dict[str, Tuple[Type, Type]]:
    """Type-check a program; returns inferred (input, output) signatures."""
    checker = TypeChecker()
    nodes: Dict[str, Tuple[Type, Type]] = {}
    for decl in program.decls:
        nodes[decl.name] = checker.type_node(decl, nodes)
    return {
        name: (checker.deep_resolve(p), checker.deep_resolve(r))
        for name, (p, r) in nodes.items()
    }
