"""Exception hierarchy for the repro package.

Every error raised by the language front end, the compiler, or the
inference runtime derives from :class:`ReproError` so that callers can
catch the whole family with a single handler.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this package."""


class LanguageError(ReproError):
    """Base class of static (compile-time) language errors."""


class KindError(LanguageError):
    """A deterministic/probabilistic kind rule was violated (Fig. 7).

    Examples: ``sample`` outside of ``infer``, a probabilistic expression
    used where a deterministic one is required.
    """


class TypeCheckError(LanguageError):
    """A data-type rule was violated (Section 3.2)."""


class CausalityError(LanguageError):
    """The equations of a ``where rec`` block cannot be scheduled.

    Raised when the instantaneous-dependency graph has a cycle that is not
    broken by a ``last`` (unit delay), mirroring the Zelus causality
    analysis.
    """


class InitializationError(LanguageError):
    """A ``last x`` is used but ``x`` has no ``init`` equation."""


class ScopeError(LanguageError):
    """An expression refers to a variable or node that is not defined."""


class CompilationError(LanguageError):
    """Internal error while compiling the kernel to muF."""


class EvaluationError(ReproError):
    """Base class of runtime evaluation errors."""


class MuFRuntimeError(EvaluationError):
    """A muF term evaluation failed (wrong arity, unbound name, ...)."""


class SymbolicError(EvaluationError):
    """A symbolic expression could not be manipulated as requested.

    For example: extracting an affine form from a non-affine expression,
    or evaluating a symbolic term with unrealized random variables in a
    strict context.
    """


class GraphError(EvaluationError):
    """A delayed-sampling graph invariant was violated."""


class InferenceError(EvaluationError):
    """An inference engine was misused or reached an invalid state."""


class DistributionError(EvaluationError):
    """Invalid distribution parameters or unsupported operation."""
