"""Executors: where the shards of one inference step actually run.

An :class:`Executor` schedules the map phase of a sharded inference
step — apply one picklable task to every shard, collect the results in
shard order. The executor decides *where* the work runs (inline, a
thread pool, a process pool) but never *what* is computed: shard
payloads are disjoint, each shard advances its own
:class:`numpy.random.Generator` substream, and the merge / resample
barrier happens in the caller. Results are therefore bit-for-bit
identical across executors and worker counts — the deterministic
partitioning idea of Bobpp-style parallel search, applied to a particle
population.

Executors are selected by spec string (``"serial"``, ``"threads:4"``,
``"processes:2"``) through :func:`parse_executor`, which caches one
instance per spec so every engine built from the same spec shares one
pool (a sweep over ``"pf@scalar@processes:4"`` spins up four workers
once, not once per run).
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import InferenceError

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "EXECUTORS",
    "parse_executor",
    "default_workers",
]


def default_workers() -> int:
    """Worker count when a spec names no number: one per visible core."""
    return max(1, os.cpu_count() or 1)


class Executor(abc.ABC):
    """Schedules shard tasks; never changes what is computed.

    ``map_shards(fn, tasks)`` applies ``fn`` to every task and returns
    the results *in task order* — the ordering contract the merge step
    relies on for determinism.
    """

    #: number of workers the executor schedules onto (1 for serial).
    workers: int = 1

    @abc.abstractmethod
    def map_shards(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to each task, preserving task order."""

    def close(self) -> None:
        """Release any pooled workers (no-op for the serial executor)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every shard inline, one after the other (the reference)."""

    workers = 1

    def map_shards(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        return [fn(task) for task in tasks]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class _PooledExecutor(Executor):
    """Shared lazy-pool behaviour of the thread and process executors."""

    def __init__(self, workers: Optional[int] = None):
        workers = default_workers() if workers is None else int(workers)
        if workers < 1:
            raise InferenceError("executor needs at least one worker")
        self.workers = workers
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    def map_shards(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(fn, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # Engines hold their executor, and a process worker unpickles the
    # engine: the live pool must never cross a process boundary. The
    # worker-side copy degrades to a pool-less shell (it only ever runs
    # the shard task it received).
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadShardExecutor(_PooledExecutor):
    """Map shards over a thread pool.

    Shards share the interpreter but not their generators or payloads,
    so thread scheduling cannot change results. Best when the per-shard
    work releases the GIL (NumPy kernels on large shards).
    """

    def _make_pool(self):
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-shard"
        )


class ProcessShardExecutor(_PooledExecutor):
    """Map shards over a process pool.

    True multi-core execution for interpreter-bound (scalar) shard work.
    Tasks and results cross the process boundary by pickling, so the
    model and shard payloads must be picklable (module-level classes;
    lambda-based ``FunProbNode`` models are not). Each shard's generator
    rides along with the task and returns advanced, which keeps the
    serial and process schedules on identical random streams.
    """

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.workers)


#: spec name -> executor class, for ``"name"`` / ``"name:N"`` specs.
EXECUTORS: Dict[str, Callable[..., Executor]] = {
    "serial": SerialExecutor,
    "threads": ThreadShardExecutor,
    "processes": ProcessShardExecutor,
}

#: one shared instance per spec string, so engines built from the same
#: spec (benchmark sweeps, stream-server sessions) share one pool.
_INSTANCES: Dict[str, Executor] = {}


def parse_executor(spec: Union[None, str, Executor]) -> Executor:
    """Resolve an executor spec to an :class:`Executor` instance.

    ``None`` means serial; an :class:`Executor` instance passes through;
    a string is ``"serial"``, ``"threads"``, ``"processes"``, optionally
    with a worker count (``"threads:4"``). String specs are cached
    process-wide: the same spec always returns the same instance.
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        return spec
    if not isinstance(spec, str):
        raise InferenceError(
            f"executor must be a spec string or Executor, got {type(spec).__name__}"
        )
    if spec in _INSTANCES:
        return _INSTANCES[spec]
    name, sep, count = spec.partition(":")
    if name not in EXECUTORS:
        raise InferenceError(
            f"unknown executor {name!r}; choose from {sorted(EXECUTORS)}"
        )
    if sep:
        if name == "serial":
            raise InferenceError("the serial executor takes no worker count")
        try:
            workers = int(count)
        except ValueError:
            raise InferenceError(f"bad worker count in executor spec {spec!r}")
        executor = EXECUTORS[name](workers)
    else:
        executor = EXECUTORS[name]()
    _INSTANCES[spec] = executor
    return executor
