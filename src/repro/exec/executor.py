"""Executors: where the shards of one inference step actually run.

An :class:`Executor` schedules the map phase of a sharded inference
step — apply one picklable task to every shard, collect the results in
shard order. The executor decides *where* the work runs (inline, a
thread pool, a process pool) but never *what* is computed: shard
payloads are disjoint, each shard advances its own
:class:`numpy.random.Generator` substream, and the merge / resample
barrier happens in the caller. Results are therefore bit-for-bit
identical across executors and worker counts — the deterministic
partitioning idea of Bobpp-style parallel search, applied to a particle
population.

:class:`PersistentProcessExecutor` (``"processes-persistent:N"``) is
the worker-resident variant: its workers hold their shard — payload
plus RNG substream — in-process across steps, so per-step traffic is
command messages (step input out, per-shard weight vectors and outputs
back) instead of full-population pickles, and the resample barrier
ships only the global ancestor indices plus the few particles that
actually migrate between shards. The array payloads themselves travel
through one shared-memory ring per worker *per direction*
(:mod:`repro.exec.shm`) when the platform offers it — replies as
zero-copy read-only views, commands (inputs, exchange plans, replayed
checkpoints) as descriptors — so a steady-state no-resample step moves
zero pickled payload bytes over the pipe. The pickle path is kept as an
automatic, metered fallback — pass ``shm_bytes=0`` (or set the
``REPRO_SHM_BYTES`` environment variable) to disable both rings.

Executors are selected by spec string (``"serial"``, ``"threads:4"``,
``"processes:2"``, ``"processes-persistent:4"``) through
:func:`parse_executor`, which caches one instance per spec so every
engine built from the same spec shares one pool (a sweep over
``"pf@scalar@processes:4"`` spins up four workers once, not once per
run). :func:`shutdown_executors` (also registered via :mod:`atexit`)
closes every cached executor and clears the cache, so sweeps and test
runs do not accumulate worker processes.
"""

from __future__ import annotations

import abc
import atexit
import multiprocessing
import os
import pickle
import traceback
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing.connection import wait as _connection_wait
from time import monotonic, perf_counter, sleep
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import InferenceError
from repro.exec.shm import ShmRing, TransportStats, materialize, measure_payload
from repro.exec.supervision import (
    RestartBudgetExhausted,
    RingFault,
    WorkerTimeout,
    env_checkpoint_every,
    env_restart_budget,
    env_step_timeout_s,
)
from repro.faults.plan import (
    FAULTS,
    CoordinatorFaultState,
    RingCorruption,
    WorkerFaultState,
)
from repro.obs.registry import count_event
from repro.obs.spans import TELEMETRY

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "PersistentProcessExecutor",
    "EXECUTORS",
    "parse_executor",
    "shutdown_executors",
    "default_workers",
    "shard_len",
]


def default_workers() -> int:
    """Worker count when a spec names no number: one per visible core."""
    return max(1, os.cpu_count() or 1)


class Executor(abc.ABC):
    """Schedules shard tasks; never changes what is computed.

    ``map_shards(fn, tasks)`` applies ``fn`` to every task and returns
    the results *in task order* — the ordering contract the merge step
    relies on for determinism.
    """

    #: number of workers the executor schedules onto (1 for serial).
    workers: int = 1
    #: True when the executor keeps shard payloads resident in its
    #: workers across steps; engines then drive it through a
    #: handle-based :class:`~repro.exec.population.ResidentPopulation`
    #: instead of shipping payloads through ``map_shards``.
    resident: bool = False

    @abc.abstractmethod
    def map_shards(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to each task, preserving task order."""

    def close(self) -> None:
        """Release any pooled workers (no-op for the serial executor)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run every shard inline, one after the other (the reference)."""

    workers = 1

    def map_shards(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        return [fn(task) for task in tasks]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class _PooledExecutor(Executor):
    """Shared lazy-pool behaviour of the thread and process executors."""

    def __init__(self, workers: Optional[int] = None):
        workers = default_workers() if workers is None else int(workers)
        if workers < 1:
            raise InferenceError("executor needs at least one worker")
        self.workers = workers
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    def map_shards(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(fn, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # Engines hold their executor, and a process worker unpickles the
    # engine: the live pool must never cross a process boundary. The
    # worker-side copy degrades to a pool-less shell (it only ever runs
    # the shard task it received).
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadShardExecutor(_PooledExecutor):
    """Map shards over a thread pool.

    Shards share the interpreter but not their generators or payloads,
    so thread scheduling cannot change results. Best when the per-shard
    work releases the GIL (NumPy kernels on large shards).
    """

    def _make_pool(self):
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-shard"
        )


class ProcessShardExecutor(_PooledExecutor):
    """Map shards over a process pool.

    True multi-core execution for interpreter-bound (scalar) shard work.
    Tasks and results cross the process boundary by pickling, so the
    model and shard payloads must be picklable (module-level classes;
    lambda-based ``FunProbNode`` models are not). Each shard's generator
    rides along with the task and returns advanced, which keeps the
    serial and process schedules on identical random streams.
    """

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.workers)


# ----------------------------------------------------------------------
# persistent worker-resident execution
# ----------------------------------------------------------------------

#: connection failures that mean "the worker process died" (as opposed
#: to a Python exception inside the worker, which comes back as an
#: ``("err", traceback)`` reply).
_PIPE_ERRORS = (BrokenPipeError, EOFError, ConnectionResetError, OSError)


def _persistent_worker_main(
    conn,
    ring_name: Optional[str] = None,
    cmd_ring_name: Optional[str] = None,
    generation: int = 0,
    faults: Optional[list] = None,
) -> None:
    """Main loop of one persistent worker: resident shards + commands.

    ``homes`` maps ``(population key, shard index)`` to the resident
    shard, the stepper that advances it, and the accumulated log-weight
    vector of the most recent step (so the weight commit after a
    non-resampling barrier needs no data from the coordinator at all).

    When the coordinator allocated shared-memory rings for this worker,
    payloads are routed through them in both directions: reply arrays
    park in the *reply* ring (``ring_name``), command arrays —
    observation inputs, exchange plans, replayed checkpoint shards —
    arrive as descriptors into the *command* ring (``cmd_ring_name``)
    and are copied out before use. Reply-ring attachment failure
    silently degrades to the pickle path; command-ring attachment is
    reported back in the ``hello`` handshake so the coordinator never
    sends descriptors this worker cannot resolve. Either way the rings
    are a latency optimization, never a correctness dependency.
    """
    fault_state = None
    if faults:
        # Fault injection active (repro.faults): filter the shipped
        # fault list to this process's spawn generation. A matching
        # spawn_fail dies here, before the hello handshake.
        fault_state = WorkerFaultState(faults, generation)
        fault_state.check_spawn()
    homes: Dict[Tuple[int, int], Dict[str, Any]] = {}
    ring = ShmRing.attach(ring_name)
    cmd_ring = ShmRing.attach(cmd_ring_name)
    try:
        conn.send(("hello", cmd_ring is not None))
    except Exception:
        return
    try:
        _persistent_worker_loop(conn, homes, ring, cmd_ring, fault_state)
    finally:
        if ring is not None:
            ring.close()
        if cmd_ring is not None:
            cmd_ring.close()


def _persistent_worker_loop(conn, homes, ring, cmd_ring, fault_state=None) -> None:
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if cmd_ring is not None:
            # Copy-mode unpack: command payloads (inputs, plans, shard
            # reloads) may outlive the message window inside resident
            # state, so worker-side references are always private.
            msg = cmd_ring.unpack(msg)
        op = msg[0]
        if op == "stop":
            return
        try:
            if op == "load":
                _, key, index, shard, stepper = msg
                homes[(key, index)] = {
                    "shard": shard, "stepper": stepper, "logw": None,
                }
                reply: Any = None
            elif op == "step":
                if fault_state is not None:
                    # Crash / hang / error / ring-exhaust faults fire on
                    # this process's Nth step op (replayed steps count,
                    # which is what lets gen>=1 faults target revival).
                    fault_state.on_step(ring)
                # Older senders (and oplog replay) use the 4-tuple form
                # without the trace flag; replayed steps never trace.
                _, key, index, inp, *rest = msg
                trace = bool(rest[0]) if rest else False
                home = homes[(key, index)]
                shard = home["shard"]
                started = perf_counter() if trace else 0.0
                result = home["stepper"].step_shard(shard.payload, shard.rng, inp)
                shard.payload = result.payload
                shard.rng = result.rng
                home["logw"] = result.prev_log_weights + result.step_log_weights
                reply = (
                    result.outs,
                    result.step_log_weights,
                    result.prev_log_weights,
                )
                if trace:
                    # Spans ride back as a plain list appended to the
                    # summary tuple; ShardSummary's ``spans`` field has
                    # a default, so 3-tuple replies stay valid.
                    spans = [("worker_step", (perf_counter() - started) * 1e3)]
                    reply = reply + (spans,)
            elif op == "export":
                _, key, index, local_indices = msg
                home = homes[(key, index)]
                reply = home["stepper"].shard_export(
                    home["shard"].payload, local_indices
                )
            elif op == "assemble":
                _, key, index, plan, imports = msg
                home = homes[(key, index)]
                home["shard"].payload = home["stepper"].shard_assemble(
                    home["shard"].payload, plan, imports
                )
                home["logw"] = None
                reply = None
            elif op == "weights":
                _, key, index = msg
                home = homes[(key, index)]
                if home["logw"] is None:
                    raise InferenceError(
                        "weight commit without a preceding step"
                    )
                home["shard"].payload = home["stepper"].shard_commit_weights(
                    home["shard"].payload, home["logw"]
                )
                reply = None
            elif op == "pull":
                _, key, index = msg
                reply = homes[(key, index)]["shard"]
            elif op == "unload":
                _, key = msg
                for home_key in [k for k in homes if k[0] == key]:
                    del homes[home_key]
                reply = None
            elif op == "call":
                _, fn, task = msg
                reply = fn(task)
            else:
                raise InferenceError(f"unknown persistent-worker op {op!r}")
        except BaseException:
            try:
                conn.send(("err", traceback.format_exc()))
            except Exception:
                return
        else:
            try:
                if ring is not None:
                    reply = ring.pack(reply)
                conn.send(("ok", reply))
            except Exception:
                return


class _WorkerSlot:
    """One persistent worker process, the coordinator's pipe, and its rings."""

    __slots__ = ("process", "conn", "ring", "cmd_ring", "faults")

    def __init__(self, process, conn, ring=None, cmd_ring=None, faults=None):
        self.process = process
        self.conn = conn
        self.ring = ring
        self.cmd_ring = cmd_ring
        #: coordinator-side fault state (:mod:`repro.faults`), or None —
        #: the common case, costing one attribute check per message.
        self.faults = faults

    def send_command(self, msg: tuple) -> None:
        """Send one command, parking its array payloads in the cmd ring.

        Packing happens at send time — never earlier — so a command
        retried after a worker revival is re-packed into the *new*
        worker's ring, and the per-message rewind stays valid (the
        previous command has been copied out by the worker before its
        reply, which the coordinator has already received).
        """
        if self.faults is not None:
            self.faults.note_op(msg[0])
        if self.cmd_ring is not None:
            stats = TransportStats()
            self.conn.send(self.cmd_ring.pack(msg, stats))
            stats.flush("cmd")
        else:
            if TELEMETRY.enabled:
                stats = TransportStats()
                measure_payload(msg, stats)
                stats.flush("cmd")
            self.conn.send(msg)

    def recv_reply(
        self, views: bool = False, timeout: Optional[float] = None
    ) -> Tuple[str, Any]:
        """Receive one reply, resolving ring-parked arrays.

        With ``views=True`` the ring descriptors become read-only
        zero-copy views — only valid until the next command to this
        worker, so callers materialize anything that escapes the
        current message window (see :func:`repro.exec.shm.materialize`).

        With a ``timeout`` (seconds), a reply that does not arrive in
        time raises :class:`~repro.exec.supervision.WorkerTimeout`
        (a dead worker's pipe signals EOF immediately, so the poll never
        waits on a corpse). A reply whose ring payload cannot be
        resolved raises :class:`~repro.exec.supervision.RingFault`.
        """
        if timeout is not None:
            deadline = monotonic() + timeout
            while not self.conn.poll(min(0.05, timeout)):
                remaining = deadline - monotonic()
                if remaining <= 0:
                    raise WorkerTimeout(
                        f"persistent worker missed its {timeout:.3g}s "
                        "reply deadline"
                    )
                timeout = remaining
        tag, value = self.conn.recv()
        if tag == "ok":
            try:
                if self.faults is not None:
                    value = self.faults.corrupt(value)
                if self.ring is not None:
                    stats = TransportStats()
                    mode = "view" if views else "copy"
                    if TELEMETRY.enabled:
                        started = perf_counter()
                        value = self.ring.unpack(value, mode, stats)
                        TELEMETRY.recorder.record(
                            "shm_unpack", (perf_counter() - started) * 1e3
                        )
                    else:
                        value = self.ring.unpack(value, mode, stats)
                    stats.flush("reply")
            except (RingCorruption, ValueError, TypeError, IndexError) as exc:
                # Corrupted descriptors (injected or real): the worker's
                # transport state is untrusted — the caller kills and
                # revives it from checkpoint like a crash.
                raise RingFault(f"reply ring unresolvable: {exc}") from exc
            if self.ring is None and TELEMETRY.enabled:
                stats = TransportStats()
                measure_payload(value, stats)
                stats.flush("reply")
        return tag, value

    def discard(self) -> None:
        """Release the coordinator-side resources of a dead/replaced worker."""
        try:
            self.conn.close()
        except Exception:
            pass
        if self.ring is not None:
            self.ring.close()
            self.ring = None
        if self.cmd_ring is not None:
            self.cmd_ring.close()
            self.cmd_ring = None


class _ResidentState:
    """Coordinator-side record of one worker-resident population.

    ``checkpoints`` holds one recovery copy of every shard (refreshed
    every ``checkpoint_every`` committed steps), ``oplogs`` the
    per-shard commands applied since that checkpoint. Together they let
    the coordinator rebuild any shard deterministically — after a
    worker crash, or after :meth:`PersistentProcessExecutor.close` —
    by reloading the checkpoint and replaying the log.
    """

    __slots__ = (
        "key", "stepper", "sizes", "checkpoints", "oplogs", "steps", "poisoned",
    )

    def __init__(self, key: int, stepper: Any, sizes: List[int], checkpoints):
        self.key = key
        self.stepper = stepper
        self.sizes = list(sizes)
        self.checkpoints = list(checkpoints)
        self.oplogs: List[List[tuple]] = [[] for _ in sizes]
        self.steps = 0
        #: set when a mutating command failed part-way: some shards
        #: advanced, others did not, and the oplog no longer describes
        #: the worker state — the population must not be used again.
        self.poisoned = False

    @property
    def n_shards(self) -> int:
        return len(self.sizes)


class PersistentProcessExecutor(Executor):
    """Process execution with worker-resident shards.

    Where :class:`ProcessShardExecutor` pickles the whole shard payload
    to a pool worker and back on *every* step, this executor loads each
    shard — payload plus RNG substream — into a long-lived worker once
    and then drives it with small command messages:

    * ``step``: the step input goes out; the per-shard outputs and
      ``step_log_weights`` / ``prev_log_weights`` vectors come back.
      The advanced payload and generator stay in the worker.
    * resample barrier: the coordinator draws the global ancestor
      indices and ships only the exchange plan plus the few particles
      that actually migrate between shards (with systematic or
      stratified resampling the sorted indices keep most ancestors
      shard-local).
    * no-resample barrier: a bare ``weights`` command; each worker
      folds its own step log-weights into its resident payload.

    The schedule still never changes what is computed: the shard
    partition and RNG substreams are identical to every other executor,
    so the posterior matches ``"serial"`` bit-for-bit at a fixed seed.

    Fault tolerance: the coordinator checkpoints every shard on load
    and every ``checkpoint_every`` committed steps, and logs the
    commands in between. A worker that dies mid-stream is respawned and
    its shards are rebuilt by replaying the log against the checkpoint
    — deterministically, because the checkpoint includes the shard's
    generator state. ``close()`` uses the same mechanism: it terminates
    the workers but keeps the checkpoints, so resident populations
    survive an executor shutdown and resume on the next command.

    Multiple populations (one per engine — e.g. every session of a
    :class:`~repro.exec.server.StreamServer`) share the same worker
    pool; shard ``i`` of every population lives on worker
    ``i % workers``.
    """

    resident = True

    #: default shared-memory ring size per worker per direction (bytes);
    #: holds the per-step outs/weights vectors of ~100k-particle shards.
    DEFAULT_SHM_BYTES = 4 * 1024 * 1024

    #: how long ``close()`` waits for a worker to join after each of
    #: stop / terminate / kill (seconds); a class attribute so tests can
    #: tighten it.
    CLOSE_JOIN_TIMEOUT_S = 2.0

    #: upper bound on the exponential revival backoff (seconds).
    BACKOFF_CAP_S = 1.0

    def __init__(
        self,
        workers: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        shm_bytes: Optional[int] = None,
        step_timeout_s: Optional[float] = None,
        restart_budget: Optional[int] = None,
        backoff_base_s: float = 0.05,
    ):
        workers = default_workers() if workers is None else int(workers)
        if workers < 1:
            raise InferenceError("executor needs at least one worker")
        #: committed steps between checkpoint refreshes. ``None`` reads
        #: ``REPRO_CHECKPOINT_EVERY`` before falling back to 8.
        if checkpoint_every is None:
            checkpoint_every = env_checkpoint_every()
        if int(checkpoint_every) < 1:
            raise InferenceError("checkpoint_every must be at least 1")
        self.workers = workers
        self.checkpoint_every = int(checkpoint_every)
        #: per-command reply deadline in seconds; None disables
        #: supervision timeouts (the default — the blocking wait path is
        #: byte-for-byte the unsupervised one). ``None`` reads
        #: ``REPRO_STEP_TIMEOUT_S`` (0 there also means disabled).
        if step_timeout_s is None:
            step_timeout_s = env_step_timeout_s()
        elif float(step_timeout_s) <= 0:
            raise InferenceError(
                f"step_timeout_s must be positive, got {step_timeout_s} "
                "(pass None to disable deadlines)"
            )
        self.step_timeout_s = (
            None if step_timeout_s is None else float(step_timeout_s)
        )
        #: consecutive failed revivals one slot may accumulate before
        #: the circuit breaker trips with RestartBudgetExhausted; reset
        #: whenever a command on that slot completes. ``None`` reads
        #: ``REPRO_RESTART_BUDGET`` before falling back to 3.
        if restart_budget is None:
            restart_budget = env_restart_budget()
        if int(restart_budget) < 0:
            raise InferenceError("restart_budget must be non-negative")
        self.restart_budget = int(restart_budget)
        #: first-revival backoff; revival n sleeps
        #: ``backoff_base_s * 2**(n-1)`` capped at BACKOFF_CAP_S
        #: (the first revival is immediate).
        self.backoff_base_s = float(backoff_base_s)
        #: per-worker, per-direction shared-memory ring size. ``0``
        #: disables **both** rings (command and reply) and every message
        #: ships fully pickled — the fallback path. ``None`` reads the
        #: ``REPRO_SHM_BYTES`` environment variable (same semantics)
        #: before falling back to :data:`DEFAULT_SHM_BYTES`.
        if shm_bytes is None:
            env = os.environ.get("REPRO_SHM_BYTES", "").strip()
            shm_bytes = int(env) if env else self.DEFAULT_SHM_BYTES
        shm_bytes = int(shm_bytes)
        if shm_bytes < 0:
            raise ValueError(
                f"shm_bytes must be non-negative, got {shm_bytes} "
                "(0 disables both the command and reply rings)"
            )
        self.shm_bytes = shm_bytes
        self._slots: Optional[List[_WorkerSlot]] = None
        self._populations: Dict[int, _ResidentState] = {}
        self._next_key = 0
        #: per-slot spawn generation (0 = first spawn); fault plans key
        #: on it so a crash fault does not re-fire during oplog replay.
        self._generations: List[int] = [-1] * workers
        #: per-slot consecutive failed-revival count (circuit breaker).
        self._failures: List[int] = [0] * workers
        #: lifetime revival count (diagnostics / stream-server stats).
        self._restarts_total = 0

    # -- lifecycle ------------------------------------------------------
    def _spawn_slot(self, slot_index: int) -> _WorkerSlot:
        self._generations[slot_index] += 1
        generation = self._generations[slot_index]
        worker_faults = None
        slot_faults = None
        if FAULTS.enabled and FAULTS.plan is not None:
            # Fault injection: the worker-side sub-plan rides the spawn
            # args (picklable under any start method); coordinator-side
            # faults attach to the slot. Disabled runs pass None — the
            # hooks then cost one attribute check.
            worker_faults = FAULTS.plan.for_worker(slot_index) or None
            coordinator_faults = FAULTS.plan.coordinator_for(slot_index)
            if any(f.kind == "ring_corrupt" for f in coordinator_faults):
                slot_faults = CoordinatorFaultState(
                    coordinator_faults, generation
                )
        parent_conn, child_conn = multiprocessing.Pipe()
        ring = ShmRing.create(self.shm_bytes)
        cmd_ring = ShmRing.create(self.shm_bytes)
        if FAULTS.enabled and FAULTS.plan is not None and cmd_ring is not None:
            # Coordinator-side ring exhaustion: a matching-generation
            # ring_exhaust fault disables parking on this slot's command
            # ring from the start — with gen=1, that is exactly the
            # revival-replay window (checkpoints ship pickled).
            if any(
                f.kind == "ring_exhaust" and f.gen == generation
                for f in FAULTS.plan.coordinator_for(slot_index)
            ):
                cmd_ring.fault_exhausted = True
        process = multiprocessing.Process(
            target=_persistent_worker_main,
            args=(
                child_conn,
                ring.name if ring is not None else None,
                cmd_ring.name if cmd_ring is not None else None,
                generation,
                worker_faults,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        # Handshake: the worker reports whether it attached the command
        # ring. The coordinator must never send descriptors a worker
        # cannot resolve, so a failed attach drops the ring here (the
        # reply direction needs no handshake — an unattached worker
        # simply never produces descriptors).
        cmd_ok = False
        try:
            tag, cmd_ok = parent_conn.recv()
            cmd_ok = tag == "hello" and bool(cmd_ok)
        except _PIPE_ERRORS:
            pass  # dead at birth: the first command will trigger revival
        if not cmd_ok and cmd_ring is not None:
            cmd_ring.close()
            cmd_ring = None
        return _WorkerSlot(process, parent_conn, ring, cmd_ring, slot_faults)

    def _ensure_started(self) -> None:
        if self._slots is not None:
            return
        self._slots = [self._spawn_slot(i) for i in range(self.workers)]
        # Resuming after close(): restore every registered population
        # from its checkpoint + oplog.
        for slot_index in range(self.workers):
            self._reload_slot(slot_index)

    def _slot_of(self, shard_index: int) -> int:
        return shard_index % self.workers

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes (diagnostics / tests)."""
        self._ensure_started()
        return [slot.process.pid for slot in self._slots]

    def close(self) -> None:
        """Terminate the workers; resident populations stay recoverable.

        Idempotent and safe against half-dead workers: the slot list is
        detached first (a second ``close()`` is a no-op), every stop
        send is best-effort, and a worker that ignores stop *and*
        terminate is SIGKILLed — a worker that died holding the pipe
        can delay shutdown by at most the join timeouts, never hang it.
        """
        slots, self._slots = self._slots, None
        if slots is None:
            return
        for slot in slots:
            try:
                slot.conn.send(("stop",))
            except Exception:
                pass
        for slot in slots:
            try:
                slot.process.join(timeout=self.CLOSE_JOIN_TIMEOUT_S)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(timeout=self.CLOSE_JOIN_TIMEOUT_S)
                if slot.process.is_alive():
                    slot.process.kill()
                    slot.process.join(timeout=self.CLOSE_JOIN_TIMEOUT_S)
            except Exception:
                pass
            slot.discard()

    # The executor rides along when an engine is pickled into a worker
    # (the stepper references it); the worker-side copy is a shell with
    # no processes, pipes, or resident bookkeeping.
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_slots"] = None
        state["_populations"] = {}
        state["_next_key"] = 0
        state["_generations"] = [-1] * self.workers
        state["_failures"] = [0] * self.workers
        state["_restarts_total"] = 0
        return state

    def restart_stats(self) -> Dict[str, Any]:
        """Supervision counters: lifetime revivals, per-slot breaker state."""
        return {
            "restarts_total": self._restarts_total,
            "consecutive_failures": list(self._failures),
            "restart_budget": self.restart_budget,
        }

    def __repr__(self) -> str:
        return (
            f"PersistentProcessExecutor(workers={self.workers}, "
            f"checkpoint_every={self.checkpoint_every})"
        )

    # -- messaging ------------------------------------------------------
    def _reload_slot(self, slot_index: int) -> None:
        """Rebuild every resident shard assigned to one (fresh) worker."""
        slot = self._slots[slot_index]
        for state in self._populations.values():
            if state.poisoned:  # unusable anyway; nothing to rebuild
                continue
            for index in range(state.n_shards):
                if self._slot_of(index) != slot_index:
                    continue
                slot.send_command(
                    ("load", state.key, index, state.checkpoints[index],
                     state.stepper)
                )
                self._expect_ok(slot, timeout=self.step_timeout_s)
                # Replayed commands are re-packed at send time into the
                # fresh worker's ring: the oplog stores real arrays, so
                # descriptor-encoded and pickled replays are
                # bit-identical (pack/unpack is an exact byte roundtrip).
                for entry in state.oplogs[index]:
                    slot.send_command(self._replay_msg(state.key, index, entry))
                    self._expect_ok(slot, timeout=self.step_timeout_s)

    @staticmethod
    def _replay_msg(key: int, index: int, entry: tuple) -> tuple:
        if entry[0] == "step":
            return ("step", key, index, entry[1])
        if entry[0] == "assemble":
            return ("assemble", key, index, entry[1], entry[2])
        if entry[0] == "weights":
            return ("weights", key, index)
        raise InferenceError(f"unknown oplog entry {entry[0]!r}")

    @staticmethod
    def _expect_ok(slot: _WorkerSlot, timeout: Optional[float] = None) -> Any:
        tag, value = slot.recv_reply(timeout=timeout)
        if tag == "err":
            raise InferenceError(f"persistent worker failed:\n{value}")
        return value

    def _kill_slot(self, slot_index: int) -> None:
        """SIGKILL a worker that can no longer be trusted (hang, ring)."""
        try:
            self._slots[slot_index].process.kill()
        except Exception:
            pass

    def _revive_slot(self, slot_index: int) -> None:
        """Replace a dead worker and rebuild its resident shards."""
        old = self._slots[slot_index]
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(timeout=2)
        old.discard()
        self._slots[slot_index] = self._spawn_slot(slot_index)
        self._reload_slot(slot_index)

    def _supervised_revive(self, slot_index: int, reason: str) -> None:
        """One budgeted revival: backoff, count, spawn, reload.

        Increments the slot's consecutive-failure count *before* the
        attempt (the caller resets it when a command later completes),
        so a revived worker that immediately fails again — a crash
        loop, e.g. a ``spawn_fail`` fault — burns through the budget
        and trips :class:`RestartBudgetExhausted` instead of respawning
        forever. A respawn that dies during checkpoint replay retries
        here under the same budget.
        """
        while True:
            failures = self._failures[slot_index]
            if failures >= self.restart_budget:
                raise RestartBudgetExhausted(
                    f"worker {slot_index} failed {failures} consecutive "
                    f"revivals (budget {self.restart_budget}, last reason "
                    f"{reason!r}); degrade off the persistent pool"
                )
            self._failures[slot_index] = failures + 1
            if failures > 0:
                sleep(
                    min(
                        self.BACKOFF_CAP_S,
                        self.backoff_base_s * (2 ** (failures - 1)),
                    )
                )
            count_event("repro_worker_restarts_total", {"reason": reason})
            self._restarts_total += 1
            try:
                self._revive_slot(slot_index)
            except WorkerTimeout:
                self._kill_slot(slot_index)
                count_event("repro_worker_timeouts_total")
                reason = "timeout"
                continue
            except RingFault:
                self._kill_slot(slot_index)
                reason = "ring"
                continue
            except _PIPE_ERRORS:
                reason = "crash"
                continue
            return

    def _retry_burst(
        self,
        slot_index: int,
        items: Sequence[Tuple[int, tuple]],
        reason: str,
        results: List[Any],
        errors: List[str],
    ) -> None:
        """Revive a failed slot and re-run its whole command burst.

        Each pass rebuilds the worker to the pre-burst state (checkpoint
        + oplog replay), so the burst is always replayed from the top;
        a pass that fails again loops back through the budgeted revival.
        Success resets the slot's circuit breaker.
        """
        while True:
            self._supervised_revive(slot_index, reason)
            slot = self._slots[slot_index]
            try:
                for position, msg in items:
                    slot.send_command(msg)
                    tag, value = slot.recv_reply(timeout=self.step_timeout_s)
                    if tag == "err":
                        errors.append(value)
                    else:
                        results[position] = value
            except WorkerTimeout:
                self._kill_slot(slot_index)
                count_event("repro_worker_timeouts_total")
                reason = "timeout"
                continue
            except RingFault:
                self._kill_slot(slot_index)
                reason = "ring"
                continue
            except _PIPE_ERRORS:
                reason = "crash"
                continue
            self._failures[slot_index] = 0
            return

    def _scatter_gather(self, msgs: Sequence[Tuple[int, tuple]]) -> List[Any]:
        """Send addressed commands, collect replies in command order.

        ``msgs`` is a list of ``(slot_index, message)``. Slots run
        concurrently, but each slot has at most **one** command in
        flight: the next command is sent only after the previous reply
        is fully received, so whenever the coordinator blocks in
        ``send`` the worker is guaranteed to be draining its request
        pipe — no message size can deadlock the pair (a worker
        serializes its commands anyway, so nothing is lost). A slot
        that fails mid-burst — pipe broken (crash), per-command
        deadline missed (hang; the worker is SIGKILLed first), or an
        unresolvable reply ring — is revived under the restart budget
        (fresh process, checkpoint + oplog replay) and its whole burst
        is retried; a Python exception *inside* a worker comes back as
        an ``("err", ...)`` reply and is raised only after every
        pending reply has been drained, so the pipes stay in sync.
        """
        self._ensure_started()
        queues: Dict[int, deque] = {}
        for position, (slot_index, msg) in enumerate(msgs):
            queues.setdefault(slot_index, deque()).append((position, msg))
        all_items = {slot_index: list(queue) for slot_index, queue in queues.items()}
        results: List[Any] = [None] * len(msgs)
        errors: List[str] = []
        failed: Dict[int, Tuple[str, List[Tuple[int, tuple]]]] = {}
        in_flight: Dict[Any, Tuple[int, int, bool]] = {}  # conn -> (slot, pos, step?)
        deadlines: Dict[Any, float] = {}  # conn -> monotonic deadline

        def fail(slot_index: int, reason: str) -> None:
            failed[slot_index] = (reason, all_items[slot_index])
            queues[slot_index].clear()

        def send_next(slot_index: int) -> None:
            queue = queues[slot_index]
            if not queue:
                return
            position, msg = queue.popleft()
            slot = self._slots[slot_index]
            try:
                # Packed at send time into this worker's command ring —
                # the previous reply has been received, so the worker
                # has consumed the previous command and the ring is free.
                slot.send_command(msg)
            except _PIPE_ERRORS:
                fail(slot_index, "crash")
                return
            in_flight[slot.conn] = (slot_index, position, msg[0] == "step")
            if self.step_timeout_s is not None:
                deadlines[slot.conn] = monotonic() + self.step_timeout_s

        for slot_index in list(queues):
            send_next(slot_index)
        while in_flight:
            if self.step_timeout_s is None:
                ready = _connection_wait(list(in_flight))
            else:
                wait = min(deadlines.values()) - monotonic()
                ready = (
                    _connection_wait(list(in_flight), timeout=wait)
                    if wait > 0
                    else []
                )
                if not ready:
                    # Every conn past its deadline belongs to a hung
                    # worker: kill it (its state is untrusted) and queue
                    # the burst for a supervised retry.
                    now = monotonic()
                    for conn in [
                        c for c, d in deadlines.items() if d <= now
                    ]:
                        slot_index, _, _ = in_flight.pop(conn)
                        deadlines.pop(conn, None)
                        self._kill_slot(slot_index)
                        count_event("repro_worker_timeouts_total")
                        fail(slot_index, "timeout")
                    continue
            for conn in ready:
                slot_index, position, is_step = in_flight.pop(conn)
                deadlines.pop(conn, None)
                try:
                    # Step replies are unpacked as zero-copy views into
                    # the worker's reply ring; everything else (exports
                    # that enter the oplog, checkpoint pulls, acks) is
                    # copied out before the next command is sent, which
                    # is what lets the worker rewind its ring per message.
                    tag, value = self._slots[slot_index].recv_reply(
                        views=is_step
                    )
                except RingFault:
                    self._kill_slot(slot_index)
                    fail(slot_index, "ring")
                    continue
                except _PIPE_ERRORS:
                    fail(slot_index, "crash")
                    continue
                if tag == "err":
                    errors.append(value)
                else:
                    if is_step and queues[slot_index]:
                        # Another command for this worker follows in the
                        # burst: its reply will overwrite the ring, so
                        # this reply's views escape the message window —
                        # copy them out now (the only case views degrade
                        # to copies; with one shard per worker the views
                        # survive untouched until the step consumes them).
                        value = materialize(value)
                    results[position] = value
                send_next(slot_index)
        for slot_index, (reason, items) in failed.items():
            # The worker failed mid-burst: its resident state is rebuilt
            # to the pre-burst point, so every command of the burst is
            # re-run (including any that had already been answered).
            self._retry_burst(slot_index, items, reason, results, errors)
        if errors:
            raise InferenceError(f"persistent worker failed:\n{errors[0]}")
        return results

    # -- generic executor protocol -------------------------------------
    def map_shards(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """One-off task mapping on the persistent workers (round-robin)."""
        return self._scatter_gather(
            [(i % self.workers, ("call", fn, task)) for i, task in enumerate(tasks)]
        )

    # -- resident-population protocol ----------------------------------
    def new_key(self) -> int:
        """A fresh population key, unique within this executor."""
        key = self._next_key
        self._next_key += 1
        return key

    def load_population(self, key: int, stepper: Any, shards: Sequence[Any]) -> None:
        """Make ``shards`` resident, keyed by ``key``; checkpoint them.

        ``stepper`` is the engine: it is pickled to each worker once and
        supplies ``step_shard`` plus the worker-side shard operations
        (``shard_export`` / ``shard_assemble`` / ``shard_commit_weights``).
        """
        if key in self._populations:
            raise InferenceError(f"population key {key!r} already resident")
        self._ensure_started()
        self._populations[key] = _ResidentState(
            key, stepper, [shard_len(shard) for shard in shards], shards
        )
        self._scatter_gather(
            [
                (self._slot_of(i), ("load", key, i, shard, stepper))
                for i, shard in enumerate(shards)
            ]
        )

    def _mutate(self, state: "_ResidentState", msgs) -> List[Any]:
        """Run mutating commands; a failure part-way poisons the key.

        When one shard's command errors, the other shards have already
        advanced in their workers, so the resident state no longer
        matches the oplog (or anything the serial path could produce).
        Nothing can repair that consistently — the population is marked
        unusable and every later command on it raises, instead of
        silently stepping desynchronized shards.
        """
        try:
            return self._scatter_gather(msgs)
        except Exception:
            state.poisoned = True
            raise

    def step_population(
        self, key: int, inp: Any, trace: bool = False
    ) -> List[Tuple[Any, Any, Any]]:
        """Advance every shard; returns per-shard (outs, step_logw, prev_logw).

        With ``trace=True`` each worker times its shard step and appends
        the span list as a fourth summary element. The oplog records the
        step without the flag — replayed steps never trace.
        """
        state = self._state(key)
        summaries = self._mutate(
            state,
            [
                (self._slot_of(i), ("step", key, i, inp, trace))
                for i in range(state.n_shards)
            ],
        )
        for oplog in state.oplogs:
            oplog.append(("step", inp))
        return summaries

    def commit_population_weights(self, key: int) -> None:
        """No-resample barrier: workers fold step weights in-place."""
        state = self._state(key)
        self._mutate(
            state,
            [(self._slot_of(i), ("weights", key, i)) for i in range(state.n_shards)],
        )
        for oplog in state.oplogs:
            oplog.append(("weights",))
        self._after_commit(state)

    def exchange_population(
        self,
        key: int,
        requests: Sequence[Dict[int, List[int]]],
        plans: Sequence[List[tuple]],
    ) -> None:
        """Resample barrier: export migrating particles, rebuild shards.

        ``requests[d][s]`` lists the source-local indices destination
        shard ``d`` needs from shard ``s``; ``plans[d]`` is the slot
        plan the destination worker rebuilds from (see
        :func:`~repro.exec.population.build_exchange_plan`). Exports
        are gathered *before* any shard mutates, so a crash anywhere in
        the barrier stays recoverable.
        """
        state = self._state(key)
        pairs = [
            (dest, source, local_indices)
            for dest, request in enumerate(requests)
            for source, local_indices in sorted(request.items())
        ]
        packages = self._scatter_gather(
            [
                (self._slot_of(source), ("export", key, source, local_indices))
                for _, source, local_indices in pairs
            ]
        )
        imports: List[Dict[int, Any]] = [{} for _ in range(state.n_shards)]
        for (dest, source, _), package in zip(pairs, packages):
            imports[dest][source] = package
        self._mutate(
            state,
            [
                (self._slot_of(d), ("assemble", key, d, plans[d], imports[d]))
                for d in range(state.n_shards)
            ],
        )
        for d in range(state.n_shards):
            state.oplogs[d].append(("assemble", plans[d], imports[d]))
        self._after_commit(state)

    def pull_population(self, key: int) -> List[Any]:
        """Fresh copies of every resident shard, in shard order."""
        state = self._state(key)
        return self._scatter_gather(
            [(self._slot_of(i), ("pull", key, i)) for i in range(state.n_shards)]
        )

    def release_population(self, key: int) -> None:
        """Drop a resident population (worker memory and checkpoints)."""
        state = self._populations.pop(key, None)
        if state is None or self._slots is None:
            return
        for slot in self._slots:
            try:
                slot.conn.send(("unload", key))
                slot.conn.recv()
            except Exception:
                continue

    def _state(self, key: int) -> _ResidentState:
        try:
            state = self._populations[key]
        except KeyError:
            raise InferenceError(f"no resident population with key {key!r}")
        if state.poisoned:
            raise InferenceError(
                "this resident population is inconsistent after a prior "
                "worker error; rebuild the engine state with init()"
            )
        return state

    def _after_commit(self, state: _ResidentState) -> None:
        """Count a committed step; refresh checkpoints on the interval.

        The step itself is already committed when this runs, so a
        failing checkpoint pull must not poison the stream: the old
        checkpoint + oplog still reconstruct the current state exactly,
        and whatever broke the pull will resurface on the next real
        command where supervision handles it.
        """
        state.steps += 1
        if state.steps % self.checkpoint_every == 0:
            try:
                checkpoints = self.pull_population(state.key)
            except Exception:
                return
            state.checkpoints = checkpoints
            state.oplogs = [[] for _ in state.sizes]

    def recover_population(self, key: int) -> List[Any]:
        """Rebuild every shard coordinator-side, without any worker.

        The degradation path: when the restart budget is exhausted the
        engines call this to reassemble the population from the
        coordinator's own checkpoints + oplogs, then continue on the
        next executor rung. Replay mirrors the worker loop exactly
        (same ``step_shard`` / ``shard_assemble`` / ``shard_commit_weights``
        calls on the same checkpointed payload and RNG substream), so
        the recovered shards are bit-identical to the lost residents.

        A trailing unpaired ``step`` entry — one whose commit barrier
        never ran because that is where the pool died — is dropped:
        the engine re-runs that step in full on the new executor.
        Deliberately ignores the ``poisoned`` flag (recovery is the one
        consumer that can still make sense of the checkpoints) and
        leaves the resident record untouched so a later
        ``release_population`` behaves normally.
        """
        state = self._populations.get(key)
        if state is None:
            raise InferenceError(f"no resident population with key {key!r}")
        shards: List[Any] = []
        for index in range(state.n_shards):
            # Replay mutates the payload in place for some steppers —
            # roundtrip the checkpoint so it stays a pristine copy.
            shard = pickle.loads(pickle.dumps(state.checkpoints[index]))
            oplog = list(state.oplogs[index])
            if oplog and oplog[-1][0] == "step":
                oplog.pop()
            logw = None
            for entry in oplog:
                if entry[0] == "step":
                    result = state.stepper.step_shard(
                        shard.payload, shard.rng, entry[1]
                    )
                    shard.payload = result.payload
                    shard.rng = result.rng
                    logw = result.prev_log_weights + result.step_log_weights
                elif entry[0] == "assemble":
                    shard.payload = state.stepper.shard_assemble(
                        shard.payload, entry[1], entry[2]
                    )
                    logw = None
                elif entry[0] == "weights":
                    if logw is None:
                        raise InferenceError(
                            "weight commit without a preceding step"
                        )
                    shard.payload = state.stepper.shard_commit_weights(
                        shard.payload, logw
                    )
                else:
                    raise InferenceError(f"unknown oplog entry {entry[0]!r}")
            shards.append(shard)
        return shards


def shard_len(shard: Any) -> int:
    """Particle count of a shard payload (list or ParticleBatch-like)."""
    payload = shard.payload
    if hasattr(payload, "n"):
        return int(payload.n)
    return len(payload)


#: spec name -> executor class, for ``"name"`` / ``"name:N"`` specs.
EXECUTORS: Dict[str, Callable[..., Executor]] = {
    "serial": SerialExecutor,
    "threads": ThreadShardExecutor,
    "processes": ProcessShardExecutor,
    "processes-persistent": PersistentProcessExecutor,
}

#: one shared instance per spec string, so engines built from the same
#: spec (benchmark sweeps, stream-server sessions) share one pool.
_INSTANCES: Dict[str, Executor] = {}


def parse_executor(spec: Union[None, str, Executor]) -> Executor:
    """Resolve an executor spec to an :class:`Executor` instance.

    ``None`` means serial; an :class:`Executor` instance passes through;
    a string is ``"serial"``, ``"threads"``, ``"processes"``, or
    ``"processes-persistent"``, optionally with a worker count
    (``"threads:4"``). String specs are cached process-wide: the same
    spec always returns the same instance (release the cache with
    :func:`shutdown_executors`).
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        return spec
    if not isinstance(spec, str):
        raise InferenceError(
            f"executor must be a spec string or Executor, got {type(spec).__name__}"
        )
    if spec in _INSTANCES:
        return _INSTANCES[spec]
    name, sep, count = spec.partition(":")
    if name not in EXECUTORS:
        raise InferenceError(
            f"unknown executor {name!r}; choose from {sorted(EXECUTORS)}"
        )
    if sep:
        if name == "serial":
            raise InferenceError("the serial executor takes no worker count")
        try:
            workers = int(count)
        except ValueError:
            raise InferenceError(f"bad worker count in executor spec {spec!r}")
        executor = EXECUTORS[name](workers)
    else:
        executor = EXECUTORS[name]()
    _INSTANCES[spec] = executor
    return executor


def shutdown_executors() -> None:
    """Close every spec-cached executor and clear the cache.

    The per-spec cache otherwise keeps thread/process pools alive for
    the lifetime of the interpreter. Call this in test teardown or at
    the end of a sweep; it is also registered via :mod:`atexit`.
    Closing is non-destructive — pooled executors lazily re-create
    their pool on next use, and :class:`PersistentProcessExecutor`
    restores resident populations from its checkpoints — so an engine
    holding a cached executor keeps working after a shutdown.
    """
    while _INSTANCES:
        _, executor = _INSTANCES.popitem()
        try:
            executor.close()
        except Exception:
            # One half-dead pool must not strand the rest of the cache.
            continue


atexit.register(shutdown_executors)
