"""Bidirectional shared-memory transport for persistent workers.

The persistent executor's steady-state traffic has two directions:

* **reply** (worker → coordinator): the arrays a worker sends back from
  each ``step`` command — the stacked outputs and the two log-weight
  vectors — plus export packages and checkpoint ``pull`` payloads.
* **cmd** (coordinator → worker): per-step observation inputs, resample
  exchange plans (ancestor index arrays and migrating particle rows),
  and the checkpointed shard payloads replayed after a worker revival.

Pickling ships those arrays through the pipe byte by byte; this module
moves the array *payloads* through one
:class:`multiprocessing.shared_memory.SharedMemory` ring per direction
per worker instead, so the pipe carries only small descriptors — a
steady-state no-resample step moves **zero pickled payload bytes**.

Protocol fit: the coordinator keeps **at most one command in flight per
worker** and consumes every reply before the next command to that
worker is sent, so writer and reader can never race on a region. Each
ring therefore degenerates to a bump allocator that rewinds for every
message — :meth:`ShmRing.pack` starts at offset 0, lays arrays head to
tail, and anything that does not fit simply stays inline in the pickle
(the fallback path, also taken when shared memory is unavailable on the
platform or disabled with ``shm_bytes=0``). Correctness never depends
on a ring; only latency does.

On the unpack side there are two modes. ``mode="copy"`` (the default)
materializes fresh private arrays — required whenever the reference
escapes the current message window (checkpoint pulls, export packages
that enter the oplog, worker-resident command payloads). ``mode="view"``
returns **read-only NumPy views** straight into the ring — zero-copy,
used by the coordinator for per-step replies whose arrays are consumed
(concatenated or copied) within the step; :func:`materialize` is the
escape hatch that deep-copies any such view out of a pytree before a
reference outlives the message window.

Every fallback and every payload byte is accounted to the process
metrics registry (see :class:`TransportStats`): capacity
misconfiguration is visible as ``repro_shm_fallback_total`` instead of
silently degrading to pickles.

The coordinator owns each ring's lifetime: it creates one pair per
worker slot, hands the names to the worker, and unlinks them when the
worker is replaced or the executor closes.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from repro.obs.registry import count_event

try:  # pragma: no cover - exercised by absence only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "ShmRing",
    "ShmBlock",
    "ShmLeaf",
    "TransportStats",
    "register_shm_leaf",
    "shm_available",
    "materialize",
    "measure_payload",
]

#: minimum array payload worth redirecting through the ring; tiny arrays
#: cost more in descriptor + copy bookkeeping than they save.
MIN_BYTES = 128


def shm_available() -> bool:
    """True when the platform offers POSIX/Windows shared memory."""
    return _shared_memory is not None


#: opaque types the transport knows how to open up:
#: type -> (decompose(obj) -> walkable pytree, rebuild(pytree) -> obj).
#: Layers that own array-carrying payload objects (the vectorized
#: package's ChainOuts, the exec layer's Shard / exchange plans)
#: register here so their arrays ride the ring too; registration happens
#: at import time on both sides of the pipe, since workers import the
#: same modules to unpickle the stepper.
_LEAF_CODECS: dict = {}


def register_shm_leaf(cls: type, decompose: Any, rebuild: Any) -> None:
    """Teach the transport to park an opaque payload type's arrays."""
    _LEAF_CODECS[cls] = (decompose, rebuild)


class ShmLeaf:
    """A registered opaque object, decomposed for transport."""

    __slots__ = ("cls", "parts")

    def __init__(self, cls: type, parts: Any):
        self.cls = cls
        self.parts = parts

    def __repr__(self) -> str:
        return f"ShmLeaf({self.cls.__name__})"


class ShmBlock:
    """Descriptor of one array parked in a ring (travels in the pickle)."""

    __slots__ = ("offset", "shape", "dtype")

    def __init__(self, offset: int, shape: Tuple[int, ...], dtype: str):
        self.offset = offset
        self.shape = shape
        self.dtype = dtype

    def __repr__(self) -> str:
        return f"ShmBlock(offset={self.offset}, shape={self.shape}, dtype={self.dtype})"


class TransportStats:
    """Parent-side byte accounting for one packed/unpacked message.

    ``pickled_bytes`` are ndarray payload bytes that crossed (or will
    cross) the pipe inside the pickle — small arrays under
    :data:`MIN_BYTES`, ring-overflow fallbacks, and everything when the
    ring is disabled. ``shm_bytes`` are bytes that rode a ring instead.
    ``fallbacks`` counts arrays that *should* have parked (big enough,
    numeric) but overflowed the ring — the signal that ``shm_bytes`` is
    undersized for the workload.
    """

    __slots__ = ("pickled_bytes", "shm_bytes", "fallbacks")

    def __init__(self):
        self.pickled_bytes = 0
        self.shm_bytes = 0
        self.fallbacks = 0

    def flush(self, direction: str) -> None:
        """Fold this message's accounting into the default registry.

        Counters: ``repro_shm_fallback_total{direction=cmd|reply}`` and
        ``repro_transport_{pickled,shm}_bytes_total{direction=...}``.
        No-op counters are skipped, so a clean zero-pickle steady-state
        step touches the registry only for its ring bytes.
        """
        if self.fallbacks:
            count_event(
                "repro_shm_fallback_total",
                {"direction": direction},
                self.fallbacks,
            )
        if self.pickled_bytes:
            count_event(
                "repro_transport_pickled_bytes_total",
                {"direction": direction},
                self.pickled_bytes,
            )
        if self.shm_bytes:
            count_event(
                "repro_transport_shm_bytes_total",
                {"direction": direction},
                self.shm_bytes,
            )

    def __repr__(self) -> str:
        return (
            f"TransportStats(pickled={self.pickled_bytes}, "
            f"shm={self.shm_bytes}, fallbacks={self.fallbacks})"
        )


def measure_payload(obj: Any, stats: TransportStats) -> None:
    """Account the ndarray payload bytes of a fully pickled message.

    Used on the pickle path (ring disabled/unavailable) so the
    before/after byte comparison in the benchmarks does not need the
    ring to exist. Registered leaf types are decomposed for the walk,
    mirroring what :meth:`ShmRing.pack` would have seen.
    """
    if isinstance(obj, np.ndarray):
        if not obj.dtype.hasobject:
            stats.pickled_bytes += int(obj.nbytes)
        return
    if isinstance(obj, (tuple, list)):
        for item in obj:
            measure_payload(item, stats)
        return
    if isinstance(obj, dict):
        for item in obj.values():
            measure_payload(item, stats)
        return
    codec = _LEAF_CODECS.get(type(obj))
    if codec is not None:
        measure_payload(codec[0](obj), stats)


def materialize(obj: Any) -> Any:
    """Deep-copy any ring-backed (read-only) array views in a pytree.

    The escape hatch of view-mode unpacking: a view into a ring is only
    valid until the next message to that worker overwrites the region,
    so any reference that outlives the message window must be copied
    first. Writable arrays — anything that is not a ring view — pass
    through untouched, as do non-array leaves.
    """
    if isinstance(obj, np.ndarray):
        return np.array(obj) if not obj.flags.writeable else obj
    if isinstance(obj, tuple):
        return tuple(materialize(o) for o in obj)
    if isinstance(obj, list):
        return [materialize(o) for o in obj]
    if isinstance(obj, dict):
        return {k: materialize(v) for k, v in obj.items()}
    codec = _LEAF_CODECS.get(type(obj))
    if codec is not None:
        return codec[1](materialize(codec[0](obj)))
    return obj


class ShmRing:
    """One shared-memory ring: created by the coordinator, attached by a worker.

    ``pack`` (sender side) rewrites a message, parking eligible ndarray
    leaves in the ring and replacing them with :class:`ShmBlock`
    descriptors; ``unpack`` (receiver side) materializes the descriptors
    as fresh copies (``mode="copy"``) or read-only zero-copy views
    (``mode="view"``). Both walk tuples/lists/dicts structurally,
    decompose registered leaf types, and leave every other object
    alone, so messages that contain no arrays (plain acks, scalar
    observation inputs) pass through untouched.

    The same class serves both directions: the coordinator packs into a
    worker's *command* ring and unpacks from its *reply* ring; the
    worker does the reverse.
    """

    def __init__(self, shm: Any, owner: bool):
        self._shm = shm
        self._owner = owner
        #: fault-injection hook (:mod:`repro.faults`): when set, every
        #: subsequent park falls back inline as if the ring were full —
        #: the deterministic ring-exhaustion fault. Plain attribute so
        #: the disabled cost is one load on the park path.
        self.fault_exhausted = False

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(cls, nbytes: int) -> Optional["ShmRing"]:
        """Coordinator side: allocate a ring, or None when unavailable."""
        if _shared_memory is None or nbytes <= 0:
            return None
        try:
            shm = _shared_memory.SharedMemory(create=True, size=int(nbytes))
        except OSError:
            return None
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: Optional[str]) -> Optional["ShmRing"]:
        """Worker side: attach to the coordinator's ring by name."""
        if _shared_memory is None or name is None:
            return None
        try:
            shm = _shared_memory.SharedMemory(name=name)
        except (OSError, FileNotFoundError):
            return None
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return int(self._shm.size)

    def close(self) -> None:
        """Detach; the owner also unlinks the segment."""
        try:
            self._shm.close()
        except Exception:
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:
                pass

    # -- transport ------------------------------------------------------
    def pack(self, obj: Any, stats: Optional[TransportStats] = None) -> Any:
        """Park array leaves of a message in the ring (one message at a time).

        The cursor rewinds to 0 for every call — valid because the
        executor protocol guarantees the previous message through this
        ring has been fully consumed before this one is produced.
        Arrays that do not fit in the remaining space stay inline (and
        are accounted as fallbacks in ``stats``).
        """
        cursor = [0]
        return self._pack(obj, cursor, stats)

    def _pack(self, obj: Any, cursor: List[int], stats) -> Any:
        if isinstance(obj, np.ndarray):
            return self._park(obj, cursor, stats)
        if isinstance(obj, tuple):
            return tuple(self._pack(o, cursor, stats) for o in obj)
        if isinstance(obj, list):
            return [self._pack(o, cursor, stats) for o in obj]
        if isinstance(obj, dict):
            return {k: self._pack(v, cursor, stats) for k, v in obj.items()}
        codec = _LEAF_CODECS.get(type(obj))
        if codec is not None:
            return ShmLeaf(type(obj), self._pack(codec[0](obj), cursor, stats))
        return obj

    def _park(self, array: np.ndarray, cursor: List[int], stats) -> Any:
        if array.dtype.hasobject or array.nbytes < MIN_BYTES:
            if stats is not None and not array.dtype.hasobject:
                stats.pickled_bytes += int(array.nbytes)
            return array
        if self.fault_exhausted:
            # Injected exhaustion: behave exactly like a full ring.
            if stats is not None:
                stats.pickled_bytes += int(array.nbytes)
                stats.fallbacks += 1
            return array
        data = np.ascontiguousarray(array)
        start = cursor[0]
        # 8-byte alignment keeps frombuffer happy for every numeric dtype.
        start = (start + 7) & ~7
        end = start + data.nbytes
        if end > self.nbytes:
            # ring full: ship inline — the fallback the counters exist for
            if stats is not None:
                stats.pickled_bytes += int(array.nbytes)
                stats.fallbacks += 1
            return array
        view = np.frombuffer(
            self._shm.buf, dtype=data.dtype, count=data.size, offset=start
        )
        view[:] = data.reshape(-1)
        cursor[0] = end
        if stats is not None:
            stats.shm_bytes += int(data.nbytes)
        return ShmBlock(start, data.shape, data.dtype.str)

    def unpack(
        self,
        obj: Any,
        mode: str = "copy",
        stats: Optional[TransportStats] = None,
    ) -> Any:
        """Resolve :class:`ShmBlock` descriptors in a received message.

        ``mode="copy"`` materializes fresh private arrays; ``mode="view"``
        returns read-only views into the ring — zero-copy, valid only
        until the next message through this ring, so callers must
        :func:`materialize` anything that escapes the message window.

        Inline ndarrays big enough to have parked are counted as
        fallbacks in ``stats`` — this is how the coordinator observes
        overflow that happened on the *worker* side of a reply ring.
        """
        if isinstance(obj, ShmBlock):
            count = int(np.prod(obj.shape, dtype=np.int64)) if obj.shape else 1
            view = np.frombuffer(
                self._shm.buf, dtype=np.dtype(obj.dtype), count=count,
                offset=obj.offset,
            )
            if stats is not None:
                stats.shm_bytes += int(view.nbytes)
            if mode == "view":
                view.flags.writeable = False
                return view.reshape(obj.shape)
            return np.array(view).reshape(obj.shape)
        if isinstance(obj, np.ndarray):
            if stats is not None and not obj.dtype.hasobject:
                stats.pickled_bytes += int(obj.nbytes)
                if obj.nbytes >= MIN_BYTES:
                    stats.fallbacks += 1
            return obj
        if isinstance(obj, tuple):
            return tuple(self.unpack(o, mode, stats) for o in obj)
        if isinstance(obj, list):
            return [self.unpack(o, mode, stats) for o in obj]
        if isinstance(obj, dict):
            return {k: self.unpack(v, mode, stats) for k, v in obj.items()}
        if isinstance(obj, ShmLeaf):
            return _LEAF_CODECS[obj.cls][1](self.unpack(obj.parts, mode, stats))
        return obj

    def __repr__(self) -> str:
        role = "owner" if self._owner else "worker"
        return f"ShmRing(name={self.name!r}, nbytes={self.nbytes}, {role})"
