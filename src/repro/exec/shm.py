"""Shared-memory transport for per-step worker replies.

The persistent executor's per-step traffic is dominated by the arrays a
worker sends back from each ``step`` command: the stacked outputs and
the two log-weight vectors. (Checkpoint ``pull`` replies are opaque
:class:`~repro.exec.population.Shard` objects the structural walk does
not open, so they still ship pickled — they happen once per
``checkpoint_every`` steps, not per step.)
Pickling ships those arrays through the pipe byte by byte; this module
moves the array *payloads* through one
:class:`multiprocessing.shared_memory.SharedMemory` ring per worker
instead, so the pipe carries only small descriptors.

Protocol fit: the coordinator keeps **at most one command in flight per
worker** and consumes (copies out of the ring) every reply before the
next command to that worker is sent, so writer and reader can never
race on a region. The ring therefore degenerates to a bump allocator
that rewinds for every message — :meth:`ShmRing.pack` starts at offset
0, lays arrays head to tail, and anything that does not fit simply
stays inline in the pickle (the fallback path, also taken when shared
memory is unavailable on the platform or disabled with
``shm_bytes=0``). Correctness never depends on the ring; only latency
does.

The coordinator owns each ring's lifetime: it creates one per worker
slot, hands the name to the worker, and unlinks it when the worker is
replaced or the executor closes.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised by absence only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = ["ShmRing", "ShmBlock", "ShmLeaf", "register_shm_leaf", "shm_available"]

#: minimum array payload worth redirecting through the ring; tiny arrays
#: cost more in descriptor + copy bookkeeping than they save.
MIN_BYTES = 128


def shm_available() -> bool:
    """True when the platform offers POSIX/Windows shared memory."""
    return _shared_memory is not None


#: opaque reply types the transport knows how to open up:
#: type -> (decompose(obj) -> walkable pytree, rebuild(pytree) -> obj).
#: Layers that own array-carrying reply objects (e.g. the vectorized
#: package's ChainOuts) register here so their arrays ride the ring too;
#: registration happens at import time on both sides of the pipe, since
#: workers import the same modules to unpickle the stepper.
_LEAF_CODECS: dict = {}


def register_shm_leaf(cls: type, decompose: Any, rebuild: Any) -> None:
    """Teach the transport to park an opaque reply type's arrays."""
    _LEAF_CODECS[cls] = (decompose, rebuild)


class ShmLeaf:
    """A registered opaque object, decomposed for transport."""

    __slots__ = ("cls", "parts")

    def __init__(self, cls: type, parts: Any):
        self.cls = cls
        self.parts = parts

    def __repr__(self) -> str:
        return f"ShmLeaf({self.cls.__name__})"


class ShmBlock:
    """Descriptor of one array parked in a ring (travels in the pickle)."""

    __slots__ = ("offset", "shape", "dtype")

    def __init__(self, offset: int, shape: Tuple[int, ...], dtype: str):
        self.offset = offset
        self.shape = shape
        self.dtype = dtype

    def __repr__(self) -> str:
        return f"ShmBlock(offset={self.offset}, shape={self.shape}, dtype={self.dtype})"


class ShmRing:
    """One shared-memory ring: created by the coordinator, attached by a worker.

    ``pack`` (worker side) rewrites a reply, parking eligible ndarray
    leaves in the ring and replacing them with :class:`ShmBlock`
    descriptors; ``unpack`` (coordinator side) materializes fresh array
    copies from the descriptors. Both walk tuples/lists/dicts
    structurally and leave every other object alone, so replies that
    contain no arrays (scalar-engine particle lists, plain acks) pass
    through untouched.
    """

    def __init__(self, shm: Any, owner: bool):
        self._shm = shm
        self._owner = owner

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def create(cls, nbytes: int) -> Optional["ShmRing"]:
        """Coordinator side: allocate a ring, or None when unavailable."""
        if _shared_memory is None or nbytes <= 0:
            return None
        try:
            shm = _shared_memory.SharedMemory(create=True, size=int(nbytes))
        except OSError:
            return None
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: Optional[str]) -> Optional["ShmRing"]:
        """Worker side: attach to the coordinator's ring by name."""
        if _shared_memory is None or name is None:
            return None
        try:
            shm = _shared_memory.SharedMemory(name=name)
        except (OSError, FileNotFoundError):
            return None
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return int(self._shm.size)

    def close(self) -> None:
        """Detach; the owner also unlinks the segment."""
        try:
            self._shm.close()
        except Exception:
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:
                pass

    # -- transport ------------------------------------------------------
    def pack(self, obj: Any) -> Any:
        """Park array leaves of a reply in the ring (one message at a time).

        The cursor rewinds to 0 for every call — valid because the
        executor protocol guarantees the previous reply has been fully
        unpacked before this one is produced. Arrays that do not fit in
        the remaining space stay inline.
        """
        cursor = [0]
        return self._pack(obj, cursor)

    def _pack(self, obj: Any, cursor: List[int]) -> Any:
        if isinstance(obj, np.ndarray):
            return self._park(obj, cursor)
        if isinstance(obj, tuple):
            return tuple(self._pack(o, cursor) for o in obj)
        if isinstance(obj, list):
            return [self._pack(o, cursor) for o in obj]
        if isinstance(obj, dict):
            return {k: self._pack(v, cursor) for k, v in obj.items()}
        codec = _LEAF_CODECS.get(type(obj))
        if codec is not None:
            return ShmLeaf(type(obj), self._pack(codec[0](obj), cursor))
        return obj

    def _park(self, array: np.ndarray, cursor: List[int]) -> Any:
        if array.dtype.hasobject or array.nbytes < MIN_BYTES:
            return array
        data = np.ascontiguousarray(array)
        start = cursor[0]
        # 8-byte alignment keeps frombuffer happy for every numeric dtype.
        start = (start + 7) & ~7
        end = start + data.nbytes
        if end > self.nbytes:
            return array  # ring full: ship inline
        view = np.frombuffer(
            self._shm.buf, dtype=data.dtype, count=data.size, offset=start
        )
        view[:] = data.reshape(-1)
        cursor[0] = end
        return ShmBlock(start, data.shape, data.dtype.str)

    def unpack(self, obj: Any) -> Any:
        """Materialize :class:`ShmBlock` descriptors as fresh array copies."""
        if isinstance(obj, ShmBlock):
            count = int(np.prod(obj.shape, dtype=np.int64)) if obj.shape else 1
            view = np.frombuffer(
                self._shm.buf, dtype=np.dtype(obj.dtype), count=count,
                offset=obj.offset,
            )
            return np.array(view).reshape(obj.shape)
        if isinstance(obj, tuple):
            return tuple(self.unpack(o) for o in obj)
        if isinstance(obj, list):
            return [self.unpack(o) for o in obj]
        if isinstance(obj, dict):
            return {k: self.unpack(v) for k, v in obj.items()}
        if isinstance(obj, ShmLeaf):
            return _LEAF_CODECS[obj.cls][1](self.unpack(obj.parts))
        return obj

    def __repr__(self) -> str:
        role = "owner" if self._owner else "worker"
        return f"ShmRing(name={self.name!r}, nbytes={self.nbytes}, {role})"
