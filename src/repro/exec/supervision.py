"""Supervision vocabulary for the persistent executor.

The failure taxonomy of supervised worker execution, plus the validated
environment knobs that configure it. Kept dependency-free (only
:mod:`repro.errors`) so both the executor and the fault-injection layer
can import it without cycles.

Failure classes — each maps to a ``reason`` label on the
``repro_worker_restarts_total`` counter:

* ``crash``  — the worker process died (pipe EOF / broken pipe).
* ``timeout`` — a command exceeded the step deadline
  (:class:`WorkerTimeout`); the coordinator SIGKILLs the worker first,
  so recovery is identical to a crash.
* ``ring``   — a reply could not be resolved from the shared-memory
  ring (:class:`RingFault`): corrupted descriptors, truncated reads.
  The transport state of that worker is untrusted, so it is killed and
  revived like a crash.

When one slot fails repeatedly without an intervening success, the
restart budget trips (:class:`RestartBudgetExhausted`) and the engines
degrade the stream off the persistent pool entirely — see
``InferenceEngine._degrade_resident``.

Environment knobs (all validated here, mirroring ``REPRO_SHM_BYTES``):

* ``REPRO_STEP_TIMEOUT_S``   — per-command deadline in seconds;
  unset/``0`` disables deadlines (the default).
* ``REPRO_RESTART_BUDGET``   — consecutive failed revivals per worker
  slot before the circuit breaker trips (default 3).
* ``REPRO_CHECKPOINT_EVERY`` — committed steps between checkpoint
  refreshes (default 8).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import InferenceError

__all__ = [
    "WorkerTimeout",
    "RingFault",
    "RestartBudgetExhausted",
    "env_step_timeout_s",
    "env_restart_budget",
    "env_checkpoint_every",
]


class WorkerTimeout(InferenceError):
    """A persistent worker missed its per-command deadline."""


class RingFault(InferenceError):
    """A reply could not be resolved from a worker's shared-memory ring."""


class RestartBudgetExhausted(InferenceError):
    """A worker slot failed more consecutive revivals than its budget.

    The signal that the persistent pool cannot serve this stream: the
    engines catch it, reassemble the population from the coordinator's
    checkpoints, and continue on the next rung of the executor ladder.
    """


def _env_number(name: str, caster, minimum):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = caster(raw)
    except ValueError:
        raise InferenceError(
            f"{name} must be a {caster.__name__}, got {raw!r}"
        )
    if value < minimum:
        raise InferenceError(
            f"{name} must be >= {minimum}, got {raw!r}"
        )
    return value


def env_step_timeout_s(default: Optional[float] = None) -> Optional[float]:
    """``REPRO_STEP_TIMEOUT_S``: positive seconds, or None when disabled."""
    value = _env_number("REPRO_STEP_TIMEOUT_S", float, 0.0)
    if value is None:
        return default
    return value if value > 0 else None


def env_restart_budget(default: int = 3) -> int:
    """``REPRO_RESTART_BUDGET``: consecutive revivals allowed per slot."""
    value = _env_number("REPRO_RESTART_BUDGET", int, 0)
    return default if value is None else value


def env_checkpoint_every(default: int = 8) -> int:
    """``REPRO_CHECKPOINT_EVERY``: committed steps between checkpoints."""
    value = _env_number("REPRO_CHECKPOINT_EVERY", int, 1)
    return default if value is None else value
