"""Stream serving: many concurrent inference streams, one executor.

The paper runs ``infer`` as a synchronous node inside *one* reactive
program. A server multiplexes *many* such programs — one per user
session — over a single shared :class:`~repro.exec.executor.Executor`:
each session owns an engine and its externalized state, observations
are submitted asynchronously per session, and the server schedules
pending work in rounds.

Scheduling policies:

* ``"round_robin"`` — each scheduling round advances every session with
  pending input by exactly one synchronous step, in session-open order.
  Fair latency under heavy traffic.
* ``"as_ready"`` — observations are processed in global arrival order,
  whichever session they belong to. FIFO throughput semantics.

Both policies are deterministic: given the same sessions, submissions,
and seeds, the produced posteriors are identical regardless of the
executor or its worker count, because every engine's randomness lives
in its own population's shard substreams.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.dists import Distribution
from repro.errors import InferenceError
from repro.exec.executor import Executor, parse_executor
from repro.exec.population import ResidentPopulation
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    count_event,
)
from repro.obs.spans import TELEMETRY

__all__ = ["StreamSession", "StreamServer"]

_POLICIES = ("round_robin", "as_ready")

#: bucket bounds for the per-tick queue-depth histogram (observations
#: pending when a scheduling round starts).
_QUEUE_DEPTH_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)


def _latency_summary(hist: Histogram) -> Dict[str, Any]:
    """SLO view of a latency histogram: count, mean, p50/p95/p99."""
    return {
        "count": hist.count,
        "mean_ms": hist.mean,
        "p50_ms": hist.quantile(0.50),
        "p95_ms": hist.quantile(0.95),
        "p99_ms": hist.quantile(0.99),
    }


class StreamSession:
    """One user's inference stream: an engine plus its live state."""

    def __init__(self, session_id: str, engine: Any):
        self.session_id = session_id
        self.engine = engine
        self.state = engine.init()
        #: observations waiting to be consumed, as (arrival_seq, obs)
        self.pending: Deque[Tuple[int, Any]] = deque()
        #: posterior distributions produced so far, in step order
        self.outputs: List[Distribution] = []
        self.steps = 0
        #: per-session step-latency histogram. A *local* histogram, not
        #: a registry entry: session ids are unbounded, and unbounded
        #: label cardinality is exactly what a metrics registry must not
        #: absorb. The server's :meth:`StreamServer.metrics_snapshot`
        #: reads it out on demand.
        self.latency = Histogram(
            "repro_session_step_ms",
            labels=(("session", session_id),),
            help="per-session synchronous step latency",
            buckets=DEFAULT_LATENCY_BUCKETS_MS,
        )
        #: duration of the most recent step, in milliseconds.
        self.last_step_ms: Optional[float] = None
        #: checkpoint-recovery retries this session has survived
        #: (see ``StreamServer._retry_session``).
        self.retries = 0

    @property
    def backlog(self) -> int:
        """Number of submitted observations not yet processed."""
        return len(self.pending)

    def step_once(self) -> Distribution:
        """Consume the oldest pending observation (one synchronous step)."""
        if not self.pending:
            raise InferenceError(f"session {self.session_id!r} has no pending input")
        _, obs = self.pending.popleft()
        started = perf_counter()
        dist, self.state = self.engine.step(self.state, obs)
        self.last_step_ms = (perf_counter() - started) * 1e3
        self.latency.observe(self.last_step_ms)
        self.outputs.append(dist)
        self.steps += 1
        return dist


class StreamServer:
    """Serve many concurrent engine streams over one shared executor.

    ::

        server = StreamServer(executor="threads:4")
        for user in range(16):
            server.open(HmmModel(), session_id=f"user{user}", seed=user)
        server.submit("user3", 0.7)
        server.drain()                       # run all pending work
        posterior = server.latest("user3")

    Engines opened through the server share the server's executor (each
    engine's shards are scheduled on the same pool), so total worker
    count is a server-level resource, not per-session. With a
    worker-resident executor (``"processes-persistent:N"``) every
    session's shards stay loaded in the same persistent pool — one set
    of worker processes serves all sessions, and closing a session
    releases its shards from that pool.
    """

    def __init__(
        self,
        executor: Union[None, str, Executor] = None,
        policy: str = "round_robin",
    ):
        if policy not in _POLICIES:
            raise InferenceError(
                f"unknown scheduling policy {policy!r}; choose from {_POLICIES}"
            )
        self.executor = parse_executor(executor)
        # Only inject the executor into sessions when the caller asked
        # for one: a default StreamServer() must serve each session with
        # exactly the engine `infer(model, ...)` would build, same seed
        # same posterior, rather than silently opting into sharded mode.
        self._share_executor = executor is not None
        self.policy = policy
        self._sessions: Dict[str, StreamSession] = {}
        self._arrivals = 0
        self._processed = 0
        self._evicted = 0
        # Server-level SLO instrumentation: always on (local histograms,
        # one observe per step/round), independent of the step-phase
        # tracing switch.
        self._step_latency = Histogram(
            "repro_server_step_ms", help="session step latency, all sessions"
        )
        self._tick_latency = Histogram(
            "repro_server_tick_ms", help="scheduling-round latency"
        )
        self._queue_depth = Histogram(
            "repro_server_queue_depth",
            help="total backlog at the start of each scheduling round",
            buckets=_QUEUE_DEPTH_BUCKETS,
        )

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def open(self, model: Any, session_id: Optional[str] = None, **infer_kwargs: Any) -> str:
        """Open a session running ``infer(model, **infer_kwargs)``.

        The session's engine uses the server's executor unless the
        caller overrides ``executor=`` explicitly.
        """
        from repro.inference.infer import infer

        if session_id is None:
            session_id = f"session{len(self._sessions)}"
        if session_id in self._sessions:
            raise InferenceError(f"session {session_id!r} already open")
        if self._share_executor:
            infer_kwargs.setdefault("executor", self.executor)
        engine = infer(model, **infer_kwargs)
        self._sessions[session_id] = StreamSession(session_id, engine)
        return session_id

    def close(self, session_id: str) -> List[Distribution]:
        """Close a session, returning every posterior it produced.

        A session running on a worker-resident executor releases its
        shards from the shared pool, so closed sessions do not
        accumulate worker memory.
        """
        session = self._session(session_id)
        del self._sessions[session_id]
        if isinstance(session.state, ResidentPopulation):
            session.state.release()
        return session.outputs

    def shutdown(self) -> Dict[str, List[Distribution]]:
        """Close every open session; returns their produced posteriors.

        The executor itself is left alive — it may be shared with other
        servers or engines through the spec cache; release it with
        :func:`~repro.exec.executor.shutdown_executors` (or its own
        ``close()``) when the process is done with it.
        """
        return {
            session_id: self.close(session_id)
            for session_id in list(self._sessions)
        }

    def _session(self, session_id: str) -> StreamSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise InferenceError(f"no open session {session_id!r}")

    # ------------------------------------------------------------------
    # input / output
    # ------------------------------------------------------------------
    def submit(self, session_id: str, obs: Any) -> None:
        """Queue one observation for a session."""
        self._session(session_id).pending.append((self._arrivals, obs))
        self._arrivals += 1

    def submit_many(self, session_id: str, observations: Any) -> None:
        for obs in observations:
            self.submit(session_id, obs)

    def outputs(self, session_id: str) -> List[Distribution]:
        """All posteriors a session has produced so far."""
        return list(self._session(session_id).outputs)

    def latest(self, session_id: str) -> Optional[Distribution]:
        """The most recent posterior of a session, or None."""
        outputs = self._session(session_id).outputs
        return outputs[-1] if outputs else None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        """Total pending observations across all sessions."""
        return sum(s.backlog for s in self._sessions.values())

    def tick(self) -> int:
        """One scheduling round; returns the number of steps performed.

        ``round_robin`` advances each ready session once; ``as_ready``
        processes the single globally oldest pending observation.

        A session whose ``step_once`` raises is *evicted* before the
        error propagates: its worker-resident shards (if any) are
        released from the shared persistent pool, so a failing session
        never strands shards — or worker memory — in the executor that
        every other session shares.
        """
        self._queue_depth.observe(float(self.backlog))
        started = perf_counter()
        try:
            if self.policy == "round_robin":
                ready = [s for s in self._sessions.values() if s.pending]
                for session in ready:
                    self._step_session(session)
                return len(ready)
            oldest: Optional[StreamSession] = None
            for session in self._sessions.values():
                if session.pending and (
                    oldest is None or session.pending[0][0] < oldest.pending[0][0]
                ):
                    oldest = session
            if oldest is None:
                return 0
            self._step_session(oldest)
            return 1
        finally:
            elapsed_ms = (perf_counter() - started) * 1e3
            self._tick_latency.observe(elapsed_ms)
            if TELEMETRY.enabled:
                TELEMETRY.recorder.record("server_tick", elapsed_ms)

    def _step_session(self, session: StreamSession) -> Distribution:
        """Advance one session; retry once from checkpoint, then evict.

        A session whose worker-resident state fails mid-step (worker
        hang past the deadline, crash loop, poisoned population) is
        retried **once** from the executor's coordinator-side
        checkpoints before eviction — the failing step re-runs in full,
        so the posterior stream is unbroken and other sessions never
        see the failure. Only ordinary exceptions evict: a
        ``KeyboardInterrupt`` mid-step is not a failed session, and
        destroying its produced posteriors on an interrupt would be
        worse than the shard leak being fixed.
        """
        recoverable = isinstance(session.state, ResidentPopulation) and hasattr(
            session.state.executor, "recover_population"
        )
        if recoverable:
            # step_once pops the observation *before* stepping and the
            # engine draws ancestors before the barrier: snapshot both
            # so a retry replays the identical step.
            pending_item = session.pending[0] if session.pending else None
            rng_state = session.engine.rng.bit_generator.state
            diagnostics = getattr(session.engine, "diagnostics", None)
            diag_mark = len(diagnostics.steps) if diagnostics is not None else None
        try:
            dist = session.step_once()
        except Exception:
            if not recoverable:
                self._evict(session.session_id)
                raise
            try:
                dist = self._retry_session(
                    session, pending_item, rng_state, diag_mark
                )
            except Exception:
                self._evict(session.session_id)
                raise
        self._processed += 1
        self._step_latency.observe(session.last_step_ms)
        if TELEMETRY.enabled:
            TELEMETRY.recorder.record("server_step", session.last_step_ms)
        return dist

    def _retry_session(
        self,
        session: StreamSession,
        pending_item: Optional[Tuple[int, Any]],
        rng_state: Any,
        diag_mark: Optional[int],
    ) -> Distribution:
        """Rebuild a session's resident state from checkpoints; re-step.

        The executor replays its checkpoint + oplog coordinator-side
        (no worker involved), the recovered shards are loaded back into
        the pool under a fresh key, the engine RNG and diagnostics are
        rewound to the pre-step snapshot, and the popped observation is
        pushed back to the head of the queue — the retried step is
        bit-identical to what the failed one should have produced.
        """
        population = session.state
        engine = session.engine
        shards = population.executor.recover_population(population.key)
        executor = population.executor
        population.release()
        engine.rng.bit_generator.state = rng_state
        if diag_mark is not None:
            del engine.diagnostics.steps[diag_mark:]
        if pending_item is not None and (
            not session.pending or session.pending[0] is not pending_item
        ):
            # step_once popped the observation before failing: push it
            # back so the retried step consumes the same input.
            session.pending.appendleft(pending_item)
        session.state = ResidentPopulation.create(executor, engine, shards)
        session.retries += 1
        count_event("repro_session_retries_total")
        return session.step_once()

    def _evict(self, session_id: str) -> None:
        """Drop a failed session, releasing any worker-resident shards."""
        session = self._sessions.pop(session_id, None)
        if session is None:
            return
        self._evicted += 1
        count_event("repro_session_evictions_total")
        if isinstance(session.state, ResidentPopulation):
            try:
                session.state.release()
            except Exception:
                # Releasing is best-effort on the error path: the
                # original failure is the one the caller must see.
                pass

    def drain(self) -> int:
        """Run scheduling rounds until no session has pending input."""
        total = 0
        while True:
            done = self.tick()
            if done == 0:
                return total
            total += done

    def stats(self) -> Dict[str, Any]:
        """Server-level counters plus per-session progress.

        When the shared executor supervises persistent workers, its
        restart bookkeeping (lifetime revivals, per-slot consecutive
        failures, budget) rides along under ``"workers"``.
        """
        stats: Dict[str, Any] = {
            "sessions": len(self._sessions),
            "processed": self._processed,
            "evicted": self._evicted,
            "backlog": self.backlog,
            "per_session": {
                sid: {
                    "steps": s.steps,
                    "backlog": s.backlog,
                    "retries": s.retries,
                    "last_step_ms": s.last_step_ms,
                }
                for sid, s in self._sessions.items()
            },
        }
        restart_stats = getattr(self.executor, "restart_stats", None)
        if restart_stats is not None:
            stats["workers"] = restart_stats()
        return stats

    def metrics_snapshot(self) -> Dict[str, Any]:
        """SLO view of the server: latency quantiles, gauges, queue depth.

        Quantiles (p50/p95/p99) are derived from the fixed-bucket
        latency histograms (:meth:`~repro.obs.registry.Histogram.quantile`),
        so two snapshots taken at different times can be compared
        directly. Per-session histograms are local to each session — no
        unbounded label cardinality reaches the metrics registry — and
        their full bucket data rides along under ``"histogram"`` for
        offline analysis.
        """
        return {
            "sessions": {"active": len(self._sessions), "evicted": self._evicted},
            "processed": self._processed,
            "backlog": self.backlog,
            "tick_ms": _latency_summary(self._tick_latency),
            "step_ms": _latency_summary(self._step_latency),
            "queue_depth": {
                "mean": self._queue_depth.mean,
                "p95": self._queue_depth.quantile(0.95),
                "ticks": self._queue_depth.count,
            },
            "per_session": {
                sid: dict(
                    _latency_summary(s.latency),
                    backlog=s.backlog,
                    steps=s.steps,
                    histogram=s.latency.snapshot_value(),
                )
                for sid, s in self._sessions.items()
            },
        }

    def __len__(self) -> int:
        return len(self._sessions)

    def __repr__(self) -> str:
        return (
            f"StreamServer(policy={self.policy!r}, sessions={len(self._sessions)}, "
            f"executor={self.executor!r})"
        )
