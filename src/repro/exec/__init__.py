"""Pluggable execution layer: one sharded runtime under every engine.

The inference engines of :mod:`repro.inference` and
:mod:`repro.vectorized` both express one synchronous step as the same
plan — map the step over population shards, merge the weight vectors,
resample at a barrier — and this package owns that plan:

* :class:`Executor` and its implementations (:class:`SerialExecutor`,
  :class:`ThreadShardExecutor`, :class:`ProcessShardExecutor`,
  :class:`PersistentProcessExecutor` — the worker-resident mode, where
  shards stay loaded in long-lived workers and only commands cross the
  process boundary) decide where shard tasks run,
* :class:`ShardedPopulation` fixes the deterministic partition: shard
  count and per-shard ``SeedSequence`` substreams are independent of
  the executor, so any worker count reproduces the serial posterior
  bit-for-bit at a fixed seed,
* :class:`StreamServer` multiplexes many concurrent engine streams
  (sessions) over one shared executor.

Select it through the public API::

    from repro import infer
    engine = infer(model, n_particles=10_000, executor="processes:4")
"""

from repro.exec.executor import (
    EXECUTORS,
    Executor,
    PersistentProcessExecutor,
    ProcessShardExecutor,
    SerialExecutor,
    ThreadShardExecutor,
    default_workers,
    parse_executor,
    shutdown_executors,
)
from repro.exec.population import (
    DEFAULT_SHARDS,
    ResidentPopulation,
    Shard,
    ShardResult,
    ShardSummary,
    ShardedPopulation,
    build_exchange_plan,
    map_step,
    shard_bounds,
    shard_sizes,
    spawn_shard_rngs,
    split_sequence,
)
from repro.exec.server import StreamServer, StreamSession
from repro.exec.supervision import (
    RestartBudgetExhausted,
    RingFault,
    WorkerTimeout,
)

__all__ = [
    "WorkerTimeout",
    "RingFault",
    "RestartBudgetExhausted",
    "Executor",
    "SerialExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "PersistentProcessExecutor",
    "EXECUTORS",
    "parse_executor",
    "shutdown_executors",
    "default_workers",
    "DEFAULT_SHARDS",
    "Shard",
    "ShardResult",
    "ShardSummary",
    "ShardedPopulation",
    "ResidentPopulation",
    "map_step",
    "build_exchange_plan",
    "shard_sizes",
    "shard_bounds",
    "split_sequence",
    "spawn_shard_rngs",
    "StreamServer",
    "StreamSession",
]
