"""Sharded particle populations and the executor-driven step cycle.

One inference step over a sharded population is a fixed plan::

    map-step          every shard advances its particles with its own
                      RNG substream (scheduled by an Executor),
    merge-weights     the per-shard weight vectors are concatenated in
                      shard order and normalized globally,
    resample-barrier  the engine draws global ancestor indices from its
                      own generator and the survivors are re-scattered
                      into contiguous shards of the original sizes.

Determinism comes from fixing the *partition*, not the schedule: the
shard count and the per-shard :class:`numpy.random.SeedSequence`
substreams are properties of the population, chosen independently of
the executor, so any worker count — serial, 4 threads, 4 processes —
replays exactly the same random streams and produces the same posterior
bit-for-bit.

Shard payloads are opaque to this module: the scalar engines put a
``list`` of :class:`~repro.inference.particles.Particle` objects in each
shard, the vectorized engines a
:class:`~repro.vectorized.batch.ParticleBatch` slice. The engine
supplies the per-shard stepper; :func:`map_step` owns scheduling and
RNG-state bookkeeping.

:class:`ResidentPopulation` is the worker-resident variant of the same
plan for :class:`~repro.exec.executor.PersistentProcessExecutor`: the
shards stay loaded in long-lived workers, the engine sees only a
handle, and each phase of the cycle becomes a command — ``map_step``
returns light :class:`ShardSummary` records, the resample barrier
ships the :func:`build_exchange_plan` output plus the few migrating
particles, and a barrier without resampling ships nothing at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import InferenceError
from repro.exec.executor import Executor, shard_len
from repro.exec.shm import register_shm_leaf
from repro.obs.spans import TELEMETRY

__all__ = [
    "DEFAULT_SHARDS",
    "Shard",
    "ShardResult",
    "ShardSummary",
    "ShardedPopulation",
    "ResidentPopulation",
    "ExchangePlan",
    "map_step",
    "build_exchange_plan",
    "shard_sizes",
    "shard_bounds",
    "split_sequence",
    "spawn_shard_rngs",
]

#: shard count used when an executor is requested without an explicit
#: ``n_shards``. A fixed constant — deliberately *not* derived from the
#: worker count — so the posterior is identical for every executor.
DEFAULT_SHARDS = 4


def shard_sizes(n_items: int, n_shards: int) -> List[int]:
    """Balanced contiguous partition sizes (first shards get the rest)."""
    if n_shards < 1:
        raise InferenceError("need at least one shard")
    if n_items < n_shards:
        raise InferenceError(
            f"cannot split {n_items} particles into {n_shards} shards"
        )
    base, extra = divmod(n_items, n_shards)
    return [base + (1 if i < extra else 0) for i in range(n_shards)]


def shard_bounds(n_items: int, n_shards: int) -> List[Tuple[int, int]]:
    """The ``(start, stop)`` slice of each shard in the merged order."""
    bounds = []
    start = 0
    for size in shard_sizes(n_items, n_shards):
        bounds.append((start, start + size))
        start += size
    return bounds


def split_sequence(items: Sequence[Any], n_shards: int) -> List[List[Any]]:
    """Split a sequence into the contiguous per-shard chunks."""
    return [list(items[start:stop]) for start, stop in shard_bounds(len(items), n_shards)]


def spawn_shard_rngs(
    n_shards: int,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[np.random.Generator]:
    """One independent generator per shard via ``SeedSequence.spawn``.

    With a ``seed``, the substreams are a pure function of
    ``(seed, n_shards)``. Without one, entropy is drawn from ``rng`` (or
    the OS), so the substreams are still reproducible for a seeded
    engine-level generator.
    """
    if seed is not None:
        entropy: Union[int, None] = int(seed)
    elif rng is not None:
        entropy = int(rng.integers(0, 2**63))
    else:
        entropy = None
    root = np.random.SeedSequence(entropy)
    return [np.random.default_rng(child) for child in root.spawn(n_shards)]


@dataclass
class Shard:
    """One partition of the population: payload plus its RNG substream."""

    index: int
    rng: np.random.Generator
    payload: Any


@dataclass
class ShardResult:
    """What one shard reports back from the map phase of a step."""

    #: stacked per-particle outputs (list for scalar shards, array
    #: pytree for batch shards)
    outs: Any
    #: the advanced shard payload
    payload: Any
    #: this step's observe/factor log-weight contributions
    step_log_weights: np.ndarray
    #: accumulated log-weights carried into the step
    prev_log_weights: np.ndarray
    #: the shard generator after the step (advanced in-worker; shipped
    #: back so process execution replays the exact serial streams)
    rng: np.random.Generator


class ShardedPopulation:
    """A particle population partitioned into deterministic shards.

    This is the engine state in sharded mode — the counterpart of the
    scalar engines' particle list and the vectorized engines'
    :class:`~repro.vectorized.batch.ParticleBatch`, holding the same
    information split into contiguous chunks that carry their own RNG
    substreams.
    """

    def __init__(self, shards: Sequence[Shard]):
        if not shards:
            raise InferenceError("a sharded population needs at least one shard")
        self.shards = list(shards)

    @classmethod
    def build(
        cls,
        chunks: Sequence[Any],
        rngs: Sequence[np.random.Generator],
    ) -> "ShardedPopulation":
        """A population from per-shard payload chunks and generators."""
        if len(chunks) != len(rngs):
            raise InferenceError("need exactly one generator per shard")
        return cls(
            [Shard(i, rng, chunk) for i, (chunk, rng) in enumerate(zip(chunks, rngs))]
        )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def payloads(self) -> List[Any]:
        return [shard.payload for shard in self.shards]

    def with_payloads(self, payloads: Sequence[Any]) -> "ShardedPopulation":
        """Same shard structure (indices, generators), new payloads."""
        if len(payloads) != self.n_shards:
            raise InferenceError("payload count must match shard count")
        return ShardedPopulation(
            [
                Shard(shard.index, shard.rng, payload)
                for shard, payload in zip(self.shards, payloads)
            ]
        )

    def __len__(self) -> int:
        return self.n_shards

    def __repr__(self) -> str:
        return f"ShardedPopulation(n_shards={self.n_shards})"


class _ShardStepTask:
    """Picklable unit of work: step one shard under one stepper.

    The stepper is the engine itself (engines strip their executor when
    pickled), so a process worker re-runs exactly the code the serial
    executor would, against the shard's own generator.
    """

    __slots__ = ("stepper", "shard", "inp")

    def __init__(self, stepper: Any, shard: Shard, inp: Any):
        self.stepper = stepper
        self.shard = shard
        self.inp = inp

    def __call__(self) -> ShardResult:
        return self.stepper.step_shard(self.shard.payload, self.shard.rng, self.inp)


def _run_shard_task(task: _ShardStepTask) -> ShardResult:
    return task()


@dataclass
class ShardSummary:
    """What a *resident* shard reports back from the map phase.

    The light-weight counterpart of :class:`ShardResult`: the advanced
    payload and generator stay in the worker, only the per-particle
    outputs and the two log-weight vectors cross the process boundary.
    """

    #: stacked per-particle outputs (list for scalar shards, array
    #: pytree for batch shards)
    outs: Any
    #: this step's observe/factor log-weight contributions
    step_log_weights: np.ndarray
    #: accumulated log-weights carried into the step
    prev_log_weights: np.ndarray
    #: worker-side telemetry spans ``[(phase, duration_ms), ...]`` when
    #: the step command requested tracing; None otherwise. Old replies
    #: (and oplog replays) omit the field entirely.
    spans: Any = None


class ExchangePlan:
    """Array-encoded slot plan of one destination shard at the barrier.

    The transport-friendly form of the per-slot tuple list: three
    parallel arrays — ``kind`` (0 = local ancestor, 1 = import),
    ``a`` (the local index for kind 0, the source shard for kind 1) and
    ``b`` (the export-package row for kind 1) — that ride the
    shared-memory command ring as descriptors instead of pickling
    O(shard size) tuples every resample. Iterating yields exactly the
    classic entries (``("local", i)`` / ``("import", s, r)``), so the
    scalar engine's clone bookkeeping is unchanged; the vectorized
    engine consumes the arrays directly.
    """

    __slots__ = ("kind", "a", "b")

    LOCAL = 0
    IMPORT = 1

    def __init__(self, kind: np.ndarray, a: np.ndarray, b: np.ndarray):
        self.kind = np.asarray(kind, dtype=np.uint8)
        self.a = np.asarray(a, dtype=np.int64)
        self.b = np.asarray(b, dtype=np.int64)

    def __len__(self) -> int:
        return int(self.kind.shape[0])

    def __iter__(self):
        for kind, a, b in zip(self.kind, self.a, self.b):
            if kind == self.LOCAL:
                yield ("local", int(a))
            else:
                yield ("import", int(a), int(b))

    def __getstate__(self):
        return (self.kind, self.a, self.b)

    def __setstate__(self, state):
        self.kind, self.a, self.b = state

    def __eq__(self, other) -> bool:
        if isinstance(other, ExchangePlan):
            return (
                np.array_equal(self.kind, other.kind)
                and np.array_equal(self.a, other.a)
                and np.array_equal(self.b, other.b)
            )
        if isinstance(other, (list, tuple)):
            # Entry-tuple form, the pre-array representation.
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        imports = int(np.count_nonzero(self.kind))
        return f"ExchangePlan(slots={len(self)}, imports={imports})"


# The plan's index arrays park in the command ring like any other array
# payload; the codec exists on both sides of the pipe (workers import
# this module to unpickle the stepper).
register_shm_leaf(
    ExchangePlan,
    lambda plan: (plan.kind, plan.a, plan.b),
    lambda parts: ExchangePlan(*parts),
)

# A checkpoint ``pull`` reply is one Shard; opening it up lets the
# payload arrays (vectorized batch states) ride the reply ring. The RNG
# rides the pickle — it is an opaque Generator, not an array.
register_shm_leaf(
    Shard,
    lambda shard: (shard.index, shard.rng, shard.payload),
    lambda parts: Shard(*parts),
)


def build_exchange_plan(
    indices: np.ndarray, sizes: Sequence[int]
) -> Tuple[List[ExchangePlan], List[Dict[int, np.ndarray]]]:
    """Plan the resample barrier against worker-resident shards.

    ``indices`` are the global ancestor indices (engine-drawn) and
    ``sizes`` the fixed shard partition; destination shard ``d``
    receives the contiguous slice ``indices[start_d:stop_d]`` — exactly
    the re-scatter of the materialized plan. Returns ``(plans,
    requests)``:

    * ``plans[d]`` — an :class:`ExchangePlan` with one entry per
      destination slot, either ``("local", local_index)`` (the ancestor
      already lives in shard ``d``) or ``("import", source_shard,
      row)`` (the ancestor migrates; ``row`` indexes the export package
      requested from that source).
    * ``requests[d][s]`` — the source-local indices destination ``d``
      needs from shard ``s``, in row order (an int array, so export
      commands ride the ring). An ancestor needed several times by one
      destination is shipped once and referenced per slot.
    """
    offsets = np.concatenate([[0], np.cumsum(np.asarray(sizes, dtype=np.int64))])
    indices = np.asarray(indices, dtype=np.int64)
    if len(indices) != int(offsets[-1]):
        raise InferenceError(
            f"need exactly {int(offsets[-1])} ancestor indices, got {len(indices)}"
        )
    source_of = np.searchsorted(offsets, indices, side="right") - 1
    local_of = indices - offsets[source_of]
    plans: List[ExchangePlan] = []
    requests: List[Dict[int, np.ndarray]] = []
    for dest in range(len(sizes)):
        start, stop = int(offsets[dest]), int(offsets[dest + 1])
        source = source_of[start:stop]
        local = local_of[start:stop]
        kind = (source != dest).astype(np.uint8)
        a = np.where(kind == 0, local, source)
        b = np.zeros(len(a), dtype=np.int64)
        rows_by_source: Dict[int, Dict[int, int]] = {}
        for pos in np.nonzero(kind)[0]:
            # Import rows are numbered in first-appearance order per
            # source — the same dedup the tuple-based plan used, so the
            # rebuilt shards are bit-identical.
            rows = rows_by_source.setdefault(int(source[pos]), {})
            b[pos] = rows.setdefault(int(local[pos]), len(rows))
        plans.append(ExchangePlan(kind, a, b))
        requests.append(
            {
                s: np.fromiter(rows, dtype=np.int64, count=len(rows))
                for s, rows in rows_by_source.items()
            }
        )
    return plans, requests


class ResidentPopulation:
    """A handle to a population whose shards live in executor workers.

    The worker-resident counterpart of :class:`ShardedPopulation`: the
    partition (shard count, sizes, RNG substreams) is identical, but
    the payloads stay resident in the workers of a
    :class:`~repro.exec.executor.PersistentProcessExecutor` and the
    engine drives them through commands — step, weight commit, resample
    exchange — instead of shipping them through every call.
    """

    def __init__(self, executor: Executor, key: int, sizes: Sequence[int]):
        self.executor = executor
        self.key = key
        self.sizes = list(sizes)
        self._released = False

    @classmethod
    def create(
        cls, executor: Executor, stepper: Any, shards: Sequence[Shard]
    ) -> "ResidentPopulation":
        """Load ``shards`` into the executor's workers under a new key."""
        sizes = [shard_len(shard) for shard in shards]
        key = executor.new_key()
        executor.load_population(key, stepper, shards)
        return cls(executor, key, sizes)

    @property
    def n_shards(self) -> int:
        return len(self.sizes)

    @property
    def n_particles(self) -> int:
        return sum(self.sizes)

    def _check_live(self) -> None:
        if self._released:
            raise InferenceError("this resident population has been released")

    def map_step(self, inp: Any, trace: bool = False) -> List[ShardSummary]:
        """Advance every resident shard one step; collect the summaries.

        With ``trace=True`` the step command asks each worker to time
        its shard step and ship the spans back with the summary.
        """
        self._check_live()
        return [
            ShardSummary(*summary)
            for summary in self.executor.step_population(
                self.key, inp, trace=trace
            )
        ]

    def resample(self, indices: np.ndarray) -> None:
        """Barrier with resampling: ship the plan, exchange migrants."""
        self._check_live()
        timer = TELEMETRY.step_timer()
        plans, requests = build_exchange_plan(np.asarray(indices), self.sizes)
        timer.mark("exchange_plan")
        self.executor.exchange_population(self.key, requests, plans)
        timer.mark("migrate")

    def commit_weights(self) -> None:
        """Barrier without resampling: workers fold weights locally."""
        self._check_live()
        self.executor.commit_population_weights(self.key)

    def materialize(self) -> ShardedPopulation:
        """Pull every shard out of the workers (diagnostics, checkpoints)."""
        self._check_live()
        return ShardedPopulation(self.executor.pull_population(self.key))

    def recover(self) -> ShardedPopulation:
        """Reassemble the population from the coordinator's checkpoints.

        Unlike :meth:`materialize` this never talks to a worker — the
        executor replays its checkpoint + oplog locally — so it works
        when the pool is dead or the resident state poisoned. Used by
        the engines' degradation ladder after the restart budget trips.
        """
        self._check_live()
        return ShardedPopulation(self.executor.recover_population(self.key))

    def release(self) -> None:
        """Free the worker-resident shards and coordinator checkpoints."""
        if self._released:
            return
        self._released = True
        self.executor.release_population(self.key)

    def __del__(self) -> None:
        try:
            self.release()
        except Exception:
            pass

    def __len__(self) -> int:
        return self.n_shards

    def __repr__(self) -> str:
        return (
            f"ResidentPopulation(key={self.key}, n_shards={self.n_shards}, "
            f"released={self._released})"
        )


def map_step(
    executor: Executor,
    stepper: Any,
    population: ShardedPopulation,
    inp: Any,
) -> Tuple[List[ShardResult], ShardedPopulation]:
    """The map phase of one step: advance every shard under ``executor``.

    Returns the per-shard results in shard order plus the advanced
    population (payloads and generators updated from the results, which
    is what keeps process workers' RNG consumption authoritative).
    """
    tasks = [_ShardStepTask(stepper, shard, inp) for shard in population.shards]
    results = executor.map_shards(_run_shard_task, tasks)
    advanced = ShardedPopulation(
        [
            Shard(shard.index, result.rng, result.payload)
            for shard, result in zip(population.shards, results)
        ]
    )
    return results, advanced
