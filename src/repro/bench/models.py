"""The paper's benchmark models (Section 6.1, Appendix B).

Each model is a :class:`~repro.runtime.node.ProbNode` in the shape the
ProbZelus compiler produces after static reduction: an explicit initial
state and a transition function threading the probabilistic context.
The ProbZelus source each one corresponds to is quoted in its docstring.

Models:

* :class:`KalmanModel` — Appendix B.1 (also the HMM of Fig. 1 / Section 2
  with unit variances; :class:`HmmModel` exposes the Section-2 constants),
* :class:`CoinModel` — Appendix B.2,
* :class:`OutlierModel` — Appendix B.3,
* :class:`HmmInitModel` and :class:`WalkModel` — the Section 5.3
  pathologies that defeat bounded-memory SDS, plus
  :class:`BoundedWalkModel`, the ``value``-forcing mitigation.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.lang import bernoulli, beta, categorical, dirichlet, gamma, gaussian, poisson
from repro.runtime.node import ProbCtx, ProbNode

__all__ = [
    "KalmanModel",
    "HmmModel",
    "CoinModel",
    "OutlierModel",
    "HmmInitModel",
    "WalkModel",
    "BoundedWalkModel",
    "PoissonCountModel",
    "DirichletCategoricalModel",
    "MixedFragmentModel",
]


class KalmanModel(ProbNode):
    """One-dimensional Gaussian state-space model (Appendix B.1).

    ::

        let node delay_kalman (prob, yobs) = xt where
          rec xt = sample (prob, gaussian ((0., 100.) -> (pre xt, 1.)))
          and () = observe (prob, gaussian (xt, 1.), yobs)

    State is the previous position (``None`` at the first instant).
    Under SDS each particle computes the exact Kalman-filter posterior.
    """

    def __init__(
        self,
        prior_mean: float = 0.0,
        prior_var: float = 100.0,
        motion_var: float = 1.0,
        obs_var: float = 1.0,
    ):
        self.prior_mean = prior_mean
        self.prior_var = prior_var
        self.motion_var = motion_var
        self.obs_var = obs_var

    def init(self) -> Any:
        return None

    def step(self, state: Any, yobs: float, ctx: ProbCtx) -> Tuple[Any, Any]:
        if state is None:
            xt = ctx.sample(gaussian(self.prior_mean, self.prior_var))
        else:
            xt = ctx.sample(gaussian(state, self.motion_var))
        ctx.observe(gaussian(xt, self.obs_var), yobs)
        return xt, xt


class HmmModel(KalmanModel):
    """The Section-2 HMM: position tracking with speed and noise constants.

    ::

        let node hmm y = x where
          rec x = sample (gaussian (0 -> pre x, speed_x))
          and () = observe (gaussian (x, noise_x), y)
    """

    def __init__(self, speed_x: float = 1.0, noise_x: float = 1.0):
        super().__init__(
            prior_mean=0.0, prior_var=speed_x, motion_var=speed_x, obs_var=noise_x
        )


class CoinModel(ProbNode):
    """Beta-Bernoulli bias estimation (Appendix B.2).

    ::

        let node coin (prob, yobs) = xt where
          rec init xt = sample (prob, beta (1., 1.))
          and () = observe (prob, bernoulli xt, yobs)

    Under SDS the Beta node is conditioned analytically forever (exact
    posterior); under BDS it is forced at the end of the first step, so
    BDS degenerates to a particle filter from step 2 on — exactly the
    behaviour discussed in Section 6.2.
    """

    def __init__(self, alpha: float = 1.0, beta_param: float = 1.0):
        self.alpha = alpha
        self.beta_param = beta_param

    def init(self) -> Any:
        return None

    def step(self, state: Any, yobs: bool, ctx: ProbCtx) -> Tuple[Any, Any]:
        if state is None:
            xt = ctx.sample(beta(self.alpha, self.beta_param))
        else:
            xt = state
        ctx.observe(bernoulli(xt), yobs)
        return xt, xt


class OutlierModel(ProbNode):
    """Position tracking with a faulty sensor (Appendix B.3, Minka 2001).

    ::

        let node outlier (prob, yobs) = xt where
          rec xt = sample (prob, gaussian ((0., 100.) -> (pre xt, 1.)))
          and init outlier_prob = sample (prob, beta (100., 1000.))
          and is_outlier = sample (prob, bernoulli outlier_prob)
          and () = present is_outlier -> observe (prob, gaussian (0., 100.), yobs)
                   else observe (prob, gaussian (xt, 1.), yobs)

    The outlier indicator must be a concrete boolean to branch on, so it
    is forced with ``ctx.value`` — under the delayed samplers this
    realizes the Bernoulli child (conditioning the Beta parent) while the
    position chain stays symbolic: a Rao-Blackwellized particle filter.
    """

    def __init__(
        self,
        prior_mean: float = 0.0,
        prior_var: float = 100.0,
        motion_var: float = 1.0,
        obs_var: float = 1.0,
        outlier_alpha: float = 100.0,
        outlier_beta: float = 1000.0,
        outlier_mean: float = 0.0,
        outlier_var: float = 100.0,
    ):
        self.prior_mean = prior_mean
        self.prior_var = prior_var
        self.motion_var = motion_var
        self.obs_var = obs_var
        self.outlier_alpha = outlier_alpha
        self.outlier_beta = outlier_beta
        self.outlier_mean = outlier_mean
        self.outlier_var = outlier_var

    def init(self) -> Any:
        return None  # (previous position, outlier_prob) after the first step

    def step(self, state: Any, yobs: float, ctx: ProbCtx) -> Tuple[Any, Any]:
        if state is None:
            xt = ctx.sample(gaussian(self.prior_mean, self.prior_var))
            outlier_prob = ctx.sample(beta(self.outlier_alpha, self.outlier_beta))
        else:
            prev_x, outlier_prob = state
            xt = ctx.sample(gaussian(prev_x, self.motion_var))
        is_outlier = ctx.value(ctx.sample(bernoulli(outlier_prob)))
        if is_outlier:
            ctx.observe(gaussian(self.outlier_mean, self.outlier_var), yobs)
        else:
            ctx.observe(gaussian(xt, self.obs_var), yobs)
        return xt, (xt, outlier_prob)


class HmmInitModel(ProbNode):
    """The ``hmm_init`` pathology of Section 5.3.

    ::

        let node hmm_init(xo, y) = x where
          rec init i = sample(normal(xo, noise_x))
          and x = sample (gaussian (i -> pre x, speed_x))
          and () = observe(gaussian (x, noise_x), y)

    The state keeps a reference to the never-realized initial guess
    ``i``, which anchors the whole chain: even the pointer-minimal graph
    cannot collect the history, so SDS memory grows linearly. Used by
    the memory-pathology tests.
    """

    def __init__(self, xo: float = 0.0, noise_x: float = 1.0, speed_x: float = 1.0):
        self.xo = xo
        self.noise_x = noise_x
        self.speed_x = speed_x

    def init(self) -> Any:
        return None  # (i, prev x) after the first step

    def step(self, state: Any, yobs: float, ctx: ProbCtx) -> Tuple[Any, Any]:
        if state is None:
            i = ctx.sample(gaussian(self.xo, self.noise_x))
            x = ctx.sample(gaussian(i, self.speed_x))
        else:
            i, prev_x = state
            x = ctx.sample(gaussian(prev_x, self.speed_x))
        ctx.observe(gaussian(x, self.noise_x), yobs)
        return x, (i, x)


class WalkModel(ProbNode):
    """The unobserved random walk of Section 5.3.

    ::

        let node walk() = x where rec x = sample(normal(0 -> pre x, 1))

    With no observations, every node stays *initialized*; initialized
    nodes keep backward pointers to their parents, so the chain grows
    without bound even under SDS.
    """

    def init(self) -> Any:
        return None

    def step(self, state: Any, inp: Any, ctx: ProbCtx) -> Tuple[Any, Any]:
        mean = 0.0 if state is None else state
        x = ctx.sample(gaussian(mean, 1.0))
        return x, x


class BoundedWalkModel(ProbNode):
    """The mitigation of Section 5.3: force trailing nodes.

    ::

        and () = value(0 -> pre (0 -> pre x))

    Forcing the value of ``x`` two steps back cuts the initialized chain
    at a bounded depth without losing the exactness of the current
    step's marginal.
    """

    def init(self) -> Any:
        return (None, None)  # (pre pre x, pre x)

    def step(self, state: Any, inp: Any, ctx: ProbCtx) -> Tuple[Any, Any]:
        pre_pre_x, pre_x = state
        mean = 0.0 if pre_x is None else pre_x
        x = ctx.sample(gaussian(mean, 1.0))
        if pre_pre_x is not None:
            ctx.value(pre_pre_x)
        return x, (pre_x, x)


class PoissonCountModel(ProbNode):
    """Gamma-Poisson arrival-rate estimation (count-data workload).

    ::

        let node counts (prob, yobs) = lam where
          rec init lam = sample (prob, gamma (shape, rate))
          and () = observe (prob, poisson lam, yobs)

    The Coin model's shape over count observations: under SDS the Gamma
    rate is conditioned analytically forever — after ``k`` observations
    totalling ``s`` the posterior is ``Gamma(shape + s, rate + k)`` —
    while BDS forces the rate at the end of the first step and
    degenerates to a particle filter, mirroring Section 6.2.
    """

    def __init__(self, shape: float = 2.0, rate: float = 1.0):
        self.shape = shape
        self.rate = rate

    def init(self) -> Any:
        return None

    def step(self, state: Any, yobs: int, ctx: ProbCtx) -> Tuple[Any, Any]:
        if state is None:
            lam = ctx.sample(gamma(self.shape, self.rate))
        else:
            lam = state
        ctx.observe(poisson(lam), yobs)
        return lam, lam


class DirichletCategoricalModel(ProbNode):
    """Dirichlet-Categorical proportion estimation (switching workload).

    ::

        let node switch (prob, yobs) = probs where
          rec init probs = sample (prob, dirichlet alpha)
          and () = observe (prob, categorical probs, yobs)

    Estimates the mixing proportions of a categorical stream — the
    emission half of an HMM-style switching model. Under SDS the
    Dirichlet concentration is conditioned analytically (the observed
    category's pseudo-count grows by one per step).
    """

    def __init__(self, alpha: Tuple[float, ...] = (1.0, 1.0, 1.0)):
        self.alpha = tuple(float(a) for a in alpha)

    def init(self) -> Any:
        return None

    def step(self, state: Any, yobs: int, ctx: ProbCtx) -> Tuple[Any, Any]:
        if state is None:
            probs = ctx.sample(dirichlet(self.alpha))
        else:
            probs = state
        ctx.observe(categorical(probs), yobs)
        return probs, probs


class MixedFragmentModel(ProbNode):
    """``n_slots`` independent Gamma-Poisson slots, some non-conjugate.

    Each step draws ``n_slots`` fresh arrival rates and observes one
    count per slot. ``realize`` selects how many of those observations
    are non-conjugate — ``poisson(2 * lam)`` instead of ``poisson(lam)``
    — which the delayed samplers can only handle by realizing that
    slot's rate (dependency breaking). ``"none"`` keeps the whole step
    inside the conjugate fragment, ``"one"`` realizes a single slot per
    step, ``"all"`` realizes every slot: the benchmark's knob for
    measuring the cost of per-slot realize-and-continue on the batched
    graph (which keeps the remaining slots symbolic either way).
    """

    def __init__(
        self,
        n_slots: int = 4,
        realize: str = "none",
        shape: float = 2.0,
        rate: float = 1.0,
    ):
        if realize not in ("none", "one", "all"):
            raise ValueError(f"realize must be none/one/all, got {realize!r}")
        self.n_slots = n_slots
        self.realize = realize
        self.shape = shape
        self.rate = rate

    def init(self) -> Any:
        return None

    def step(self, state: Any, yobs: Any, ctx: ProbCtx) -> Tuple[Any, Any]:
        broken = {"none": 0, "one": 1, "all": self.n_slots}[self.realize]
        for i in range(self.n_slots):
            lam = ctx.sample(gamma(self.shape, self.rate))
            if i < broken:
                ctx.observe(poisson(2.0 * lam), yobs[i])
            else:
                ctx.observe(poisson(lam), yobs[i])
        return 0.0, None


# Register the batched equivalents with the vectorized backend: the
# registries live in repro.vectorized but start empty, so the dependency
# points from this benchmark layer to the core, not the other way.
from repro.vectorized.engine import (  # noqa: E402
    VectorizedBetaBernoulliSDS,
)
from repro.vectorized.models import (  # noqa: E402
    GraphOutlierModel,
    coin_vectorizer,
    kalman_vectorizer,
    outlier_vectorizer,
    register_conjugate_gaussian_chain,
    register_ds_graph_model,
    register_sds_engine,
    register_vectorizer,
)

register_vectorizer(KalmanModel, kalman_vectorizer)
register_vectorizer(HmmModel, kalman_vectorizer)
register_vectorizer(CoinModel, coin_vectorizer)
register_vectorizer(OutlierModel, outlier_vectorizer)
register_conjugate_gaussian_chain(KalmanModel)
register_conjugate_gaussian_chain(HmmModel)
register_sds_engine(CoinModel, VectorizedBetaBernoulliSDS)
# The Kalman/HMM chains keep their dedicated closed-form SDS recursions
# (registered above); this additionally routes their *bounded* delayed
# sampling to the array-native graph engine of repro.vectorized.sds_graph.
register_ds_graph_model(KalmanModel)
register_ds_graph_model(HmmModel)
# The Outlier model runs on the *generic* batched DS graph (PR 5): the
# lockstep adapter rewrites its per-particle branch as a masked affine
# observation, and the Beta→Bernoulli branch becomes batched conjugate
# slots beside the Gaussian position chain. The retired bespoke
# VectorizedOutlierSDS engine survives only as the equivalence oracle in
# the test suite. Coin's bounded delayed sampling rides the same graph
# (its exact SDS stays with the closed-form Beta-Bernoulli engine above).
register_ds_graph_model(OutlierModel, adapter=GraphOutlierModel)
register_ds_graph_model(CoinModel)
# The PR-8 conjugacy families ride the same generic graph: Gamma-Poisson
# count streams and Dirichlet-Categorical switching proportions, plus the
# mixed-fragment model whose non-conjugate slots exercise in-graph
# per-slot realize-and-continue instead of scalar migration.
register_ds_graph_model(PoissonCountModel)
register_ds_graph_model(DirichletCategoricalModel)
register_ds_graph_model(MixedFragmentModel)
