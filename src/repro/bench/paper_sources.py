"""The paper's ProbZélus sources, as parseable surface syntax.

The Appendix-B benchmark programs and the Section-2 HMM, adapted
mechanically for this implementation (the explicit ``prob`` argument is
implicit in our engines; the appendix's paired ``(m0, v0) -> (m, v)``
initializations are written as two ``->`` equations). Each constant
matches the paper.

:func:`load_paper_node` parses, checks, and compiles one of them into a
probabilistic model ready for :func:`repro.inference.infer` — so the
benchmarks can be run from the *textual* programs as well as from the
hand-written models in :mod:`repro.bench.models` (they agree; see
``tests/bench/test_paper_sources_models.py``).
"""

from __future__ import annotations

from repro.core.compiled import CompiledProbNode, load
from repro.frontend import parse_program

__all__ = [
    "HMM_SOURCE",
    "KALMAN_SOURCE",
    "COIN_SOURCE",
    "MAIN_DRIVER_SOURCE",
    "PAPER_SOURCES",
    "load_paper_node",
]

#: Section 2 — the running HMM example (speed_x = noise_x = 1).
HMM_SOURCE = """
let node hmm y = x where
  rec x = sample (gaussian (0. -> pre x, 1.))
  and () = observe (gaussian (x, 1.), y)
"""

#: Appendix B.1 — initial position N(0, 100), then N(pre x, 1).
KALMAN_SOURCE = """
let node delay_kalman yobs = xt where
  rec mu = 0. -> pre xt
  and sigma2 = 100. -> 1.
  and xt = sample (gaussian (mu, sigma2))
  and () = observe (gaussian (xt, 1.), yobs)
"""

#: Appendix B.2 — the coin bias model.
COIN_SOURCE = """
let node coin yobs = xt where
  rec init xt = sample (beta (1., 1.))
  and () = observe (bernoulli (xt), yobs)
"""

#: Appendix B — the evaluation driver (estimate + running MSE).
MAIN_DRIVER_SOURCE = """
let node main (tr, observed) = (est_mean, mse) where
  rec t = 1. -> pre t + 1.
  and x_d = infer 100 delay_kalman observed
  and est_mean = mean_float (x_d)
  and error = (est_mean - tr) * (est_mean - tr)
  and total_error = error -> pre total_error + error
  and mse = total_error / t
"""

PAPER_SOURCES = {
    "hmm": HMM_SOURCE,
    "delay_kalman": KALMAN_SOURCE,
    "coin": COIN_SOURCE,
}


def load_paper_node(name: str) -> CompiledProbNode:
    """Parse and compile one of the paper's models by node name."""
    if name not in PAPER_SOURCES:
        raise KeyError(
            f"unknown paper source {name!r}; available: {sorted(PAPER_SOURCES)}"
        )
    module = load(parse_program(PAPER_SOURCES[name]))
    return module.prob_node(name)
