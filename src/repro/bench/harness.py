"""Benchmark harness: the experiments of Section 6.

Four experiment drivers, one per figure family:

* :func:`accuracy_sweep` — Fig. 2a / Fig. 16: final MSE vs particle
  count, with 10%/50%/90% quantiles over repeated runs,
* :func:`latency_sweep` — Fig. 2b / Fig. 17: per-step latency vs
  particle count (quantiles over all steps of all runs),
* :func:`step_latency_profile` — Fig. 18: per-step latency as a function
  of the step index on a long run,
* :func:`memory_profile` — Fig. 19 / Fig. 4: ideal memory (live abstract
  words) per step.

Each driver returns plain data structures; :mod:`repro.bench.reporting`
renders them as the text tables recorded in ``EXPERIMENTS.md``.

Every ``methods`` entry is a *method spec*: a plain engine name
(``"pf"``, ``"sds"``, …), ``"<method>@<backend>"`` selecting an
execution backend, or ``"<method>@<backend>@<executor>"`` additionally
selecting the execution layer — e.g. ``"pf@vectorized"`` runs the
particle filter on the structure-of-arrays engines of
:mod:`repro.vectorized`, ``"pf@scalar@processes:4"`` runs the scalar
particle filter sharded over four worker processes, and
``"pf@scalar@processes-persistent:4"`` keeps those shards resident in
the workers across steps. This is how the drivers compare substrates
and executors in a single sweep. Executor instances named by specs are
cached process-wide; call
:func:`repro.exec.executor.shutdown_executors` after a sweep to
release their worker pools.

Every driver also accepts ``engine_kwargs``, a dict forwarded to the
engine constructor, so sweeps can compare engine configurations
(``resampler=``, ``resample_threshold=``, …), not just method/backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.data import Dataset
from repro.errors import InferenceError
from repro.exec.executor import parse_executor
from repro.inference.infer import BACKENDS, infer
from repro.inference.metrics import MseTracker
from repro.runtime.node import ProbNode

__all__ = [
    "Quantiles",
    "SweepResult",
    "ProfileResult",
    "parse_method_spec",
    "run_mse",
    "accuracy_sweep",
    "latency_sweep",
    "step_latency_profile",
    "memory_profile",
    "particles_to_match",
]


def parse_method_spec(spec: str) -> Tuple[str, str, Optional[str]]:
    """Split a ``"method[@backend[@executor]]"`` spec string.

    Returns ``(method, backend, executor)`` with ``backend`` defaulting
    to ``"scalar"`` and ``executor`` to None (the engine's sequential
    default). An empty backend segment (``"pf@@threads:4"``) also means
    scalar, so an executor can be selected without naming a backend.
    """
    parts = spec.split("@")
    if len(parts) > 3:
        raise InferenceError(f"method spec {spec!r} has too many '@' segments")
    method = parts[0]
    backend = parts[1] if len(parts) > 1 and parts[1] else "scalar"
    executor = parts[2] if len(parts) > 2 else None
    if backend not in BACKENDS:
        raise InferenceError(
            f"unknown backend {backend!r} in method spec {spec!r}; "
            f"choose from {sorted(BACKENDS)}"
        )
    if executor is not None:
        parse_executor(executor)  # validate (and warm the shared instance)
    return method, backend, executor


def _build_engine(
    model: ProbNode,
    spec: str,
    n_particles: int,
    seed: int,
    engine_kwargs: Optional[Dict] = None,
):
    method, backend, executor = parse_method_spec(spec)
    kwargs = dict(engine_kwargs or {})
    if executor is not None:
        if "executor" in kwargs and kwargs["executor"] != executor:
            raise InferenceError(
                f"method spec {spec!r} selects executor {executor!r} but "
                f"engine_kwargs selects {kwargs['executor']!r}; pick one"
            )
        kwargs["executor"] = executor
    return infer(
        model,
        n_particles=n_particles,
        method=method,
        seed=seed,
        backend=backend,
        **kwargs,
    )


@dataclass(frozen=True)
class Quantiles:
    """Median with 10% / 90% quantiles, as plotted in the paper."""

    q10: float
    median: float
    q90: float

    @staticmethod
    def of(values: Sequence[float]) -> "Quantiles":
        arr = np.asarray(values, dtype=float)
        q10, median, q90 = np.quantile(arr, [0.1, 0.5, 0.9])
        return Quantiles(float(q10), float(median), float(q90))


@dataclass
class SweepResult:
    """One (method, particle-count) -> quantiles table."""

    metric: str
    particle_counts: List[int]
    methods: List[str]
    cells: Dict[str, Dict[int, Quantiles]] = field(default_factory=dict)

    def get(self, method: str, particles: int) -> Quantiles:
        return self.cells[method][particles]


@dataclass
class ProfileResult:
    """Per-step series, one list per method."""

    metric: str
    steps: List[int]
    methods: List[str]
    series: Dict[str, List[float]] = field(default_factory=dict)


def run_mse(
    model_factory: Callable[[], ProbNode],
    method: str,
    n_particles: int,
    dataset: Dataset,
    seed: int,
    engine_kwargs: Optional[Dict] = None,
) -> float:
    """Final running MSE of one inference run over ``dataset``.

    ``method`` is a method spec (``"pf"`` or ``"pf@vectorized"``);
    ``engine_kwargs`` are forwarded to the engine constructor.
    """
    engine = _build_engine(model_factory(), method, n_particles, seed, engine_kwargs)
    state = engine.init()
    tracker = MseTracker()
    tracker_state = tracker.init()
    mse = 0.0
    for truth, obs in zip(dataset.truths, dataset.observations):
        dist, state = engine.step(state, obs)
        mse, tracker_state = tracker.step(tracker_state, (dist.mean(), truth))
    return mse


def accuracy_sweep(
    model_factory: Callable[[], ProbNode],
    dataset: Dataset,
    particle_counts: Sequence[int],
    methods: Sequence[str] = ("pf", "bds", "sds"),
    runs: int = 20,
    base_seed: int = 100,
    engine_kwargs: Optional[Dict] = None,
) -> SweepResult:
    """MSE quantiles over ``runs`` repetitions for each configuration.

    Reproduces Fig. 16 (and Fig. 2a): same data for every run, fresh
    engine randomness per run.
    """
    result = SweepResult("mse", list(particle_counts), list(methods))
    for method in methods:
        result.cells[method] = {}
        for particles in particle_counts:
            errors = [
                run_mse(
                    model_factory, method, particles, dataset, base_seed + r,
                    engine_kwargs,
                )
                for r in range(runs)
            ]
            result.cells[method][particles] = Quantiles.of(errors)
    return result


def latency_sweep(
    model_factory: Callable[[], ProbNode],
    dataset: Dataset,
    particle_counts: Sequence[int],
    methods: Sequence[str] = ("pf", "bds", "sds"),
    runs: int = 5,
    base_seed: int = 100,
    warmup_steps: int = 1,
    engine_kwargs: Optional[Dict] = None,
) -> SweepResult:
    """Per-step latency quantiles (in milliseconds) for each configuration.

    Reproduces Fig. 17 (and Fig. 2b): latencies are collected per step
    across ``runs`` runs, after a short warm-up.

    Runs are *interleaved* across the ``(method, particles)`` cells
    (run 0 of every cell, then run 1 of every cell, …) instead of
    timing each cell's runs back-to-back. On a shared machine a
    transient contention phase then inflates every cell a little
    rather than one cell a lot, which is what keeps the per-cell
    medians comparable across sweeps — the property the mechanical
    perf-regression gate (:mod:`repro.bench.regression`) relies on.
    """
    result = SweepResult("latency_ms", list(particle_counts), list(methods))
    samples: Dict[str, Dict[int, List[float]]] = {
        method: {particles: [] for particles in particle_counts}
        for method in methods
    }
    for r in range(runs):
        for method in methods:
            for particles in particle_counts:
                engine = _build_engine(
                    model_factory(), method, particles, base_seed + r,
                    engine_kwargs,
                )
                state = engine.init()
                latencies = samples[method][particles]
                for step_idx, obs in enumerate(dataset.observations):
                    start = time.perf_counter()
                    _, state = engine.step(state, obs)
                    elapsed = (time.perf_counter() - start) * 1e3
                    if step_idx >= warmup_steps:
                        latencies.append(elapsed)
    for method in methods:
        result.cells[method] = {
            particles: Quantiles.of(samples[method][particles])
            for particles in particle_counts
        }
    return result


def step_latency_profile(
    model_factory: Callable[[], ProbNode],
    dataset: Dataset,
    n_particles: int = 100,
    methods: Sequence[str] = ("pf", "bds", "sds", "ds"),
    seed: int = 100,
    stride: int = 1,
    engine_kwargs: Optional[Dict] = None,
) -> ProfileResult:
    """Latency of each step along one long run (Fig. 18).

    ``stride`` sub-samples the recorded steps to keep the output small.
    """
    steps = list(range(0, len(dataset.observations), stride))
    result = ProfileResult("latency_ms", steps, list(methods))
    for method in methods:
        engine = _build_engine(
            model_factory(), method, n_particles, seed, engine_kwargs
        )
        state = engine.init()
        series: List[float] = []
        for step_idx, obs in enumerate(dataset.observations):
            start = time.perf_counter()
            _, state = engine.step(state, obs)
            elapsed = (time.perf_counter() - start) * 1e3
            if step_idx % stride == 0:
                series.append(elapsed)
        result.series[method] = series
    return result


def memory_profile(
    model_factory: Callable[[], ProbNode],
    dataset: Dataset,
    n_particles: int = 100,
    methods: Sequence[str] = ("pf", "bds", "sds", "ds"),
    seed: int = 100,
    stride: int = 1,
    engine_kwargs: Optional[Dict] = None,
) -> ProfileResult:
    """Ideal memory (live abstract words) after each step (Fig. 19 / Fig. 4)."""
    steps = list(range(0, len(dataset.observations), stride))
    result = ProfileResult("live_words", steps, list(methods))
    for method in methods:
        engine = _build_engine(
            model_factory(), method, n_particles, seed, engine_kwargs
        )
        state = engine.init()
        series: List[float] = []
        for step_idx, obs in enumerate(dataset.observations):
            _, state = engine.step(state, obs)
            if step_idx % stride == 0:
                series.append(float(engine.memory_words(state)))
        result.series[method] = series
    return result


def particles_to_match(
    sweep: SweepResult,
    reference_method: str = "sds",
    candidate_method: str = "pf",
    quantile: str = "median",
    slack: float = 1.5,
) -> int:
    """Smallest particle count at which ``candidate`` matches ``reference``.

    Section 6.2's headline numbers ("PF can achieve comparable accuracy
    to SDS 50% of the time with 12 particles, 90% of the time with 35"):
    comparable means within ``slack`` of the reference's best accuracy at
    the chosen quantile. Returns -1 if no sweep point matches.
    """
    reference_cells = sweep.cells[reference_method]
    target = min(getattr(q, quantile) for q in reference_cells.values())
    for particles in sorted(sweep.particle_counts):
        cell = sweep.cells[candidate_method][particles]
        if getattr(cell, quantile) <= slack * target:
            return particles
    return -1
