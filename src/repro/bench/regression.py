"""Mechanical perf-regression gating over benchmark JSON artifacts.

Every benchmark run writes a machine-readable document
(:func:`repro.bench.reporting.write_bench_json`) whose entries carry a
``(model, spec, particles)`` key and median step-latency quantiles.
This module is the comparison side of that trajectory: load a fresh
document and a committed baseline (``benchmarks/BENCH_PR4.json`` and
successors), align entries by key, and report every spec whose median
step latency regressed beyond a threshold. CI runs the comparison
after the benchmark sweep and fails the build on regression — closing
the ROADMAP item "accumulate per-PR baselines and alert on regressions
mechanically" with a gate instead of a human reading tables.

The command-line entry point is ``benchmarks/check_perf_regression.py``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "BenchKey",
    "BenchCell",
    "Regression",
    "load_bench_medians",
    "load_bench_cells",
    "machine_drift",
    "compare_medians",
    "compare_cells",
    "format_regressions",
]

#: (model, spec, particles) — the identity of one benchmark cell.
BenchKey = Tuple[str, str, int]


@dataclass(frozen=True)
class BenchCell:
    """The latency quantiles of one benchmark cell."""

    median: float
    q10: float = float("nan")
    q90: float = float("nan")

    @property
    def has_quantiles(self) -> bool:
        return self.q10 == self.q10 and self.q90 == self.q90  # not NaN


@dataclass(frozen=True)
class Regression:
    """One benchmark cell whose median step latency got slower."""

    key: BenchKey
    baseline_ms: float
    fresh_ms: float
    #: machine-drift scale the comparison was normalized by (1.0 = raw).
    drift: float = 1.0

    @property
    def ratio(self) -> float:
        return self.fresh_ms / self.baseline_ms

    @property
    def corrected_ratio(self) -> float:
        return self.ratio / self.drift

    def __str__(self) -> str:
        model, spec, particles = self.key
        text = (
            f"{model} {spec} @{particles}: "
            f"{self.baseline_ms:.4f} ms -> {self.fresh_ms:.4f} ms "
            f"({self.ratio:.2f}x)"
        )
        if self.drift != 1.0:
            text += f" [{self.corrected_ratio:.2f}x after {self.drift:.2f}x drift]"
        return text


def load_bench_cells(path, metric: str = "latency") -> Dict[BenchKey, BenchCell]:
    """Quantiles per benchmark cell from one JSON document.

    Accepts any document written by
    :func:`repro.bench.reporting.write_bench_json`. ``metric`` selects
    which records become cells by prefix match — ``"latency"`` (the
    default) loads the step-latency sweeps; ``"pickled_bytes"`` loads
    the transport byte counters, so the same gate can watch payload
    bytes creep back onto the pickle path. Entries without a median are
    skipped; missing q10/q90 fields load as NaN
    (``BenchCell.has_quantiles`` is False).
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    cells: Dict[BenchKey, BenchCell] = {}
    for entry in document.get("entries", []):
        entry_metric = entry.get("metric")
        if entry_metric is None:
            # Legacy documents tagged nothing and recorded latencies.
            if metric != "latency":
                continue
        elif not str(entry_metric).startswith(metric):
            # Documents may concatenate several sweeps' records; a
            # memory/accuracy record for the same (model, spec, count)
            # must not overwrite the cell the gate compares.
            continue
        median = entry.get("median_ms", entry.get("median"))
        if median is None:
            continue
        key = (
            str(entry.get("model", "")),
            str(entry.get("spec", "")),
            int(entry.get("particles", 0)),
        )
        q10 = entry.get("q10_ms", entry.get("q10"))
        q90 = entry.get("q90_ms", entry.get("q90"))
        cells[key] = BenchCell(
            median=float(median),
            q10=float(q10) if q10 is not None else float("nan"),
            q90=float(q90) if q90 is not None else float("nan"),
        )
    return cells


def load_bench_medians(path) -> Dict[BenchKey, float]:
    """Median step latency per benchmark cell from one JSON document."""
    return {key: cell.median for key, cell in load_bench_cells(path).items()}


def machine_drift(
    fresh: Dict[BenchKey, float], baseline: Dict[BenchKey, float]
) -> float:
    """Machine-wide slowdown of the fresh run relative to the baseline.

    A code change regresses a handful of specs, while a slower machine
    (a loaded CI runner, a different host) shifts every cell together —
    and both code regressions and contention only push latency ratios
    *up*, never down. The drift is therefore estimated as the *lower
    quartile* of the per-cell latency ratios: the cleanest cells of the
    fresh run, which a uniform machine slowdown still shifts but a
    minority of regressed cells cannot drag along. Clamped at 1.0 (a
    faster machine needs no correction), and reported as 1.0 when fewer
    than three shared cells exist — too few to tell drift from
    regression, so the comparison stays raw and strict.
    """
    shared = set(fresh) & set(baseline)
    ratios = sorted(
        fresh[key] / baseline[key] for key in shared if baseline[key] > 0
    )
    if len(ratios) < 3:
        return 1.0
    position = 0.25 * (len(ratios) - 1)
    lower = int(position)
    fraction = position - lower
    quartile = ratios[lower]
    if fraction and lower + 1 < len(ratios):
        quartile += fraction * (ratios[lower + 1] - ratios[lower])
    return max(1.0, quartile)


def compare_medians(
    fresh: Dict[BenchKey, float],
    baseline: Dict[BenchKey, float],
    threshold: float = 0.30,
    normalize: bool = True,
) -> List[Regression]:
    """Cells whose fresh median exceeds baseline by more than ``threshold``.

    Only keys present in *both* documents are compared — a new spec has
    no baseline yet (it becomes one when its document is committed), and
    a retired spec stops being gated. ``threshold`` is fractional:
    ``0.30`` fails a cell that got more than 30% slower.

    With ``normalize`` (the default) the comparison is corrected for
    machine drift first (:func:`machine_drift`): the fresh and baseline
    documents usually come from different runs — often different hosts,
    a CI runner against a committed file — and the gate must flag the
    spec that regressed *relative to the rest of the suite*, not a
    uniformly slower machine. Pass ``normalize=False`` for a raw
    absolute-latency comparison between same-host runs.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold!r}")
    drift = machine_drift(fresh, baseline) if normalize else 1.0
    regressions: List[Regression] = []
    for key in sorted(set(fresh) & set(baseline)):
        base = baseline[key]
        new = fresh[key]
        if base > 0 and new > base * drift * (1.0 + threshold):
            regressions.append(Regression(key, base, new, drift))
    return regressions


def compare_cells(
    fresh: Dict[BenchKey, BenchCell],
    baseline: Dict[BenchKey, BenchCell],
    threshold: float = 0.30,
    normalize: bool = True,
) -> List[Regression]:
    """The gate criterion over full quantile cells.

    A cell regresses when **both** hold (after the machine-drift
    correction of :func:`compare_medians`):

    * its fresh *median* exceeds the baseline median by ``threshold``
      (the headline criterion), and
    * its fresh *q10* exceeds the baseline *q90* by ``threshold`` —
      the quiet-phase floor of the fresh run must clear even the noisy
      tail of the baseline run.

    The second condition is the anti-flake confirmation: on a shared
    machine a contention phase inflates a cell's median while its q10
    stays at the quiet floor, and a baseline cell recorded in an
    unusually quiet phase has a q90 close to the machine's true cost —
    either way, only a genuine code regression moves the *floor* past
    the *tail*. Cells without recorded quantiles fall back to the
    median-only criterion.
    """
    fresh_medians = {key: cell.median for key, cell in fresh.items()}
    base_medians = {key: cell.median for key, cell in baseline.items()}
    candidates = compare_medians(
        fresh_medians, base_medians, threshold=threshold, normalize=normalize
    )
    confirmed: List[Regression] = []
    for regression in candidates:
        new = fresh[regression.key]
        base = baseline[regression.key]
        if new.has_quantiles and base.has_quantiles and base.q90 > 0:
            separated = new.q10 > base.q90 * regression.drift * (1.0 + threshold)
            if not separated:
                continue
        confirmed.append(regression)
    return confirmed


def format_regressions(
    regressions: List[Regression], threshold: float
) -> str:
    """Human-readable gate verdict for CI logs."""
    if not regressions:
        return f"perf gate OK: no spec regressed beyond {threshold:.0%}"
    lines = [
        f"perf gate FAILED: {len(regressions)} spec(s) regressed beyond "
        f"{threshold:.0%}:"
    ]
    lines.extend(f"  {reg}" for reg in regressions)
    return "\n".join(lines)
