"""The robot of Fig. 5: model, environment, and closed-loop controller.

The paper's larger example: a robot with an accelerometer and an
occasionally-available GPS estimates its own position by dead reckoning
corrected by GPS fixes, while a controller — consuming the *inferred*
position distribution — drives it to a target; an automaton switches to
a task mode once the posterior is confident enough. "Inference in the
loop": the command from the previous step feeds the motion model, and
the posterior feeds the controller.

The latent state is ``z = [position, velocity, acceleration]`` with
linear dynamics driven by the command, so under SDS each particle runs
an exact matrix Kalman filter (via the multivariate linear-Gaussian
conjugacy) and a single particle suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from repro.dists.stats import probability
from repro.lang import gaussian, mv_gaussian
from repro.runtime.node import ProbCtx, ProbNode
from repro.symbolic import app as sym_app

__all__ = ["RobotConfig", "RobotModel", "RobotEnv", "robot_matrices"]


@dataclass(frozen=True)
class RobotConfig:
    """Physical and sensor parameters of the robot."""

    dt: float = 0.1
    accel_var: float = 0.05      # the paper's a_var: actuation noise
    accel_noise: float = 0.01    # the paper's a_noise: accelerometer noise
    gps_noise: float = 0.25      # the paper's p_noise
    gps_period: int = 5          # steps between GPS fixes
    prior_var: float = 25.0
    target: float = 10.0
    epsilon: float = 1.0
    confidence: float = 0.9


def robot_matrices(config: RobotConfig) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dynamics ``z' = F z + B cmd + w`` with ``w ~ N(0, Q)``.

    The acceleration component is re-driven by the command each step
    (``a = cmd + noise``, the paper's ``sample(gaussian(pre cmd, a_var))``)
    while position and velocity integrate it (the two ``integr`` blocks).
    """
    dt = config.dt
    f = np.array(
        [
            [1.0, dt, 0.5 * dt * dt],
            [0.0, 1.0, dt],
            [0.0, 0.0, 0.0],
        ]
    )
    b = np.array([0.0, 0.0, 1.0])
    q = np.diag([1e-6, 1e-6, config.accel_var])
    return f, b, q


class RobotModel(ProbNode):
    """``gps_acc_tracker`` of Fig. 5 as a probabilistic node.

    Input is ``(a_obs, gps, cmd)`` where ``gps`` is ``None`` when the
    signal is absent (the ``present gps(p_obs) -> ...`` construct) and
    ``cmd`` is the command issued at the *previous* step. Output is the
    latent state vector (symbolically, under delayed sampling).
    """

    def __init__(self, config: RobotConfig = RobotConfig()):
        self.config = config
        self.f, self.b, self.q = robot_matrices(config)

    def init(self) -> Any:
        return None

    def step(self, state: Any, inp: Tuple[float, Optional[float], float], ctx: ProbCtx):
        a_obs, gps, cmd = inp
        config = self.config
        if state is None:
            prior_mean = np.zeros(3)
            prior_cov = np.diag([config.prior_var, 1.0, config.accel_var])
            z = ctx.sample(mv_gaussian(prior_mean, prior_cov))
        else:
            drift = self.b * float(cmd)
            mean = sym_app("add", sym_app("matvec", self.f, state), drift)
            z = ctx.sample(mv_gaussian(mean, self.q))
        # accelerometer reading of the acceleration component
        ctx.observe(gaussian(z[2], config.accel_noise), a_obs)
        # GPS fix of the position component, when present
        if gps is not None:
            ctx.observe(gaussian(z[0], config.gps_noise), gps)
        # output the position estimate (a scalar projection of the state)
        return z[0], z


class RobotEnv:
    """Ground-truth simulator producing sensor readings.

    Owns the true state; :meth:`step` applies a command and returns
    ``(a_obs, gps_or_None)`` plus the true position for scoring.
    """

    def __init__(self, config: RobotConfig = RobotConfig(), seed: int = 0):
        self.config = config
        self.f, self.b, self.q = robot_matrices(config)
        self.rng = np.random.default_rng(seed)
        self.z = np.array([0.0, 0.0, 0.0])
        self.t = 0

    def step(self, cmd: float) -> Tuple[float, Optional[float], float]:
        config = self.config
        noise = self.rng.multivariate_normal(np.zeros(3), self.q, method="svd")
        self.z = self.f @ self.z + self.b * float(cmd) + noise
        a_obs = float(self.rng.normal(self.z[2], np.sqrt(config.accel_noise)))
        gps: Optional[float] = None
        if self.t % config.gps_period == 0:
            gps = float(self.rng.normal(self.z[0], np.sqrt(config.gps_noise)))
        self.t += 1
        return a_obs, gps, float(self.z[0])


def reached_target(p_dist, config: RobotConfig) -> bool:
    """The Fig. 5 guard: P(p in [target-eps, target+eps]) > confidence."""
    return probability(p_dist, config.target, config.epsilon) > config.confidence


# Register the robot tracker with the array-native delayed-sampling
# backend. Unlike the scalar Kalman chains (whose conjugate structure is
# declared by hand in repro.bench.models), the robot's chain structure is
# *verified*: the static analysis proves the model stays inside the
# batched fragment (mv-Gaussian transition, projection observations,
# lockstep control flow) without executing it; the empirical two-step
# probe — one instant with a GPS fix, one without, covering both
# transition shapes — remains as confirmation when the analysis cannot
# see through a future model edit. Either way, a model edit that breaks
# the chain (a non-Gaussian sensor, a branch on a sampled value)
# silently reverts to the scalar engines instead of crashing the
# vectorized path.
from repro.analysis.routing import analysis_for  # noqa: E402
from repro.vectorized.models import register_gaussian_chain_model  # noqa: E402

_analysis = analysis_for(RobotModel())
if _analysis.conclusive:
    _chain_ok = _analysis.batchable and _analysis.bounded
else:
    from repro.delayed.detect import probe_gaussian_chain  # noqa: E402

    _chain_ok = probe_gaussian_chain(
        RobotModel(), [(0.0, 0.0, 0.0), (0.1, None, 0.0)]
    ).is_chain
if _chain_ok:
    register_gaussian_chain_model(RobotModel)
