"""Benchmark models, data generation, and the evaluation harness."""

from repro.bench.data import (
    Dataset,
    coin_data,
    kalman_data,
    outlier_data,
    robot_data,
)
from repro.bench.harness import (
    ProfileResult,
    Quantiles,
    SweepResult,
    accuracy_sweep,
    latency_sweep,
    memory_profile,
    parse_method_spec,
    particles_to_match,
    run_mse,
    step_latency_profile,
)
from repro.bench.models import (
    BoundedWalkModel,
    CoinModel,
    HmmInitModel,
    HmmModel,
    KalmanModel,
    OutlierModel,
    WalkModel,
)
from repro.bench.regression import (
    compare_medians,
    format_regressions,
    load_bench_medians,
    machine_drift,
)
from repro.bench.reporting import (
    format_profile,
    format_sweep,
    summarize_profile,
    sweep_records,
    write_bench_json,
)
from repro.bench.robot import RobotConfig, RobotEnv, RobotModel

__all__ = [
    "Dataset",
    "kalman_data",
    "coin_data",
    "outlier_data",
    "robot_data",
    "RobotConfig",
    "RobotEnv",
    "RobotModel",
    "KalmanModel",
    "HmmModel",
    "CoinModel",
    "OutlierModel",
    "HmmInitModel",
    "WalkModel",
    "BoundedWalkModel",
    "Quantiles",
    "SweepResult",
    "ProfileResult",
    "parse_method_spec",
    "run_mse",
    "accuracy_sweep",
    "latency_sweep",
    "step_latency_profile",
    "memory_profile",
    "particles_to_match",
    "format_sweep",
    "format_profile",
    "summarize_profile",
    "sweep_records",
    "write_bench_json",
    "load_bench_medians",
    "machine_drift",
    "compare_medians",
    "format_regressions",
]
