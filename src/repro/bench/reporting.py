"""Text and machine-readable rendering of benchmark results.

The paper presents its evaluation as log-scale plots; the harness
renders the same series as aligned text tables (one row per particle
count or step index, one column group per method) so a terminal run of
the benchmark suite reproduces every figure's data.

:func:`sweep_records` / :func:`write_bench_json` are the machine-readable
side: a flat ``method spec -> particle count -> quantiles`` record list
serialized as JSON, so CI can archive each run as a perf-trajectory
artifact (``BENCH_PR4.json`` and successors) and later runs can be
diffed mechanically instead of by reading tables.
"""

from __future__ import annotations

import json
import platform
from typing import Dict, List, Optional

from repro.bench.harness import ProfileResult, SweepResult

__all__ = [
    "format_sweep",
    "format_profile",
    "summarize_profile",
    "sweep_records",
    "write_bench_json",
]

#: schema tag stamped into every benchmark JSON file.
BENCH_JSON_SCHEMA = "repro-bench/1"


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3g}"
    return f"{value:.4f}"


def format_sweep(result: SweepResult, title: str) -> str:
    """Render a particle-count sweep as a table with q10/median/q90 cells."""
    lines: List[str] = [title, ""]
    header = ["particles"] + [
        f"{m}[q10/med/q90]" for m in result.methods
    ]
    rows: List[List[str]] = []
    for particles in result.particle_counts:
        row = [str(particles)]
        for method in result.methods:
            q = result.cells[method][particles]
            row.append(f"{_fmt(q.q10)} / {_fmt(q.median)} / {_fmt(q.q90)}")
        rows.append(row)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_profile(result: ProfileResult, title: str, max_rows: int = 20) -> str:
    """Render a per-step profile, sub-sampled to at most ``max_rows`` rows."""
    lines: List[str] = [title, ""]
    n = len(result.steps)
    stride = max(1, n // max_rows)
    header = ["step"] + list(result.methods)
    rows: List[List[str]] = []
    for i in range(0, n, stride):
        row = [str(result.steps[i])]
        for method in result.methods:
            row.append(_fmt(result.series[method][i]))
        rows.append(row)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sweep_records(
    result: SweepResult, model: str, extra: Optional[Dict] = None
) -> List[dict]:
    """Flatten a sweep into JSON-ready records, one per (spec, count) cell.

    Each record carries the method spec, the particle count, and the
    cell's quantiles under metric-specific keys (``median_ms`` for
    latency sweeps, ``median`` otherwise); ``extra`` entries are merged
    into every record (e.g. a benchmark name).
    """
    suffix = "_ms" if result.metric.endswith("_ms") else ""
    records: List[dict] = []
    for spec in result.methods:
        for particles in result.particle_counts:
            cell = result.cells[spec][particles]
            record = {
                "model": model,
                "spec": spec,
                "particles": int(particles),
                "metric": result.metric,
                f"q10{suffix}": cell.q10,
                f"median{suffix}": cell.median,
                f"q90{suffix}": cell.q90,
            }
            if extra:
                record.update(extra)
            records.append(record)
    return records


def write_bench_json(
    path, records: List[dict], meta: Optional[Dict] = None
) -> None:
    """Write benchmark records as one machine-readable JSON document.

    The document is ``{"schema", "host", "meta", "entries"}``; entries
    are the flat records of :func:`sweep_records` (possibly from several
    sweeps concatenated). The file is the unit CI uploads as the
    perf-trajectory artifact.
    """
    document = {
        "schema": BENCH_JSON_SCHEMA,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "meta": dict(meta or {}),
        "entries": list(records),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def summarize_profile(result: ProfileResult) -> dict:
    """First/last values and growth ratio per method.

    The growth ratio (last quarter mean / first quarter mean) is the
    quantity the paper's conclusions rest on: ~1 for constant-resource
    engines, >> 1 for the original delayed sampler.
    """
    summary = {}
    for method in result.methods:
        series = result.series[method]
        quarter = max(1, len(series) // 4)
        head = sum(series[:quarter]) / quarter
        tail = sum(series[-quarter:]) / quarter
        summary[method] = {
            "first": series[0],
            "last": series[-1],
            "head_mean": head,
            "tail_mean": tail,
            "growth": tail / head if head > 0 else float("inf"),
        }
    return summary
