"""Text rendering of benchmark results.

The paper presents its evaluation as log-scale plots; the harness
renders the same series as aligned text tables (one row per particle
count or step index, one column group per method) so a terminal run of
the benchmark suite reproduces every figure's data.
"""

from __future__ import annotations

from typing import List

from repro.bench.harness import ProfileResult, SweepResult

__all__ = ["format_sweep", "format_profile", "summarize_profile"]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3g}"
    return f"{value:.4f}"


def format_sweep(result: SweepResult, title: str) -> str:
    """Render a particle-count sweep as a table with q10/median/q90 cells."""
    lines: List[str] = [title, ""]
    header = ["particles"] + [
        f"{m}[q10/med/q90]" for m in result.methods
    ]
    rows: List[List[str]] = []
    for particles in result.particle_counts:
        row = [str(particles)]
        for method in result.methods:
            q = result.cells[method][particles]
            row.append(f"{_fmt(q.q10)} / {_fmt(q.median)} / {_fmt(q.q90)}")
        rows.append(row)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_profile(result: ProfileResult, title: str, max_rows: int = 20) -> str:
    """Render a per-step profile, sub-sampled to at most ``max_rows`` rows."""
    lines: List[str] = [title, ""]
    n = len(result.steps)
    stride = max(1, n // max_rows)
    header = ["step"] + list(result.methods)
    rows: List[List[str]] = []
    for i in range(0, n, stride):
        row = [str(result.steps[i])]
        for method in result.methods:
            row.append(_fmt(result.series[method][i]))
        rows.append(row)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def summarize_profile(result: ProfileResult) -> dict:
    """First/last values and growth ratio per method.

    The growth ratio (last quarter mean / first quarter mean) is the
    quantity the paper's conclusions rest on: ~1 for constant-resource
    engines, >> 1 for the original delayed sampler.
    """
    summary = {}
    for method in result.methods:
        series = result.series[method]
        quarter = max(1, len(series) // 4)
        head = sum(series[:quarter]) / quarter
        tail = sum(series[-quarter:]) / quarter
        summary[method] = {
            "first": series[0],
            "last": series[-1],
            "head_mean": head,
            "tail_mean": tail,
            "growth": tail / head if head > 0 else float("inf"),
        }
    return summary
