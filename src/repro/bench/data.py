"""Benchmark data generation.

"For each benchmark, we obtained observation data by sampling from the
benchmark's model. Every run of each benchmark across all experiments
uses the same data as input." (Section 6.1.) These generators sample a
ground-truth latent trajectory and the corresponding observations with a
fixed seed, so the harness feeds identical data to every engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = [
    "Dataset",
    "kalman_data",
    "coin_data",
    "outlier_data",
    "robot_data",
    "count_data",
    "categorical_data",
    "mixed_count_data",
]


@dataclass(frozen=True)
class Dataset:
    """Ground truth and observations for one benchmark run."""

    truths: List
    observations: List

    def __len__(self) -> int:
        return len(self.observations)


def kalman_data(
    steps: int,
    seed: int = 0,
    prior_mean: float = 0.0,
    prior_var: float = 100.0,
    motion_var: float = 1.0,
    obs_var: float = 1.0,
) -> Dataset:
    """Sample a trajectory and noisy observations from the Kalman model."""
    rng = np.random.default_rng(seed)
    truths: List[float] = []
    observations: List[float] = []
    x = rng.normal(prior_mean, np.sqrt(prior_var))
    for _ in range(steps):
        truths.append(x)
        observations.append(rng.normal(x, np.sqrt(obs_var)))
        x = rng.normal(x, np.sqrt(motion_var))
    return Dataset(truths, observations)


def coin_data(steps: int, seed: int = 0, alpha: float = 1.0, beta: float = 1.0) -> Dataset:
    """Sample a coin bias and a stream of flips from the Coin model."""
    rng = np.random.default_rng(seed)
    bias = rng.beta(alpha, beta)
    observations = [bool(rng.random() < bias) for _ in range(steps)]
    return Dataset([bias] * steps, observations)


def count_data(
    steps: int, seed: int = 0, shape: float = 2.0, rate: float = 1.0
) -> Dataset:
    """Sample an arrival rate and a count stream from the Poisson model."""
    rng = np.random.default_rng(seed)
    lam = rng.gamma(shape, 1.0 / rate)
    observations = [int(rng.poisson(lam)) for _ in range(steps)]
    return Dataset([lam] * steps, observations)


def categorical_data(steps: int, seed: int = 0, alpha=(1.0, 1.0, 1.0)) -> Dataset:
    """Sample mixing proportions and a category stream from the model."""
    rng = np.random.default_rng(seed)
    concentration = np.asarray(alpha, dtype=float)
    probs = rng.dirichlet(concentration)
    observations = [
        int(rng.choice(len(concentration), p=probs)) for _ in range(steps)
    ]
    return Dataset([probs] * steps, observations)


def mixed_count_data(
    steps: int,
    seed: int = 0,
    n_slots: int = 4,
    shape: float = 2.0,
    rate: float = 1.0,
) -> Dataset:
    """Per-step tuples of slot counts for the mixed-fragment model."""
    rng = np.random.default_rng(seed)
    truths: List[float] = []
    observations: List = []
    for _ in range(steps):
        lams = rng.gamma(shape, 1.0 / rate, size=n_slots)
        truths.append(float(lams.mean()))
        observations.append(tuple(int(c) for c in rng.poisson(lams)))
    return Dataset(truths, observations)


def robot_data(steps: int, seed: int = 0, config=None, cmd: float = 0.0) -> Dataset:
    """Simulate the Fig. 5 robot with a constant command.

    Observations are the ``(a_obs, gps_or_None, cmd)`` input tuples the
    :class:`~repro.bench.robot.RobotModel` consumes (GPS present every
    ``gps_period`` steps); truths are the simulator's positions. Used by
    the chain-SDS benchmarks, which need a multivariate Gaussian chain
    in the sweep.
    """
    from repro.bench.robot import RobotConfig, RobotEnv

    env = RobotEnv(config if config is not None else RobotConfig(), seed=seed)
    truths: List[float] = []
    observations: List = []
    for _ in range(steps):
        a_obs, gps, true_position = env.step(cmd)
        truths.append(true_position)
        observations.append((a_obs, gps, cmd))
    return Dataset(truths, observations)


def outlier_data(
    steps: int,
    seed: int = 0,
    prior_mean: float = 0.0,
    prior_var: float = 100.0,
    motion_var: float = 1.0,
    obs_var: float = 1.0,
    outlier_alpha: float = 100.0,
    outlier_beta: float = 1000.0,
    outlier_mean: float = 0.0,
    outlier_var: float = 100.0,
) -> Dataset:
    """Sample a trajectory with occasional invalid sensor readings."""
    rng = np.random.default_rng(seed)
    outlier_prob = rng.beta(outlier_alpha, outlier_beta)
    truths: List[float] = []
    observations: List[float] = []
    x = rng.normal(prior_mean, np.sqrt(prior_var))
    for _ in range(steps):
        truths.append(x)
        if rng.random() < outlier_prob:
            observations.append(rng.normal(outlier_mean, np.sqrt(outlier_var)))
        else:
            observations.append(rng.normal(x, np.sqrt(obs_var)))
        x = rng.normal(x, np.sqrt(motion_var))
    return Dataset(truths, observations)
