"""Deterministic fault injection for the execution layer.

See :mod:`repro.faults.plan` for the fault model. The package exists so
tests and the CI chaos job can drive every supervision path of
:class:`~repro.exec.executor.PersistentProcessExecutor` —
crash/hang/ring-fault recovery, restart budgets, the executor
degradation ladder — reproducibly::

    from repro.faults import FaultPlan, fault_plan

    with fault_plan(FaultPlan().crash(0, 3).hang(1, 4, seconds=10.0)):
        ...  # streams recover, posteriors stay bit-identical
"""

from repro.faults.plan import (
    FAULTS,
    CoordinatorFaultState,
    Fault,
    FaultPlan,
    FaultSwitch,
    InjectedFault,
    RingCorruption,
    WorkerFaultState,
    clear_fault_plan,
    fault_plan,
    install_fault_plan,
    load_env_plan,
)

__all__ = [
    "FAULTS",
    "Fault",
    "FaultPlan",
    "FaultSwitch",
    "InjectedFault",
    "RingCorruption",
    "WorkerFaultState",
    "CoordinatorFaultState",
    "install_fault_plan",
    "clear_fault_plan",
    "fault_plan",
    "load_env_plan",
]
