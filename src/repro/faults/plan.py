"""Deterministic, seedable fault injection for persistent execution.

Supervised execution (deadlines, restart budgets, the degradation
ladder) is only trustworthy if every recovery path runs in CI instead
of being discovered in an incident. This module is the chaos driver: a
:class:`FaultPlan` describes *exactly* which worker fails, how, and at
which committed step — so a failing run is reproducible byte for byte,
and the bit-identity contract ("any executor reproduces the serial
posterior") can be asserted *through* the failure.

Fault kinds
-----------

``crash``
    the worker process ``os._exit``\\ s on its Nth ``step`` command —
    the SIGKILL-mid-burst scenario of the PR-3 recovery tests, made
    deterministic.
``hang``
    the worker sleeps ``seconds`` before executing its Nth step — a
    deadlocked ring or runaway model step. With a step deadline
    configured the coordinator SIGKILLs and revives it; without one the
    reply is simply late.
``delay``
    like ``hang`` but intended to stay *below* the deadline: the
    supervised path must tolerate slow workers without restarting them.
``error``
    the worker raises on its Nth step, producing an ``("err", ...)``
    reply — poisons the population, which is what drives the
    :class:`~repro.exec.server.StreamServer` retry-from-checkpoint path.
``ring_corrupt``
    the coordinator's next step reply from this worker is treated as a
    corrupted shared-memory read (raises
    :class:`RingCorruption` inside ``recv_reply``; the executor
    converts it to a ring fault and revives the worker).
``ring_exhaust``
    forces every subsequent array park on the affected ring to fall
    back inline (``ShmRing.fault_exhausted``): worker-side on the reply
    ring from step N on, coordinator-side on the command ring of a
    matching spawn generation. With ``gen=1`` this exhausts the command
    ring *during revival replay* — the checkpoint shards ship pickled,
    and recovery must stay bit-identical.
``spawn_fail``
    respawned worker processes of generations ``gen .. gen+count-1``
    exit before the hello handshake — the crash-loop that exhausts a
    restart budget.

Generations make crash faults revival-safe: each fault names the worker
*process generation* it applies to (0 = the initially spawned process,
1 = the first respawn, ...), so a ``crash`` at step 3 does not re-fire
when the revived generation replays the oplog past step 3.

Activation mirrors :data:`repro.obs.spans.TELEMETRY`: hooks compiled
into the executor check ``FAULTS.enabled`` — a single attribute read —
and the disabled state passes no fault state into workers at all.
Enable with :func:`install_fault_plan` / the :func:`fault_plan` context
manager, or export ``REPRO_FAULT_PLAN`` (a plan spec, see
:meth:`FaultPlan.parse`) before the process starts — the CI chaos job's
switch.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import InferenceError

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultSwitch",
    "FAULTS",
    "RingCorruption",
    "InjectedFault",
    "WorkerFaultState",
    "CoordinatorFaultState",
    "install_fault_plan",
    "clear_fault_plan",
    "fault_plan",
    "load_env_plan",
]

#: fault kinds executed inside the worker process.
WORKER_KINDS = ("crash", "hang", "delay", "error", "ring_exhaust", "spawn_fail")
#: fault kinds executed on the coordinator side of the pipe.
COORDINATOR_KINDS = ("ring_corrupt", "ring_exhaust")
KINDS = ("crash", "hang", "delay", "error", "ring_corrupt", "ring_exhaust", "spawn_fail")

#: kinds that require a step number (fire on the worker's Nth step op).
_STEPPED = ("crash", "hang", "delay", "error", "ring_corrupt", "ring_exhaust")


class InjectedFault(RuntimeError):
    """The exception an ``error`` fault raises inside a worker."""


class RingCorruption(RuntimeError):
    """Raised by a ``ring_corrupt`` fault while resolving a reply."""


class Fault:
    """One deterministic fault: kind, target worker, firing condition."""

    __slots__ = ("kind", "worker", "step", "seconds", "gen", "count")

    def __init__(
        self,
        kind: str,
        worker: int,
        step: int = 1,
        seconds: float = 0.0,
        gen: int = 0,
        count: int = 1,
    ):
        if kind not in KINDS:
            raise InferenceError(
                f"unknown fault kind {kind!r}; choose from {KINDS}"
            )
        if int(worker) < 0:
            raise InferenceError("fault worker index must be non-negative")
        if kind in _STEPPED and int(step) < 1:
            raise InferenceError(f"{kind} fault needs a step >= 1, got {step}")
        if float(seconds) < 0:
            raise InferenceError("fault seconds must be non-negative")
        if int(gen) < 0:
            raise InferenceError("fault generation must be non-negative")
        if int(count) < 1:
            raise InferenceError("fault count must be at least 1")
        self.kind = kind
        self.worker = int(worker)
        self.step = int(step)
        self.seconds = float(seconds)
        self.gen = int(gen)
        self.count = int(count)

    def matches_gen(self, generation: int) -> bool:
        """Does this fault apply to worker-process ``generation``?"""
        if self.kind == "spawn_fail":
            return self.gen <= generation < self.gen + self.count
        return self.gen == generation

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Fault):
            return NotImplemented
        return all(
            getattr(self, field) == getattr(other, field)
            for field in self.__slots__
        )

    def __repr__(self) -> str:
        extras = []
        if self.kind in ("hang", "delay"):
            extras.append(f"seconds={self.seconds}")
        if self.kind == "spawn_fail":
            extras.append(f"count={self.count}")
        extra = (", " + ", ".join(extras)) if extras else ""
        return (
            f"Fault({self.kind!r}, worker={self.worker}, step={self.step}, "
            f"gen={self.gen}{extra})"
        )


class FaultPlan:
    """An ordered collection of :class:`Fault` entries.

    Build programmatically (the chaining helpers), from the compact
    spec DSL (:meth:`parse` — also the ``REPRO_FAULT_PLAN`` format), or
    deterministically at random (:meth:`seeded`).
    """

    def __init__(self, faults: Iterable[Fault] = ()):
        self.faults: List[Fault] = list(faults)

    # -- chaining constructors -----------------------------------------
    def crash(self, worker: int, step: int, gen: int = 0) -> "FaultPlan":
        """Worker ``worker`` exits hard on its ``step``-th step command."""
        self.faults.append(Fault("crash", worker, step, gen=gen))
        return self

    def hang(
        self, worker: int, step: int, seconds: float, gen: int = 0
    ) -> "FaultPlan":
        """Worker sleeps ``seconds`` before executing its Nth step."""
        self.faults.append(Fault("hang", worker, step, seconds=seconds, gen=gen))
        return self

    def delay(
        self, worker: int, step: int, seconds: float, gen: int = 0
    ) -> "FaultPlan":
        """Like :meth:`hang`, named for below-deadline slowness."""
        self.faults.append(Fault("delay", worker, step, seconds=seconds, gen=gen))
        return self

    def error(self, worker: int, step: int, gen: int = 0) -> "FaultPlan":
        """Worker raises :class:`InjectedFault` on its Nth step."""
        self.faults.append(Fault("error", worker, step, gen=gen))
        return self

    def corrupt_ring(self, worker: int, step: int, gen: int = 0) -> "FaultPlan":
        """The coordinator's Nth step reply from ``worker`` reads corrupt."""
        self.faults.append(Fault("ring_corrupt", worker, step, gen=gen))
        return self

    def exhaust_ring(self, worker: int, step: int = 1, gen: int = 0) -> "FaultPlan":
        """Force ring overflow fallbacks for ``worker`` from step N on."""
        self.faults.append(Fault("ring_exhaust", worker, step, gen=gen))
        return self

    def fail_respawn(self, worker: int, count: int = 1) -> "FaultPlan":
        """The next ``count`` respawns of ``worker`` die before hello."""
        self.faults.append(Fault("spawn_fail", worker, gen=1, count=count))
        return self

    # -- selection ------------------------------------------------------
    def for_worker(self, worker: int) -> List[Fault]:
        """The worker-side faults targeting slot ``worker`` (picklable)."""
        return [
            fault
            for fault in self.faults
            if fault.worker == worker and fault.kind in WORKER_KINDS
        ]

    def coordinator_for(self, worker: int) -> List[Fault]:
        """The coordinator-side faults targeting slot ``worker``."""
        return [
            fault
            for fault in self.faults
            if fault.worker == worker and fault.kind in COORDINATOR_KINDS
        ]

    # -- construction from specs ---------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the compact DSL, e.g.::

            crash@3:w0;hang@4:w1:10;ring-corrupt@5:w0;spawn-fail:w0:3

        Entries are ``;``-separated. Each is ``kind[@step]`` followed by
        ``:``-separated fields: ``wN`` (worker, required), ``gN``
        (generation, default 0), and a bare number (``seconds`` for
        hang/delay, ``count`` for spawn-fail). Kind names may use ``-``
        for ``_``.
        """
        plan = cls()
        for token in spec.split(";"):
            token = token.strip()
            if not token:
                continue
            head, *fields = token.split(":")
            kind, _, step_text = head.partition("@")
            kind = kind.strip().replace("-", "_")
            step = 1
            if step_text:
                try:
                    step = int(step_text)
                except ValueError:
                    raise InferenceError(
                        f"bad step in fault spec entry {token!r}"
                    )
            worker: Optional[int] = None
            gen: Optional[int] = None
            number: Optional[float] = None
            for field in fields:
                field = field.strip()
                if not field:
                    continue
                if field[0] == "w" and field[1:].isdigit():
                    worker = int(field[1:])
                elif field[0] == "g" and field[1:].isdigit():
                    gen = int(field[1:])
                else:
                    try:
                        number = float(field)
                    except ValueError:
                        raise InferenceError(
                            f"bad field {field!r} in fault spec entry {token!r}"
                        )
            if worker is None:
                raise InferenceError(
                    f"fault spec entry {token!r} names no worker (use wN)"
                )
            if kind == "spawn_fail":
                plan.faults.append(
                    Fault(
                        kind,
                        worker,
                        gen=1 if gen is None else gen,
                        count=1 if number is None else int(number),
                    )
                )
            else:
                plan.faults.append(
                    Fault(
                        kind,
                        worker,
                        step,
                        seconds=0.0 if number is None else float(number),
                        gen=0 if gen is None else gen,
                    )
                )
        return plan

    @classmethod
    def seeded(
        cls,
        seed: int,
        workers: int = 2,
        faults: int = 3,
        steps: Sequence[int] = (2, 12),
        kinds: Sequence[str] = ("crash", "hang", "ring_corrupt"),
        hang_seconds: float = 10.0,
    ) -> "FaultPlan":
        """A deterministic random plan: same seed, same faults.

        Draws ``faults`` entries with kind, worker, and step chosen by a
        seeded generator — the CI chaos job's way of walking the fault
        space over time without losing reproducibility.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        plan = cls()
        for _ in range(int(faults)):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            worker = int(rng.integers(0, workers))
            step = int(rng.integers(int(steps[0]), int(steps[1]) + 1))
            seconds = hang_seconds if kind in ("hang", "delay") else 0.0
            plan.faults.append(Fault(kind, worker, step, seconds=seconds))
        return plan

    def __len__(self) -> int:
        return len(self.faults)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.faults == other.faults

    def __repr__(self) -> str:
        return f"FaultPlan({self.faults!r})"


# ----------------------------------------------------------------------
# runtime fault state (hot-path hooks)
# ----------------------------------------------------------------------


class WorkerFaultState:
    """Per-worker-process fault state, evaluated inside the worker loop.

    Constructed from the picklable fault list the coordinator passed in
    the spawn args, filtered to this process's generation. ``on_step``
    is the only hot-path hook: it fires once per ``step`` command.
    """

    __slots__ = ("generation", "faults", "steps")

    def __init__(self, faults: Sequence[Fault], generation: int):
        self.generation = int(generation)
        self.faults = [f for f in faults if f.matches_gen(self.generation)]
        self.steps = 0

    def check_spawn(self) -> None:
        """Die before the hello handshake when a spawn_fail matches."""
        for fault in self.faults:
            if fault.kind == "spawn_fail":
                os._exit(1)

    def on_step(self, ring: Any) -> None:
        """Fire any fault scheduled for this process's next step op."""
        self.steps += 1
        for fault in self.faults:
            if fault.step != self.steps:
                continue
            if fault.kind == "crash":
                os._exit(1)
            elif fault.kind in ("hang", "delay"):
                time.sleep(fault.seconds)
            elif fault.kind == "error":
                raise InjectedFault(
                    f"injected worker error at step {self.steps} "
                    f"(gen {self.generation})"
                )
            elif fault.kind == "ring_exhaust" and ring is not None:
                ring.fault_exhausted = True


class CoordinatorFaultState:
    """Per-slot fault state on the coordinator side of the pipe.

    Attached to a :class:`~repro.exec.executor._WorkerSlot` when the
    active plan has coordinator-side faults for that slot's generation.
    ``note_op`` tags the op of the in-flight command (so only *step*
    replies count toward ``ring_corrupt`` firing steps); ``corrupt``
    raises :class:`RingCorruption` on the matching reply.
    """

    __slots__ = ("faults", "steps", "_pending_step")

    def __init__(self, faults: Sequence[Fault], generation: int):
        self.faults = [
            f
            for f in faults
            if f.kind == "ring_corrupt" and f.gen == int(generation)
        ]
        self.steps = 0
        self._pending_step = False

    def note_op(self, op: str) -> None:
        self._pending_step = op == "step"

    def corrupt(self, value: Any) -> Any:
        if not self._pending_step:
            return value
        self._pending_step = False
        self.steps += 1
        for fault in self.faults:
            if fault.step == self.steps:
                raise RingCorruption(
                    f"injected ring corruption on step reply {self.steps}"
                )
        return value


# ----------------------------------------------------------------------
# activation switch (TELEMETRY pattern)
# ----------------------------------------------------------------------


class FaultSwitch:
    """Process-wide fault-injection switch: one attribute check.

    ``FAULTS.enabled`` is all the executor reads when injection is off;
    the singleton's identity is stable, so imports stay valid across
    install/clear — only the fields mutate.
    """

    __slots__ = ("enabled", "plan")

    def __init__(self):
        self.enabled = False
        self.plan: Optional[FaultPlan] = None


#: the singleton every injection hook imports.
FAULTS = FaultSwitch()


def install_fault_plan(plan: FaultPlan) -> FaultPlan:
    """Activate ``plan`` process-wide (affects newly spawned workers)."""
    if not isinstance(plan, FaultPlan):
        raise InferenceError(
            f"install_fault_plan needs a FaultPlan, got {type(plan).__name__}"
        )
    FAULTS.plan = plan
    FAULTS.enabled = True
    return plan


def clear_fault_plan() -> None:
    """Deactivate fault injection (the default state)."""
    FAULTS.enabled = False
    FAULTS.plan = None


@contextmanager
def fault_plan(plan: FaultPlan):
    """Scoped injection: ``plan`` active inside the block, prior state after.

    ::

        with fault_plan(FaultPlan().crash(0, 3)):
            run_stream(engine, data)
    """
    previous = (FAULTS.enabled, FAULTS.plan)
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        FAULTS.enabled, FAULTS.plan = previous


def load_env_plan(env: Optional[Dict[str, str]] = None) -> Optional[FaultPlan]:
    """Install the plan named by ``REPRO_FAULT_PLAN``, if any.

    The value is either a plan spec (see :meth:`FaultPlan.parse`) or
    ``seed:N`` for :meth:`FaultPlan.seeded`. Called once at import — the
    activation path of the CI chaos job, which exports the variable
    before the test process starts.
    """
    source = os.environ if env is None else env
    spec = source.get("REPRO_FAULT_PLAN", "").strip()
    if not spec:
        return None
    if spec.startswith("seed:"):
        plan = FaultPlan.seeded(int(spec[len("seed:"):]))
    else:
        plan = FaultPlan.parse(spec)
    return install_fault_plan(plan)


load_env_plan()
