"""repro — a Python reproduction of ProbZelus (PLDI 2020).

Reactive probabilistic programming: synchronous stream programs with
first-class ``sample`` / ``observe`` / ``infer``, compiled to a
first-order functional core, with streaming inference engines including
bounded and streaming delayed sampling.

Quickstart::

    from repro import infer, gaussian, FunProbNode

    def hmm_step(state, y, ctx):
        mean = 0.0 if state is None else state
        x = ctx.sample(gaussian(mean, 1.0))
        ctx.observe(gaussian(x, 1.0), y)
        return x, x

    engine = infer(FunProbNode(None, hmm_step), n_particles=1, method="sds")
    state = engine.init()
    dist, state = engine.step(state, 0.7)   # posterior over the position
"""

from repro.dists import (
    Bernoulli,
    Beta,
    Binomial,
    Categorical,
    Delta,
    Dirichlet,
    Distribution,
    Empirical,
    Exponential,
    Gamma,
    Gaussian,
    Mixture,
    MvGaussian,
    Poisson,
    TupleDist,
    Uniform,
)
from repro.errors import (
    CausalityError,
    CompilationError,
    DistributionError,
    GraphError,
    InferenceError,
    InitializationError,
    KindError,
    LanguageError,
    ReproError,
    ScopeError,
    SymbolicError,
    TypeCheckError,
)
from repro.exec import (
    Executor,
    PersistentProcessExecutor,
    ProcessShardExecutor,
    ResidentPopulation,
    SerialExecutor,
    ShardedPopulation,
    StreamServer,
    ThreadShardExecutor,
    shutdown_executors,
)
from repro.inference import (
    BoundedDelayedSampler,
    ImportanceSampler,
    InferenceEngine,
    MseTracker,
    OriginalDelayedSampler,
    ParticleFilter,
    StreamingDelayedSampler,
    infer,
)
from repro.lang import (
    bernoulli,
    beta,
    binomial,
    categorical,
    delta,
    dirichlet,
    exponential,
    gamma,
    gaussian,
    mv_gaussian,
    poisson,
    uniform,
)
from repro.obs import (
    MetricsRegistry,
    count_event,
    default_registry,
    disable_telemetry,
    enable_telemetry,
    metrics_snapshot,
    telemetry,
    to_prometheus,
)
from repro.runtime import (
    Automaton,
    AutoState,
    FunNode,
    FunProbNode,
    Integr,
    Node,
    NodeInstance,
    Pid,
    Pre,
    ProbCtx,
    ProbNode,
    run,
    run_n,
)
from repro.vectorized import (
    ParticleBatch,
    VectorizedKalmanSDS,
    VectorizedModel,
    VectorizedParticleFilter,
    register_vectorizer,
    vectorize_model,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # inference
    "infer",
    "InferenceEngine",
    "ImportanceSampler",
    "ParticleFilter",
    "BoundedDelayedSampler",
    "StreamingDelayedSampler",
    "OriginalDelayedSampler",
    "MseTracker",
    # vectorized backend
    "ParticleBatch",
    "VectorizedModel",
    "VectorizedParticleFilter",
    "VectorizedKalmanSDS",
    "vectorize_model",
    "register_vectorizer",
    # execution layer
    "Executor",
    "SerialExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "PersistentProcessExecutor",
    "ShardedPopulation",
    "ResidentPopulation",
    "StreamServer",
    "shutdown_executors",
    # observability
    "MetricsRegistry",
    "default_registry",
    "metrics_snapshot",
    "count_event",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry",
    "to_prometheus",
    # runtime
    "Node",
    "ProbNode",
    "ProbCtx",
    "FunNode",
    "FunProbNode",
    "NodeInstance",
    "run",
    "run_n",
    "Pre",
    "Integr",
    "Pid",
    "Automaton",
    "AutoState",
    # lifted constructors
    "gaussian",
    "mv_gaussian",
    "beta",
    "bernoulli",
    "binomial",
    "gamma",
    "poisson",
    "exponential",
    "uniform",
    "categorical",
    "dirichlet",
    "delta",
    # distributions
    "Distribution",
    "Gaussian",
    "MvGaussian",
    "Beta",
    "Bernoulli",
    "Binomial",
    "Uniform",
    "Delta",
    "Gamma",
    "Poisson",
    "Exponential",
    "Categorical",
    "Dirichlet",
    "Empirical",
    "Mixture",
    "TupleDist",
    # errors
    "ReproError",
    "LanguageError",
    "KindError",
    "TypeCheckError",
    "CausalityError",
    "InitializationError",
    "ScopeError",
    "CompilationError",
    "SymbolicError",
    "GraphError",
    "InferenceError",
    "DistributionError",
]
